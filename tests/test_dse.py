"""Unit tests for design-space exploration."""

import pytest

from repro.flow.dse import (
    DesignPoint,
    explore_design_space,
    pareto_frontier,
    render_space,
)
from repro.flow.taskgraph import demo_multimedia_soc
from repro.network.topology import mesh, star


@pytest.fixture(scope="module")
def core_graph():
    return demo_multimedia_soc()[2]


@pytest.fixture(scope="module")
def points(core_graph):
    return explore_design_space(
        core_graph,
        [mesh(2, 2), star(3)],
        flit_widths=(16, 64),
        buffer_depths=(4,),
        seed=2,
        anneal_iterations=200,
    )


def dp(lat, area, power, feasible=True, name="t"):
    return DesignPoint(
        topology_name=name, flit_width=32, buffer_depth=4,
        latency_ns=lat, area_mm2=area, power_mw=power,
        freq_mhz=1000.0, feasible=feasible,
    )


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dp(1, 1, 1).dominates(dp(2, 2, 2))

    def test_equal_does_not_dominate(self):
        assert not dp(1, 1, 1).dominates(dp(1, 1, 1))

    def test_tradeoff_is_incomparable(self):
        a, b = dp(1, 2, 2), dp(2, 1, 1)
        assert not a.dominates(b) and not b.dominates(a)

    def test_infeasible_never_dominates(self):
        assert not dp(0.1, 0.1, 0.1, feasible=False).dominates(dp(9, 9, 9))

    def test_feasible_dominates_infeasible(self):
        assert dp(9, 9, 9).dominates(dp(0.1, 0.1, 0.1, feasible=False))


class TestExploration:
    def test_full_cross_product(self, points):
        assert len(points) == 2 * 2 * 1

    def test_wider_flits_trade_latency_for_area(self, points):
        by_key = {(p.topology_name, p.flit_width): p for p in points}
        for name in ("mesh2x2", "star3"):
            narrow = by_key[(name, 16)]
            wide = by_key[(name, 64)]
            assert wide.latency_ns < narrow.latency_ns
            assert wide.area_mm2 > narrow.area_mm2

    def test_needs_candidates(self, core_graph):
        with pytest.raises(ValueError):
            explore_design_space(core_graph, [])


class TestFrontier:
    def test_frontier_is_nondominated(self, points):
        frontier = pareto_frontier(points)
        assert frontier
        for p in frontier:
            assert not any(q.dominates(p) for q in points)

    def test_dominated_points_excluded(self):
        pts = [dp(1, 1, 1), dp(2, 2, 2), dp(0.5, 3, 3)]
        frontier = pareto_frontier(pts)
        assert dp(2, 2, 2) not in frontier
        assert len(frontier) == 2

    def test_frontier_sorted_by_latency(self, points):
        frontier = pareto_frontier(points)
        lats = [p.latency_ns for p in frontier]
        assert lats == sorted(lats)

    def test_render_marks_frontier(self, points):
        frontier = pareto_frontier(points)
        text = render_space(points, frontier, "test space")
        assert "test space" in text
        assert text.count("*") == len(frontier)


class TestValueIdentity:
    """The frontier must compare points by value, never ``id()``.

    Points restored from the result store, a cache pickle or a worker
    process are equal to -- but not the same object as -- the originals;
    identity-based marking silently declared every restored point
    off-frontier."""

    def test_pickle_round_trip_preserves_frontier(self, points):
        import pickle

        restored = pickle.loads(pickle.dumps(points))
        assert restored == points
        assert all(a is not b for a, b in zip(restored, points))
        assert pareto_frontier(restored) == pareto_frontier(points)

    def test_restored_points_earn_their_frontier_marker(self, points):
        import pickle

        frontier = pareto_frontier(points)
        restored_frontier = pickle.loads(pickle.dumps(frontier))
        text = render_space(points, restored_frontier, "restored")
        assert text.count("*") == len(frontier)

    def test_value_duplicates_collapse_to_one_frontier_entry(self):
        a, b = dp(1, 1, 1), dp(1, 1, 1)
        assert a is not b
        assert pareto_frontier([a, b]) == [a]

    def test_equal_points_are_mutually_nondominating(self):
        a, b = dp(1, 1, 1), dp(1, 1, 1)
        assert not a.dominates(b) and not b.dominates(a)
        # ...and neither knocks the other off a mixed frontier.
        frontier = pareto_frontier([a, b, dp(2, 2, 2)])
        assert frontier == [dp(1, 1, 1)]
