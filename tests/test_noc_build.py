"""Unit tests for the NoC builder (structure, not traffic)."""

import pytest

from repro.core.config import NocParameters
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh, star
from repro.network.traffic import UniformRandomTraffic
from repro.sim.kernel import SimulationError


def small_noc(**kwargs):
    topo = mesh(2, 2)
    cpus, mems = attach_round_robin(topo, 2, 2)
    cfg = NocBuildConfig(**kwargs) if kwargs else None
    return Noc(topo, cfg), cpus, mems


class TestStructure:
    def test_one_switch_component_per_topology_switch(self):
        noc, cpus, mems = small_noc()
        assert set(noc.switches) == set(noc.topology.switches)

    def test_switch_radix_matches_topology(self):
        noc, _, _ = small_noc()
        for s, sw in noc.switches.items():
            assert sw.config.n_inputs == noc.topology.radix_of(s)
            assert sw.config.n_outputs == noc.topology.radix_of(s)

    def test_one_ni_per_core(self):
        noc, cpus, mems = small_noc()
        assert set(noc.initiator_nis) == set(cpus)
        assert set(noc.target_nis) == set(mems)

    def test_two_links_per_edge_and_attachment(self):
        noc, _, _ = small_noc()
        topo = noc.topology
        expected = 2 * topo.graph.number_of_edges() + 2 * len(topo.nis)
        assert len(noc.links) == expected

    def test_node_ids_unique_and_dense(self):
        noc, _, _ = small_noc()
        ids = sorted(noc.node_ids.values())
        assert ids == list(range(len(ids)))

    def test_routing_policy_defaults_to_dor_on_mesh(self):
        noc, _, _ = small_noc()
        assert noc.routing_policy == "dor"

    def test_window_sized_for_link(self):
        noc, _, _ = small_noc()
        from repro.core.flow_control import window_for_link

        assert noc.link_window == window_for_link(1)

    def test_initiator_tables_cover_all_targets(self):
        noc, cpus, mems = small_noc()
        for c in cpus:
            table = noc.initiator_nis[c].routing
            assert set(table.forward) == set(mems)

    def test_target_tables_cover_all_initiators(self):
        noc, cpus, mems = small_noc()
        for m in mems:
            table = noc.target_nis[m].routing
            assert set(table.reverse) == {noc.node_ids[c] for c in cpus}


class TestValidation:
    def test_too_many_hops_rejected(self):
        topo = mesh(1, 12)  # a 12-switch chain
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "sw_0_0")
        topo.attach("mem", "sw_11_0")  # 12 hops away, beyond max_hops=4
        with pytest.raises(SimulationError, match="max_hops"):
            Noc(topo, NocBuildConfig(params=NocParameters(max_hops=4)))

    def test_too_wide_radix_rejected(self):
        topo = star(9)  # hub radix 9 + NI > 2**3
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "hub")
        topo.attach("mem", "leaf_0")
        with pytest.raises(SimulationError, match="port_bits"):
            Noc(topo, NocBuildConfig(params=NocParameters(port_bits=3)))

    def test_node_id_space_enforced(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 3, 2)
        with pytest.raises(SimulationError, match="node id space"):
            Noc(topo, NocBuildConfig(params=NocParameters(node_id_bits=2)))

    def test_unattached_topology_rejected(self):
        topo = mesh(2, 2)
        topo.add_initiator("cpu")
        with pytest.raises(Exception, match="unattached"):
            Noc(topo)


class TestPopulation:
    def test_add_master_on_target_rejected(self):
        noc, cpus, mems = small_noc()
        with pytest.raises(SimulationError, match="not an initiator"):
            noc.add_traffic_master(mems[0], UniformRandomTraffic(mems, 0.1))

    def test_add_slave_on_initiator_rejected(self):
        noc, cpus, mems = small_noc()
        with pytest.raises(SimulationError, match="not a target"):
            noc.add_memory_slave(cpus[0])

    def test_populate_fills_all_roles(self):
        noc, cpus, mems = small_noc()
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.1, seed=i) for i, c in enumerate(cpus)}
        )
        assert set(noc.masters) == set(cpus)
        assert set(noc.slaves) == set(mems)

    def test_describe_summarizes_structure_and_run(self):
        noc, cpus, mems = small_noc()
        text = noc.describe()
        assert "4 switches" in text and "2 initiators" in text
        noc.populate(
            {cpus[0]: UniformRandomTraffic(mems, 0.1, seed=1)},
            max_transactions=5,
        )
        noc.run_until_drained()
        text = noc.describe()
        assert "transactions" in text and "flit-hops" in text

    def test_run_until_drained_requires_quota(self):
        noc, cpus, mems = small_noc()
        noc.populate({cpus[0]: UniformRandomTraffic(mems, 0.1)})
        with pytest.raises(SimulationError, match="max_transactions"):
            noc.run_until_drained()
