"""Unit tests for the xpipesCompiler: spec, tables, codegen, views."""

import pytest

from repro.compiler import (
    NocSpecification,
    generate_routing_tables,
    generate_systemc,
    render_routing_tables,
    simulation_view,
    synthesis_view,
    write_systemc,
)
from repro.core.config import ArbitrationPolicy, LinkConfig, NocParameters
from repro.core.routing import compute_routes
from repro.network.noc import NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import UniformRandomTraffic


@pytest.fixture
def spec():
    topo = mesh(2, 2)
    attach_round_robin(topo, 2, 2)
    return NocSpecification.from_topology(topo)


class TestSpecification:
    def test_json_roundtrip_is_lossless(self, spec):
        again = NocSpecification.from_json(spec.to_json())
        assert again == spec

    def test_to_topology_rebuilds_structure(self, spec):
        topo = spec.to_topology()
        assert len(topo.switches) == 4
        assert set(topo.initiators) == {"cpu0", "cpu1"}
        assert set(topo.targets) == {"mem0", "mem1"}
        # Port numbering survives the round trip (routes depend on it).
        original_routes = compute_routes(spec.to_topology(), "dor")
        again_routes = compute_routes(
            NocSpecification.from_json(spec.to_json()).to_topology(), "dor"
        )
        assert original_routes == again_routes

    def test_build_config_carries_parameters(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        cfg = NocBuildConfig(
            params=NocParameters(flit_width=64),
            buffer_depth=8,
            arbitration=ArbitrationPolicy.FIXED_PRIORITY,
            link=LinkConfig(stages=2, error_rate=0.01),
        )
        spec = NocSpecification.from_topology(topo, cfg)
        rebuilt = spec.build_config()
        assert rebuilt.params.flit_width == 64
        assert rebuilt.buffer_depth == 8
        assert rebuilt.arbitration is ArbitrationPolicy.FIXED_PRIORITY
        assert rebuilt.link.stages == 2

    def test_link_overrides_roundtrip(self):
        from repro.core.config import LinkConfig

        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        cfg = NocBuildConfig(
            link_overrides={
                frozenset(("sw_0_0", "sw_1_0")): LinkConfig(stages=3),
            }
        )
        spec = NocSpecification.from_topology(topo, cfg)
        again = NocSpecification.from_json(spec.to_json())
        assert again == spec
        rebuilt = again.build_config()
        assert rebuilt.link_for("sw_0_0", "sw_1_0").stages == 3
        assert rebuilt.link_for("sw_0_0", "sw_0_1").stages == 1

    def test_from_topology_requires_valid_topology(self):
        topo = mesh(2, 2)
        topo.add_initiator("cpu")
        with pytest.raises(Exception, match="unattached"):
            NocSpecification.from_topology(topo)


class TestRoutingTables:
    def test_tables_match_compute_routes(self, spec):
        tables = generate_routing_tables(spec)
        topo = spec.to_topology()
        routes = compute_routes(topo, "dor")
        for ini, entries in tables.forward.items():
            for target, (dest_id, route) in entries.items():
                assert route == routes[(ini, target)]
                assert dest_id == tables.node_ids[target]
        for target, entries in tables.reverse.items():
            for ini_id, route in entries.items():
                ini = [n for n, i in tables.node_ids.items() if i == ini_id][0]
                assert route == routes[(target, ini)]

    def test_render_mentions_every_ni(self, spec):
        text = render_routing_tables(generate_routing_tables(spec))
        for ni in ("cpu0", "cpu1", "mem0", "mem1"):
            assert ni in text
        assert "route=<" in text
        assert "addr=[" in text


class TestCodegen:
    def test_file_set(self, spec):
        files = generate_systemc(spec)
        assert set(files) == {
            "xpipes_params.h",
            "switch_types.h",
            "ni_types.h",
            "routing_tables.h",
            "mesh2x2_top.cpp",
            "tb_mesh2x2.cpp",
            "Makefile",
        }

    def test_testbench_drives_clock_and_reset(self, spec):
        tb = generate_systemc(spec)["tb_mesh2x2.cpp"]
        assert "sc_main" in tb
        assert "sc_clock" in tb
        assert "reset.write(true)" in tb

    def test_makefile_builds_the_testbench(self, spec):
        mk = generate_systemc(spec)["Makefile"]
        assert "mesh2x2_tb" in mk
        assert "-lsystemc" in mk

    def test_params_header_reflects_spec(self, spec):
        text = generate_systemc(spec)["xpipes_params.h"]
        assert "#define XPIPES_FLIT_WIDTH      32" in text
        assert "#define XPIPES_PIPELINE_STAGES 2" in text

    def test_switch_typedefs_cover_radixes(self, spec):
        text = generate_systemc(spec)["switch_types.h"]
        # Every 2x2 mesh switch has radix 3 (2 neighbours + 1 NI).
        assert "xpipes_switch<3, 3," in text

    def test_top_instantiates_every_component(self, spec):
        topo = spec.to_topology()
        top = generate_systemc(spec)["mesh2x2_top.cpp"]
        for s in topo.switches:
            assert f" {s};" in top
        for ni in topo.nis:
            assert f"{ni}_ni;" in top
        assert "SC_MODULE" in top

    def test_routing_header_has_luts(self, spec):
        text = generate_systemc(spec)["routing_tables.h"]
        assert "cpu0_lut" in text
        assert "mem0_resp_lut" in text

    def test_write_systemc_creates_files(self, spec, tmp_path):
        paths = write_systemc(spec, str(tmp_path / "gen"))
        assert len(paths) == 7
        for p in paths:
            with open(p) as f:
                assert "Generated by repro.compiler" in f.read()


class TestViews:
    def test_simulation_view_runs_traffic(self, spec):
        noc = simulation_view(spec)
        mems = spec.to_topology().targets
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.15, seed=i)
             for i, c in enumerate(spec.to_topology().initiators)},
            max_transactions=25,
        )
        noc.run_until_drained(max_cycles=100_000)
        assert noc.total_completed() == 50

    def test_synthesis_view_matches_direct_synthesis(self, spec):
        from repro.synth.report import synthesize_noc

        via_compiler = synthesis_view(spec, target_freq_mhz=900)
        direct = synthesize_noc(
            spec.to_topology(), spec.build_config(), target_freq_mhz=900
        )
        assert via_compiler.total_area_mm2 == pytest.approx(direct.total_area_mm2)

    def test_views_are_orthogonal(self, spec):
        """Both views derive from the same spec without interference."""
        noc = simulation_view(spec)
        report = synthesis_view(spec)
        assert len(noc.switches) == len(report.by_kind("switch"))
