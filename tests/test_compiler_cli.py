"""Unit tests for the xpipesCompiler command-line interface."""

import json
import os

import pytest

from repro.compiler.__main__ import main


@pytest.fixture
def spec_file(tmp_path, capsys):
    assert main(["--demo"]) == 0
    text = capsys.readouterr().out
    path = tmp_path / "spec.json"
    path.write_text(text)
    return str(path)


class TestCli:
    def test_demo_emits_valid_json(self, capsys):
        assert main(["--demo"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "demo2x2"
        assert len(doc["switches"]) == 4

    def test_tables(self, spec_file, capsys):
        assert main([spec_file, "--tables"]) == 0
        out = capsys.readouterr().out
        assert "xpipes routing tables" in out
        assert "route=<" in out

    def test_report(self, spec_file, capsys):
        assert main([spec_file, "--report", "--freq", "800"]) == 0
        out = capsys.readouterr().out
        assert "Synthesis report: demo2x2 @ 800 MHz" in out
        assert "TOTAL" in out

    def test_output_generation(self, spec_file, tmp_path, capsys):
        out_dir = str(tmp_path / "gen")
        assert main([spec_file, "-o", out_dir]) == 0
        files = os.listdir(out_dir)
        assert "xpipes_params.h" in files
        assert any(f.endswith("_top.cpp") for f in files)

    def test_no_action_errors(self, spec_file):
        with pytest.raises(SystemExit):
            main([spec_file])

    def test_missing_spec_errors(self):
        with pytest.raises(SystemExit):
            main(["--tables"])
