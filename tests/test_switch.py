"""Unit tests for the 2-stage output-queued wormhole switch."""

import pytest

from tests.harness import FlitSink, FlitSource, packet_flits
from repro.core.config import ArbitrationPolicy, LinkConfig, NocParameters, SwitchConfig
from repro.core.link import Link
from repro.core.switch import Switch, SwitchProtocolError
from repro.sim.kernel import Simulator


def make_switch_rig(
    n_in=2,
    n_out=2,
    buffer_depth=6,
    pipeline_stages=2,
    arbitration=ArbitrationPolicy.ROUND_ROBIN,
    link_cfg=None,
    window=7,
):
    """A switch with a FlitSource per input and a FlitSink per output,
    each connected through a Link (so timing matches real networks)."""
    sim = Simulator()
    cfg = SwitchConfig(
        n_inputs=n_in,
        n_outputs=n_out,
        buffer_depth=buffer_depth,
        pipeline_stages=pipeline_stages,
        arbitration=arbitration,
    )
    lcfg = link_cfg or LinkConfig()
    sources, sinks = [], []
    sw_in, sw_out = [], []
    for i in range(n_in):
        src_ch = sim.flit_channel(f"src{i}")
        in_ch = sim.flit_channel(f"in{i}")
        sim.add(Link(f"lin{i}", src_ch, in_ch, lcfg, seed=i))
        sources.append(sim.add(FlitSource(f"tx{i}", src_ch, window=window)))
        sw_in.append(in_ch)
    for o in range(n_out):
        out_ch = sim.flit_channel(f"out{o}")
        snk_ch = sim.flit_channel(f"snk{o}")
        sim.add(Link(f"lout{o}", out_ch, snk_ch, lcfg, seed=100 + o))
        sinks.append(sim.add(FlitSink(f"rx{o}", snk_ch)))
        sw_out.append(out_ch)
    switch = sim.add(Switch("sw", cfg, sw_in, sw_out, out_windows=window))
    return sim, switch, sources, sinks


class TestBasicRouting:
    def test_single_packet_routed_to_its_port(self):
        sim, sw, (tx0, tx1), (rx0, rx1) = make_switch_rig()
        tx0.submit(packet_flits(4, route=(1,)))
        sim.run(40)
        assert [f.index for f in rx1.got] == [0, 1, 2, 3]
        assert rx0.got == []

    def test_route_offset_advanced_once(self):
        sim, sw, (tx0, _), (rx0, rx1) = make_switch_rig()
        tx0.submit(packet_flits(2, route=(0,)))
        sim.run(40)
        head = rx0.got[0]
        assert head.route_offset == 1

    def test_two_streams_to_different_outputs_in_parallel(self):
        sim, sw, (tx0, tx1), (rx0, rx1) = make_switch_rig()
        tx0.submit(packet_flits(6, route=(0,), packet_id=1))
        tx1.submit(packet_flits(6, route=(1,), packet_id=2))
        sim.run(60)
        assert len(rx0.got) == 6 and len(rx1.got) == 6
        assert all(f.packet_id == 1 for f in rx0.got)
        assert all(f.packet_id == 2 for f in rx1.got)

    def test_min_latency_is_two_stages(self):
        """Input wire -> output wire takes exactly 2 switch cycles."""
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=1, n_outputs=1, buffer_depth=4)
        in_ch = sim.flit_channel("in")
        out_ch = sim.flit_channel("out")
        sw = sim.add(Switch("sw", cfg, [in_ch], [out_ch], out_windows=7))
        flit = packet_flits(1, route=(0,))[0].with_seqno(0)
        in_ch.send(flit)
        # Cycle 0: flit latched onto the input wire.
        sim.step()
        assert out_ch.peek_flit() is None
        # Cycle 1: input stage accepts into the output queue.
        sim.step()
        assert out_ch.peek_flit() is None
        # Cycle 2: output stage transmits; visible on the wire next edge.
        sim.step()
        assert out_ch.peek_flit() is not None

    def test_bad_route_port_raises(self):
        sim, sw, (tx0, _), _ = make_switch_rig()
        tx0.submit(packet_flits(1, route=(5,)))
        with pytest.raises(SwitchProtocolError, match="output 5"):
            sim.run(20)

    def test_body_without_head_raises(self):
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=1, n_outputs=1)
        in_ch = sim.flit_channel("in")
        out_ch = sim.flit_channel("out")
        sim.add(Switch("sw", cfg, [in_ch], [out_ch], out_windows=7))
        stray = packet_flits(3, route=(0,))[1].with_seqno(0)  # a BODY flit
        in_ch.send(stray)
        with pytest.raises(SwitchProtocolError, match="idle input"):
            sim.run(5)


class TestWormhole:
    def test_packets_do_not_interleave_on_contended_output(self):
        sim, sw, (tx0, tx1), (rx0, _) = make_switch_rig()
        tx0.submit(packet_flits(5, route=(0,), packet_id=1))
        tx1.submit(packet_flits(5, route=(0,), packet_id=2))
        sim.run(120)
        got = rx0.got
        assert len(got) == 10
        # Wormhole: all flits of one packet before any of the other.
        first = got[0].packet_id
        switch_point = [f.packet_id for f in got].index(
            3 - first
        )  # the other id (1<->2)
        assert all(f.packet_id == first for f in got[:switch_point])
        assert all(f.packet_id != first for f in got[switch_point:])

    def test_output_lock_releases_after_tail(self):
        sim, sw, (tx0, tx1), (rx0, _) = make_switch_rig()
        tx0.submit(packet_flits(3, route=(0,), packet_id=1))
        sim.run(40)
        assert sw.outputs[0].locked_input is None
        tx1.submit(packet_flits(3, route=(0,), packet_id=2))
        sim.run(40)
        assert len(rx0.got) == 6

    def test_single_flit_packet_never_locks(self):
        sim, sw, (tx0, _), (rx0, _) = make_switch_rig()
        tx0.submit(packet_flits(1, route=(0,)))
        sim.run(10)
        assert sw.outputs[0].locked_input is None


class TestArbitration:
    def test_round_robin_alternates_between_packet_streams(self):
        sim, sw, (tx0, tx1), (rx0, _) = make_switch_rig()
        for p in range(4):
            tx0.submit(packet_flits(2, route=(0,), packet_id=10 + p))
            tx1.submit(packet_flits(2, route=(0,), packet_id=20 + p))
        sim.run(400)
        ids = [f.packet_id for f in rx0.got if f.is_head]
        # Both inputs got served.
        assert any(i >= 20 for i in ids) and any(i < 20 for i in ids)
        assert len(rx0.got) == 16

    def test_fixed_priority_favours_input_zero(self):
        sim, sw, (tx0, tx1), (rx0, _) = make_switch_rig(
            arbitration=ArbitrationPolicy.FIXED_PRIORITY
        )
        for p in range(3):
            tx0.submit(packet_flits(2, route=(0,), packet_id=10 + p))
            tx1.submit(packet_flits(2, route=(0,), packet_id=20 + p))
        sim.run(400)
        heads = [f.packet_id for f in rx0.got if f.is_head]
        # All of input 0's packets complete before input 1's last one.
        assert heads.index(12) < heads.index(22)

    def test_conflicts_are_counted(self):
        sim, sw, (tx0, tx1), _ = make_switch_rig()
        tx0.submit(packet_flits(4, route=(0,), packet_id=1))
        tx1.submit(packet_flits(4, route=(0,), packet_id=2))
        sim.run(100)
        assert sw.allocation_conflicts > 0


class TestBackpressure:
    def test_full_output_queue_nacks_upstream(self):
        # Sink gate closed: output queue fills, input flits get NACKed.
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=1, n_outputs=1, buffer_depth=2)
        lcfg = LinkConfig()
        src_ch = sim.flit_channel("src")
        in_ch = sim.flit_channel("in")
        sim.add(Link("lin", src_ch, in_ch, lcfg, seed=0))
        tx = sim.add(FlitSource("tx", src_ch))
        out_ch = sim.flit_channel("out")
        snk_ch = sim.flit_channel("snk")
        sim.add(Link("lout", out_ch, snk_ch, lcfg, seed=1))
        gate = {"open": False}
        rx = sim.add(FlitSink("rx", snk_ch, accept=lambda f: gate["open"]))
        sw = sim.add(Switch("sw", cfg, [in_ch], [out_ch], out_windows=7))
        tx.submit(packet_flits(12, route=(0,)))
        sim.run(150)
        assert len(rx.got) == 0
        rejected_before = sw.receivers[0].rejected_flits
        assert rejected_before > 0  # queue filled and pushed back
        gate["open"] = True
        sim.run(600)
        assert [f.index for f in rx.got] == list(range(12))

    def test_no_flit_lost_or_duplicated_under_backpressure(self):
        sim, sw, (tx0, tx1), (rx0, _) = make_switch_rig(buffer_depth=2)
        tx0.submit(packet_flits(8, route=(0,), packet_id=1))
        tx1.submit(packet_flits(8, route=(0,), packet_id=2))
        sim.run(500)
        by_pkt = {1: [], 2: []}
        for f in rx0.got:
            by_pkt[f.packet_id].append(f.index)
        assert by_pkt[1] == list(range(8))
        assert by_pkt[2] == list(range(8))


class TestDeepPipeline:
    def test_seven_stage_mode_delivers(self):
        sim, sw, (tx0, _), (rx0, _) = make_switch_rig(pipeline_stages=7)
        tx0.submit(packet_flits(5, route=(0,)))
        sim.run(120)
        assert [f.index for f in rx0.got] == list(range(5))

    def test_seven_stage_mode_is_slower(self):
        def first_arrival(stages):
            sim, sw, (tx0, _), (rx0, _) = make_switch_rig(pipeline_stages=stages)
            tx0.submit(packet_flits(1, route=(0,)))
            cyc = 0
            while not rx0.got and cyc < 100:
                sim.step()
                cyc += 1
            return cyc

        assert first_arrival(7) == first_arrival(2) + 5

    def test_deep_pipeline_backpressure_safe(self):
        sim, sw, (tx0, tx1), (rx0, _) = make_switch_rig(
            pipeline_stages=5, buffer_depth=2
        )
        tx0.submit(packet_flits(6, route=(0,), packet_id=1))
        tx1.submit(packet_flits(6, route=(0,), packet_id=2))
        sim.run(800)
        assert len(rx0.got) == 12


class TestConstruction:
    def test_channel_count_mismatch_rejected(self):
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=2, n_outputs=2)
        chans = [sim.flit_channel(f"c{i}") for i in range(3)]
        with pytest.raises(ValueError, match="inputs configured"):
            Switch("sw", cfg, chans[:1], chans[1:3])

    def test_reset_clears_everything(self):
        sim, sw, (tx0, _), (rx0, _) = make_switch_rig()
        tx0.submit(packet_flits(4, route=(0,)))
        sim.run(30)
        sim.reset()
        assert sw.flits_routed == 0
        assert sw.outputs[0].queue.is_empty
        assert sw.outputs[0].locked_input is None
