"""Unit tests for the OCP transaction layer."""

import pytest

from repro.core.ocp import (
    BurstTransaction,
    OcpCmd,
    OcpMasterPort,
    OcpResponse,
    OcpSlavePort,
    SidebandEvent,
    SResp,
    next_txn_id,
)


class TestBurstTransaction:
    def test_read_defaults(self):
        t = BurstTransaction(cmd=OcpCmd.READ, addr=0x100)
        assert t.is_read and not t.is_write
        assert t.burst_len == 1
        assert t.data == ()

    def test_write_needs_matching_data(self):
        BurstTransaction(cmd=OcpCmd.WRITE, addr=0, burst_len=2, data=(1, 2))
        with pytest.raises(ValueError, match="data words"):
            BurstTransaction(cmd=OcpCmd.WRITE, addr=0, burst_len=2, data=(1,))

    def test_read_with_data_rejected(self):
        with pytest.raises(ValueError, match="no data"):
            BurstTransaction(cmd=OcpCmd.READ, addr=0, data=(1,))

    def test_idle_rejected(self):
        with pytest.raises(ValueError, match="IDLE"):
            BurstTransaction(cmd=OcpCmd.IDLE, addr=0)

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError, match="burst_len"):
            BurstTransaction(cmd=OcpCmd.READ, addr=0, burst_len=0)

    def test_txn_ids_unique(self):
        a = BurstTransaction(cmd=OcpCmd.READ, addr=0)
        b = BurstTransaction(cmd=OcpCmd.READ, addr=0)
        assert a.txn_id != b.txn_id
        assert next_txn_id() > 0


class TestOcpResponse:
    def test_ok_flag(self):
        assert OcpResponse(txn_id=1, sresp=SResp.DVA).ok
        assert not OcpResponse(txn_id=1, sresp=SResp.ERR).ok


class TestMasterPortHandshake:
    def test_request_takes_one_cycle(self, sim):
        port = OcpMasterPort(sim, "p")
        txn = BurstTransaction(cmd=OcpCmd.READ, addr=4)
        port.drive_request(txn)
        assert port.peek_request() is None  # registered wire
        sim.step()
        assert port.peek_request() == txn

    def test_accept_carries_txn_id(self, sim):
        port = OcpMasterPort(sim, "p")
        port.accept_request(42)
        sim.step()
        assert port.accepted_request_id() == 42

    def test_response_roundtrip(self, sim):
        port = OcpMasterPort(sim, "p")
        resp = OcpResponse(txn_id=7, sresp=SResp.DVA, data=(9,))
        port.drive_response(resp)
        sim.step()
        assert port.peek_response() == resp
        port.accept_response(7)
        sim.step()
        assert port.accepted_response_id() == 7

    def test_sideband_pulse(self, sim):
        port = OcpMasterPort(sim, "p")
        ev = SidebandEvent(source_id=3, vector=5)
        port.raise_sideband(ev)
        sim.step()
        assert port.peek_sideband() == ev
        sim.step()  # pulse decays
        assert port.peek_sideband() is None

    def test_undriven_wires_decay(self, sim):
        port = OcpMasterPort(sim, "p")
        txn = BurstTransaction(cmd=OcpCmd.READ, addr=4)
        port.drive_request(txn)
        sim.step()
        sim.step()  # no drive this cycle
        assert port.peek_request() is None


class TestSlavePortHandshake:
    def test_mirrors_master_port(self, sim):
        port = OcpSlavePort(sim, "s")
        txn = BurstTransaction(cmd=OcpCmd.WRITE, addr=0, burst_len=1, data=(5,))
        port.drive_request(txn)
        sim.step()
        assert port.peek_request() == txn
        port.accept_request(txn.txn_id)
        sim.step()
        assert port.accepted_request_id() == txn.txn_id

    def test_slave_response_path(self, sim):
        port = OcpSlavePort(sim, "s")
        resp = OcpResponse(txn_id=1, sresp=SResp.DVA)
        port.drive_response(resp)
        sim.step()
        assert port.peek_response() == resp
        port.accept_response(1)
        sim.step()
        assert port.accepted_response_id() == 1
