"""Bit-accurate error mode: real bit flips, real CRC detection."""

import pytest

from repro.core.config import LinkConfig
from repro.core.crc import CrcCodec, codec_for_flit_width
from repro.core.flit import Flit, FlitType, flit_type_for
from repro.core.flow_control import GoBackNReceiver, GoBackNSender, window_for_link
from repro.core.link import Link
from repro.sim.kernel import Simulator
from tests.harness import FlitSink, FlitSource


def stream(n, width=32):
    return [
        Flit(ftype=flit_type_for(i, n), payload=(i * 2654435761) % (1 << width),
             width=width, index=i)
        for i in range(n)
    ]


def bit_rig(n_flits, error_rate, codec, width=32, seed=5):
    """Sender -> lossy bit-flipping link -> receiver, with optional CRC."""
    sim = Simulator()
    cfg = LinkConfig(stages=1, error_rate=error_rate, bit_errors=True)
    up = sim.flit_channel("up")
    down = sim.flit_channel("down")
    link = sim.add(Link("l", up, down, cfg, seed=seed))
    tx = FlitSource("tx", up, window=window_for_link(1))
    tx.sender.codec = codec
    rx = FlitSink("rx", down)
    rx.receiver.codec = codec
    sim.add(tx)
    sim.add(rx)
    tx.submit(stream(n_flits, width))
    return sim, tx, rx, link


class TestBitFlipInjection:
    def test_bit_errors_flip_payload_not_flag(self):
        sim = Simulator()
        cfg = LinkConfig(error_rate=1.0 - 1e-9, bit_errors=True)
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        sim.add(Link("l", up, down, cfg, seed=1))
        original = Flit(ftype=FlitType.HEAD_TAIL, payload=0xAAAA, width=16)
        up.send(original)
        sim.run(2)
        got = down.peek_flit()
        assert got is not None
        assert not got.corrupted  # the flag is NOT set in bit mode
        assert got.payload != original.payload  # a real bit flipped

    def test_flip_bits_helper(self):
        f = Flit(ftype=FlitType.HEAD_TAIL, payload=0b1010, width=4)
        assert f.flip_bits([0]).payload == 0b1011
        assert f.flip_bits([0, 3]).payload == 0b0011
        with pytest.raises(ValueError):
            f.flip_bits([4])

    def test_adjacent_coupling_clamps_at_msb(self):
        # Coupling faults are physical adjacency: when the primary flip
        # lands on the MSB, the companion flip must be its lower
        # neighbour (width-2), never wrap to bit 0 across the bus -- a
        # wrapped pair aliases differently under CRC than a real
        # adjacent pair would.
        class _ScriptedRng:
            """Drives _inject: fire the error, pick the MSB, couple."""

            def __init__(self, width):
                self.width = width
                self.rolls = iter([0.0, 0.0])  # error fires, coupling fires

            def random(self):
                return next(self.rolls)

            def randrange(self, n):
                assert n == self.width
                return n - 1  # the MSB

        width = 16
        sim = Simulator()
        cfg = LinkConfig(stages=1, error_rate=0.5, bit_errors=True)
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        link = sim.add(Link("l", up, down, cfg, seed=1))
        link._rng = _ScriptedRng(width)
        original = Flit(ftype=FlitType.HEAD_TAIL, payload=0, width=width)
        up.send(original)
        sim.run(2)
        got = down.peek_flit()
        assert got is not None
        flipped = {i for i in range(width) if (got.payload >> i) & 1}
        assert flipped == {width - 1, width - 2}, (
            f"MSB coupling must clamp to the lower neighbour, "
            f"flipped bits {sorted(flipped)}"
        )


class TestCrcProtectedStream:
    def test_crc_recovers_the_stream(self):
        codec = codec_for_flit_width(32)
        sent = stream(25)
        sim, tx, rx, link = bit_rig(25, error_rate=0.1, codec=codec)
        sim.run(4000)
        assert len(rx.got) == 25
        # Every delivered payload is bit-exact.
        for got, want in zip(rx.got, sent):
            assert got.payload == want.payload
        assert rx.receiver.corrupted_flits > 0  # CRC actually fired

    def test_without_crc_bit_flips_slip_through(self):
        sent = stream(25)
        sim, tx, rx, link = bit_rig(25, error_rate=0.1, codec=None, seed=9)
        sim.run(4000)
        assert len(rx.got) == 25
        wrong = sum(1 for got, want in zip(rx.got, sent)
                    if got.payload != want.payload)
        assert wrong > 0, "silent corruption must be observable without CRC"
        assert rx.receiver.corrupted_flits == 0  # nothing was detected

    def test_crc_stamped_by_sender(self):
        codec = CrcCodec(32)
        sim = Simulator()
        ch = sim.flit_channel("c")
        sender = GoBackNSender(ch, window=5, codec=codec)
        f = stream(1)[0]
        sender.enqueue(f)
        stamped = sender._buffer[0]
        assert stamped.crc == codec.compute(f.payload)

    def test_receiver_detects_mismatched_crc(self):
        codec = CrcCodec(32)
        sim = Simulator()
        ch = sim.flit_channel("c")
        receiver = GoBackNReceiver(ch, codec=codec)
        f = stream(1)[0].with_seqno(0).with_crc(codec.compute(0x1234))
        assert receiver._detected_corrupt(f)  # payload != 0x1234

    def test_flits_without_crc_field_pass_codec_receivers(self):
        """Mixed mode: crc == -1 means the link runs abstract."""
        codec = CrcCodec(32)
        sim = Simulator()
        ch = sim.flit_channel("c")
        receiver = GoBackNReceiver(ch, codec=codec)
        f = stream(1)[0].with_seqno(0)  # crc = -1
        assert not receiver._detected_corrupt(f)


class TestFullNetworkCrcMode:
    def test_noc_runs_in_crc_mode(self):
        from repro.network.noc import Noc, NocBuildConfig
        from repro.network.topology import attach_round_robin, mesh
        from repro.network.traffic import UniformRandomTraffic

        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        cfg = NocBuildConfig(
            crc_mode=True,
            link=LinkConfig(error_rate=0.01, bit_errors=True),
            seed=3,
        )
        noc = Noc(topo, cfg)
        assert noc.codec is not None
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.05, seed=i) for i, c in enumerate(cpus)},
            max_transactions=20,
        )
        noc.run_until_drained(max_cycles=1_000_000)
        assert noc.total_completed() == 40
        # Detected-and-retransmitted events occurred.
        detected = sum(
            r.corrupted_flits for sw in noc.switches.values() for r in sw.receivers
        )
        detected += sum(ni.rx.corrupted_flits for ni in noc.target_nis.values())
        detected += sum(ni.rx.corrupted_flits for ni in noc.initiator_nis.values())
        assert detected > 0
