"""Unit tests for go-back-N ACK/NACK flow control.

A micro-harness connects a sender component and a receiver component,
either directly over one channel (1-cycle wire each way) or through a
:class:`~repro.core.link.Link` (pipelined, optionally lossy).
"""

import pytest

from repro.core.config import LinkConfig
from repro.core.flit import Flit, FlitType, flit_type_for
from repro.core.flow_control import GoBackNReceiver, GoBackNSender, window_for_link
from repro.core.link import Link
from repro.sim.component import Component
from repro.sim.kernel import Simulator


def make_flits(n, width=8, packet_id=1):
    return [
        Flit(
            ftype=flit_type_for(i, n),
            payload=i % (1 << width),
            width=width,
            packet_id=packet_id,
            index=i,
        )
        for i in range(n)
    ]


class TxComp(Component):
    def __init__(self, name, channel, flits, window=7):
        super().__init__(name)
        self.sender = GoBackNSender(channel, window=window, name=name)
        self.queue = list(flits)

    def tick(self, cycle):
        if self.queue and self.sender.can_accept():
            self.sender.enqueue(self.queue.pop(0))
        self.sender.on_cycle()


class RxComp(Component):
    def __init__(self, name, channel, accept=lambda f: True):
        super().__init__(name)
        self.receiver = GoBackNReceiver(channel, name=name)
        self.accept = accept
        self.got = []

    def tick(self, cycle):
        f = self.receiver.poll(self.accept)
        if f is not None:
            self.got.append(f)


def harness(flits, accept=lambda f: True, link_cfg=None, window=None, seed=3):
    sim = Simulator()
    cfg = link_cfg or LinkConfig()
    if window is None:
        window = window_for_link(cfg.stages)
    up = sim.flit_channel("up")
    down = sim.flit_channel("down")
    sim.add(Link("link", up, down, cfg, seed=seed))
    tx = sim.add(TxComp("tx", up, flits, window=window))
    rx = sim.add(RxComp("rx", down, accept))
    return sim, tx, rx


class TestWindowSizing:
    def test_window_covers_round_trip(self):
        # stages=1: 2 cycles each way + 1 decision + margin 2 = 7.
        assert window_for_link(1) == 7
        assert window_for_link(3) == 11

    def test_minimum_window_enforced(self, sim):
        ch = sim.flit_channel("c")
        with pytest.raises(ValueError):
            GoBackNSender(ch, window=2)


class TestCleanLink:
    def test_in_order_exactly_once(self):
        flits = make_flits(20)
        sim, tx, rx = harness(flits)
        sim.run(100)
        assert [f.index for f in rx.got] == list(range(20))

    def test_sender_reaches_idle(self):
        sim, tx, rx = harness(make_flits(5))
        sim.run(60)
        assert tx.sender.idle
        assert tx.sender.in_flight == 0

    def test_full_throughput_with_adequate_window(self):
        n = 50
        sim, tx, rx = harness(make_flits(n))
        sim.run(n + 20)  # link latency + drain margin
        assert len(rx.got) == n
        assert tx.sender.retransmissions == 0

    def test_window_limits_in_flight(self, sim):
        ch = sim.flit_channel("c")
        sender = GoBackNSender(ch, window=3)
        for f in make_flits(3):
            assert sender.can_accept()
            sender.enqueue(f)
        assert not sender.can_accept()
        with pytest.raises(RuntimeError, match="window"):
            sender.enqueue(make_flits(1)[0])

    def test_seqnos_assigned_in_order(self, sim):
        ch = sim.flit_channel("c")
        sender = GoBackNSender(ch, window=5)
        for f in make_flits(3):
            sender.enqueue(f)
        assert [f.seqno for f in sender._buffer] == [0, 1, 2]


class TestReceiverRejection:
    def test_rejected_flit_is_retransmitted(self):
        gate = {"open": False}
        sim, tx, rx = harness(make_flits(3), accept=lambda f: gate["open"])
        sim.run(20)
        assert rx.got == []  # everything NACKed so far
        gate["open"] = True
        sim.run(60)
        assert [f.index for f in rx.got] == [0, 1, 2]
        assert rx.receiver.rejected_flits > 0
        assert tx.sender.nacks_seen > 0

    def test_no_duplicates_after_rejection_storm(self):
        toggle = {"n": 0}

        def accept(_f):
            toggle["n"] += 1
            return toggle["n"] % 3 == 0  # accept every third attempt

        sim, tx, rx = harness(make_flits(10), accept=accept)
        sim.run(400)
        assert [f.index for f in rx.got] == list(range(10))

    def test_out_of_order_flits_dropped_counted(self):
        gate = {"open": False}
        sim, tx, rx = harness(make_flits(6), accept=lambda f: gate["open"])
        sim.run(30)
        gate["open"] = True
        sim.run(100)
        # The streamed-ahead flits behind the first rejection arrived
        # out of sequence and were dropped, not delivered twice.
        assert rx.receiver.out_of_order_flits > 0
        assert [f.index for f in rx.got] == list(range(6))


class TestCorruption:
    def test_corrupted_flits_recovered(self):
        flits = make_flits(30)
        sim, tx, rx = harness(
            flits, link_cfg=LinkConfig(stages=1, error_rate=0.2), seed=11
        )
        sim.run(2000)
        assert [f.index for f in rx.got] == list(range(30))
        assert not any(f.corrupted for f in rx.got)
        assert rx.receiver.corrupted_flits > 0
        assert tx.sender.retransmissions > 0

    def test_heavy_corruption_still_delivers(self):
        flits = make_flits(10)
        sim, tx, rx = harness(
            flits, link_cfg=LinkConfig(stages=1, error_rate=0.5), seed=5
        )
        sim.run(5000)
        assert [f.index for f in rx.got] == list(range(10))


class TestPipelinedLinks:
    @pytest.mark.parametrize("stages", [1, 2, 4])
    def test_deeper_links_still_deliver(self, stages):
        cfg = LinkConfig(stages=stages)
        sim, tx, rx = harness(make_flits(15), link_cfg=cfg)
        sim.run(200)
        assert [f.index for f in rx.got] == list(range(15))

    def test_latency_grows_with_stages(self):
        arrivals = {}
        for stages in (1, 3):
            sim, tx, rx = harness(make_flits(1), link_cfg=LinkConfig(stages=stages))
            cycles = 0
            while not rx.got and cycles < 50:
                sim.step()
                cycles += 1
            arrivals[stages] = cycles
        assert arrivals[3] == arrivals[1] + 2

    def test_undersized_window_stalls_but_delivers(self):
        # Window below the round trip: throughput suffers, safety holds.
        cfg = LinkConfig(stages=3)
        sim, tx, rx = harness(make_flits(12), link_cfg=cfg, window=3)
        sim.run(400)
        assert [f.index for f in rx.got] == list(range(12))


class TestReceiverPeek:
    def test_peek_sees_only_clean_in_order_flit(self, sim):
        ch = sim.flit_channel("c")
        receiver = GoBackNReceiver(ch)
        flit = make_flits(1)[0].with_seqno(0)
        ch.send(flit)
        sim.step()
        assert receiver.peek() == flit
        # Wrong sequence number is invisible to peek.
        ch.send(flit.with_seqno(3))
        sim.step()
        assert receiver.peek() is None

    def test_peek_ignores_corrupted(self, sim):
        ch = sim.flit_channel("c")
        receiver = GoBackNReceiver(ch)
        ch.send(make_flits(1)[0].with_seqno(0).corrupt())
        sim.step()
        assert receiver.peek() is None


class TestNackStormRegression:
    """One corruption on a deep link triggers a NACK *storm*: the bad
    flit and every in-flight flit behind it each earn a NACK, arriving
    on consecutive cycles.  The sender must honor exactly one of them
    (one rewind) and its retransmission counter must equal the number
    of flits actually re-driven onto the wire -- the pre-fix on_cycle
    rewound on every NACK of the storm, re-sending and re-counting the
    window once per NACK.
    """

    def _rig(self, n=30, stages=4, error_rate=0.0, seed=3):
        sim = Simulator()
        cfg = LinkConfig(stages=stages, error_rate=error_rate)
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        link = sim.add(Link("link", up, down, cfg, seed=seed))
        tx = sim.add(
            TxComp("tx", up, make_flits(n), window=window_for_link(stages))
        )
        rx = sim.add(RxComp("rx", down))
        # Ground truth for "actually re-sent": interpose on the sender's
        # channel and log every seqno it drives onto the wire.
        log = []

        class _LoggingChannel:
            def send(self, f, _inner=up):
                log.append(f.seqno)
                return _inner.send(f)

            def __getattr__(self, name, _inner=up):
                return getattr(_inner, name)

        tx.sender.channel = _LoggingChannel()
        return sim, tx, rx, link, log

    def test_single_corruption_rewinds_exactly_once(self):
        sim, tx, rx, link, log = self._rig()
        orig_inject = link._inject
        hit = []

        def inject(flit, cycle):
            f = orig_inject(flit, cycle)
            if f is not None and f.seqno == 5 and not hit:
                hit.append(cycle)
                return f.corrupt()
            return f

        link._inject = inject
        sim.run(400)
        assert [f.index for f in rx.got] == list(range(30))
        assert len(hit) == 1
        assert tx.sender.rewinds == 1
        assert tx.sender.nacks_seen > 1, "expected a storm, got one NACK"
        assert tx.sender.nacks_ignored == tx.sender.nacks_seen - 1
        resent = len(log) - len(set(log))
        assert tx.sender.retransmissions == resent

    def test_counter_matches_wire_under_heavy_corruption(self):
        sim, tx, rx, link, log = self._rig(n=40, error_rate=0.15, seed=11)
        sim.run(3000)
        assert [f.index for f in rx.got] == list(range(40))
        resent = len(log) - len(set(log))
        assert tx.sender.retransmissions == resent
        assert tx.sender.rewinds <= tx.sender.nacks_seen


class TestSenderResync:
    """The opt-in recovery for links that DROP flits (dead-link fault
    windows): with every in-flight flit lost, no NACK ever comes back;
    the resync timer rewinds after a window of reverse-channel silence.
    """

    def test_validation(self, sim):
        ch = sim.flit_channel("c")
        with pytest.raises(ValueError):
            GoBackNSender(ch, window=7, resync_timeout=2)  # must exceed the RTT

    def test_dropped_window_recovered(self):
        sim = Simulator()
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        link = sim.add(Link("link", up, down, LinkConfig(), seed=0))
        tx = sim.add(TxComp("tx", up, make_flits(12)))
        tx.sender.resync_timeout = 20
        rx = sim.add(RxComp("rx", down))
        sim.run(3)
        link.set_fault(drop=True)  # swallow the first burst entirely
        sim.run(10)
        link.clear_fault()
        sim.run(200)
        assert [f.index for f in rx.got] == list(range(12))
        assert link.flits_dropped > 0
        assert tx.sender.resyncs >= 1
        assert tx.sender.idle

    def test_no_spurious_resync_on_clean_link(self):
        flits = make_flits(25)
        sim, tx, rx = harness(flits)
        tx.sender.resync_timeout = 20
        sim.run(400)
        assert [f.index for f in rx.got] == list(range(25))
        assert tx.sender.resyncs == 0
