"""Per-link configuration overrides and the floorplan -> sim loop."""

import pytest

from repro.core.config import LinkConfig
from repro.flow.floorplan import (
    Floorplan,
    floorplan_topology,
    link_configs_from_floorplan,
)
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import PermutationTraffic


def line_topo():
    topo = mesh(1, 3)
    topo.add_initiator("cpu")
    topo.add_target("mem")
    topo.attach("cpu", "sw_0_0")
    topo.attach("mem", "sw_2_0")
    return topo


class TestLinkOverrides:
    def test_override_applies_to_named_edge(self):
        topo = line_topo()
        cfg = NocBuildConfig(
            link_overrides={frozenset(("sw_0_0", "sw_1_0")): LinkConfig(stages=4)}
        )
        noc = Noc(topo, cfg)
        deep = [l for l in noc.links if "sw_0_0" in l.name and "sw_1_0" in l.name]
        shallow = [l for l in noc.links if "sw_1_0" in l.name and "sw_2_0" in l.name]
        assert all(l.config.stages == 4 for l in deep)
        assert all(l.config.stages == 1 for l in shallow)

    def test_window_covers_deepest_link(self):
        from repro.core.flow_control import window_for_link

        topo = line_topo()
        cfg = NocBuildConfig(
            link_overrides={frozenset(("sw_0_0", "sw_1_0")): LinkConfig(stages=5)}
        )
        noc = Noc(topo, cfg)
        assert noc.link_window == window_for_link(5)

    def test_traffic_flows_across_mixed_depths(self):
        topo = line_topo()
        cfg = NocBuildConfig(
            link_overrides={frozenset(("sw_0_0", "sw_1_0")): LinkConfig(stages=3)}
        )
        noc = Noc(topo, cfg)
        noc.add_traffic_master(
            "cpu", PermutationTraffic("mem", 0.05, seed=1), max_transactions=15
        )
        noc.add_memory_slave("mem")
        noc.run_until_drained(max_cycles=200_000)
        assert noc.total_completed() == 15

    def test_override_adds_latency(self):
        def latency(stages):
            topo = line_topo()
            overrides = (
                {frozenset(("sw_0_0", "sw_1_0")): LinkConfig(stages=stages)}
                if stages > 1
                else {}
            )
            noc = Noc(topo, NocBuildConfig(link_overrides=overrides))
            noc.add_traffic_master(
                "cpu", PermutationTraffic("mem", 0.02, seed=1), max_transactions=10
            )
            noc.add_memory_slave("mem")
            noc.run_until_drained(max_cycles=200_000)
            return noc.aggregate_latency().mean()

        # The override stretches one link on both request and response
        # paths: 2 extra stages x 2 directions = 4 extra cycles.
        assert latency(3) == pytest.approx(latency(1) + 4, abs=1.0)


class TestOverrideValidation:
    def test_unknown_edge_rejected(self):
        topo = line_topo()
        cfg = NocBuildConfig(
            link_overrides={frozenset(("sw_0_0", "nonexistent")): LinkConfig(stages=2)}
        )
        with pytest.raises(Exception, match="do not exist"):
            Noc(topo, cfg)

    def test_ni_attachment_overridable(self):
        topo = line_topo()
        cfg = NocBuildConfig(
            link_overrides={frozenset(("cpu", "sw_0_0")): LinkConfig(stages=2)}
        )
        noc = Noc(topo, cfg)
        ni_links = [l for l in noc.links if "cpu" in l.name]
        assert all(l.config.stages == 2 for l in ni_links)


class TestFloorplanToSim:
    def test_long_wires_get_stages(self):
        plan = Floorplan(
            positions={"a": (0, 0), "b": (5, 0)},
            tile_mm=1.0,
            link_lengths_mm={("a", "b"): 5.0},
        )
        overrides = link_configs_from_floorplan(plan, freq_mhz=1000)
        assert overrides[frozenset(("a", "b"))].stages == 3  # 5mm / 2mm-per-stage

    def test_short_wires_not_listed(self):
        plan = Floorplan(
            positions={"a": (0, 0), "b": (1, 0)},
            tile_mm=1.0,
            link_lengths_mm={("a", "b"): 1.0},
        )
        assert link_configs_from_floorplan(plan, freq_mhz=1000) == {}

    def test_base_config_fields_preserved(self):
        plan = Floorplan(
            positions={}, tile_mm=1.0, link_lengths_mm={("a", "b"): 9.0}
        )
        base = LinkConfig(stages=1, error_rate=0.01)
        out = link_configs_from_floorplan(plan, 1000, base=base)
        assert out[frozenset(("a", "b"))].error_rate == 0.01

    def test_end_to_end_floorplan_driven_build(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 2, 2)
        plan = floorplan_topology(topo, tile_mm=3.0)  # big tiles: long wires
        overrides = link_configs_from_floorplan(plan, freq_mhz=1000)
        assert overrides  # 3 mm wires need 2 stages at 1 GHz
        cfg = NocBuildConfig(link_overrides=overrides)
        noc = Noc(topo, cfg)
        from repro.network.traffic import UniformRandomTraffic

        noc.populate(
            {c: UniformRandomTraffic(topo.targets, 0.05, seed=i)
             for i, c in enumerate(topo.initiators)},
            max_transactions=10,
        )
        noc.run_until_drained(max_cycles=200_000)
        assert noc.total_completed() == 20
