"""Credit-based flow control: FSMs, the input-buffered switch, and
the whole-NoC credit mode."""

import pytest

from repro.core.config import LinkConfig, SwitchConfig
from repro.core.credit import (
    CreditProtocolError,
    CreditReceiver,
    CreditSender,
    CreditToken,
)
from repro.core.credit_switch import InputBufferedSwitch
from repro.core.flit import Flit, FlitType
from repro.core.link import Link
from repro.network.noc import Noc, NocBuildConfig
from repro.network.scoreboard import (
    add_checked_masters,
    assert_all_clean,
    private_stripe_patterns,
)
from repro.network.topology import attach_round_robin, mesh
from repro.sim.kernel import SimulationError, Simulator
from tests.harness import packet_flits


def flit(payload=1):
    return Flit(ftype=FlitType.HEAD_TAIL, payload=payload, width=8)


class TestCreditSender:
    def test_spends_and_recovers_credits(self, sim):
        ch = sim.flit_channel("c")
        tx = CreditSender(ch, capacity=2)
        assert tx.credits == 2
        tx.enqueue(flit())
        assert tx.credits == 1
        tx.on_cycle()
        sim.step()
        assert ch.peek_flit() is not None
        ch.send_ack(CreditToken(1))
        sim.step()
        tx.on_cycle()
        assert tx.credits == 2

    def test_blocks_without_credit(self, sim):
        ch = sim.flit_channel("c")
        tx = CreditSender(ch, capacity=1)
        tx.enqueue(flit())
        assert not tx.can_accept()
        with pytest.raises(CreditProtocolError, match="without a credit"):
            tx.enqueue(flit())

    def test_credit_overflow_detected(self, sim):
        ch = sim.flit_channel("c")
        tx = CreditSender(ch, capacity=1)
        ch.send_ack(CreditToken(1))
        sim.step()
        with pytest.raises(CreditProtocolError, match="overflow"):
            tx.on_cycle()

    def test_idle_property(self, sim):
        ch = sim.flit_channel("c")
        tx = CreditSender(ch, capacity=2)
        assert tx.idle
        tx.enqueue(flit())
        assert not tx.idle and tx.in_flight == 1

    def test_capacity_validated(self, sim):
        with pytest.raises(ValueError):
            CreditSender(sim.flit_channel("c"), capacity=0)


class TestCreditReceiver:
    def test_poll_and_grant(self, sim):
        ch = sim.flit_channel("c")
        rx = CreditReceiver(ch)
        ch.send(flit(7))
        sim.step()
        got = rx.poll()
        assert got is not None and got.payload == 7
        rx.grant()
        rx.on_cycle()
        sim.step()
        assert ch.peek_ack() == CreditToken(1)

    def test_grants_batch_into_one_token(self, sim):
        ch = sim.flit_channel("c")
        rx = CreditReceiver(ch)
        rx.grant(2)
        rx.grant(1)
        rx.on_cycle()
        sim.step()
        assert ch.peek_ack() == CreditToken(3)

    def test_corrupted_flit_is_fatal(self, sim):
        ch = sim.flit_channel("c")
        rx = CreditReceiver(ch)
        ch.send(flit().corrupt())
        sim.step()
        with pytest.raises(CreditProtocolError, match="reliable links"):
            rx.poll()


class TestInputBufferedSwitch:
    def make_rig(self, n_in=2, n_out=2, depth=4):
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=n_in, n_outputs=n_out, buffer_depth=depth)
        ins = [sim.flit_channel(f"i{i}") for i in range(n_in)]
        outs = [sim.flit_channel(f"o{i}") for i in range(n_out)]
        sw = sim.add(InputBufferedSwitch("sw", cfg, ins, outs, out_capacities=4))
        txs = [CreditSender(ch, capacity=depth, name=f"tx{i}")
               for i, ch in enumerate(ins)]
        rxs = [CreditReceiver(ch, name=f"rx{i}") for i, ch in enumerate(outs)]
        return sim, sw, txs, rxs

    def run_stream(self, sim, txs, rxs, streams, cycles=200):
        got = {o: [] for o in range(len(rxs))}
        queues = {i: list(fs) for i, fs in streams.items()}
        for _ in range(cycles):
            for i, tx in enumerate(txs):
                if queues.get(i) and tx.can_accept():
                    tx.enqueue(queues[i].pop(0))
                tx.on_cycle()
            for o, rx in enumerate(rxs):
                f = rx.poll()
                if f is not None:
                    got[o].append(f)
                    rx.grant()
                rx.on_cycle()
            sim.step()
        return got

    def test_routes_and_preserves_order(self):
        sim, sw, txs, rxs = self.make_rig()
        streams = {0: packet_flits(5, route=(1,), packet_id=1)}
        got = self.run_stream(sim, txs, rxs, streams)
        assert [f.index for f in got[1]] == list(range(5))
        assert got[0] == []

    def test_wormhole_no_interleave(self):
        sim, sw, txs, rxs = self.make_rig()
        streams = {
            0: packet_flits(4, route=(0,), packet_id=1),
            1: packet_flits(4, route=(0,), packet_id=2),
        }
        got = self.run_stream(sim, txs, rxs, streams)
        assert len(got[0]) == 8
        first = got[0][0].packet_id
        ids = [f.packet_id for f in got[0]]
        cut = ids.index(3 - first)
        assert all(i == first for i in ids[:cut])

    def test_backpressure_without_loss(self):
        """Stalled consumer: credits throttle the stream; nothing drops."""
        sim, sw, txs, rxs = self.make_rig()
        streams = {0: packet_flits(12, route=(0,), packet_id=1)}
        got = {0: [], 1: []}
        queues = {0: list(streams[0])}
        held = 0
        for cyc in range(400):
            if queues[0] and txs[0].can_accept():
                txs[0].enqueue(queues[0].pop(0))
            txs[0].on_cycle()
            txs[1].on_cycle()
            for o, rx in enumerate(rxs):
                f = rx.poll()
                if f is not None:
                    got[o].append(f)
                    if o == 0 and cyc < 100:
                        held += 1  # consumer asleep: credits withheld
                    else:
                        rx.grant()
                rx.on_cycle()
            if cyc == 100 and held:
                rxs[0].grant(held)  # consumer wakes and drains its buffer
                held = 0
            sim.step()
        # The stall capped in-flight flits at the credit pool...
        assert len(got[0]) == 12
        # ...and delivery stayed exactly-once, in order.
        assert [f.index for f in got[0]] == list(range(12))

    def test_deep_pipeline_rejected(self):
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=1, n_outputs=1, pipeline_stages=7)
        with pytest.raises(ValueError, match="2-stage"):
            InputBufferedSwitch(
                "sw", cfg, [sim.flit_channel("i")], [sim.flit_channel("o")], 4
            )


class TestCreditNoc:
    def test_checked_traffic_drains(self):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo, NocBuildConfig(flow_control="credit"))
        patterns = private_stripe_patterns(cpus, mems, rate=0.15, seed=6)
        masters = add_checked_masters(noc, patterns, max_transactions=25)
        for m in mems:
            noc.add_memory_slave(m)
        noc.run_until_drained(max_cycles=500_000)
        assert noc.total_completed() == 50
        assert_all_clean(masters)
        assert noc.total_retransmissions() == 0

    def test_error_injection_rejected(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        with pytest.raises(SimulationError, match="reliable links"):
            Noc(topo, NocBuildConfig(
                flow_control="credit", link=LinkConfig(error_rate=0.01)
            ))

    def test_unknown_mode_rejected(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        with pytest.raises(SimulationError, match="unknown flow_control"):
            Noc(topo, NocBuildConfig(flow_control="psychic"))

    def test_credit_latency_competitive_at_low_load(self):
        def mean(mode):
            topo = mesh(2, 2)
            cpus, mems = attach_round_robin(topo, 2, 2)
            noc = Noc(topo, NocBuildConfig(flow_control=mode))
            from repro.network.traffic import UniformRandomTraffic

            noc.populate(
                {c: UniformRandomTraffic(mems, 0.02, seed=i)
                 for i, c in enumerate(cpus)},
                max_transactions=20,
            )
            noc.run_until_drained(max_cycles=500_000)
            return noc.aggregate_latency().mean()

        assert mean("credit") == pytest.approx(mean("ack_nack"), rel=0.25)

    def test_credit_mode_with_pipelined_links(self):
        """Deep links stretch the credit return loop; correctness holds
        (throughput throttles until credits complete the round trip)."""
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo, NocBuildConfig(
            flow_control="credit", link=LinkConfig(stages=3)
        ))
        from repro.network.traffic import UniformRandomTraffic

        noc.populate(
            {c: UniformRandomTraffic(mems, 0.1, seed=i) for i, c in enumerate(cpus)},
            max_transactions=20,
        )
        noc.run_until_drained(max_cycles=1_000_000)
        assert noc.total_completed() == 40

    def test_credit_mode_deterministic_reset(self):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo, NocBuildConfig(flow_control="credit"))
        from repro.network.traffic import UniformRandomTraffic

        noc.populate(
            {c: UniformRandomTraffic(mems, 0.1, seed=i) for i, c in enumerate(cpus)},
            max_transactions=15,
        )
        noc.run_until_drained(max_cycles=500_000)
        first = (noc.sim.cycle, sorted(noc.aggregate_latency().samples))
        noc.sim.reset()
        noc.run_until_drained(max_cycles=500_000)
        assert (noc.sim.cycle, sorted(noc.aggregate_latency().samples)) == first


class TestFlowControlDifferential:
    """ack_nack and credit are different link layers over the same
    routing fabric.  With reliable links and no queueing contention
    (one transaction in flight per master), neither layer should cost
    a cycle over the other: the same seeded traffic must see the
    identical latency sample set, transaction for transaction.  (Under
    contention the two genuinely diverge -- NACK storms vs credit
    stalls resolve conflicts differently -- which bench A10 measures.)
    """

    @pytest.mark.parametrize("rate", [0.02, 0.05])
    def test_identical_latency_contention_free(self, rate):
        from repro.network.traffic import UniformRandomTraffic

        results = {}
        for fc in ("ack_nack", "credit"):
            topo = mesh(2, 2)
            cpus, mems = attach_round_robin(topo, 2, 2)
            noc = Noc(topo, NocBuildConfig(flow_control=fc))
            noc.populate(
                {
                    c: UniformRandomTraffic(mems, rate, seed=i)
                    for i, c in enumerate(cpus)
                },
                max_outstanding=1,
            )
            noc.run(4000)
            results[fc] = (
                noc.total_completed(),
                sorted(noc.aggregate_latency().samples),
            )
        assert results["ack_nack"][0] > 0
        assert results["ack_nack"] == results["credit"]

    def test_credit_mode_rejects_resync_timeout(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 2, 2)
        with pytest.raises(SimulationError, match="resync"):
            Noc(topo, NocBuildConfig(
                flow_control="credit", link_resync_timeout=40
            ))
