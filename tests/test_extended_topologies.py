"""Unit tests for the extended topology factories and trace traffic."""

import pytest

from repro.network.topology import (
    TopologyError,
    attach_round_robin,
    fat_tree,
    fully_connected,
    hypercube,
)
from repro.network.traffic import TraceTraffic, TxnTemplate


class TestFullyConnected:
    def test_edge_count(self):
        t = fully_connected(5)
        assert t.graph.number_of_edges() == 10

    def test_diameter_one(self):
        t = fully_connected(4)
        path = t.switch_path("sw_0", "sw_3")
        assert len(path) == 2

    def test_min_size(self):
        with pytest.raises(TopologyError):
            fully_connected(1)


class TestHypercube:
    def test_degree_equals_dimension(self):
        t = hypercube(3)
        assert all(t.graph.degree[s] == 3 for s in t.switches)

    def test_switch_count(self):
        assert len(hypercube(4).switches) == 16

    def test_diameter_is_dimension(self):
        t = hypercube(3)
        path = t.switch_path("sw_0", "sw_7")  # 0b000 -> 0b111
        assert len(path) == 4  # 3 hops

    def test_dimension_bounds(self):
        with pytest.raises(TopologyError):
            hypercube(0)
        with pytest.raises(TopologyError):
            hypercube(7)


class TestFatTree:
    def test_leaves_connect_to_both_roots(self):
        t = fat_tree(4)
        for i in range(4):
            assert t.graph.has_edge(f"leaf_{i}", "root_0")
            assert t.graph.has_edge(f"leaf_{i}", "root_1")

    def test_path_diversity(self):
        import networkx as nx

        t = fat_tree(3)
        paths = list(nx.all_shortest_paths(t.graph, "leaf_0", "leaf_2"))
        assert len(paths) == 2  # one through each root

    def test_min_size(self):
        with pytest.raises(TopologyError):
            fat_tree(1)


class TestExtendedTopologiesRunTraffic:
    @pytest.mark.parametrize("factory,arg", [
        (fully_connected, 4),
        (hypercube, 3),
        (fat_tree, 3),
    ])
    def test_traffic_flows(self, factory, arg):
        from repro.network.noc import Noc
        from repro.network.traffic import UniformRandomTraffic

        topo = factory(arg)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.08, seed=i) for i, c in enumerate(cpus)},
            max_transactions=15,
        )
        noc.run_until_drained(max_cycles=300_000)
        assert noc.total_completed() == 30


class TestTraceTraffic:
    TEXT = """\
# a comment

0 mem0 0x10 W 2
5 mem1 0 R 1 2
9 mem0 3 r 4
"""

    def test_parse_and_replay(self):
        t = TraceTraffic.from_text(self.TEXT)
        a = t.next_transaction(0)
        assert a == TxnTemplate("mem0", 0x10, False, 2, 0)
        assert t.next_transaction(3) is None
        b = t.next_transaction(5)
        assert b.thread_id == 2 and b.is_read
        c = t.next_transaction(20)
        assert c.burst_len == 4
        assert t.exhausted

    def test_render_roundtrip(self):
        t = TraceTraffic.from_text(self.TEXT)
        entries = []
        for cyc in range(30):
            tt = t.next_transaction(cyc)
            if tt:
                entries.append((cyc, tt))
        again = TraceTraffic.from_text(TraceTraffic.render(entries))
        for cyc, tt in entries:
            assert again.next_transaction(cyc + 100) == tt

    def test_malformed_line_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            TraceTraffic.from_text("0 mem0 0x10")

    def test_bad_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            TraceTraffic.from_text("0 mem0 0 X 1")

    def test_from_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text(self.TEXT)
        t = TraceTraffic.from_file(str(path))
        assert t.next_transaction(0) is not None

    def test_reset(self):
        t = TraceTraffic.from_text("0 mem0 0 R 1\n")
        t.next_transaction(0)
        assert t.exhausted
        t.reset()
        assert not t.exhausted

    def test_drives_a_real_network(self):
        from repro.network.noc import Noc
        from repro.network.topology import mesh

        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 2)
        noc = Noc(topo)
        trace = TraceTraffic.from_text(
            "0 mem0 0x4 W 1\n10 mem1 0x8 W 1\n50 mem0 0x4 R 1\n"
        )
        master = noc.add_traffic_master("cpu0", trace, max_transactions=3)
        noc.add_memory_slave("mem0")
        noc.add_memory_slave("mem1")
        noc.run_until_drained(max_cycles=100_000)
        assert master.completed == 3
        assert 0x4 in noc.slaves["mem0"].memory
        assert 0x8 in noc.slaves["mem1"].memory
