"""The self-checking scoreboard: catching silent data corruption."""

import pytest

from repro.core.config import LinkConfig
from repro.network.noc import Noc, NocBuildConfig
from repro.network.scoreboard import (
    CheckedTrafficMaster,
    ScoreboardError,
    add_checked_masters,
    assert_all_clean,
    private_stripe_patterns,
)
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import ScriptedTraffic, TxnTemplate


def checked_noc(cfg=None, rate=0.1, txns=30, n_cpus=2, n_mems=2, seed=0):
    topo = mesh(2, 2)
    cpus, mems = attach_round_robin(topo, n_cpus, n_mems)
    noc = Noc(topo, cfg)
    patterns = private_stripe_patterns(cpus, mems, rate=rate, seed=seed)
    masters = add_checked_masters(noc, patterns, max_transactions=txns)
    for m in mems:
        noc.add_memory_slave(m)
    return noc, masters


class TestPrivateStripes:
    def test_stripes_are_disjoint(self):
        patterns = private_stripe_patterns(["a", "b", "c"], ["m"], rate=1.0,
                                           stripe_words=32, seed=1)
        offsets = {name: set() for name in patterns}
        for name, p in patterns.items():
            for cyc in range(500):
                t = p.next_transaction(cyc)
                if t:
                    offsets[name].add(t.offset)
        assert offsets["a"] and offsets["b"] and offsets["c"]
        assert not (offsets["a"] & offsets["b"])
        assert not (offsets["b"] & offsets["c"])

    def test_needs_masters(self):
        with pytest.raises(ValueError):
            private_stripe_patterns([], ["m"], rate=0.1)


class TestCheckedRuns:
    def test_clean_network_passes(self):
        noc, masters = checked_noc()
        noc.run_until_drained(max_cycles=500_000)
        assert_all_clean(masters)
        assert sum(m.reads_checked for m in masters.values()) > 0

    def test_clean_under_detected_errors(self):
        """Abstract error mode: retransmission keeps data exact."""
        cfg = NocBuildConfig(link=LinkConfig(error_rate=0.02), seed=5)
        noc, masters = checked_noc(cfg=cfg, txns=25)
        noc.run_until_drained(max_cycles=2_000_000)
        assert noc.total_errors_injected() > 0
        assert_all_clean(masters)

    def test_clean_under_crc_protected_bit_errors(self):
        """Bit-accurate mode with CRC: flips detected, data exact."""
        cfg = NocBuildConfig(
            crc_mode=True,
            link=LinkConfig(error_rate=0.01, bit_errors=True),
            seed=5,
        )
        noc, masters = checked_noc(cfg=cfg, txns=20)
        noc.run_until_drained(max_cycles=2_000_000)
        assert_all_clean(masters)

    def test_scoreboard_catches_injected_corruption(self):
        """Poison the slave's memory behind a completed write: the next
        read must trip the scoreboard."""
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        noc = Noc(topo)
        script = [
            (0, TxnTemplate("mem0", offset=4, is_read=False, burst_len=1)),
            (200, TxnTemplate("mem0", offset=4, is_read=True, burst_len=1)),
        ]
        masters = add_checked_masters(
            noc, {"cpu0": ScriptedTraffic(script)}, max_transactions=2
        )
        slave = noc.add_memory_slave("mem0")
        noc.sim.run_until(
            lambda: masters["cpu0"].completed >= 1, 100_000
        )
        # Corrupt the stored word between the write and the read.
        (addr,) = list(slave.memory)
        slave.memory[addr] ^= 0xFF
        noc.run_until_drained(max_cycles=200_000)
        with pytest.raises(ScoreboardError, match="corrupted read"):
            assert_all_clean(masters)

    def test_unwritten_reads_checked_against_zero(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        noc = Noc(topo)
        script = [(0, TxnTemplate("mem0", offset=9, is_read=True))]
        masters = add_checked_masters(
            noc, {"cpu0": ScriptedTraffic(script)}, max_transactions=1
        )
        noc.add_memory_slave("mem0")
        noc.run_until_drained(max_cycles=100_000)
        assert_all_clean(masters)
        assert masters["cpu0"].words_checked == 1

    def test_check_unwritten_can_be_disabled(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        noc = Noc(topo)
        script = [(0, TxnTemplate("mem0", offset=9, is_read=True))]
        port = noc.master_ports["cpu0"]
        master = CheckedTrafficMaster(
            "cpu0.core", port, ScriptedTraffic(script), noc.address_map,
            max_transactions=1, check_unwritten=False,
        )
        noc.masters["cpu0"] = master
        noc.sim.add(master)
        noc.add_memory_slave("mem0")
        noc.run_until_drained(max_cycles=100_000)
        assert master.words_checked == 0

    def test_burst_writes_shadowed_per_beat(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        noc = Noc(topo)
        script = [
            (0, TxnTemplate("mem0", offset=0, is_read=False, burst_len=4)),
            (200, TxnTemplate("mem0", offset=0, is_read=True, burst_len=4)),
        ]
        masters = add_checked_masters(
            noc, {"cpu0": ScriptedTraffic(script)}, max_transactions=2
        )
        noc.add_memory_slave("mem0")
        noc.run_until_drained(max_cycles=200_000)
        assert_all_clean(masters)
        assert masters["cpu0"].words_checked == 4
