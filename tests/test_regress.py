"""Perf-regression tracking: tracked BENCH ratios vs the trajectory.

The contracts from docs/OBSERVABILITY.md ("Fleet telemetry"): the
tracked metrics extract from the committed ``benchmarks/results``
artifacts, the committed ``BENCH_TRAJECTORY.json`` loads and passes a
self-diff, an injected regression past the threshold fails the diff
(and a loosened threshold forgives it), and the ``python -m repro
bench-diff`` CLI wires it all together with the documented exit codes.
"""

import json
import os
import shutil

import pytest

from repro.__main__ import main as cli_main
from repro.telemetry import TelemetryError
from repro.telemetry.regress import (
    DEFAULT_THRESHOLD,
    REGRESS_SCHEMA,
    TRACKED,
    append_entry,
    baseline_metrics,
    bench_diff,
    collect_metrics,
    diff_metrics,
    load_trajectory,
    new_trajectory,
    save_trajectory,
)

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
RESULTS = os.path.join(ROOT, "benchmarks", "results")
TRAJECTORY = os.path.join(ROOT, "BENCH_TRAJECTORY.json")


def committed_metrics():
    return collect_metrics(RESULTS)


class TestCollectMetrics:
    def test_committed_results_carry_every_tracked_metric(self):
        metrics = committed_metrics()
        assert set(metrics) == {m.name for m in TRACKED}
        assert all(v > 0 for v in metrics.values())

    def test_s4_speedup_is_the_scalar_over_batch_ratio(self):
        with open(os.path.join(RESULTS, "BENCH_s4.json"),
                  encoding="utf-8") as fh:
            doc = json.load(fh)
        want = (doc["scalar"]["seconds_per_run"]
                / doc["batch"]["seconds_per_lane"])
        assert committed_metrics()["s4_per_replica_speedup"] == pytest.approx(
            want
        )

    def test_missing_files_contribute_nothing(self, tmp_path):
        assert collect_metrics(str(tmp_path)) == {}

    def test_unparseable_file_is_skipped(self, tmp_path):
        (tmp_path / "BENCH_s1.json").write_text("{torn")
        shutil.copy(os.path.join(RESULTS, "BENCH_s4.json"),
                    tmp_path / "BENCH_s4.json")
        metrics = collect_metrics(str(tmp_path))
        assert "s1_compiled_over_fast_standard" not in metrics
        assert "s4_per_replica_speedup" in metrics


class TestTrajectory:
    def test_committed_trajectory_loads_and_matches_results(self):
        doc = load_trajectory(TRAJECTORY)
        assert doc["schema"] == REGRESS_SCHEMA
        baseline = baseline_metrics(doc)
        # The committed trajectory's last entry must describe the
        # committed results: the self-diff is clean by construction.
        assert diff_metrics(baseline, committed_metrics()) == []

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"schema": "nope", "entries": []}))
        with pytest.raises(TelemetryError, match="trajectory"):
            load_trajectory(str(path))

    def test_load_rejects_malformed_entries(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(
            {"schema": REGRESS_SCHEMA, "entries": [{"metrics": 7}]}
        ))
        with pytest.raises(TelemetryError, match="entries"):
            load_trajectory(str(path))

    def test_append_and_save_round_trip(self, tmp_path):
        path = str(tmp_path / "t.json")
        doc = new_trajectory()
        append_entry(doc, {"m": 1.0}, note="first")
        append_entry(doc, {"m": 1.1})
        save_trajectory(path, doc)
        loaded = load_trajectory(path)
        assert len(loaded["entries"]) == 2
        assert loaded["entries"][0]["note"] == "first"
        assert baseline_metrics(loaded) == {"m": 1.1}


class TestDiffMetrics:
    def test_clean_diff(self):
        base = {"a": 10.0, "b": 2.0}
        assert diff_metrics(base, {"a": 9.5, "b": 2.5}) == []

    def test_drop_past_threshold_flags(self):
        base = {"a": 10.0}
        regs = diff_metrics(base, {"a": 7.0}, threshold=0.20)
        assert len(regs) == 1
        r = regs[0]
        assert r.name == "a"
        assert r.change == pytest.approx(-0.30)
        assert "-30.0%" in r.describe()

    def test_looser_threshold_forgives(self):
        assert diff_metrics({"a": 10.0}, {"a": 7.0}, threshold=0.5) == []

    def test_absent_metrics_never_flag(self):
        assert diff_metrics({"a": 10.0}, {"b": 1.0}) == []
        assert diff_metrics({}, {"a": 1.0}) == []

    def test_improvement_never_flags(self):
        assert diff_metrics({"a": 1.0}, {"a": 100.0}) == []

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="threshold"):
            diff_metrics({"a": 1.0}, {"a": 1.0}, threshold=0.0)


class TestBenchDiff:
    def regressed_results(self, tmp_path, factor=0.7):
        """A copy of the committed results with bench_s1's standard
        compiled-over-fast speedup scaled by ``factor``."""
        results = tmp_path / "results"
        results.mkdir()
        for name in ("BENCH_s1.json", "BENCH_s4.json"):
            shutil.copy(os.path.join(RESULTS, name), results / name)
        s1 = results / "BENCH_s1.json"
        doc = json.loads(s1.read_text())
        doc["points"]["standard"]["speedup"]["compiled_over_fast"] *= factor
        s1.write_text(json.dumps(doc))
        return str(results)

    def test_committed_state_passes(self, capsys):
        assert bench_diff(RESULTS, TRAJECTORY) == 0
        assert "bench-diff: OK" in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        results = self.regressed_results(tmp_path, factor=0.7)
        assert bench_diff(results, TRAJECTORY) == 1
        out = capsys.readouterr().out
        assert "bench-diff: FAIL" in out
        assert "s1_compiled_over_fast_standard" in out

    def test_loosened_threshold_forgives_the_same_drop(self, tmp_path):
        results = self.regressed_results(tmp_path, factor=0.7)
        assert bench_diff(results, TRAJECTORY, threshold=0.5) == 0

    def test_missing_trajectory_without_update_is_exit_2(self, tmp_path):
        assert bench_diff(RESULTS, str(tmp_path / "none.json")) == 2

    def test_update_records_then_diffs(self, tmp_path):
        path = str(tmp_path / "t.json")
        assert bench_diff(RESULTS, path, update=True, note="seed") == 0
        doc = load_trajectory(path)
        assert len(doc["entries"]) == 1
        assert doc["entries"][0]["note"] == "seed"
        # A clean re-run with --update appends a second entry.
        assert bench_diff(RESULTS, path, update=True) == 0
        assert len(load_trajectory(path)["entries"]) == 2
        # A regressed run does NOT pollute the trajectory.
        results = self.regressed_results(tmp_path)
        assert bench_diff(results, path, update=True) == 1
        assert len(load_trajectory(path)["entries"]) == 2

    def test_default_threshold_is_twenty_percent(self):
        assert DEFAULT_THRESHOLD == pytest.approx(0.20)


class TestCli:
    def test_bench_diff_subcommand(self, capsys):
        assert cli_main(["bench-diff", "--results", RESULTS,
                         "--trajectory", TRAJECTORY]) == 0
        assert "bench-diff: OK" in capsys.readouterr().out

    def test_bench_diff_threshold_and_update_flags(self, tmp_path, capsys):
        path = str(tmp_path / "t.json")
        assert cli_main(["bench-diff", "--results", RESULTS,
                         "--trajectory", path]) == 2
        assert cli_main(["bench-diff", "--results", RESULTS,
                         "--trajectory", path, "--update",
                         "--note", "from the CLI"]) == 0
        assert load_trajectory(path)["entries"][0]["note"] == "from the CLI"

    def test_top_subcommand_rejects_a_non_directory(self, tmp_path, capsys):
        assert cli_main(["top", "--dir", str(tmp_path / "nope"),
                         "--once"]) == 2

    def test_top_subcommand_renders_a_frame(self, tmp_path, capsys):
        from repro.telemetry.events import EventWriter, make_record

        with EventWriter(str(tmp_path / "events.jsonl")) as w:
            w.write(make_record("run_start", label="cli", points=1,
                                pending=1, cached=0, jobs=1))
            w.write(make_record("point_end", label="cli[0]", key="k",
                                status="ok", seconds=0.5, attempts=1,
                                cached=False))
            w.write(make_record("run_end", label="cli", ok=1, failed=0,
                                cached=0, retries=0))
        prom = str(tmp_path / "metrics.prom")
        assert cli_main(["top", "--dir", str(tmp_path), "--once",
                         "--prom", prom]) == 0
        out = capsys.readouterr().out
        assert "repro top --" in out
        assert "1 ok" in out
        assert "repro_top_points_ok 1" in open(prom, encoding="utf-8").read()


class TestDegradedBaselines:
    """A damaged or partial trajectory is "no baseline", never a crash
    -- bench-diff warns and exits 0 so a perf gate cannot wedge a build
    on bookkeeping damage."""

    def write(self, tmp_path, doc):
        path = tmp_path / "traj.json"
        path.write_text(json.dumps(doc) if isinstance(doc, dict) else doc)
        return str(path)

    def test_single_entry_with_null_ratio_passes(self, tmp_path, capsys):
        path = self.write(tmp_path, {
            "schema": REGRESS_SCHEMA,
            "entries": [{"metrics": {
                "s1_compiled_over_fast_standard": None,
                "s4_per_replica_speedup": "not-a-number",
            }}],
        })
        assert bench_diff(RESULTS, path) == 0
        out = capsys.readouterr().out
        assert "WARNING" in out and "no usable baseline" in out

    def test_missing_tracked_ratio_is_not_comparable(self, tmp_path, capsys):
        path = self.write(tmp_path, {
            "schema": REGRESS_SCHEMA,
            "entries": [{"metrics": {"some_retired_metric": 1.0}}],
        })
        assert bench_diff(RESULTS, path) == 0
        assert "not comparable" in capsys.readouterr().out

    def test_corrupt_json_warns_and_passes(self, tmp_path, capsys):
        path = self.write(tmp_path, "{torn")
        assert bench_diff(RESULTS, path) == 0
        assert "unusable trajectory" in capsys.readouterr().out

    def test_foreign_schema_warns_and_passes(self, tmp_path, capsys):
        path = self.write(tmp_path, {"schema": "other/v9", "entries": []})
        assert bench_diff(RESULTS, path) == 0
        assert "unusable trajectory" in capsys.readouterr().out

    def test_update_restarts_an_unusable_trajectory(self, tmp_path):
        path = self.write(tmp_path, "{torn")
        assert bench_diff(RESULTS, path, update=True) == 0
        doc = load_trajectory(path)  # readable again
        assert len(doc["entries"]) == 1

    def test_missing_file_still_exits_2(self, tmp_path):
        assert bench_diff(RESULTS, str(tmp_path / "none.json")) == 2

    def test_baseline_metrics_filters_non_numbers(self):
        doc = new_trajectory()
        append_entry(doc, {})
        doc["entries"][-1]["metrics"] = {
            "ok": 2.0, "null": None, "text": "x", "flag": True,
            "inf": float("inf"), "nan": float("nan"), "int": 3,
        }
        assert baseline_metrics(doc) == {"ok": 2.0, "int": 3.0}

    def test_cli_survives_single_entry_null_metrics(self, tmp_path, capsys):
        path = self.write(tmp_path, {
            "schema": REGRESS_SCHEMA,
            "entries": [{"metrics": {"s1_compiled_over_fast_standard": None}}],
        })
        assert cli_main(["bench-diff", "--trajectory", path]) == 0
        assert "WARNING" in capsys.readouterr().out
