"""Property-based tests for replica-lane equivalence.

The batching contract (docs/BATCHING.md) is a universally-quantified
claim: for *any* workload and *any* lane index k, lane k of an
N-replica batch is bit-identical to a scalar compiled run of a network
built from scratch with every traffic and link seed offset by
``k * seed_stride`` -- including while fault windows are open, which is
when link RNG streams and retransmission machinery actually diverge
between seeds, and including bounded workloads where the batch's
idle-span skipping is active.
"""

from hypothesis import given, settings, strategies as st

from repro.faults import FaultInjector, FaultWindow
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import UniformRandomTraffic
from repro.sim.batch import SEED_STRIDE, BatchSimulator

CORNER = "link.sw_0_0.p*"


@st.composite
def scenario(draw):
    rows = draw(st.integers(min_value=1, max_value=2))
    cols = draw(st.integers(min_value=2, max_value=2))
    rate = draw(st.sampled_from([0.01, 0.05, 0.2]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    cycles = draw(st.integers(min_value=300, max_value=600))
    # An open fault window overlapping the run (sometimes the whole of
    # it), corrupting everything leaving the corner switch.
    fault_start = draw(st.integers(min_value=0, max_value=150))
    fault_duration = draw(st.integers(min_value=100, max_value=600))
    error_rate = draw(st.sampled_from([0.05, 0.2]))
    # None = open-ended traffic (no skipping); small caps exercise the
    # idle-span skip path on the quiet tail.
    max_transactions = draw(st.sampled_from([None, 1, 3]))
    replicas = draw(st.integers(min_value=2, max_value=4))
    lane = draw(st.integers(min_value=0, max_value=replicas - 1))
    return (rows, cols, rate, seed, cycles, fault_start, fault_duration,
            error_rate, max_transactions, replicas, lane)


def _build(params, lane):
    (rows, cols, rate, seed, cycles, fault_start, fault_duration,
     error_rate, max_transactions, *_ ) = params
    topo = mesh(rows, cols)
    cpus, mems = attach_round_robin(topo, 2, 2)
    noc = Noc(topo, NocBuildConfig(kernel="compiled"))
    FaultInjector(
        noc,
        (FaultWindow(CORNER, start=fault_start, duration=fault_duration,
                     error_rate=error_rate),),
    )
    off = lane * SEED_STRIDE
    noc.populate(
        {
            c: UniformRandomTraffic(mems, rate, seed=seed + 31 * i + off)
            for i, c in enumerate(cpus)
        },
        max_transactions=max_transactions,
    )
    for link in noc.links:
        link._seed += off
    noc.sim.reset()  # links re-draw their RNGs from the offset seeds
    return noc


@settings(max_examples=10, deadline=None)
@given(scenario())
def test_any_lane_matches_a_scalar_rebuild(params):
    cycles, replicas, lane = params[4], params[9], params[10]

    batch = BatchSimulator(_build(params, lane=0), replicas)
    result = batch.run_lanes(
        cycles,
        lambda noc, k: {"completed": float(noc.total_completed())},
        digest=True,
    )

    scalar = _build(params, lane=lane)
    scalar.sim.compile()
    scalar.run(cycles)

    assert result.digests[lane] == scalar.stats_digest(), (
        f"lane {lane} of a {replicas}-replica batch diverged from the "
        f"scalar rebuild with the same seeds"
    )
