"""Property-based tests: go-back-N delivers exactly once, in order,
whatever the link does (corruption) or the receiver does (rejection)."""

from hypothesis import given, settings, strategies as st

from repro.core.config import LinkConfig
from repro.core.flit import Flit, flit_type_for
from repro.core.flow_control import window_for_link
from repro.core.link import Link
from repro.sim.kernel import Simulator
from tests.harness import FlitSink, FlitSource


def stream(n, width=8):
    return [
        Flit(ftype=flit_type_for(i, n), payload=i % 256, width=width, index=i)
        for i in range(n)
    ]


class TestGoBackNProperties:
    @given(
        n=st.integers(min_value=1, max_value=40),
        stages=st.integers(min_value=1, max_value=4),
        error_rate=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_exactly_once_in_order_under_corruption(self, n, stages, error_rate, seed):
        sim = Simulator()
        cfg = LinkConfig(stages=stages, error_rate=error_rate)
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        sim.add(Link("l", up, down, cfg, seed=seed))
        tx = sim.add(FlitSource("tx", up, stream(n), window=window_for_link(stages)))
        rx = sim.add(FlitSink("rx", down))
        budget = 400 + n * 200  # generous for heavy corruption
        sim.run_until(lambda: len(rx.got) >= n or sim.cycle > budget, budget + 10)
        assert [f.index for f in rx.got] == list(range(n))
        assert not any(f.corrupted for f in rx.got)

    @given(
        n=st.integers(min_value=1, max_value=25),
        reject_mod=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_exactly_once_under_random_rejection(self, n, reject_mod, seed):
        import random

        rng = random.Random(seed)
        sim = Simulator()
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        sim.add(Link("l", up, down, LinkConfig(), seed=0))
        tx = sim.add(FlitSource("tx", up, stream(n)))
        rx = sim.add(
            FlitSink("rx", down, accept=lambda f: rng.randrange(reject_mod) != 0)
        )
        sim.run(600 + n * 120)
        assert [f.index for f in rx.got] == list(range(n))

    @given(
        n=st.integers(min_value=1, max_value=30),
        window=st.integers(min_value=3, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_window_size_is_safe(self, n, window):
        """Undersized windows cost throughput, never correctness."""
        sim = Simulator()
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        sim.add(Link("l", up, down, LinkConfig(stages=2), seed=1))
        tx = sim.add(FlitSource("tx", up, stream(n), window=window))
        rx = sim.add(FlitSink("rx", down))
        sim.run(200 + n * 60)
        assert [f.index for f in rx.got] == list(range(n))
        assert tx.sender.idle


from repro.sim.component import Component


class _FaultPulser(Component):
    """Component that forces a link fault on scripted cycles."""

    def __init__(self, link, pulses):
        super().__init__("pulser")
        self.link = link
        self.pulses = dict(pulses)  # cycle -> mode ("stuck" | "dead")

    def tick(self, cycle):
        mode = self.pulses.get(cycle)
        if mode == "stuck":
            self.link.set_fault(error_rate=1.0)
        elif mode == "dead":
            self.link.set_fault(drop=True)
        elif self.link.fault_active:
            self.link.clear_fault()


class TestNackStormProperties:
    """NACK storms from hard fault pulses (stuck-at and dead cycles on
    a pipelined link) never break exactly-once in-order delivery, and
    the sender's retransmission counter always equals the number of
    flits actually re-driven onto the wire (the rewind-dedup fix)."""

    @given(
        n=st.integers(min_value=1, max_value=30),
        stages=st.integers(min_value=1, max_value=4),
        pulses=st.dictionaries(
            keys=st.integers(min_value=2, max_value=120),
            values=st.sampled_from(["stuck", "dead"]),
            max_size=8,
        ),
        seed=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_exactly_once_under_fault_pulses(self, n, stages, pulses, seed):
        sim = Simulator()
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        link = sim.add(Link("l", up, down, LinkConfig(stages=stages), seed=seed))
        tx = sim.add(FlitSource("tx", up, stream(n), window=window_for_link(stages)))
        # Dead pulses swallow flits without a NACK; the resync timer is
        # the recovery mechanism under test for those.
        tx.sender.resync_timeout = 20
        rx = sim.add(FlitSink("rx", down))
        sim.add(_FaultPulser(link, pulses))

        sent_log = []

        class _LoggingChannel:
            def send(self, f, _inner=up):
                sent_log.append(f.seqno)
                return _inner.send(f)

            def __getattr__(self, name, _inner=up):
                return getattr(_inner, name)

        tx.sender.channel = _LoggingChannel()

        budget = 600 + n * 120  # pulses end by cycle 120; ample drain
        sim.run_until(lambda: len(rx.got) >= n, budget)
        assert [f.index for f in rx.got] == list(range(n))
        assert not any(f.corrupted for f in rx.got)
        resent = len(sent_log) - len(set(sent_log))
        assert tx.sender.retransmissions == resent
        # Every honored rewind was a distinct recovery, not a storm echo.
        assert tx.sender.rewinds + tx.sender.nacks_ignored == tx.sender.nacks_seen
