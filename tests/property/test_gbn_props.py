"""Property-based tests: go-back-N delivers exactly once, in order,
whatever the link does (corruption) or the receiver does (rejection)."""

from hypothesis import given, settings, strategies as st

from repro.core.config import LinkConfig
from repro.core.flit import Flit, flit_type_for
from repro.core.flow_control import window_for_link
from repro.core.link import Link
from repro.sim.kernel import Simulator
from tests.harness import FlitSink, FlitSource


def stream(n, width=8):
    return [
        Flit(ftype=flit_type_for(i, n), payload=i % 256, width=width, index=i)
        for i in range(n)
    ]


class TestGoBackNProperties:
    @given(
        n=st.integers(min_value=1, max_value=40),
        stages=st.integers(min_value=1, max_value=4),
        error_rate=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_exactly_once_in_order_under_corruption(self, n, stages, error_rate, seed):
        sim = Simulator()
        cfg = LinkConfig(stages=stages, error_rate=error_rate)
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        sim.add(Link("l", up, down, cfg, seed=seed))
        tx = sim.add(FlitSource("tx", up, stream(n), window=window_for_link(stages)))
        rx = sim.add(FlitSink("rx", down))
        budget = 400 + n * 200  # generous for heavy corruption
        sim.run_until(lambda: len(rx.got) >= n or sim.cycle > budget, budget + 10)
        assert [f.index for f in rx.got] == list(range(n))
        assert not any(f.corrupted for f in rx.got)

    @given(
        n=st.integers(min_value=1, max_value=25),
        reject_mod=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=30, deadline=None)
    def test_exactly_once_under_random_rejection(self, n, reject_mod, seed):
        import random

        rng = random.Random(seed)
        sim = Simulator()
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        sim.add(Link("l", up, down, LinkConfig(), seed=0))
        tx = sim.add(FlitSource("tx", up, stream(n)))
        rx = sim.add(
            FlitSink("rx", down, accept=lambda f: rng.randrange(reject_mod) != 0)
        )
        sim.run(600 + n * 120)
        assert [f.index for f in rx.got] == list(range(n))

    @given(
        n=st.integers(min_value=1, max_value=30),
        window=st.integers(min_value=3, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_window_size_is_safe(self, n, window):
        """Undersized windows cost throughput, never correctness."""
        sim = Simulator()
        up = sim.flit_channel("up")
        down = sim.flit_channel("down")
        sim.add(Link("l", up, down, LinkConfig(stages=2), seed=1))
        tx = sim.add(FlitSource("tx", up, stream(n), window=window))
        rx = sim.add(FlitSink("rx", down))
        sim.run(200 + n * 60)
        assert [f.index for f in rx.got] == list(range(n))
        assert tx.sender.idle
