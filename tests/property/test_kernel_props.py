"""Property-based tests for scheduler-mode equivalence.

The three kernels (interpreted, fast, compiled) and the checkpoint
layer promise the same thing from different angles: one cycle-accurate
machine, many execution strategies.  On any small mesh, under any
uniform random workload -- light or contended, with or without link
errors -- all three kernels must produce byte-identical statistics, and
snapshotting mid-run under one kernel then restoring into a simulator
running *another* kernel must land on the very same digest.  Contended
rates are load-bearing here: arbitration, NACK recovery and wormhole
blocking only execute under pressure, and a compiled-kernel arbitration
bug once survived every light-load test in the suite.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import LinkConfig
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import UniformRandomTraffic

KERNELS = ("interpreted", "fast", "compiled")


@st.composite
def scenario(draw):
    rows = draw(st.integers(min_value=1, max_value=2))
    cols = draw(st.integers(min_value=2, max_value=3))
    n_cpus = draw(st.integers(min_value=1, max_value=3))
    n_mems = draw(st.integers(min_value=1, max_value=2))
    rate = draw(st.sampled_from([0.02, 0.1, 0.4]))
    error_rate = draw(st.sampled_from([0.0, 0.0, 0.02]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    cycles = draw(st.integers(min_value=200, max_value=400))
    snap_at = draw(st.integers(min_value=50, max_value=cycles - 50))
    src = draw(st.sampled_from(KERNELS))
    dst = draw(st.sampled_from(KERNELS))
    return (rows, cols, n_cpus, n_mems, rate, error_rate, seed, cycles,
            snap_at, src, dst)


def _build(params, kernel):
    rows, cols, n_cpus, n_mems, rate, error_rate, seed, *_ = params
    topo = mesh(rows, cols)
    cpus, mems = attach_round_robin(topo, n_cpus, n_mems)
    noc = Noc(topo, NocBuildConfig(
        link=LinkConfig(error_rate=error_rate), kernel=kernel,
    ))
    noc.populate(
        {
            c: UniformRandomTraffic(mems, rate, seed=seed + 31 * i)
            for i, c in enumerate(cpus)
        }
    )
    return noc


@settings(max_examples=12, deadline=None)
@given(scenario())
def test_kernels_and_checkpoints_agree(params):
    cycles, snap_at, src, dst = params[7], params[8], params[9], params[10]

    digests = {}
    for kernel in KERNELS:
        noc = _build(params, kernel)
        noc.run(cycles)
        digests[kernel] = noc.stats_digest()
    assert len(set(digests.values())) == 1, digests

    # Mid-run snapshot under ``src``, restored into a ``dst``-kernel
    # simulator, must converge on the same digest.
    donor = _build(params, src)
    donor.run(snap_at)
    snap = donor.sim.snapshot()
    assert snap.kernel == src

    restored = _build(params, dst)
    restored.sim.restore(snap)
    assert restored.sim.kernel == dst
    restored.run(cycles - snap_at)
    assert restored.stats_digest() == digests["interpreted"]
