"""Property-based tests for the CRC codec."""

from hypothesis import given, settings, strategies as st

from repro.core.crc import CRC16_CCITT, CRC8_ATM, CrcCodec


class TestCrcProperties:
    @given(
        data_bits=st.sampled_from([8, 16, 32, 64]),
        value=st.integers(min_value=0),
    )
    def test_encode_check_roundtrip(self, data_bits, value):
        codec = CrcCodec(data_bits)
        value %= 1 << data_bits
        assert codec.check(codec.encode(value))

    @given(
        data_bits=st.sampled_from([8, 16, 32]),
        value=st.integers(min_value=0),
        bit=st.integers(min_value=0),
    )
    def test_all_single_bit_errors_detected(self, data_bits, value, bit):
        codec = CrcCodec(data_bits, width=8, poly=CRC8_ATM)
        value %= 1 << data_bits
        bit %= data_bits + 8
        assert codec.detects(value, [bit])

    @given(
        value=st.integers(min_value=0),
        b1=st.integers(min_value=0),
        b2=st.integers(min_value=0),
    )
    @settings(max_examples=150)
    def test_all_double_bit_errors_detected_crc16(self, value, b1, b2):
        """CRC-CCITT detects every double-bit error within these spans."""
        codec = CrcCodec(32, width=16, poly=CRC16_CCITT)
        value %= 1 << 32
        span = 32 + 16
        b1 %= span
        b2 %= span
        if b1 == b2:
            return  # flips cancel: no error to detect
        assert codec.detects(value, [b1, b2])

    @given(
        data_bits=st.sampled_from([16, 32]),
        value=st.integers(min_value=0),
    )
    def test_crc_is_deterministic(self, data_bits, value):
        codec = CrcCodec(data_bits)
        value %= 1 << data_bits
        assert codec.compute(value) == codec.compute(value)

    @given(value=st.integers(min_value=0), flips=st.sets(st.integers(0, 39), max_size=6))
    @settings(max_examples=150)
    def test_detects_is_consistent_with_check(self, value, flips):
        codec = CrcCodec(32, width=8)
        value %= 1 << 32
        codeword = codec.encode(value)
        for b in flips:
            codeword ^= 1 << b
        assert codec.detects(value, list(flips)) == (not codec.check(codeword))
