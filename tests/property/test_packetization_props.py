"""Property-based tests: packetization is a lossless bit-level codec."""

from hypothesis import given, settings, strategies as st

from repro.core.config import NocParameters
from repro.core.packet import (
    ADDR_OFFSET_BITS,
    Packet,
    PacketHeader,
    PacketKind,
)
from repro.core.packetizer import (
    Depacketizer,
    Packetizer,
    decompose_bits,
    recompose_bits,
)

params_strategy = st.builds(
    NocParameters,
    flit_width=st.sampled_from([8, 16, 24, 32, 48, 64, 128]),
    data_width=st.sampled_from([16, 32, 64]),
    max_hops=st.integers(min_value=2, max_value=10),
    port_bits=st.integers(min_value=2, max_value=4),
)


@st.composite
def header_strategy(draw, params):
    hops = draw(st.integers(min_value=0, max_value=params.max_hops))
    route = tuple(
        draw(st.integers(min_value=0, max_value=params.max_radix - 1))
        for _ in range(hops)
    )
    kind = draw(st.sampled_from(list(PacketKind)))
    burst = draw(st.integers(min_value=0 if kind.payload_beats(1) == 0 else 1,
                             max_value=min(8, params.max_burst)))
    if kind.payload_beats(burst) and burst == 0:
        burst = 1
    return PacketHeader(
        route=route,
        kind=kind,
        src_id=draw(st.integers(min_value=0, max_value=params.max_nodes - 1)),
        burst_len=burst,
        addr=draw(st.integers(min_value=0, max_value=(1 << ADDR_OFFSET_BITS) - 1)),
        thread_id=draw(st.integers(min_value=0, max_value=3)),
    )


@st.composite
def packet_strategy(draw):
    params = draw(params_strategy)
    header = draw(header_strategy(params))
    beats = header.kind.payload_beats(header.burst_len)
    payload = tuple(
        draw(st.integers(min_value=0, max_value=(1 << params.data_width) - 1))
        for _ in range(beats)
    )
    return params, Packet(header=header, payload=payload)


class TestBitChunkingProps:
    @given(
        value=st.integers(min_value=0),
        bits=st.integers(min_value=1, max_value=512),
        width=st.integers(min_value=1, max_value=128),
    )
    def test_decompose_recompose_roundtrip(self, value, bits, width):
        value %= 1 << bits
        chunks = decompose_bits(value, bits, width)
        assert recompose_bits(chunks, bits, width) == value
        assert len(chunks) == -(-bits // width)
        assert all(0 <= c < (1 << width) for c in chunks)


class TestHeaderProps:
    @given(data=st.data())
    def test_pack_unpack_roundtrip(self, data):
        params = data.draw(params_strategy)
        header = data.draw(header_strategy(params))
        packed = header.pack(params)
        assert 0 <= packed < (1 << PacketHeader.bit_width(params))
        out = PacketHeader.unpack(packed, params, route_len=len(header.route))
        assert out == header


class TestPacketizationProps:
    @given(packet_strategy())
    @settings(max_examples=150, deadline=None)
    def test_full_roundtrip(self, params_and_packet):
        params, packet = params_and_packet
        flits = Packetizer(params).decompose(packet)
        assert len(flits) == packet.flit_count(params)
        # Deliver with the route fully consumed, as at the far NI.
        dp = Depacketizer(params)
        out = None
        for f in flits:
            if f.is_head:
                f = f.with_route_offset(len(packet.header.route))
            result = dp.feed(f)
            if result is not None:
                out = result
        assert out is not None
        assert out.header == packet.header
        assert out.payload == packet.payload

    @given(packet_strategy())
    @settings(max_examples=60, deadline=None)
    def test_flit_framing_invariants(self, params_and_packet):
        params, packet = params_and_packet
        flits = Packetizer(params).decompose(packet)
        assert flits[0].is_head
        assert flits[-1].is_tail
        assert sum(1 for f in flits if f.is_head) == 1
        assert sum(1 for f in flits if f.is_tail) == 1
        assert [f.index for f in flits] == list(range(len(flits)))
        assert all(f.width == params.flit_width for f in flits)
        assert all(f.packet_id == packet.packet_id for f in flits)
