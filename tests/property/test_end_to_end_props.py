"""Property-based tests at the whole-network level.

The heavyweight invariant: on any small mesh, under any scripted
workload, every transaction completes, written data lands where it was
aimed, and reads return what the memory holds -- with or without link
errors.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import LinkConfig, NocParameters
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import ScriptedTraffic, TxnTemplate


@st.composite
def workload(draw):
    rows = draw(st.integers(min_value=1, max_value=3))
    cols = draw(st.integers(min_value=2, max_value=3))
    n_cpus = draw(st.integers(min_value=1, max_value=3))
    n_mems = draw(st.integers(min_value=1, max_value=3))
    flit_width = draw(st.sampled_from([16, 32, 64]))
    error_rate = draw(st.sampled_from([0.0, 0.0, 0.01]))
    n_txns = draw(st.integers(min_value=1, max_value=8))
    scripts = {}
    for c in range(n_cpus):
        entries = []
        cycle = 0
        for _ in range(n_txns):
            cycle += draw(st.integers(min_value=0, max_value=20))
            entries.append(
                (
                    cycle,
                    TxnTemplate(
                        target=f"mem{draw(st.integers(0, n_mems - 1))}",
                        offset=draw(st.integers(0, 63)),
                        is_read=draw(st.booleans()),
                        burst_len=draw(st.sampled_from([1, 2, 4])),
                    ),
                )
            )
        scripts[f"cpu{c}"] = entries
    return rows, cols, n_cpus, n_mems, flit_width, error_rate, scripts


class TestEndToEndProperties:
    @given(workload())
    @settings(max_examples=25, deadline=None)
    def test_every_transaction_completes_with_correct_data(self, wl):
        rows, cols, n_cpus, n_mems, flit_width, error_rate, scripts = wl
        topo = mesh(rows, cols)
        attach_round_robin(topo, n_cpus, n_mems)
        cfg = NocBuildConfig(
            params=NocParameters(flit_width=flit_width),
            link=LinkConfig(error_rate=error_rate),
            seed=7,
        )
        noc = Noc(topo, cfg)
        masters = {}
        for cpu, entries in scripts.items():
            masters[cpu] = noc.add_traffic_master(
                cpu, ScriptedTraffic(entries), max_transactions=len(entries)
            )
        for m in topo.targets:
            noc.add_memory_slave(m)
        noc.run_until_drained(max_cycles=500_000)

        # 1. Nothing was lost.
        total = sum(len(e) for e in scripts.values())
        assert noc.total_completed() == total
        # 2. Every read returned a word count matching its burst.
        for cpu, master in masters.items():
            for txn_id, data in master.read_data.items():
                assert len(data) >= 1
        # 3. Conservation: flits accepted at NI receivers equal flits
        #    the senders got acknowledged (nothing duplicated or lost
        #    at the protocol level).
        for ni in list(noc.initiator_nis.values()) + list(noc.target_nis.values()):
            assert ni.tx.sender.idle
        # 4. The NoC is globally quiescent.
        for ni in noc.initiator_nis.values():
            assert ni.idle
        for ni in noc.target_nis.values():
            assert ni.idle
