"""Property-based tests for the switch: order, integrity, conservation."""

from hypothesis import given, settings, strategies as st

from repro.core.config import ArbitrationPolicy, LinkConfig, SwitchConfig
from repro.core.link import Link
from repro.core.switch import Switch
from repro.sim.kernel import Simulator
from tests.harness import FlitSink, FlitSource, packet_flits


@st.composite
def switch_workload(draw):
    n_in = draw(st.integers(min_value=1, max_value=3))
    n_out = draw(st.integers(min_value=1, max_value=3))
    buffer_depth = draw(st.sampled_from([2, 4, 6]))
    arbitration = draw(st.sampled_from(list(ArbitrationPolicy)))
    error_rate = draw(st.sampled_from([0.0, 0.0, 0.05]))
    # Packets per input: (length, destination output).
    packets = []
    for i in range(n_in):
        packets.append([
            (
                draw(st.integers(min_value=1, max_value=5)),
                draw(st.integers(min_value=0, max_value=n_out - 1)),
            )
            for _ in range(draw(st.integers(min_value=0, max_value=4)))
        ])
    return n_in, n_out, buffer_depth, arbitration, error_rate, packets


class TestSwitchProperties:
    @given(switch_workload())
    @settings(max_examples=30, deadline=None)
    def test_integrity_order_and_conservation(self, wl):
        n_in, n_out, buffer_depth, arbitration, error_rate, packets = wl
        sim = Simulator()
        cfg = SwitchConfig(
            n_inputs=n_in, n_outputs=n_out,
            buffer_depth=buffer_depth, arbitration=arbitration,
        )
        lcfg = LinkConfig(error_rate=error_rate)
        sources, sinks, sw_in, sw_out = [], [], [], []
        for i in range(n_in):
            a = sim.flit_channel(f"src{i}")
            b = sim.flit_channel(f"in{i}")
            sim.add(Link(f"lin{i}", a, b, lcfg, seed=i))
            sources.append(sim.add(FlitSource(f"tx{i}", a)))
            sw_in.append(b)
        for o in range(n_out):
            a = sim.flit_channel(f"out{o}")
            b = sim.flit_channel(f"snk{o}")
            sim.add(Link(f"lout{o}", a, b, lcfg, seed=100 + o))
            sinks.append(sim.add(FlitSink(f"rx{o}", b)))
            sw_out.append(a)
        sim.add(Switch("sw", cfg, sw_in, sw_out, out_windows=9))

        expected = {o: [] for o in range(n_out)}
        pid = 1
        total_flits = 0
        for i, plist in enumerate(packets):
            for length, dest in plist:
                sources[i].submit(
                    packet_flits(length, route=(dest,), packet_id=pid)
                )
                expected[dest].append((pid, length))
                total_flits += length
                pid += 1

        budget = 500 + total_flits * 150
        sim.run_until(
            lambda: sum(len(s.got) for s in sinks) >= total_flits
            or sim.cycle > budget,
            budget + 10,
        )

        got_total = 0
        for o, sink in enumerate(sinks):
            got_total += len(sink.got)
            # Per-packet integrity: contiguous (wormhole), index order.
            by_packet = {}
            order_seen = []
            for f in sink.got:
                assert not f.corrupted
                by_packet.setdefault(f.packet_id, []).append(f.index)
                if f.is_head:
                    order_seen.append(f.packet_id)
            for pid_, length in expected[o]:
                assert by_packet.get(pid_) == list(range(length)), (
                    f"packet {pid_} arrived mangled at output {o}"
                )
            # Per-input order: packets from one source keep their order.
            for i in range(n_in):
                mine = [p for p in order_seen
                        if any(p == e[0] for e in expected[o])
                        and _origin(packets, p) == i]
                assert mine == sorted(mine)
        # Conservation: exactly-once delivery of every flit.
        assert got_total == total_flits


def _origin(packets, packet_id):
    """Which input a packet id was submitted from (ids issued in order)."""
    pid = 1
    for i, plist in enumerate(packets):
        for _ in plist:
            if pid == packet_id:
                return i
            pid += 1
    return -1
