"""Property-based tests on data structures: FIFOs, arbiters, routes."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.arbiter import RoundRobinArbiter
from repro.core.buffers import BoundedFifo
from repro.core.routing import route_between
from repro.network.topology import attach_round_robin, mesh


class FifoMachine(RuleBasedStateMachine):
    """The bounded FIFO behaves exactly like a depth-capped list."""

    def __init__(self):
        super().__init__()
        self.depth = 4
        self.fifo = BoundedFifo(self.depth)
        self.model = []
        self.counter = 0

    @rule()
    @precondition(lambda self: len(self.model) < self.depth)
    def push(self):
        self.counter += 1
        self.fifo.push(self.counter)
        self.model.append(self.counter)

    @rule()
    @precondition(lambda self: self.model)
    def pop(self):
        assert self.fifo.pop() == self.model.pop(0)

    @rule()
    def peek(self):
        expected = self.model[0] if self.model else None
        assert self.fifo.peek() == expected

    @invariant()
    def sizes_agree(self):
        assert len(self.fifo) == len(self.model)
        assert self.fifo.is_full == (len(self.model) == self.depth)
        assert self.fifo.is_empty == (not self.model)


TestFifoMachine = FifoMachine.TestCase


class TestRoundRobinProps:
    @given(
        n=st.integers(min_value=2, max_value=8),
        rounds=st.integers(min_value=1, max_value=20),
    )
    def test_full_contention_is_perfectly_fair(self, n, rounds):
        arb = RoundRobinArbiter(n)
        counts = [0] * n
        for _ in range(rounds * n):
            counts[arb.grant([True] * n)] += 1
        assert counts == [rounds] * n

    @given(
        n=st.integers(min_value=2, max_value=8),
        pattern=st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=60),
    )
    def test_grant_is_always_a_requester(self, n, pattern):
        arb = RoundRobinArbiter(n)
        for bits in pattern:
            reqs = [(bits >> i) & 1 == 1 for i in range(n)]
            g = arb.grant(reqs)
            if any(reqs):
                assert g is not None and reqs[g]
            else:
                assert g is None


class TestRouteProps:
    @given(
        rows=st.integers(min_value=1, max_value=4),
        cols=st.integers(min_value=1, max_value=4),
        n_cpus=st.integers(min_value=1, max_value=4),
        n_mems=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_mesh_routes_always_valid(self, rows, cols, n_cpus, n_mems):
        topo = mesh(rows, cols)
        cpus, mems = attach_round_robin(topo, n_cpus, n_mems)
        for c in cpus:
            for m in mems:
                route = route_between(topo, c, m, topo.default_policy)
                # Walk the route and confirm it lands on the target NI.
                current = topo.switch_of(c)
                for hop in route[:-1]:
                    current = topo.ports_of(current)[hop]
                    assert current in topo.switches
                final = topo.ports_of(current)[route[-1]]
                assert final == m
                # Route length bounded by fabric diameter + ejection.
                assert route.hops <= rows * cols

    @given(
        rows=st.integers(min_value=2, max_value=4),
        cols=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=20, deadline=None)
    def test_dor_and_shortest_agree_on_hop_count(self, rows, cols):
        topo = mesh(rows, cols)
        cpus, mems = attach_round_robin(topo, 2, 2)
        for c in cpus:
            for m in mems:
                dor = route_between(topo, c, m, "dor")
                short = route_between(topo, c, m, "shortest")
                assert dor.hops == short.hops  # DOR is minimal on meshes
