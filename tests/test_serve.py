"""QueryEngine and the HTTP front end of the DSE service."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.flow.dse import explore_design_space
from repro.flow.taskgraph import demo_multimedia_soc
from repro.network.topology import mesh
from repro.serve import (
    CircuitBreaker,
    FarmUnavailable,
    QueryEngine,
    QueryError,
    QuerySpec,
    core_graph_from_name,
    parse_query,
    topology_from_name,
)
from repro.serve.http import QueryServer
from repro.store import ResultStore
from repro.telemetry.registry import MetricsRegistry

# Small enough to evaluate in milliseconds, deterministic.
FAST = dict(
    topologies=("mesh-2x2",),
    flit_widths=(16,),
    buffer_depths=(4,),
    anneal_iterations=50,
)


class TestNames:
    def test_grid_and_count_families(self):
        assert topology_from_name("mesh-3x2").name == "mesh3x2"
        assert topology_from_name("torus-3x3").name == "torus3x3"
        assert topology_from_name("ring-5").name == "ring5"
        assert topology_from_name("hypercube-3").name == "hcube3"

    @pytest.mark.parametrize(
        "bad", ["mesh", "mesh-", "mesh-ax2", "blob-4", "ring-x", "", 7]
    )
    def test_bad_topology_names_raise(self, bad):
        with pytest.raises(QueryError):
            topology_from_name(bad)

    def test_core_graphs(self):
        assert core_graph_from_name("multimedia").cores
        with pytest.raises(QueryError, match="telecom"):
            core_graph_from_name("dvb")

    def test_same_name_same_cache_token(self):
        a = topology_from_name("mesh-2x2")
        b = topology_from_name("mesh-2x2")
        assert a.cache_token() == b.cache_token()


class TestParseQuery:
    def test_defaults(self):
        spec = parse_query({})
        assert spec == QuerySpec()

    def test_scalars_promote_to_tuples(self):
        spec = parse_query(
            {"topologies": "mesh-2x2", "flit_widths": 32, "buffer_depths": [4]}
        )
        assert spec.topologies == ("mesh-2x2",)
        assert spec.flit_widths == (32,)

    def test_unknown_fields_rejected_by_name(self):
        with pytest.raises(QueryError, match="min_freq"):
            parse_query({"min_freq": 800})

    def test_non_object_rejected(self):
        with pytest.raises(QueryError, match="JSON object"):
            parse_query([1, 2])

    @pytest.mark.parametrize(
        "doc",
        [
            {"objective": "speed"},
            {"core_graph": "nope"},
            {"topologies": []},
            {"topologies": ["blob-2"]},
            {"flit_widths": []},
        ],
    )
    def test_invalid_specs_rejected(self, doc):
        with pytest.raises(QueryError):
            parse_query(doc)

    def test_constraint_filter(self):
        spec = parse_query({"min_freq_mhz": 800, "max_area_mm2": 1.0})
        p = _point(freq_mhz=900.0, area_mm2=0.5)
        assert spec.meets_constraints(p)
        assert not spec.meets_constraints(_point(freq_mhz=700.0))
        assert not spec.meets_constraints(_point(area_mm2=2.0))
        assert not spec.meets_constraints(_point(feasible=False))


class TestQueryEngine:
    def test_keys_match_explore_design_space(self, tmp_path):
        """The service's whole correctness story: a sweep's records
        answer the equivalent query with zero recomputation."""
        store = ResultStore(tmp_path / "store")
        from repro.flow.runner import ExperimentRunner

        runner = ExperimentRunner(store=store)
        cg = demo_multimedia_soc()[2]
        serial = explore_design_space(
            cg, [mesh(2, 2)], flit_widths=(16,), buffer_depths=(4,),
            anneal_iterations=50, runner=runner,
        )
        engine = QueryEngine(store, workers=1)
        result = engine.query(QuerySpec(**FAST))
        assert result.served_from == "store" and result.store_misses == 0
        assert result.points == serial

    def test_miss_is_computed_then_hits(self, tmp_path):
        engine = QueryEngine(ResultStore(tmp_path / "store"), workers=1)
        spec = QuerySpec(seed=3, **FAST)
        with pytest.raises(QueryError, match="not in the store"):
            engine.query(spec, evaluate=False)
        first = engine.query(spec)
        assert first.served_from == "farm" and first.store_misses == 1
        second = engine.query(spec)
        assert second.served_from == "store" and second.store_hits == 1
        assert second.points == first.points

    def test_objective_and_constraints_pick_best(self, tmp_path):
        engine = QueryEngine(ResultStore(tmp_path / "store"), workers=1)
        spec = QuerySpec(
            topologies=("mesh-2x2",), flit_widths=(16, 64),
            buffer_depths=(4,), anneal_iterations=50, objective="latency",
        )
        result = engine.query(spec)
        assert result.best is not None
        assert result.best.latency_ns == min(
            p.latency_ns for p in result.points if p.feasible
        )
        # Impossible constraint: points exist, none qualify.
        strict = QuerySpec(
            topologies=("mesh-2x2",), flit_widths=(16, 64),
            buffer_depths=(4,), anneal_iterations=50, min_freq_mhz=1e9,
        )
        assert engine.query(strict).best is None

    def test_result_serializes_and_renders(self, tmp_path):
        engine = QueryEngine(ResultStore(tmp_path / "store"), workers=1)
        result = engine.query(QuerySpec(**FAST))
        doc = json.loads(json.dumps(result.as_dict()))
        assert doc["served_from"] == "farm"
        assert doc["best"]["topology_name"] == "mesh2x2"
        text = result.render()
        assert "best (area)" in text and "miss(es)" in text

    def test_metrics_mirrored(self, tmp_path):
        metrics = MetricsRegistry()
        store = ResultStore(tmp_path / "store", metrics=metrics)
        engine = QueryEngine(store, workers=1, metrics=metrics)
        engine.query(QuerySpec(**FAST))
        engine.query(QuerySpec(**FAST))
        prom = metrics.to_prometheus(prefix="repro")
        assert "repro_serve_queries 2" in prom
        assert "repro_serve_query_store_hits 1" in prom
        assert "repro_serve_farm_queries 1" in prom


@pytest.fixture()
def live_server(tmp_path):
    """The real asyncio server on a private loop thread, port 0."""
    metrics = MetricsRegistry()
    store = ResultStore(tmp_path / "store", metrics=metrics)
    engine = QueryEngine(store, workers=1, metrics=metrics)
    server = QueryServer(engine, port=0, max_inflight=1)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(10)
    yield server, f"http://{host}:{port}"
    asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(5)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as r:
            return r.status, json.loads(r.read().decode())
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read().decode())


def _post(url, doc):
    req = urllib.request.Request(
        url, data=json.dumps(doc).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as r:
            return r.status, json.loads(r.read().decode())
    except urllib.error.HTTPError as e:
        return e.code, json.loads(e.read().decode())


def _req(url, data=None, method=None, raw=None):
    """Like _get/_post but also returns the response headers."""
    body = raw if raw is not None else (
        json.dumps(data).encode() if data is not None else None
    )
    req = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {},
    )
    try:
        with urllib.request.urlopen(req, timeout=60) as r:
            return r.status, dict(r.headers), json.loads(r.read().decode())
    except urllib.error.HTTPError as e:
        return e.code, dict(e.headers), json.loads(e.read().decode())


#: The one JSON shape every HTTP error answers with.
ERROR_KEYS = {"error", "detail", "retryable"}


class TestHttp:
    def test_healthz(self, live_server):
        _, base = live_server
        status, doc = _get(base + "/healthz")
        assert status == 200 and doc["status"] == "ok"
        assert doc["records"] == 0 and doc["inflight"] == 0

    def test_index_lists_endpoints(self, live_server):
        _, base = live_server
        status, doc = _get(base + "/")
        assert status == 200 and "POST /query" in doc["endpoints"]

    def test_unknown_route_404(self, live_server):
        _, base = live_server
        status, doc = _get(base + "/nope")
        assert status == 404 and doc["error"] == "not_found"
        assert "no route" in doc["detail"]

    def test_bad_query_400(self, live_server):
        _, base = live_server
        status, doc = _post(base + "/query", {"objective": "speed"})
        assert status == 400 and doc["error"] == "bad_request"
        assert "objective" in doc["detail"]

    def test_miss_then_hit_round_trip(self, live_server):
        server, base = live_server
        q = dict(FAST, topologies=["mesh-2x2"], flit_widths=[16],
                 buffer_depths=[4], wait=True)
        status, doc = _post(base + "/query", q)
        assert status == 200 and doc["served_from"] == "farm"
        q.pop("wait")
        status, doc = _post(base + "/query", q)
        assert status == 200 and doc["served_from"] == "store"
        assert doc["store_misses"] == 0
        assert len(server.engine.store) == 1

    def test_async_job_streams_events(self, live_server):
        server, base = live_server
        q = dict(FAST, topologies=["mesh-2x2"], flit_widths=[16],
                 buffer_depths=[4], seed=5)
        status, doc = _post(base + "/query", q)
        assert status == 202 and doc["status"] == "running"
        job = doc["job"]
        deadline = 60
        import time

        while deadline > 0:
            status, jd = _get(base + f"/jobs/{job}")
            if jd["status"] != "running":
                break
            time.sleep(0.1)
            deadline -= 0.1
        assert jd["status"] == "done"
        assert jd["result"]["served_from"] == "farm"
        status, ev = _get(base + f"/jobs/{job}/events?since=0")
        kinds = [e["event"] for e in ev["events"]]
        assert kinds[0] == "run_start" and kinds[-1] == "run_end"
        assert "point_end" in kinds
        # Incremental tailing.
        status, tail = _get(base + f"/jobs/{job}/events?since={ev['next']}")
        assert tail["events"] == []

    def test_unknown_job_404(self, live_server):
        _, base = live_server
        status, doc = _get(base + "/jobs/job-9999")
        assert status == 404

    def test_admission_control_429(self, live_server):
        server, base = live_server
        server._gauge_inflight(+1)  # simulate a farm evaluation in flight
        try:
            q = dict(FAST, topologies=["mesh-2x2"], flit_widths=[16],
                     buffer_depths=[4], seed=9)
            status, headers, doc = _req(base + "/query", data=q)
            assert status == 429 and doc["error"] == "farm_full"
            assert "retry later" in doc["detail"]
            assert doc["retryable"] is True
            assert headers.get("Retry-After") == "1"
        finally:
            server._gauge_inflight(-1)

    def test_metrics_exposition(self, live_server):
        server, base = live_server
        _post(base + "/query", dict(FAST, wait=True))
        with urllib.request.urlopen(base + "/metrics", timeout=30) as r:
            assert r.status == 200
            assert "text/plain" in r.headers["Content-Type"]
            text = r.read().decode()
        assert "repro_serve_queries 1" in text
        assert "repro_store_puts" in text
        assert "repro_serve_inflight 0" in text


class TestCircuitBreaker:
    def _breaker(self, **kw):
        clock = {"now": 0.0}
        kw.setdefault("failures", 2)
        kw.setdefault("cooldown", 10.0)
        return CircuitBreaker(clock=lambda: clock["now"], **kw), clock

    def test_validation(self):
        with pytest.raises(ValueError, match="failures"):
            CircuitBreaker(failures=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=0)

    def test_full_state_machine(self):
        br, clock = self._breaker()
        assert br.state == "closed" and not br.blocking() and br.allow()
        br.record_failure()
        assert br.state == "closed"  # one short of the threshold
        br.record_failure()
        assert br.state == "open" and br.opens == 1
        assert br.blocking() and not br.allow()
        clock["now"] = 10.0  # cooldown elapsed
        assert not br.blocking()
        assert br.allow() and br.state == "half-open" and br.probes == 1
        # The single probe slot is consumed; everyone else is refused.
        assert br.blocking() and not br.allow()
        br.record_failure()  # failed probe: re-open for a full cooldown
        assert br.state == "open" and br.opens == 2
        clock["now"] = 20.0
        assert br.allow()
        br.record_success()
        assert br.state == "closed" and br.closes == 1
        assert not br.blocking() and br.allow()

    def test_success_resets_the_failure_streak(self):
        br, _ = self._breaker()
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == "closed"  # streak broken, not cumulative

    def test_transitions_emit_events(self):
        from repro.telemetry.events import (
            EventCollector, install_sink, remove_sink,
        )

        br, clock = self._breaker(failures=1)
        collector = install_sink(EventCollector())
        try:
            br.record_failure()
            clock["now"] = 10.0
            assert br.allow()
            br.record_success()
        finally:
            remove_sink(collector)
        kinds = [r["event"] for r in collector.records]
        assert kinds == ["circuit_open", "circuit_close"]
        assert collector.records[0]["failures"] == 1
        assert collector.records[0]["cooldown"] == 10.0
        assert collector.records[1]["probes"] == 1

    def test_gauge_mirrors_state(self):
        metrics = MetricsRegistry()
        br = CircuitBreaker(failures=1, metrics=metrics)
        assert "repro_serve_circuit_open 0" in metrics.to_prometheus("repro")
        br.record_failure()
        assert "repro_serve_circuit_open 1" in metrics.to_prometheus("repro")
        br.record_success()
        assert "repro_serve_circuit_open 0" in metrics.to_prometheus("repro")


class TestDegradedQueries:
    def _seeded_engine(self, tmp_path, **engine_kw):
        store = ResultStore(tmp_path / "store")
        engine = QueryEngine(store, workers=1, **engine_kw)
        engine.query(QuerySpec(**FAST))  # seed the 16-bit point
        return engine

    def _superset_spec(self):
        return QuerySpec(
            topologies=("mesh-2x2",), flit_widths=(16, 64),
            buffer_depths=(4,), anneal_iterations=50,
        )

    def test_open_circuit_serves_degraded_with_hints(self, tmp_path):
        metrics = MetricsRegistry()
        engine = self._seeded_engine(tmp_path, metrics=metrics)
        for _ in range(engine.breaker.failures):
            engine.breaker.record_failure()
        assert engine.breaker.state == "open"
        result = engine.query(self._superset_spec())
        assert result.degraded is True
        assert result.served_from == "store"
        assert result.store_misses == 1 and len(result.points) == 1
        [hint] = result.hints
        assert hint["missing"]["flit_width"] == 64
        assert hint["nearest"]["flit_width"] == 16
        assert hint["nearest"]["point"]["topology_name"] == "mesh2x2"
        doc = json.loads(json.dumps(result.as_dict()))
        assert doc["degraded"] is True and len(doc["hints"]) == 1
        assert "DEGRADED" in result.render()
        assert engine.degraded_queries == 1
        assert "repro_serve_degraded_queries 1" in metrics.to_prometheus("repro")

    def test_degrade_false_raises_farm_unavailable(self, tmp_path):
        engine = self._seeded_engine(tmp_path)
        for _ in range(engine.breaker.failures):
            engine.breaker.record_failure()
        with pytest.raises(FarmUnavailable, match="circuit is open"):
            engine.query(self._superset_spec(), degrade=False)

    def test_half_open_probe_recovers_the_farm(self, tmp_path):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failures=1, cooldown=5.0, clock=lambda: clock["now"]
        )
        store = ResultStore(tmp_path / "store")
        engine = QueryEngine(store, workers=1, breaker=breaker)
        engine.query(QuerySpec(**FAST))
        breaker.record_failure()
        assert breaker.state == "open"
        # Cooldown still running: degraded.
        degraded = engine.query(self._superset_spec())
        assert degraded.degraded is True
        # Cooldown over: the next query is the half-open probe, runs
        # the farm, and its success closes the circuit.
        clock["now"] = 6.0
        recovered = engine.query(self._superset_spec())
        assert recovered.degraded is False
        assert recovered.served_from == "farm"
        assert breaker.state == "closed" and breaker.closes == 1
        # Fully healthy again: a fresh miss goes straight to the farm.
        assert breaker.allow()

    def test_healthy_farm_path_untouched(self, tmp_path):
        engine = self._seeded_engine(tmp_path)
        result = engine.query(self._superset_spec())
        assert result.degraded is False and result.served_from == "farm"
        assert result.hints == []


class TestHttpErrorSchema:
    """Satellite: every HTTP error answers with one JSON shape."""

    def test_404_schema(self, live_server):
        _, base = live_server
        status, headers, doc = _req(base + "/nope")
        assert status == 404
        assert set(doc) == ERROR_KEYS
        assert doc["error"] == "not_found" and doc["retryable"] is False

    def test_405_schema_with_allow_header(self, live_server):
        _, base = live_server
        status, headers, doc = _req(
            base + "/healthz", raw=b"{}", method="POST"
        )
        assert status == 405
        assert set(doc) == ERROR_KEYS
        assert doc["error"] == "method_not_allowed"
        assert doc["retryable"] is False
        assert headers.get("Allow") == "GET"

    def test_bad_json_body_schema(self, live_server):
        _, base = live_server
        status, headers, doc = _req(base + "/query", raw=b"{not json")
        assert status == 400
        assert set(doc) == ERROR_KEYS
        assert doc["error"] == "bad_request"
        assert "bad JSON" in doc["detail"]

    def test_unknown_job_schema(self, live_server):
        _, base = live_server
        status, headers, doc = _req(base + "/jobs/job-9999")
        assert status == 404
        assert set(doc) == ERROR_KEYS
        assert doc["error"] == "not_found"

    def test_request_deadline_504(self, tmp_path):
        """A wedged handler answers 504 with the error schema and a
        Retry-After, instead of hanging the connection."""
        import time as _time

        store = ResultStore(tmp_path / "store")
        engine = QueryEngine(store, workers=1)
        engine.lookup = lambda spec: (_time.sleep(3), ([], []))[1]
        server = QueryServer(engine, port=0, request_timeout=0.4)
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever, daemon=True)
        thread.start()
        try:
            host, port = asyncio.run_coroutine_threadsafe(
                server.start(), loop
            ).result(10)
            status, headers, doc = _req(
                f"http://{host}:{port}/query", data=dict(FAST)
            )
            assert status == 504
            assert set(doc) == ERROR_KEYS
            assert doc["error"] == "deadline" and doc["retryable"] is True
            assert "0.4" in doc["detail"]
            assert headers.get("Retry-After") == "1"
        finally:
            asyncio.run_coroutine_threadsafe(server.close(), loop).result(10)
            loop.call_soon_threadsafe(loop.stop)
            thread.join(5)

    def test_request_timeout_validation(self, tmp_path):
        engine = QueryEngine(ResultStore(tmp_path / "store"), workers=1)
        with pytest.raises(ValueError, match="request_timeout"):
            QueryServer(engine, request_timeout=0)


class TestHttpDegraded:
    def test_open_circuit_gives_200_degraded_not_5xx(self, live_server):
        server, base = live_server
        q = dict(FAST, topologies=["mesh-2x2"], flit_widths=[16],
                 buffer_depths=[4], wait=True)
        status, doc = _post(base + "/query", q)
        assert status == 200  # seeded
        breaker = server.engine.breaker
        for _ in range(breaker.failures):
            breaker.record_failure()
        assert breaker.state == "open"
        try:
            superset = dict(FAST, topologies=["mesh-2x2"],
                            flit_widths=[16, 64], buffer_depths=[4])
            status, doc = _post(base + "/query", superset)
            assert status == 200
            assert doc["degraded"] is True
            assert doc["served_from"] == "store"
            assert len(doc["hints"]) == 1
            assert doc["hints"][0]["missing"]["flit_width"] == 64
            # healthz surfaces the breaker state.
            status, health = _get(base + "/healthz")
            assert health["circuit"] == "open"
        finally:
            breaker.record_success()
        status, health = _get(base + "/healthz")
        assert health["circuit"] == "closed"


def _point(**overrides):
    from repro.flow.dse import DesignPoint

    base = dict(
        topology_name="mesh2x2", flit_width=16, buffer_depth=4,
        latency_ns=20.0, area_mm2=0.6, power_mw=130.0,
        freq_mhz=1000.0, feasible=True,
    )
    base.update(overrides)
    return DesignPoint(**base)
