"""WorkStealingDispatcher: scheduling on top of the runner's session."""

import multiprocessing
import os
import signal
import time

import pytest

from repro.flow.runner import ExperimentRunner, PointFailure
from repro.serve import WorkStealingDispatcher
from repro.store import ResultStore
from repro.telemetry.events import EventCollector, install_sink, remove_sink


def _square(x):
    """Module-level so worker processes can unpickle it."""
    return x * x


def _boom(x):
    raise ValueError(f"point {x} exploded")


def _flaky(path):
    """Fails until its marker file exists; creates it on first failure."""
    if os.path.exists(path):
        return "recovered"
    open(path, "w").close()
    raise RuntimeError("first attempt fails")


def _hang(x):
    time.sleep(60)
    return x


def _die(x):
    os._exit(17)


class TestMapContract:
    def test_results_in_input_order(self):
        runner = ExperimentRunner(jobs=2)
        disp = WorkStealingDispatcher(runner, workers=3)
        assert disp.map(_square, list(range(10))) == [x * x for x in range(10)]
        assert disp.dispatched == 10

    def test_matches_serial_runner_exactly(self):
        serial = ExperimentRunner().map(_square, [3, 1, 4, 1, 5])
        disp = WorkStealingDispatcher(ExperimentRunner(), workers=2)
        assert disp.map(_square, [3, 1, 4, 1, 5]) == serial

    def test_single_point_single_worker(self):
        disp = WorkStealingDispatcher(ExperimentRunner(), workers=4)
        assert disp.map(_square, [7]) == [49]

    def test_empty_batch(self):
        disp = WorkStealingDispatcher(ExperimentRunner())
        assert disp.map(_square, []) == []
        assert disp.dispatched == 0

    def test_workers_default_and_validation(self):
        assert WorkStealingDispatcher(ExperimentRunner()).workers == 2
        assert WorkStealingDispatcher(ExperimentRunner(jobs=5)).workers == 5
        with pytest.raises(ValueError, match="workers"):
            WorkStealingDispatcher(ExperimentRunner(), workers=0)

    def test_reports_and_render(self):
        runner = ExperimentRunner()
        disp = WorkStealingDispatcher(runner, workers=2)
        disp.map(_square, [1, 2], label="wsd")
        assert [r.label for r in runner.reports] == ["wsd[0]", "wsd[1]"]
        report = disp.render_report()
        assert "steals=" in report and "dispatched=2" in report


class TestStoreIntegration:
    def test_second_sweep_is_all_hits_no_dispatch(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        disp = WorkStealingDispatcher(
            ExperimentRunner(store=store), workers=2
        )
        assert disp.map(_square, [2, 3, 4]) == [4, 9, 16]
        assert disp.dispatched == 3 and len(store) == 3

        runner2 = ExperimentRunner(store=ResultStore(tmp_path / "store"))
        disp2 = WorkStealingDispatcher(runner2, workers=2)
        assert disp2.map(_square, [2, 3, 4]) == [4, 9, 16]
        assert runner2.cache_hits == 3 and disp2.dispatched == 0


class TestFailureMachinery:
    def test_exception_propagates_with_original_type(self):
        disp = WorkStealingDispatcher(ExperimentRunner(), workers=2)
        with pytest.raises(ValueError, match="exploded"):
            disp.map(_boom, [1])

    def test_collect_keeps_going(self):
        runner = ExperimentRunner(on_failure="record")
        disp = WorkStealingDispatcher(runner, workers=2)
        out = disp.map(_boom, [1, 2])
        assert out == [None, None]
        assert len(runner.failures) == 2
        assert all(isinstance(f, PointFailure) for f in runner.failures)

    def test_retry_recovers_flaky_point(self, tmp_path):
        runner = ExperimentRunner(retries=1, backoff=0.01)
        disp = WorkStealingDispatcher(runner, workers=2)
        marker = str(tmp_path / "flaky.marker")
        assert disp.map(_flaky, [marker]) == ["recovered"]
        assert runner.retry_count == 1

    def test_timeout_kills_and_respawns_worker(self):
        runner = ExperimentRunner(on_failure="record", retries=1, backoff=0.01)
        disp = WorkStealingDispatcher(runner, workers=2)
        out = disp.map(_hang, [1], timeout=0.5)
        assert out == [None]
        # The first timeout kills the worker; the retry needs a revived
        # slot, so by the time the sweep ends at least one respawn ran.
        assert disp.worker_restarts >= 1
        assert runner.timeout_count == 2
        assert "wall-clock" in runner.failures[0].message

    def test_worker_crash_is_charged_to_its_point_only(self):
        runner = ExperimentRunner(on_failure="record", retries=1, backoff=0.01)
        disp = WorkStealingDispatcher(runner, workers=2)
        out = disp.map(_die, [1])
        assert out == [None]
        assert disp.worker_restarts >= 1 and runner.crash_count == 2
        assert "exitcode 17" in runner.failures[0].message
        assert disp.poisoned == 0  # streak 2 < default threshold 3

    def test_crash_does_not_poison_other_points(self):
        runner = ExperimentRunner(on_failure="record")
        disp = WorkStealingDispatcher(runner, workers=2)

        out = disp.map(_die_on_three, [1, 2, 3, 4, 5])
        assert out == [1, 4, None, 16, 25]
        assert len(runner.failures) == 1


class _StallFirstDispatch:
    """Minimal chaos hook: SIGSTOP the first dispatched worker."""

    def __init__(self):
        self.stalled_pid = None

    def attach_session(self, session):
        pass

    def tick(self):
        pass

    def on_store_put(self, store, record):
        pass

    def on_dispatch(self, worker, i, attempt, ordinal):
        if self.stalled_pid is None:
            self.stalled_pid = worker.proc.pid
            os.kill(self.stalled_pid, signal.SIGSTOP)


class TestSupervision:
    def test_knob_validation(self):
        runner = ExperimentRunner()
        with pytest.raises(ValueError, match="heartbeat"):
            WorkStealingDispatcher(runner, heartbeat=0.0)
        with pytest.raises(ValueError, match="liveness"):
            WorkStealingDispatcher(runner, heartbeat=1.0, liveness=0.5)
        with pytest.raises(ValueError, match="poison_threshold"):
            WorkStealingDispatcher(runner, poison_threshold=0)
        with pytest.raises(ValueError, match="restart_budget"):
            WorkStealingDispatcher(runner, restart_budget=-1)

    def test_stalled_worker_detected_killed_and_point_retried(self):
        """A SIGSTOPped worker stops heartbeating; the liveness deadline
        must reclaim it and re-attempt only the point it held."""
        runner = ExperimentRunner(retries=1, backoff=0.01)
        disp = WorkStealingDispatcher(
            runner, workers=2, heartbeat=0.05, liveness=0.5,
            chaos=_StallFirstDispatch(),
        )
        collector = install_sink(EventCollector())
        try:
            out = disp.map(_square, [5], label="stall")
        finally:
            remove_sink(collector)
        assert out == [25]
        assert disp.stalls == 1
        assert runner.stall_count == 1
        stall_events = [
            r for r in collector.records if r["event"] == "worker_stall"
        ]
        assert len(stall_events) == 1
        assert stall_events[0]["label"] == "stall[0]"
        assert stall_events[0]["silent_for"] >= 0.5
        assert "slot" in stall_events[0]

    def test_heartbeats_keep_slow_point_alive(self):
        """A healthy-but-slow point must never trip the liveness check:
        heartbeats arrive every 0.05s while it sleeps past the 0.4s
        deadline."""
        runner = ExperimentRunner()
        disp = WorkStealingDispatcher(
            runner, workers=1, heartbeat=0.05, liveness=0.4
        )
        assert disp.map(_sleep_then_square, [3]) == [9]
        assert disp.stalls == 0

    def test_poison_point_quarantined_after_consecutive_kills(self):
        runner = ExperimentRunner(
            on_failure="record", retries=5, backoff=0.01
        )
        disp = WorkStealingDispatcher(
            runner, workers=2, poison_threshold=2
        )
        collector = install_sink(EventCollector())
        try:
            out = disp.map(_die, [1], label="pill")
        finally:
            remove_sink(collector)
        assert out == [None]
        assert disp.poisoned == 1
        assert runner.failures[0].kind == "poisoned"
        assert "quarantined" in runner.failures[0].message
        poisoned_events = [
            r for r in collector.records if r["event"] == "poisoned"
        ]
        assert len(poisoned_events) == 1
        assert poisoned_events[0]["worker_kills"] == 2

    def test_clean_error_breaks_the_kill_streak(self):
        """Ordinary exceptions are not poison: the worker survives and
        reports, so the streak resets and retries run their course."""
        runner = ExperimentRunner(
            on_failure="record", retries=3, backoff=0.01
        )
        disp = WorkStealingDispatcher(runner, workers=2, poison_threshold=2)
        out = disp.map(_boom, [1])
        assert out == [None]
        assert disp.poisoned == 0
        assert runner.failures[0].kind == "error"

    def test_restart_budget_exhaustion_fails_queued_points_explicitly(self):
        runner = ExperimentRunner(on_failure="record")
        disp = WorkStealingDispatcher(
            runner, workers=2, restart_budget=0
        )
        out = disp.map(_die, [1, 2, 3, 4])
        assert out == [None] * 4
        assert disp.worker_restarts == 0
        assert len(runner.failures) == 4
        budget_failures = [
            f for f in runner.failures if "restart budget" in f.message
        ]
        assert len(budget_failures) == 2  # the two never-dispatched points

    def test_no_orphan_workers_after_raising_sweep(self):
        """Satellite: the deferred first-failure re-raise (or a ^C) must
        tear down every worker process on its way out."""
        before = {c.pid for c in multiprocessing.active_children()}
        disp = WorkStealingDispatcher(ExperimentRunner(), workers=3)
        with pytest.raises(ValueError, match="exploded"):
            disp.map(_boom, [1, 2, 3, 4, 5, 6])
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = [
                c for c in multiprocessing.active_children()
                if c.pid not in before and c.is_alive()
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert leaked == []


class TestStealing:
    def test_steals_counted_and_emitted(self):
        """One straggler shard forces the drained workers to steal."""
        runner = ExperimentRunner(on_failure="record")
        disp = WorkStealingDispatcher(runner, workers=2)
        collector = install_sink(EventCollector())
        try:
            # Even indices (worker 0's shard) are slow; worker 1
            # drains its own shard and must steal from worker 0.
            out = disp.map(_slow_even, list(range(8)))
        finally:
            remove_sink(collector)
        assert out == [x * x for x in range(8)]
        assert disp.steals >= 1
        steal_events = [
            r for r in collector.records if r["event"] == "steal"
        ]
        assert len(steal_events) == disp.steals
        ev = steal_events[0]
        assert {"label", "key", "thief", "victim"} <= set(ev)
        assert ev["thief"] != ev["victim"]

    def test_all_points_complete_under_stealing(self):
        runner = ExperimentRunner()
        disp = WorkStealingDispatcher(runner, workers=4)
        assert disp.map(_slow_even, list(range(12))) == [
            x * x for x in range(12)
        ]


def _die_on_three(x):
    if x == 3:
        os._exit(21)
    return x * x


def _slow_even(x):
    if x % 2 == 0:
        time.sleep(0.2)
    return x * x


def _sleep_then_square(x):
    time.sleep(0.8)
    return x * x
