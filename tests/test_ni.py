"""Unit tests for the network interfaces.

An initiator NI and a target NI are wired back to back through links
(no switch): routes are empty port sequences, which is exactly what the
compiler generates when two NIs share a switch-free point-to-point
connection.  Cores are the behavioural OCP master/slave models.
"""

import pytest

from repro.core.config import LinkConfig, NiConfig, NocParameters
from repro.core.link import Link
from repro.core.ni import InitiatorNI, NiProtocolError, TargetNI
from repro.core.ocp import OcpMasterPort, OcpSlavePort
from repro.core.routing import AddressMap, Route, RoutingTable
from repro.network.cores import OcpMemorySlave, OcpTrafficMaster
from repro.network.traffic import ScriptedTraffic, TxnTemplate
from repro.sim.kernel import Simulator


def ni_pair_rig(params=None, wait_states=1, interrupt_schedule=None, script=()):
    params = params or NocParameters(flit_width=32)
    sim = Simulator()
    ni_cfg = NiConfig(params=params)
    amap = AddressMap(["mem"])

    # Channels: initiator tx -> link -> target rx ; target tx -> link -> initiator rx
    i_tx = sim.flit_channel("i.tx")
    t_rx = sim.flit_channel("t.rx")
    sim.add(Link("l.req", i_tx, t_rx, LinkConfig(), seed=1))
    t_tx = sim.flit_channel("t.tx")
    i_rx = sim.flit_channel("i.rx")
    sim.add(Link("l.resp", t_tx, i_rx, LinkConfig(), seed=2))

    m_port = OcpMasterPort(sim, "cpu.ocp")
    s_port = OcpSlavePort(sim, "mem.ocp")

    ini = sim.add(
        InitiatorNI(
            "cpu.ni",
            node_id=0,
            config=ni_cfg,
            ocp=m_port,
            req_channel=i_tx,
            resp_channel=i_rx,
            routing=RoutingTable(address_map=amap, forward={"mem": (1, Route(()))}),
        )
    )
    targ = sim.add(
        TargetNI(
            "mem.ni",
            node_id=1,
            config=ni_cfg,
            ocp=s_port,
            req_channel=t_rx,
            resp_channel=t_tx,
            routing=RoutingTable(reverse={0: Route(())}),
            interrupt_target=0,
        )
    )
    master = sim.add(
        OcpTrafficMaster(
            "cpu",
            m_port,
            ScriptedTraffic(list(script)),
            amap,
            max_outstanding=4,
            max_transactions=len(script) or None,
        )
    )
    slave = sim.add(
        OcpMemorySlave(
            "mem", s_port, wait_states=wait_states, interrupt_schedule=interrupt_schedule
        )
    )
    return sim, master, slave, ini, targ


def wr(offset, burst=1, cycle=0):
    return (cycle, TxnTemplate(target="mem", offset=offset, is_read=False, burst_len=burst))


def rd(offset, burst=1, cycle=0):
    return (cycle, TxnTemplate(target="mem", offset=offset, is_read=True, burst_len=burst))


class TestSingleTransactions:
    def test_write_completes_and_lands_in_memory(self):
        sim, master, slave, ini, targ = ni_pair_rig(script=[wr(0x10)])
        sim.run(200)
        assert master.completed == 1
        assert 0x10 in slave.memory

    def test_read_returns_written_data(self):
        sim, master, slave, ini, targ = ni_pair_rig(script=[wr(0x20), rd(0x20, cycle=100)])
        sim.run(400)
        assert master.completed == 2
        read_txn = [t for t in master.read_data][0]
        stored = slave.memory[0x20]
        assert master.read_data[read_txn] == (stored,)

    def test_read_of_unwritten_memory_returns_zero(self):
        sim, master, slave, ini, targ = ni_pair_rig(script=[rd(0x44)])
        sim.run(200)
        assert list(master.read_data.values()) == [(0,)]

    def test_latency_recorded(self):
        sim, master, slave, ini, targ = ni_pair_rig(script=[rd(0)])
        sim.run(200)
        assert master.latency.count == 1
        assert master.latency.samples[0] > 5  # NIs + links + memory

    def test_ni_idle_after_drain(self):
        sim, master, slave, ini, targ = ni_pair_rig(script=[wr(1), rd(1)])
        sim.run(300)
        assert ini.idle and targ.idle


class TestBursts:
    @pytest.mark.parametrize("burst", [1, 4, 8])
    def test_burst_write_stores_every_beat(self, burst):
        sim, master, slave, ini, targ = ni_pair_rig(script=[wr(0x30, burst=burst)])
        sim.run(400)
        assert master.completed == 1
        assert all((0x30 + b) in slave.memory for b in range(burst))

    def test_burst_read_returns_all_beats_in_order(self):
        sim, master, slave, ini, targ = ni_pair_rig(
            script=[wr(0x40, burst=4), rd(0x40, burst=4, cycle=150)]
        )
        sim.run(600)
        data = list(master.read_data.values())[0]
        assert len(data) == 4
        assert data == tuple(slave.memory[0x40 + b] for b in range(4))

    def test_burst_flit_count_scales(self):
        sim, master, slave, ini, targ = ni_pair_rig(script=[wr(0, burst=8)])
        sim.run(400)
        # 8 beats of 32 bits + ~55-bit header in 32-bit flits -> 10 flits.
        assert ini.tx.sender.sent_flits >= 10


class TestPipelining:
    def test_multiple_outstanding_transactions(self):
        script = [rd(i, cycle=0) for i in range(6)]
        sim, master, slave, ini, targ = ni_pair_rig(script=script)
        sim.run(800)
        assert master.completed == 6

    def test_independent_request_response_channels(self):
        """Writes keep flowing while an earlier read's response returns."""
        script = [rd(0), wr(1), rd(2), wr(3)]
        sim, master, slave, ini, targ = ni_pair_rig(script=script)
        sim.run(600)
        assert master.completed == 4

    def test_thread_ids_preserved(self):
        script = [
            (0, TxnTemplate(target="mem", offset=0, is_read=True, thread_id=2)),
        ]
        sim, master, slave, ini, targ = ni_pair_rig(script=script)
        sim.run(200)
        assert master.completed == 1


class TestSideband:
    def test_interrupt_travels_to_initiator(self):
        sim, master, slave, ini, targ = ni_pair_rig(
            script=[], interrupt_schedule=[(10, 0x5)]
        )
        sim.run(100)
        assert len(master.interrupts) == 1
        assert master.interrupts[0].vector == 0x5
        assert master.interrupts[0].source_id == 1  # the target NI's id

    def test_interrupt_without_target_configured_dropped(self):
        sim, master, slave, ini, targ = ni_pair_rig(
            script=[], interrupt_schedule=[(10, 0x5)]
        )
        targ.interrupt_target = None
        sim.run(100)
        assert master.interrupts == []


class TestErrorPaths:
    def test_unknown_address_raises(self):
        # No scripted traffic: drive a rogue request straight at the NI.
        sim, master, slave, ini, targ = ni_pair_rig(script=[])
        from repro.core.ocp import BurstTransaction, OcpCmd

        bad = BurstTransaction(cmd=OcpCmd.READ, addr=0xFFFF_0000)
        master.port.drive_request(bad)
        with pytest.raises(KeyError, match="maps to no target"):
            sim.run(5)

    def test_unexpected_response_raises(self):
        from repro.core.packet import Packet, PacketHeader, PacketKind

        sim, master, slave, ini, targ = ni_pair_rig(script=[])
        ghost = Packet(
            header=PacketHeader(
                route=(), kind=PacketKind.READ_RESP, src_id=1, burst_len=1, addr=0
            ),
            payload=(0,),
        )
        with pytest.raises(NiProtocolError, match="nothing outstanding"):
            ini._handle_response_packet(ghost, cycle=0)

    def test_request_kind_enforced_at_target(self):
        from repro.core.packet import Packet, PacketHeader, PacketKind

        sim, master, slave, ini, targ = ni_pair_rig(script=[])
        ghost = Packet(
            header=PacketHeader(
                route=(), kind=PacketKind.WRITE_ACK, src_id=0, burst_len=1, addr=0
            ),
        )
        with pytest.raises(NiProtocolError, match="unexpected"):
            targ._handle_request_packet(ghost, cycle=0)


class TestBackEndFlowControl:
    def test_tx_respects_outstanding_capacity(self):
        params = NocParameters(flit_width=32)
        sim, master, slave, ini, targ = ni_pair_rig(
            params=params, script=[rd(i) for i in range(12)]
        )
        sim.run(1500)
        assert master.completed == 12

    def test_write_data_integrity_across_flit_widths(self):
        for width in (16, 64, 128):
            params = NocParameters(flit_width=width)
            sim, master, slave, ini, targ = ni_pair_rig(
                params=params, script=[wr(0x11, burst=3)]
            )
            sim.run(500)
            assert master.completed == 1, f"width {width}"
            assert len(slave.memory) == 3
