"""Unit tests for traffic patterns."""

import pytest

from repro.network.traffic import (
    HotspotTraffic,
    PermutationTraffic,
    RateTableTraffic,
    ScriptedTraffic,
    TxnTemplate,
    UniformRandomTraffic,
)

TARGETS = ["m0", "m1", "m2", "m3"]


def drain(pattern, cycles):
    out = []
    for c in range(cycles):
        t = pattern.next_transaction(c)
        if t is not None:
            out.append(t)
    return out


class TestUniformRandom:
    def test_rate_respected(self):
        p = UniformRandomTraffic(TARGETS, rate=0.25, seed=1)
        txns = drain(p, 8000)
        assert 1700 < len(txns) < 2300

    def test_targets_roughly_uniform(self):
        p = UniformRandomTraffic(TARGETS, rate=1.0, seed=2)
        txns = drain(p, 4000)
        counts = {t: 0 for t in TARGETS}
        for t in txns:
            counts[t.target] += 1
        assert all(800 < c < 1200 for c in counts.values())

    def test_read_fraction(self):
        p = UniformRandomTraffic(TARGETS, rate=1.0, read_fraction=0.8, seed=3)
        txns = drain(p, 2000)
        reads = sum(1 for t in txns if t.is_read)
        assert 0.72 < reads / len(txns) < 0.88

    def test_deterministic_per_seed_and_reset(self):
        p = UniformRandomTraffic(TARGETS, rate=0.5, seed=7)
        first = drain(p, 100)
        p.reset()
        assert drain(p, 100) == first

    def test_offsets_bounded(self):
        p = UniformRandomTraffic(TARGETS, rate=1.0, max_offset=16, seed=4)
        assert all(0 <= t.offset < 16 for t in drain(p, 500))

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformRandomTraffic([], rate=0.5)
        with pytest.raises(ValueError):
            UniformRandomTraffic(TARGETS, rate=1.5)
        with pytest.raises(ValueError):
            UniformRandomTraffic(TARGETS, rate=0.5, read_fraction=2.0)


class TestHotspot:
    def test_hotspot_gets_extra_share(self):
        p = HotspotTraffic(
            TARGETS, hotspot="m2", hot_fraction=0.6, rate=1.0, seed=5
        )
        txns = drain(p, 4000)
        hot = sum(1 for t in txns if t.target == "m2")
        assert hot / len(txns) > 0.55

    def test_hotspot_must_be_a_target(self):
        with pytest.raises(ValueError):
            HotspotTraffic(TARGETS, hotspot="zz", hot_fraction=0.5, rate=0.5)


class TestPermutation:
    def test_all_traffic_to_one_target(self):
        p = PermutationTraffic("m1", rate=1.0, seed=6)
        assert all(t.target == "m1" for t in drain(p, 200))


class TestScripted:
    def test_entries_wait_for_their_cycle(self):
        p = ScriptedTraffic([(5, TxnTemplate("m0")), (10, TxnTemplate("m1"))])
        assert p.next_transaction(0) is None
        assert p.next_transaction(5).target == "m0"
        assert p.next_transaction(6) is None
        assert p.next_transaction(12).target == "m1"
        assert p.exhausted

    def test_unsorted_script_rejected(self):
        with pytest.raises(ValueError):
            ScriptedTraffic([(5, TxnTemplate("m0")), (1, TxnTemplate("m1"))])

    def test_reset_rewinds(self):
        p = ScriptedTraffic([(0, TxnTemplate("m0"))])
        p.next_transaction(0)
        p.reset()
        assert not p.exhausted


class TestRateTable:
    def test_weights_respected(self):
        p = RateTableTraffic({"m0": 3.0, "m1": 1.0}, total_rate=1.0, seed=8)
        txns = drain(p, 4000)
        m0 = sum(1 for t in txns if t.target == "m0")
        assert 0.68 < m0 / len(txns) < 0.82

    def test_validation(self):
        with pytest.raises(ValueError):
            RateTableTraffic({}, total_rate=0.5)
        with pytest.raises(ValueError):
            RateTableTraffic({"m0": 0.0}, total_rate=0.5)
        with pytest.raises(ValueError):
            RateTableTraffic({"m0": -1.0, "m1": 2.0}, total_rate=0.5)
