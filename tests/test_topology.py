"""Unit tests for the topology library."""

import pytest

from repro.network.topology import (
    Topology,
    TopologyError,
    attach_round_robin,
    custom_topology,
    mesh,
    ring,
    spidergon,
    star,
    torus,
)


class TestConstruction:
    def test_connect_allocates_ports_in_order(self):
        t = Topology("t")
        t.add_switch("a")
        t.add_switch("b")
        t.add_switch("c")
        t.connect("a", "b")
        t.connect("a", "c")
        assert t.ports_of("a") == ["b", "c"]
        assert t.port_toward("a", "c") == 1
        assert t.port_toward("b", "a") == 0

    def test_attach_consumes_a_port(self):
        t = Topology("t")
        t.add_switch("s")
        t.add_initiator("cpu")
        t.attach("cpu", "s")
        assert t.radix_of("s") == 1
        assert t.switch_of("cpu") == "s"

    def test_duplicate_names_rejected(self):
        t = Topology("t")
        t.add_switch("x")
        with pytest.raises(TopologyError):
            t.add_switch("x")
        with pytest.raises(TopologyError):
            t.add_initiator("x")

    def test_self_loop_rejected(self):
        t = Topology("t")
        t.add_switch("a")
        with pytest.raises(TopologyError):
            t.connect("a", "a")

    def test_double_edge_rejected(self):
        t = Topology("t")
        t.add_switch("a")
        t.add_switch("b")
        t.connect("a", "b")
        with pytest.raises(TopologyError, match="already connected"):
            t.connect("a", "b")

    def test_attach_twice_rejected(self):
        t = Topology("t")
        t.add_switch("a")
        t.add_switch("b")
        t.add_target("m")
        t.attach("m", "a")
        with pytest.raises(TopologyError, match="already attached"):
            t.attach("m", "b")

    def test_connect_requires_switches(self):
        t = Topology("t")
        t.add_switch("a")
        t.add_initiator("cpu")
        with pytest.raises(TopologyError, match="not a switch"):
            t.connect("a", "cpu")

    def test_validate_catches_unattached_ni(self):
        t = Topology("t")
        t.add_switch("a")
        t.add_initiator("cpu")
        with pytest.raises(TopologyError, match="unattached"):
            t.validate()

    def test_validate_catches_disconnected_fabric(self):
        t = Topology("t")
        t.add_switch("a")
        t.add_switch("b")
        with pytest.raises(TopologyError, match="not connected"):
            t.validate()

    def test_port_toward_unknown_neighbor(self):
        t = Topology("t")
        t.add_switch("a")
        with pytest.raises(TopologyError, match="no port toward"):
            t.port_toward("a", "zzz")


class TestMesh:
    def test_shape(self):
        t = mesh(3, 4)
        assert len(t.switches) == 12
        assert t.graph.number_of_edges() == 3 * 3 + 4 * 2  # rows*(cols-1)+cols*(rows-1)

    def test_corner_and_center_degrees(self):
        t = mesh(3, 3)
        assert t.graph.degree["sw_0_0"] == 2
        assert t.graph.degree["sw_1_1"] == 4

    def test_coords_enable_dor(self):
        t = mesh(2, 2)
        assert t.default_policy == "dor"

    def test_dor_goes_x_first(self):
        t = mesh(3, 3)
        path = t.switch_path("sw_0_0", "sw_2_2", "dor")
        assert path == ["sw_0_0", "sw_1_0", "sw_2_0", "sw_2_1", "sw_2_2"]

    def test_invalid_dims(self):
        with pytest.raises(TopologyError):
            mesh(0, 3)


class TestOtherFactories:
    def test_torus_degree_uniform(self):
        t = torus(3, 3)
        assert all(t.graph.degree[s] == 4 for s in t.switches)
        assert t.default_policy == "shortest"

    def test_torus_min_size(self):
        with pytest.raises(TopologyError):
            torus(2, 4)

    def test_ring(self):
        t = ring(5)
        assert all(t.graph.degree[s] == 2 for s in t.switches)

    def test_ring_min_size(self):
        with pytest.raises(TopologyError):
            ring(2)

    def test_star(self):
        t = star(4)
        assert t.graph.degree["hub"] == 4
        assert all(t.graph.degree[f"leaf_{i}"] == 1 for i in range(4))

    def test_spidergon_cross_links(self):
        t = spidergon(6)
        assert all(t.graph.degree[s] == 3 for s in t.switches)

    def test_spidergon_odd_rejected(self):
        with pytest.raises(TopologyError):
            spidergon(5)

    def test_custom_topology(self):
        t = custom_topology("c", [("a", "b"), ("b", "c")])
        assert set(t.switches) == {"a", "b", "c"}
        assert t.graph.has_edge("a", "b")

    def test_attach_round_robin_spreads_cores(self):
        t = mesh(2, 2)
        cpus, mems = attach_round_robin(t, 4, 4)
        assert len(cpus) == 4 and len(mems) == 4
        # Every switch got exactly 2 NIs.
        assert all(t.radix_of(s) == t.graph.degree[s] + 2 for s in t.switches)
        t.validate()

    def test_unknown_policy_rejected(self):
        t = mesh(2, 2)
        with pytest.raises(TopologyError, match="unknown routing policy"):
            t.switch_path("sw_0_0", "sw_1_1", "fancy")

    def test_dor_without_coords_rejected(self):
        t = ring(4)
        with pytest.raises(TopologyError, match="coordinates"):
            t.switch_path("sw_0", "sw_2", "dor")
