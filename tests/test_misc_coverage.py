"""Coverage for smaller surfaces: windows lists, tracers, bus reset."""

import pytest

from repro.bus import SharedBus
from repro.core.config import SwitchConfig
from repro.core.crc import codec_for_flit_width
from repro.core.switch import Switch
from repro.network.noc import Noc
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import ScriptedTraffic, TxnTemplate, UniformRandomTraffic
from repro.sim.kernel import Simulator
from repro.sim.trace import TextTracer
from tests.harness import FlitSink, FlitSource, packet_flits


class TestSwitchVariants:
    def test_per_output_window_list(self):
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=1, n_outputs=2)
        ins = [sim.flit_channel("i0")]
        outs = [sim.flit_channel("o0"), sim.flit_channel("o1")]
        sw = Switch("sw", cfg, ins, outs, out_windows=[5, 9])
        assert sw.outputs[0].sender.window == 5
        assert sw.outputs[1].sender.window == 9

    def test_codec_threads_into_fsms(self):
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=1, n_outputs=1)
        codec = codec_for_flit_width(32)
        sw = Switch(
            "sw", cfg, [sim.flit_channel("i")], [sim.flit_channel("o")],
            out_windows=7, codec=codec,
        )
        assert sw.receivers[0].codec is codec
        assert sw.outputs[0].sender.codec is codec

    def test_direct_connection_without_links(self):
        """Switches can be wired channel-to-channel (no Link component)
        for unit rigs; the protocol still works at 1-cycle wires."""
        sim = Simulator()
        cfg = SwitchConfig(n_inputs=1, n_outputs=1)
        in_ch = sim.flit_channel("in")
        out_ch = sim.flit_channel("out")
        sim.add(Switch("sw", cfg, [in_ch], [out_ch], out_windows=7))
        tx = sim.add(FlitSource("tx", in_ch))
        rx = sim.add(FlitSink("rx", out_ch))
        tx.submit(packet_flits(4, route=(0,)))
        sim.run(40)
        assert [f.index for f in rx.got] == [0, 1, 2, 3]


class TestNocTracer:
    def test_switch_routing_events_traced(self):
        topo = mesh(1, 2)
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "sw_0_0")
        topo.attach("mem", "sw_1_0")
        tracer = TextTracer()
        noc = Noc(topo, tracer=tracer)
        noc.add_traffic_master(
            "cpu",
            ScriptedTraffic([(0, TxnTemplate("mem", is_read=True))]),
            max_transactions=1,
        )
        noc.add_memory_slave("mem")
        noc.run_until_drained(max_cycles=100_000)
        assert tracer.of(event="route")  # switches narrated their work
        assert tracer.of(event="issue")  # the NI narrated the OCP issue


class TestBusReset:
    def test_bus_reset_replays_identically(self):
        def run(bus):
            bus.run_until_drained()
            return (bus.total_completed(), sorted(bus.aggregate_latency().samples))

        bus = SharedBus(["cpu0", "cpu1"], ["mem0"])
        for i, m in enumerate(["cpu0", "cpu1"]):
            bus.add_traffic_master(
                m, UniformRandomTraffic(["mem0"], 0.2, seed=i), max_transactions=10
            )
        bus.add_memory_slave("mem0")
        first = run(bus)
        bus.sim.reset()
        assert run(bus) == first


class TestEnergyScaling:
    def test_smaller_node_cheaper_per_flit(self):
        from repro.core.config import NocParameters
        from repro.synth import scale_to_node, switch_energy_per_flit_pj, UMC130

        lib90 = scale_to_node(UMC130, 90)
        e130 = switch_energy_per_flit_pj(SwitchConfig(4, 4), NocParameters())
        e90 = switch_energy_per_flit_pj(SwitchConfig(4, 4), NocParameters(), lib=lib90)
        # Area shrinks quadratically, density rises ~linearly: net win.
        assert e90 < e130
