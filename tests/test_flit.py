"""Unit tests for flits."""

import pytest

from repro.core.flit import Flit, FlitType, flit_type_for, next_packet_id


def make_flit(**kw):
    defaults = dict(ftype=FlitType.HEAD_TAIL, payload=0xAB, width=8)
    defaults.update(kw)
    return Flit(**defaults)


class TestFlitType:
    def test_head_flags(self):
        assert FlitType.HEAD.is_head and not FlitType.HEAD.is_tail
        assert FlitType.TAIL.is_tail and not FlitType.TAIL.is_head
        assert FlitType.HEAD_TAIL.is_head and FlitType.HEAD_TAIL.is_tail
        assert not FlitType.BODY.is_head and not FlitType.BODY.is_tail

    def test_flit_type_for_single(self):
        assert flit_type_for(0, 1) is FlitType.HEAD_TAIL

    def test_flit_type_for_multi(self):
        assert flit_type_for(0, 3) is FlitType.HEAD
        assert flit_type_for(1, 3) is FlitType.BODY
        assert flit_type_for(2, 3) is FlitType.TAIL

    def test_flit_type_for_rejects_empty(self):
        with pytest.raises(ValueError):
            flit_type_for(0, 0)


class TestFlit:
    def test_payload_must_fit_width(self):
        with pytest.raises(ValueError):
            make_flit(payload=256, width=8)

    def test_payload_must_be_non_negative(self):
        with pytest.raises(ValueError):
            make_flit(payload=-1)

    def test_with_seqno_is_pure(self):
        f = make_flit()
        g = f.with_seqno(5)
        assert g.seqno == 5 and f.seqno == -1

    def test_corrupt_sets_flag(self):
        f = make_flit()
        assert not f.corrupted
        assert f.corrupt().corrupted

    def test_next_hop_reads_route(self):
        f = make_flit(ftype=FlitType.HEAD, route=(2, 0, 1))
        assert f.next_hop == 2
        assert f.advance_route().next_hop == 0

    def test_next_hop_without_route_raises(self):
        with pytest.raises(ValueError, match="no route"):
            make_flit().next_hop

    def test_exhausted_route_raises(self):
        f = make_flit(ftype=FlitType.HEAD, route=(1,), route_offset=1)
        with pytest.raises(ValueError, match="exhausted"):
            f.next_hop

    def test_stamped_sets_birth_cycle(self):
        assert make_flit().stamped(99).birth_cycle == 99

    def test_birth_cycle_excluded_from_equality(self):
        a = make_flit().stamped(1)
        b = make_flit().stamped(2)
        assert a == b

    def test_packet_ids_are_unique(self):
        assert next_packet_id() != next_packet_id()

    def test_repr_mentions_type_and_corruption(self):
        f = make_flit(ftype=FlitType.HEAD, route=(0,)).corrupt()
        assert "H!" in repr(f)
