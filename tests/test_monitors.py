"""Unit tests for network monitors."""

from repro.network.monitors import NetworkMonitor, utilization_report
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import PermutationTraffic, UniformRandomTraffic


def monitored_noc(rate=0.15):
    topo = mesh(2, 2)
    cpus, mems = attach_round_robin(topo, 2, 2)
    noc = Noc(topo)
    monitor = NetworkMonitor(noc)
    noc.populate(
        {c: UniformRandomTraffic(mems, rate, seed=i) for i, c in enumerate(cpus)},
        max_transactions=40,
    )
    noc.run_until_drained(max_cycles=500_000)
    return noc, monitor


class TestNetworkMonitor:
    def test_observes_every_cycle(self):
        noc, monitor = monitored_noc()
        assert monitor.cycles_observed == noc.sim.cycle

    def test_queue_stats_cover_every_output(self):
        noc, monitor = monitored_noc()
        expected = sum(sw.config.n_outputs for sw in noc.switches.values())
        assert len(monitor.queue_stats) == expected

    def test_occupancy_bounded_by_depth(self):
        noc, monitor = monitored_noc()
        depth = noc.config.buffer_depth
        for q in monitor.queue_stats.values():
            assert 0 <= q.mean <= depth
            assert q.peak <= depth

    def test_traffic_shows_up_in_link_stats(self):
        noc, monitor = monitored_noc()
        stats = monitor.link_stats()
        assert sum(s.flits for s in stats) == noc.total_flits_carried()
        assert any(s.utilization > 0 for s in stats)
        assert all(0.0 <= s.utilization <= 1.0 for s in stats)

    def test_hottest_links_sorted(self):
        noc, monitor = monitored_noc()
        top = monitor.hottest_links(4)
        utils = [s.utilization for s in top]
        assert utils == sorted(utils, reverse=True)

    def test_nack_ratio_zero_without_contention(self):
        topo = mesh(1, 2)
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "sw_0_0")
        topo.attach("mem", "sw_1_0")
        noc = Noc(topo)
        monitor = NetworkMonitor(noc)
        noc.populate(
            {"cpu": PermutationTraffic("mem", 0.02, seed=1)}, max_transactions=10
        )
        noc.run_until_drained(max_cycles=100_000)
        assert monitor.nack_ratio() == 0.0

    def test_nack_ratio_positive_under_contention(self):
        noc, monitor = monitored_noc(rate=0.3)
        assert monitor.nack_ratio() > 0.0

    def test_report_renders(self):
        noc, monitor = monitored_noc()
        text = utilization_report(monitor, top=3)
        assert "NACK ratio" in text
        assert "links by utilization" in text
        assert "output queues" in text


class TestFastPathEquivalence:
    """Occupancy sampling is activity-aware: identical statistics under
    the fast-path scheduler and the classical tick-everything loop."""

    def build(self, fast_path, rate=0.12, cycles=1500):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo, NocBuildConfig(fast_path=fast_path))
        monitor = NetworkMonitor(noc)
        noc.populate(
            {c: UniformRandomTraffic(mems, rate, seed=i) for i, c in enumerate(cpus)},
            max_transactions=25,
        )
        noc.run(cycles)
        monitor.flush()
        return noc, monitor

    def test_occupancy_identical_across_scheduling_modes(self):
        noc_fast, mon_fast = self.build(True)
        noc_full, mon_full = self.build(False)
        # Same workload first: anything else invalidates the comparison.
        assert noc_fast.stats_digest() == noc_full.stats_digest()
        assert set(mon_fast.queue_stats) == set(mon_full.queue_stats)
        for name in mon_fast.queue_stats:
            a, b = mon_fast.queue_stats[name], mon_full.queue_stats[name]
            assert (a.samples, a.total, a.peak) == (b.samples, b.total, b.peak), name

    def test_every_cycle_accounted_under_fast_path(self):
        noc, monitor = self.build(True)
        assert noc.sim.ticks_skipped > 0, "the fast path must actually skip"
        for q in monitor.queue_stats.values():
            assert q.samples == monitor.cycles_observed

    def test_monitor_attached_mid_run_counts_from_attachment(self):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.1, seed=i) for i, c in enumerate(cpus)},
            max_transactions=25,
        )
        noc.run(300)
        monitor = NetworkMonitor(noc)
        noc.run(200)
        monitor.flush()
        assert monitor.cycles_observed == 200
        for q in monitor.queue_stats.values():
            assert q.samples == 200
