"""Crash-safety of the hardened ExperimentRunner and campaign resume.

Three worker failure modes must each be isolated to their own point --
the function raising, exceeding the wall-clock timeout, and the worker
process dying outright (SIGKILL stands in for segfault/OOM) -- while
completed siblings stay cached and journaled.  On top of that: bounded
retries with backoff, the ``runs.jsonl`` journal powering ``resume``,
corrupt-cache quarantine, strict ``from_env`` validation, and
kill-and-resume of checkpointed fault campaigns.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import time

import pytest

from repro.faults.campaign import (
    CampaignSpec,
    CheckpointedCampaign,
    FaultCampaign,
    campaign_checkpoint_path,
    checkpoint_options_from_env,
    run_campaign,
)
from repro.faults.injector import FaultWindow
from repro.flow.runner import ExperimentRunner, PointFailure, stable_repr
from repro.network.experiments import TopologyNocBuilder
from repro.network.topology import mesh


def _behave(point):
    """Worker whose behaviour is scripted by the point itself."""
    kind, payload = point
    if kind == "raise":
        raise ValueError(f"scripted failure: {payload}")
    if kind == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "hang":
        time.sleep(float(payload))
    return payload * 2


def _flaky(point):
    """Fails until its marker file exists, then succeeds -- a transient
    fault that bounded retries must ride out.  The marker is created on
    the first (failing) attempt, so attempt two succeeds."""
    marker, value = point
    if os.path.exists(marker):
        return value * 10
    with open(marker, "w") as f:
        f.write("seen")
    raise RuntimeError("transient: first attempt always fails")


class TestFailureIsolation:
    def test_raising_worker_spares_siblings(self, tmp_path):
        runner = ExperimentRunner(jobs=2, cache_dir=str(tmp_path))
        points = [("ok", 1), ("raise", "boom"), ("ok", 3)]
        with pytest.raises(ValueError, match="scripted failure: boom"):
            runner.map(_behave, points, label="pt")
        # Both healthy siblings finished, were cached, and journaled --
        # the raise happened only after the whole batch settled.
        entries = runner.journal_entries()
        ok = [e for e in entries.values() if e["status"] == "ok"]
        failed = [e for e in entries.values() if e["status"] == "failed"]
        assert len(ok) == 2 and len(failed) == 1
        assert failed[0]["kind"] == "error"
        rerun = ExperimentRunner(jobs=2, cache_dir=str(tmp_path), on_failure="record")
        results = rerun.map(_behave, points, label="pt")
        assert results[0] == 2 and results[2] == 6
        assert rerun.cache_hits == 2  # nothing recomputed

    def test_sigkilled_worker_is_a_crash_not_an_abort(self, tmp_path):
        runner = ExperimentRunner(
            jobs=2, cache_dir=str(tmp_path), on_failure="record"
        )
        results = runner.map(
            _behave, [("ok", 1), ("sigkill", None), ("ok", 3)], label="pt"
        )
        assert results == [2, None, 6]
        assert runner.crash_count == 1 and runner.failure_count == 1
        [failure] = runner.failures
        assert failure.kind == "crash"
        assert "exitcode" in failure.message

    @pytest.mark.timeout_guard(60)
    def test_hung_worker_is_terminated_at_the_deadline(self, tmp_path):
        runner = ExperimentRunner(
            jobs=2, cache_dir=str(tmp_path), timeout=1.0, on_failure="record"
        )
        t0 = time.monotonic()
        results = runner.map(
            _behave, [("ok", 1), ("hang", "30"), ("ok", 3)], label="pt"
        )
        assert time.monotonic() - t0 < 20, "timeout did not preempt the hang"
        assert results == [2, None, 6]
        [failure] = runner.failures
        assert failure.kind == "timeout"
        assert runner.timeout_count == 1

    def test_point_failure_carries_a_repro_bundle(self, tmp_path):
        runner = ExperimentRunner(jobs=2, on_failure="record")
        runner.map(_behave, [("raise", "why")], label="pt")
        [failure] = runner.failures
        assert isinstance(failure, PointFailure)
        assert failure.point_repr == stable_repr(("raise", "why"))
        assert failure.fn_repr == stable_repr(_behave)
        assert failure.attempts == 1
        assert "ValueError" in failure.traceback
        record = failure.as_record()
        json.dumps(record)  # journal-serialisable
        assert record["status"] == "failed"


class TestRetries:
    def test_transient_failure_survives_with_retries(self, tmp_path):
        marker = str(tmp_path / "marker")
        runner = ExperimentRunner(jobs=2, retries=1, backoff=0.05)
        results = runner.map(_flaky, [(marker, 4)], label="pt")
        assert results == [40]
        assert runner.retry_count == 1 and runner.failure_count == 0

    def test_retries_are_bounded(self, tmp_path):
        runner = ExperimentRunner(
            jobs=2, retries=2, backoff=0.01, on_failure="record"
        )
        runner.map(_behave, [("raise", "always")], label="pt")
        [failure] = runner.failures
        assert failure.attempts == 3  # 1 try + 2 retries
        assert runner.retry_count == 2

    def test_inline_path_has_the_same_retry_semantics(self, tmp_path):
        marker = str(tmp_path / "marker")
        runner = ExperimentRunner(jobs=1, retries=1, backoff=0.01)
        assert runner.map(_flaky, [(marker, 4)]) == [40]
        assert runner.retry_count == 1


class TestDeterministicBackoffJitter:
    """Satellite: retry/backoff jitter is seeded from the sweep itself,
    so identical plans produce identical retry timelines."""

    def _session(self, backoff=0.5, jitter=0.1, label="jit", points=(1, 2, 3)):
        from repro.flow.runner import MapSession

        runner = ExperimentRunner(
            retries=3, backoff=backoff, backoff_jitter=jitter
        )
        return MapSession(runner, _behave, list(points), label)

    def test_same_plan_gives_identical_delays(self):
        grid = [(i, a, k) for i in range(3) for a in (1, 2, 3)
                for k in ("retry", "respawn")]
        one = [self._session().backoff_delay(i, a, k) for i, a, k in grid]
        two = [self._session().backoff_delay(i, a, k) for i, a, k in grid]
        assert one == two

    def test_jitter_varies_by_point_attempt_and_kind(self):
        s = self._session()
        assert s.backoff_delay(0, 1) != s.backoff_delay(1, 1)
        assert s.backoff_delay(0, 1, "retry") != s.backoff_delay(0, 1, "respawn")
        # Exponential base still dominates: attempt 2 > attempt 1.
        assert s.backoff_delay(0, 2) > s.backoff_delay(0, 1)

    def test_delays_bounded_by_jitter_fraction(self):
        s = self._session(backoff=0.5, jitter=0.1)
        for a in (1, 2, 3):
            base = 0.5 * (2 ** (a - 1))
            d = s.backoff_delay(0, a)
            assert base <= d <= base * 1.1

    def test_zero_jitter_is_pure_exponential(self):
        s = self._session(jitter=0.0)
        assert s.backoff_delay(5, 2) == 1.0

    def test_different_sweeps_get_different_jitter(self):
        a = self._session(label="sweep-a")
        b = self._session(label="sweep-b")
        assert a.backoff_delay(0, 1) != b.backoff_delay(0, 1)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="backoff_jitter"):
            ExperimentRunner(backoff_jitter=-0.1)

    def test_two_identical_runs_emit_identical_retry_order(self, tmp_path):
        """End to end: same plan, two fresh runs, byte-comparable retry
        sequences in events.jsonl."""
        from repro.telemetry.events import read_events

        def trail(run_dir, marker_dir):
            os.makedirs(marker_dir)
            runner = ExperimentRunner(
                jobs=1, retries=1, backoff=0.01,
                events_path=os.path.join(run_dir, "events.jsonl"),
            )
            points = [(os.path.join(marker_dir, f"m{k}"), k) for k in range(4)]
            runner.map(_flaky, points, label="det")
            return [
                (r["event"], r["label"], r.get("attempt"))
                for r in read_events(runner.events_path)
                if r["event"] in ("retry", "point_start", "point_end")
            ]
        first = trail(str(tmp_path / "a"), str(tmp_path / "a-markers"))
        second = trail(str(tmp_path / "b"), str(tmp_path / "b-markers"))
        assert first and first == second


class TestJournalAndResume:
    def test_kill_and_resume_loses_zero_completed_points(self, tmp_path):
        # "Kill" = a batch where one point crashes hard; the survivors
        # must already be on disk when the crash is reported.
        first = ExperimentRunner(
            jobs=2, cache_dir=str(tmp_path), on_failure="record"
        )
        first.map(_behave, [("ok", 1), ("sigkill", None), ("ok", 3)], label="pt")
        resumed = ExperimentRunner(
            jobs=2, cache_dir=str(tmp_path), resume=True, on_failure="record"
        )
        results = resumed.map(_behave, [("ok", 1), ("ok", 3)], label="pt")
        assert results == [2, 6]
        assert resumed.cache_misses == 0, "a completed point was recomputed"
        assert resumed.resumed_points == 2

    def test_journal_survives_torn_writes(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=str(tmp_path))
        runner.map(_behave, [("ok", 1)], label="pt")
        with open(runner.journal_path, "a") as f:
            f.write('{"key": "half-written')  # no newline, invalid JSON
        entries = runner.journal_entries()
        assert len(entries) == 1  # torn tail skipped, good line kept

    def test_no_journal_without_a_cache_dir(self):
        runner = ExperimentRunner(jobs=1)
        assert runner.journal_path is None
        assert runner.journal_entries() == {}


class TestCorruptCacheQuarantine:
    def test_corrupt_entry_is_quarantined_and_recomputed(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=str(tmp_path))
        runner.map(_behave, [("ok", 5)], label="pt")
        key = runner._key(_behave, ("ok", 5))
        with open(runner._cache_path(key), "wb") as f:
            f.write(b"this is not a pickle")
        fresh = ExperimentRunner(jobs=1, cache_dir=str(tmp_path))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            results = fresh.map(_behave, [("ok", 5)], label="pt")
        assert results == [10]
        assert fresh.corrupt_cache_entries == 1
        assert os.path.exists(os.path.join(str(tmp_path), f"{key}.corrupt"))
        # The recomputed result was re-published under the original key.
        with open(runner._cache_path(key), "rb") as f:
            assert pickle.load(f) == 10
        assert "corrupt_cache_entries=1" in fresh.render_report()

    def test_warning_fires_once_per_runner(self, tmp_path):
        runner = ExperimentRunner(jobs=1, cache_dir=str(tmp_path))
        points = [("ok", 5), ("ok", 6)]
        runner.map(_behave, points, label="pt")
        for p in points:
            with open(runner._cache_path(runner._key(_behave, p)), "wb") as f:
                f.write(b"garbage")
        fresh = ExperimentRunner(jobs=1, cache_dir=str(tmp_path))
        with pytest.warns(RuntimeWarning) as record:
            fresh.map(_behave, points, label="pt")
        assert len([w for w in record if w.category is RuntimeWarning]) == 1
        assert fresh.corrupt_cache_entries == 2


class TestFromEnvValidation:
    def test_zero_jobs_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        with pytest.raises(ValueError, match="REPRO_JOBS.*positive"):
            ExperimentRunner.from_env()

    def test_negative_jobs_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-3")
        with pytest.raises(ValueError, match="REPRO_JOBS.*positive"):
            ExperimentRunner.from_env()

    def test_timeout_retries_resume_channel(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_RETRIES", "3")
        monkeypatch.setenv("REPRO_RESUME", "true")
        runner = ExperimentRunner.from_env()
        assert runner.timeout == 2.5
        assert runner.retries == 3
        assert runner.resume is True

    @pytest.mark.parametrize(
        "var,value,match",
        [
            ("REPRO_TIMEOUT", "soon", "REPRO_TIMEOUT"),
            ("REPRO_TIMEOUT", "-1", "REPRO_TIMEOUT.*positive"),
            ("REPRO_RETRIES", "lots", "REPRO_RETRIES"),
            ("REPRO_RETRIES", "-1", "REPRO_RETRIES"),
            ("REPRO_RESUME", "maybe", "REPRO_RESUME"),
        ],
    )
    def test_garbage_values_name_the_variable(self, monkeypatch, var, value, match):
        monkeypatch.setenv(var, value)
        with pytest.raises(ValueError, match=match):
            ExperimentRunner.from_env()

    def test_constructor_validates_too(self):
        with pytest.raises(ValueError, match="jobs"):
            ExperimentRunner(jobs=0)
        with pytest.raises(ValueError, match="retries"):
            ExperimentRunner(retries=-1)
        with pytest.raises(ValueError, match="timeout"):
            ExperimentRunner(timeout=0)
        with pytest.raises(ValueError, match="on_failure"):
            ExperimentRunner(on_failure="explode")


SPEC = CampaignSpec(
    builder=TopologyNocBuilder(factory=mesh, args=(2, 2)),
    windows=(FaultWindow("link.*", start=100, duration=400, error_rate=0.2),),
    rate=0.08,
    warmup_cycles=150,
    measure_cycles=650,
    seed=5,
    label="resume-me",
)


class TestCampaignCheckpointing:
    def test_checkpointed_run_equals_plain_run(self, tmp_path):
        plain = run_campaign(SPEC)
        sliced = run_campaign(SPEC, checkpoint_every=100, checkpoint_dir=str(tmp_path))
        assert sliced == plain
        # Finished cleanly: the working checkpoint was cleaned up.
        assert not os.path.exists(campaign_checkpoint_path(SPEC, str(tmp_path)))

    def test_kill_mid_campaign_then_resume_matches(self, tmp_path, monkeypatch):
        plain = run_campaign(SPEC)

        # Simulate the kill: abort the campaign after a few run slices,
        # past at least one checkpoint boundary.
        import repro.network.noc as noc_module

        class Killed(Exception):
            pass

        original_run = noc_module.Noc.run
        calls = {"n": 0}

        def dying_run(self, cycles):
            calls["n"] += 1
            if calls["n"] > 3:
                raise Killed()
            return original_run(self, cycles)

        monkeypatch.setattr(noc_module.Noc, "run", dying_run)
        with pytest.raises(Killed):
            run_campaign(SPEC, checkpoint_every=100, checkpoint_dir=str(tmp_path))
        monkeypatch.setattr(noc_module.Noc, "run", original_run)

        ckpt = campaign_checkpoint_path(SPEC, str(tmp_path))
        assert os.path.exists(ckpt), "no mid-campaign checkpoint was written"
        resumed = run_campaign(
            SPEC, checkpoint_every=100, checkpoint_dir=str(tmp_path), resume=True
        )
        assert resumed == plain
        assert not os.path.exists(ckpt)

    def test_resume_with_stale_checkpoint_falls_back_to_fresh(self, tmp_path):
        ckpt = campaign_checkpoint_path(SPEC, str(tmp_path))
        os.makedirs(str(tmp_path), exist_ok=True)
        with open(ckpt, "wb") as f:
            f.write(b"XLCKPT01" + b"\x00" * 40)  # right magic, garbage body
        resumed = run_campaign(
            SPEC, checkpoint_every=100, checkpoint_dir=str(tmp_path), resume=True
        )
        assert resumed == run_campaign(SPEC)

    def test_checkpoint_flags_do_not_change_cache_keys(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        wrapped = CheckpointedCampaign(100, str(tmp_path), resume=True)
        assert runner._key(run_campaign, SPEC) == runner._key(wrapped, SPEC)

    def test_fault_campaign_resumes_through_the_runner(self, tmp_path):
        cache = str(tmp_path / "cache")
        ckpts = str(tmp_path / "ckpts")
        first = FaultCampaign(
            [SPEC],
            runner=ExperimentRunner(jobs=2, cache_dir=cache),
            checkpoint_every=200,
            checkpoint_dir=ckpts,
        )
        want = first.run()
        second = FaultCampaign(
            [SPEC],
            runner=ExperimentRunner(jobs=2, cache_dir=cache, resume=True),
            checkpoint_every=200,
            checkpoint_dir=ckpts,
            resume=True,
        )
        got = second.run()
        assert second.runner.cache_hits == 1
        assert [r.label for r in got] == [r.label for r in want]

    def test_checkpoint_every_requires_a_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_campaign(SPEC, checkpoint_every=100)
        with pytest.raises(ValueError, match="checkpoint_dir"):
            FaultCampaign([SPEC], checkpoint_every=100)

    def test_env_channel(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "500")
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_RESUME", "1")
        opts = checkpoint_options_from_env()
        assert opts == {
            "checkpoint_every": 500,
            "checkpoint_dir": str(tmp_path),
            "resume": True,
        }
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "zero")
        with pytest.raises(ValueError, match="REPRO_CHECKPOINT_EVERY"):
            checkpoint_options_from_env()
        monkeypatch.setenv("REPRO_CHECKPOINT_EVERY", "500")
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR")
        with pytest.raises(ValueError, match="REPRO_CHECKPOINT_DIR"):
            checkpoint_options_from_env()


def _sweep_point(spec):
    """An s3-style campaign point that transiently fails for one spec:
    the first attempt at the faulted spec dies, the retry succeeds."""
    marker = os.path.join(spec_marker_dir(), "attempted")
    if spec.label == "flaky-once" and not os.path.exists(marker):
        with open(marker, "w") as f:
            f.write("1")
        os.kill(os.getpid(), signal.SIGKILL)
    return run_campaign(spec)


_MARKER_DIR = {"path": ""}


def spec_marker_dir() -> str:
    return _MARKER_DIR["path"]


class TestSweepUnderInjectedFailures:
    @pytest.mark.timeout_guard(180)
    def test_s3_style_sweep_completes_despite_a_dying_worker(self, tmp_path):
        """The acceptance scenario: a resilience-style sweep where one
        worker is killed mid-point completes under retries, with every
        point's result present."""
        _MARKER_DIR["path"] = str(tmp_path)
        builder = TopologyNocBuilder(factory=mesh, args=(2, 2))
        specs = [
            CampaignSpec(builder=builder, rate=0.05, warmup_cycles=100,
                         measure_cycles=400, label="healthy-1"),
            CampaignSpec(builder=builder, rate=0.05, warmup_cycles=100,
                         measure_cycles=400, seed=1, label="flaky-once"),
            CampaignSpec(builder=builder, rate=0.05, warmup_cycles=100,
                         measure_cycles=400, seed=2, label="healthy-2"),
        ]
        runner = ExperimentRunner(
            jobs=2, cache_dir=str(tmp_path / "cache"), retries=1, backoff=0.05
        )
        results = runner.map(_sweep_point, specs, label="campaign")
        assert [r.label for r in results] == ["healthy-1", "flaky-once", "healthy-2"]
        assert runner.crash_count == 1 and runner.retry_count == 1
        assert runner.failure_count == 0
