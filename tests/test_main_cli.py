"""The top-level ``python -m repro`` command line."""

from repro.__main__ import main


class TestTopLevelCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "xpipes Lite" in out
        assert "repro.compiler" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "repro" in capsys.readouterr().out

    def test_demo_runs_a_network(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "200 transactions" in out
        assert "pJ/transaction" in out


class TestReportCommand:
    def test_report_writes_and_validates_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "rep"
        assert main([
            "report", "--out", str(out_dir), "--cycles", "500", "--check",
        ]) == 0
        out = capsys.readouterr().out
        assert "all artifacts valid" in out
        for name in ("metrics.json", "trace.json", "heatmap.txt", "heatmap.csv"):
            assert (out_dir / name).exists(), name

    def test_report_honours_mesh_and_window(self, tmp_path, capsys):
        out_dir = tmp_path / "rep"
        assert main([
            "report", "--out", str(out_dir), "--mesh", "3x2",
            "--cycles", "400", "--window", "50", "--check",
        ]) == 0
        heatmap = (out_dir / "heatmap.txt").read_text()
        assert "windows of 50 cycles" in heatmap
        assert "3x2 mesh" in capsys.readouterr().out

    def test_report_rejects_malformed_mesh(self, capsys):
        assert main(["report", "--mesh", "banana"]) == 2
        assert "--mesh" in capsys.readouterr().err


class TestFaultsCommand:
    def test_faults_smoke_recovers_and_catches_the_wedge(self, capsys):
        assert main(["faults", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "smoke-recovers" in out
        assert "smoke-wedged" in out
        assert "NO PROGRESS" in out
