"""The top-level ``python -m repro`` command line."""

from repro.__main__ import main


class TestTopLevelCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "xpipes Lite" in out
        assert "repro.compiler" in out

    def test_default_is_info(self, capsys):
        assert main([]) == 0
        assert "repro" in capsys.readouterr().out

    def test_demo_runs_a_network(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "200 transactions" in out
        assert "pJ/transaction" in out
