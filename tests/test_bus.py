"""Unit tests for the AHB-like shared-bus baseline."""

import pytest

from repro.bus import SharedBus, SharedBusConfig
from repro.core.config import ArbitrationPolicy
from repro.network.traffic import PermutationTraffic, ScriptedTraffic, TxnTemplate, UniformRandomTraffic


def scripted_bus(scripts, wait_states=1, config=None):
    masters = list(scripts)
    bus = SharedBus(masters, ["mem0", "mem1"], config=config)
    for m, script in scripts.items():
        bus.add_traffic_master(m, ScriptedTraffic(script), max_transactions=len(script))
    for s in ("mem0", "mem1"):
        bus.add_memory_slave(s, wait_states=wait_states)
    return bus


class TestBasics:
    def test_single_transaction_completes(self):
        bus = scripted_bus({"cpu0": [(0, TxnTemplate("mem0", is_read=True))]})
        bus.run_until_drained()
        assert bus.total_completed() == 1

    def test_write_then_read_data_integrity(self):
        bus = scripted_bus(
            {"cpu0": [
                (0, TxnTemplate("mem0", offset=4, is_read=False, burst_len=2)),
                (50, TxnTemplate("mem0", offset=4, is_read=True, burst_len=2)),
            ]}
        )
        bus.run_until_drained()
        master = bus.masters["cpu0"]
        slave = bus.slaves["mem0"]
        data = list(master.read_data.values())[0]
        assert data == (slave.memory[4], slave.memory[5])

    def test_address_decode_reaches_right_slave(self):
        bus = scripted_bus(
            {"cpu0": [
                (0, TxnTemplate("mem1", offset=0, is_read=False, burst_len=1)),
            ]}
        )
        bus.run_until_drained()
        assert bus.slaves["mem1"].writes_served == 1
        assert bus.slaves["mem0"].writes_served == 0

    def test_needs_masters_and_slaves(self):
        with pytest.raises(ValueError):
            SharedBus([], ["m"])
        with pytest.raises(ValueError):
            SharedBus(["c"], [])

    def test_unknown_names_rejected(self):
        bus = SharedBus(["cpu0"], ["mem0"])
        with pytest.raises(Exception, match="not a bus master"):
            bus.add_traffic_master("ghost", PermutationTraffic("mem0", 0.1))
        with pytest.raises(Exception, match="not a bus slave"):
            bus.add_memory_slave("ghost")


class TestSerialization:
    def test_one_transaction_at_a_time(self):
        """The bus serializes: two masters' requests never overlap."""
        bus = scripted_bus(
            {
                "cpu0": [(0, TxnTemplate("mem0", is_read=True))],
                "cpu1": [(0, TxnTemplate("mem1", is_read=True))],
            },
            wait_states=6,
        )
        cycles = bus.run_until_drained()
        # Serial execution: total time >= 2x one service time.
        single = scripted_bus(
            {"cpu0": [(0, TxnTemplate("mem0", is_read=True))]}, wait_states=6
        )
        single_cycles = single.run_until_drained()
        assert cycles >= 2 * single_cycles - 4

    def test_grants_counted(self):
        bus = scripted_bus({"cpu0": [(0, TxnTemplate("mem0"))]})
        bus.run_until_drained()
        assert bus.bus.grants == 1

    def test_utilization_grows_with_load(self):
        def util(n_masters):
            masters = [f"cpu{i}" for i in range(n_masters)]
            bus = SharedBus(masters, ["mem0"])
            for i, m in enumerate(masters):
                bus.add_traffic_master(
                    m, PermutationTraffic("mem0", rate=0.3, seed=i), max_transactions=20
                )
            bus.add_memory_slave("mem0", wait_states=2)
            bus.run_until_drained(max_cycles=100_000)
            return bus.utilization()

        assert util(4) > util(1)


class TestArbitration:
    def test_round_robin_serves_both(self):
        bus = scripted_bus(
            {
                "cpu0": [(0, TxnTemplate("mem0")) for _ in range(3)],
                "cpu1": [(0, TxnTemplate("mem1")) for _ in range(3)],
            }
        )
        # ScriptedTraffic entries all at cycle 0 -> issued back to back.
        bus.run_until_drained()
        assert bus.masters["cpu0"].completed == 3
        assert bus.masters["cpu1"].completed == 3

    def test_fixed_priority_config(self):
        cfg = SharedBusConfig(arbitration=ArbitrationPolicy.FIXED_PRIORITY)
        bus = scripted_bus(
            {"cpu0": [(0, TxnTemplate("mem0"))], "cpu1": [(0, TxnTemplate("mem0"))]},
            config=cfg,
        )
        bus.run_until_drained()
        assert bus.total_completed() == 2

    def test_arb_cycles_add_latency(self):
        def one_latency(arb_cycles):
            cfg = SharedBusConfig(arb_cycles=arb_cycles)
            bus = scripted_bus(
                {"cpu0": [(0, TxnTemplate("mem0", is_read=True))]}, config=cfg
            )
            bus.run_until_drained()
            return bus.aggregate_latency().samples[0]

        assert one_latency(5) == one_latency(1) + 4

    def test_negative_arb_cycles_rejected(self):
        with pytest.raises(ValueError):
            SharedBusConfig(arb_cycles=-1)
