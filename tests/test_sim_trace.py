"""Unit tests for event tracing."""

import io

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.trace import NullTracer, TextTracer


class Chatty(Component):
    def tick(self, cycle):
        self.trace(cycle, "tick", value=cycle * 2)


class TestTextTracer:
    def test_records_events_with_fields(self):
        tracer = TextTracer()
        sim = Simulator(tracer)
        sim.add(Chatty("c"))
        sim.run(3)
        assert len(tracer.events) == 3
        cycle, source, event, fields = tracer.events[0]
        assert (cycle, source, event) == (0, "c", "tick")
        assert fields == {"value": 0}

    def test_filtering(self):
        tracer = TextTracer()
        sim = Simulator(tracer)
        sim.add(Chatty("a"))
        sim.add(Chatty("b"))
        sim.run(2)
        assert len(tracer.of(source="a")) == 2
        assert len(tracer.of(event="tick")) == 4
        assert tracer.of(source="zzz") == []

    def test_stream_output(self):
        buf = io.StringIO()
        tracer = TextTracer(stream=buf)
        sim = Simulator(tracer)
        sim.add(Chatty("core"))
        sim.run(1)
        assert "core" in buf.getvalue()
        assert "value=0" in buf.getvalue()

    def test_limit_caps_memory(self):
        tracer = TextTracer(limit=5)
        sim = Simulator(tracer)
        sim.add(Chatty("c"))
        sim.run(100)
        assert len(tracer.events) == 5

    def test_null_tracer_discards(self):
        tracer = NullTracer()
        sim = Simulator(tracer)
        sim.add(Chatty("c"))
        sim.run(5)  # must simply not blow up

    def test_component_without_sim_traces_silently(self):
        c = Chatty("orphan")
        c.tick(0)  # no simulator bound; trace is a no-op


class TestGoldenFormat:
    """The text stream format is an interface: tools parse these lines."""

    def test_stream_lines_match_golden(self):
        buf = io.StringIO()
        tracer = TextTracer(stream=buf)
        sim = Simulator(tracer)
        sim.add(Chatty("core0"))
        sim.run(2)
        golden = (
            "[       0] core0                    tick             value=0\n"
            "[       1] core0                    tick             value=2\n"
        )
        assert buf.getvalue() == golden

    def test_multiple_fields_space_separated_in_order(self):
        class Multi(Component):
            def tick(self, cycle):
                self.trace(cycle, "hop", pkt=7, wait=cycle)

        buf = io.StringIO()
        tracer = TextTracer(stream=buf)
        sim = Simulator(tracer)
        sim.add(Multi("sw"))
        sim.run(1)
        assert buf.getvalue().rstrip().endswith("pkt=7 wait=0")


class TestMidRunAttach:
    def test_tracer_attached_mid_run_sees_only_later_events(self):
        sim = Simulator()  # starts with the NullTracer
        sim.add(Chatty("c"))
        sim.run(3)
        tracer = TextTracer()
        sim.tracer = tracer
        sim.run(2)
        assert [e[0] for e in tracer.events] == [3, 4]
        assert tracer.events[0][3] == {"value": 6}

    def test_tracer_swap_back_to_null(self):
        tracer = TextTracer()
        sim = Simulator(tracer)
        sim.add(Chatty("c"))
        sim.run(2)
        sim.tracer = NullTracer()
        sim.run(5)
        assert len(tracer.events) == 2
