"""The unified telemetry layer: registry, lifecycle traces, heatmaps.

See docs/OBSERVABILITY.md for the contracts exercised here: the
``repro.telemetry/v1`` metrics schema, the four lifecycle trace events
and their Chrome trace-event export, the per-link utilization heatmap,
and the one-call :class:`~repro.telemetry.noc.NocTelemetry` attachment.
"""

import json

import pytest

from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import UniformRandomTraffic
from repro.core.config import LinkConfig
from repro.sim.trace import TextTracer
from repro.telemetry import (
    SCHEMA,
    LifecycleCollector,
    LinkUtilizationSeries,
    MetricsRegistry,
    NocTelemetry,
    TelemetryError,
    chrome_trace_events,
    enable_lifecycle,
    heatmap_csv,
    render_heatmap,
    validate_metrics,
    write_chrome_trace,
)


def tiny_noc(config=None, rate=0.1, max_transactions=20):
    topo = mesh(2, 2)
    cpus, mems = attach_round_robin(topo, 2, 2)
    noc = Noc(topo, config)
    noc.populate(
        {c: UniformRandomTraffic(mems, rate, seed=i) for i, c in enumerate(cpus)},
        max_transactions=max_transactions,
    )
    return noc


# ---------------------------------------------------------------------------
# MetricsRegistry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_counts(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(TelemetryError, match="negative"):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_callback_reads_live(self):
        reg = MetricsRegistry()
        state = {"v": 1}
        g = reg.gauge("depth", fn=lambda: state["v"])
        state["v"] = 42
        assert g.value == 42

    def test_gauge_set_vs_callback(self):
        reg = MetricsRegistry()
        g = reg.gauge("manual")
        g.set(2.5)
        assert g.value == 2.5
        backed = reg.gauge("backed", fn=lambda: 1)
        with pytest.raises(TelemetryError, match="callback-backed"):
            backed.set(3)

    def test_gauge_nonfinite_exports_null(self):
        reg = MetricsRegistry()
        reg.gauge("inf", fn=lambda: float("inf"))
        doc = reg.to_dict()
        assert doc["gauges"]["inf"]["value"] is None
        validate_metrics(doc)

    def test_series_windows_observations(self):
        reg = MetricsRegistry()
        s = reg.series("util", window=10)
        s.observe(3, 1.0)
        s.observe(7, 3.0)
        s.observe(15, 5.0)
        assert [b["start"] for b in s.buckets] == [0, 10]
        assert s.buckets[0] == {"start": 0, "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0}

    def test_series_rejects_time_travel(self):
        s = MetricsRegistry().series("s", window=10)
        s.observe(25, 1.0)
        with pytest.raises(TelemetryError, match="older"):
            s.observe(3, 1.0)

    def test_histogram_bins_and_clear(self):
        h = MetricsRegistry().histogram("lat", bin_width=10)
        for v in (4, 14, 17, 99):
            h.observe(v)
        assert h.counts == {0: 1, 10: 2, 90: 1}
        assert h.observations == 4
        h.clear()
        assert h.counts == {} and h.observations == 0

    def test_registration_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            reg.gauge("x")

    def test_export_document_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.5)
        reg.series("s").observe(0, 1.0)
        reg.histogram("h").observe(12)
        doc = reg.to_dict(sim_cycles=99)
        assert doc["schema"] == SCHEMA
        assert doc["sim_cycles"] == 99
        assert set(doc["counters"]) == {"c"}
        assert set(doc["histograms"]["h"]["counts"]) == {"10"}
        validate_metrics(doc)
        json.loads(reg.to_json(sim_cycles=99))  # round-trips as JSON


class TestValidateMetrics:
    def valid(self):
        return MetricsRegistry().to_dict(sim_cycles=1)

    def test_accepts_valid(self):
        validate_metrics(self.valid())

    def test_rejects_non_object(self):
        with pytest.raises(TelemetryError, match="object"):
            validate_metrics([1, 2])

    def test_rejects_wrong_schema(self):
        doc = self.valid()
        doc["schema"] = "other/v9"
        with pytest.raises(TelemetryError, match="schema"):
            validate_metrics(doc)

    def test_rejects_negative_counter(self):
        doc = self.valid()
        doc["counters"]["bad"] = {"value": -3, "help": ""}
        with pytest.raises(TelemetryError, match="non-negative"):
            validate_metrics(doc)

    def test_rejects_malformed_series_bucket(self):
        doc = self.valid()
        doc["series"]["bad"] = {"window": 10, "buckets": [{"start": 0}]}
        with pytest.raises(TelemetryError, match="bucket"):
            validate_metrics(doc)

    def test_reports_every_violation(self):
        doc = self.valid()
        doc["version"] = 7
        doc["sim_cycles"] = "many"
        with pytest.raises(TelemetryError) as err:
            validate_metrics(doc)
        assert "version" in str(err.value) and "sim_cycles" in str(err.value)


# ---------------------------------------------------------------------------
# Lifecycle tracing
# ---------------------------------------------------------------------------
class TestLifecycle:
    def traced_noc(self, config=None, cycles=600):
        noc = tiny_noc(config)
        collector = LifecycleCollector()
        noc.sim.tracer = collector
        assert enable_lifecycle(noc) > 0
        noc.run(cycles)
        return noc, collector

    def test_collector_retains_only_lifecycle_events(self):
        noc, col = self.traced_noc()
        names = {e[2] for e in col.events}
        assert names <= {"pkt_inject", "hop", "pkt_eject", "link_error"}
        assert {"pkt_inject", "hop", "pkt_eject"} <= names

    def test_at_least_one_packet_has_full_lifecycle(self):
        noc, col = self.traced_noc()
        injected = {e[3]["pkt"] for e in col.events if e[2] == "pkt_inject"}
        hopped = {e[3]["pkt"] for e in col.events if e[2] == "hop"}
        ejected = {e[3]["pkt"] for e in col.events if e[2] == "pkt_eject"}
        assert injected & hopped & ejected

    def test_hop_wait_is_arbitration_delay(self):
        noc, col = self.traced_noc()
        hops = [e for e in col.events if e[2] == "hop"]
        assert hops
        for cycle, source, _, fields in hops:
            assert fields["wait"] == cycle - fields["arrival"] >= 0

    def test_eject_latency_positive(self):
        noc, col = self.traced_noc()
        ejects = [e for e in col.events if e[2] == "pkt_eject"]
        assert ejects and all(e[3]["latency"] > 0 for e in ejects)

    def test_inner_tracer_still_sees_everything(self):
        noc = tiny_noc()
        inner = TextTracer()
        noc.sim.tracer = LifecycleCollector(inner=inner)
        enable_lifecycle(noc)
        noc.run(400)
        assert len(inner.events) >= len(noc.sim.tracer.events)
        assert inner.of(event="pkt_inject")

    def test_limit_bounds_memory(self):
        noc = tiny_noc()
        col = LifecycleCollector(limit=5)
        noc.sim.tracer = col
        enable_lifecycle(noc)
        noc.run(600)
        assert len(col.events) == 5 and col.dropped > 0

    def test_disabled_by_default(self):
        noc = tiny_noc()
        col = LifecycleCollector()
        noc.sim.tracer = col
        noc.run(300)  # lifecycle never enabled
        assert col.events == []

    def test_link_errors_traced(self):
        noc, col = self.traced_noc(
            NocBuildConfig(link=LinkConfig(error_rate=0.05))
        )
        assert any(e[2] == "link_error" for e in col.events)


class TestChromeTraceExport:
    def events(self):
        noc = tiny_noc()
        col = LifecycleCollector()
        noc.sim.tracer = col
        enable_lifecycle(noc)
        noc.run(600)
        return col.events

    def test_packet_spans_present(self):
        out = chrome_trace_events(self.events())
        spans = [e for e in out if e.get("cat") == "packet"]
        assert spans
        complete = [
            e for e in spans if "src" in e["args"] and "ejected_by" in e["args"]
        ]
        assert complete
        for e in complete:
            assert e["ph"] == "X" and e["dur"] >= 0
            assert e["tid"] == e["args"]["pkt"]

    def test_hop_and_link_spans_present(self):
        out = chrome_trace_events(self.events())
        assert any(e.get("cat") == "hop" for e in out)
        assert any(e.get("cat") == "link" for e in out)

    def test_metadata_names_processes_and_threads(self):
        out = chrome_trace_events(self.events())
        meta = [e for e in out if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)

    def test_unknown_events_ignored(self):
        out = chrome_trace_events([(0, "x", "weird", {"pkt": 1})])
        assert all(e["ph"] == "M" for e in out)

    def test_write_produces_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        with path.open("w") as fh:
            n = write_chrome_trace(fh, self.events(), metadata={"k": "v"})
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n > 0
        assert doc["otherData"]["k"] == "v"
        assert doc["otherData"]["time_unit"] == "1 cycle = 1us"


# ---------------------------------------------------------------------------
# Heatmaps
# ---------------------------------------------------------------------------
class TestLinkUtilization:
    def sampled(self, window=50, cycles=400):
        noc = tiny_noc()
        series = LinkUtilizationSeries(noc, window=window)
        noc.run(cycles)
        series.finalize()
        return noc, series

    def test_one_row_per_link(self):
        noc, series = self.sampled()
        assert set(series.rows) == {l.name for l in noc.links}

    def test_windows_cover_the_run(self):
        noc, series = self.sampled(window=50, cycles=400)
        assert len(series.window_starts) == 8
        assert series.window_starts[0] == 0

    def test_utilization_bounded(self):
        noc, series = self.sampled()
        for vals in series.rows.values():
            assert all(0.0 <= v <= 1.0 for v in vals)

    def test_totals_match_link_counters(self):
        noc, series = self.sampled(window=50, cycles=400)
        for link in noc.links:
            accounted = sum(
                v * span
                for v, span in zip(
                    series.rows[link.name],
                    [50] * (len(series.window_starts)),
                )
            )
            assert accounted == pytest.approx(link.flits_carried)

    def test_finalize_idempotent(self):
        noc, series = self.sampled()
        before = len(series.window_starts)
        series.finalize()
        assert len(series.window_starts) == before

    def test_render_and_csv(self):
        noc, series = self.sampled()
        text = render_heatmap(series, top=3)
        assert "windows" in text and text.count("|") == 2 * 3
        csv = heatmap_csv(series)
        lines = csv.strip().splitlines()
        assert len(lines) == len(noc.links) + 1
        header_cols = lines[0].split(",")
        for line in lines[1:]:
            cells = line.split(",")
            assert len(cells) == len(header_cols)
            assert all(0.0 <= float(x) <= 1.0 for x in cells[1:])

    def test_registry_mirror(self):
        noc = tiny_noc()
        reg = MetricsRegistry()
        series = LinkUtilizationSeries(noc, window=50, registry=reg)
        noc.run(200)
        series.finalize()
        name = f"link.{noc.links[0].name}.utilization"
        assert name in reg
        validate_metrics(reg.to_dict(sim_cycles=noc.sim.cycle))

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            LinkUtilizationSeries(tiny_noc(), window=0)


# ---------------------------------------------------------------------------
# The one-call attachment layer
# ---------------------------------------------------------------------------
class TestNocTelemetry:
    def test_snapshot_validates_and_covers_components(self):
        noc = tiny_noc()
        telem = NocTelemetry(noc)
        noc.run_until_drained(max_cycles=500_000)
        doc = telem.snapshot()
        validate_metrics(doc)
        assert doc["sim_cycles"] == noc.sim.cycle
        assert doc["gauges"]["noc.transactions_completed"]["value"] == 40
        assert any(k.startswith("switch.") for k in doc["gauges"])
        assert any(k.startswith("queue.") for k in doc["gauges"])
        assert doc["histograms"]["latency.network"]["counts"]

    def test_snapshot_is_repeatable(self):
        noc = tiny_noc()
        telem = NocTelemetry(noc)
        noc.run(300)
        first = telem.snapshot()
        second = telem.snapshot()
        assert first == second

    def test_write_produces_all_artifacts(self, tmp_path):
        noc = tiny_noc()
        telem = NocTelemetry(noc)
        noc.run(600)
        paths = telem.write(tmp_path / "out")
        assert sorted(p.name for p in paths.values()) == [
            "heatmap.csv", "heatmap.txt", "metrics.json", "metrics.prom",
            "trace.json",
        ]
        validate_metrics(json.loads(paths["metrics"].read_text()))
        trace = json.loads(paths["trace"].read_text())
        assert any(
            e.get("cat") == "packet" and "ejected_by" in e.get("args", {})
            for e in trace["traceEvents"]
        )
        assert "heatmap" in paths["heatmap_txt"].read_text()

    def test_chains_existing_tracer(self):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        inner = TextTracer()
        noc = Noc(topo, tracer=inner)
        telem = NocTelemetry(noc)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.1, seed=i) for i, c in enumerate(cpus)},
            max_transactions=5,
        )
        noc.run(300)
        assert telem.collector.inner is inner
        assert inner.events  # the debug tracer still records

    def test_does_not_perturb_results(self):
        plain = tiny_noc()
        plain.run(500)
        observed = tiny_noc()
        NocTelemetry(observed)
        observed.run(500)
        assert observed.stats_digest() == plain.stats_digest()


class TestCreditModeCompat:
    def test_telemetry_attaches_to_credit_noc(self):
        noc = tiny_noc(NocBuildConfig(flow_control="credit"))
        telem = NocTelemetry(noc)
        noc.run_until_drained(max_cycles=500_000)
        doc = telem.snapshot()
        validate_metrics(doc)
        # Credit-mode switches expose no output queues; occupancy stats
        # are simply absent rather than wrong.
        assert not any(k.startswith("queue.") for k in doc["gauges"])
        assert len(telem.collector.events) > 0


class TestFaultInstants:
    """Campaign fault windows ride the lifecycle pipeline: ``fault``
    instants in the collector, their own timeline row in the export."""

    def faulted_noc(self, cycles=600):
        from repro.faults import FaultInjector, FaultWindow

        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo)
        injector = FaultInjector(
            noc,
            [FaultWindow("link.sw_0_0.p*", start=100, duration=200, error_rate=0.4)],
        )
        collector = LifecycleCollector()
        noc.sim.tracer = collector
        enable_lifecycle(noc)
        assert injector.lifecycle  # the injector rides the same switch
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.1, seed=i) for i, c in enumerate(cpus)}
        )
        noc.run(cycles)
        return noc, collector

    def test_fault_events_collected(self):
        noc, col = self.faulted_noc()
        faults = [e for e in col.events if e[2] == "fault"]
        assert faults
        phases = {e[3]["phase"] for e in faults}
        assert phases == {"open", "close"}
        assert all(e[3]["mode"] == "burst" for e in faults)

    def test_fault_row_in_chrome_export(self):
        from repro.telemetry.lifecycle import FAULT_TRACK_TID

        noc, col = self.faulted_noc()
        events = chrome_trace_events(col.events)
        rows = [e for e in events if e.get("tid") == FAULT_TRACK_TID]
        named = [e for e in rows if e["ph"] == "M"]
        instants = [e for e in rows if e["ph"] == "i"]
        assert named and named[0]["args"]["name"] == "faults"
        assert instants
        assert all(e["cat"] == "fault" for e in instants)
        assert all(e["args"]["link"].startswith("link.sw_0_0.") for e in instants)

    def test_fault_counters_exported_as_gauges(self):
        from repro.faults import FaultInjector, FaultWindow

        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo, NocBuildConfig(ni_txn_timeout=300, ni_txn_retries=1,
                                       link_resync_timeout=40))
        FaultInjector(
            noc,
            [FaultWindow("link.sw_0_0.p*", start=100, duration=300, mode="dead")],
        )
        telemetry = NocTelemetry(noc)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.1, seed=i) for i, c in enumerate(cpus)}
        )
        noc.run(1200)
        doc = telemetry.snapshot()
        gauges = doc["gauges"]
        assert gauges["noc.flits_dropped"]["value"] > 0
        assert "noc.transactions_failed" in gauges
        assert "noc.transactions_retried" in gauges
        assert gauges["faults.faults.windows_opened"]["value"] > 0
        validate_metrics(doc)


# ---------------------------------------------------------------------------
# Multi-process merge and Prometheus exposition (fleet telemetry)
# ---------------------------------------------------------------------------
class TestRegistryMerge:
    def test_counters_sum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(3)
        b.counter("hits").inc(4)
        assert a.merge(b) is a
        assert a.counter("hits").value == 7

    def test_gauges_are_last_write(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(1.0)
        b.gauge("depth").set(9.0)
        a.merge(b)
        assert a.gauge("depth").value == 9.0

    def test_callback_gauge_refuses_incoming_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("live", fn=lambda: 5)
        b.gauge("live").set(1.0)
        with pytest.raises(TelemetryError, match="callback-backed"):
            a.merge(b)

    def test_series_concatenate_by_bucket(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        sa = a.series("util", window=10)
        sa.observe(3, 1.0)
        sb = b.series("util", window=10)
        sb.observe(7, 3.0)
        sb.observe(15, 5.0)
        a.merge(b)
        assert [x["start"] for x in sa.buckets] == [0, 10]
        assert sa.buckets[0] == {
            "start": 0, "count": 2, "sum": 4.0, "min": 1.0, "max": 3.0
        }

    def test_series_window_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.series("util", window=10)
        b.series("util", window=20)
        with pytest.raises(TelemetryError, match="window"):
            a.merge(b)

    def test_histograms_sum_bins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ha = a.histogram("lat", bin_width=10)
        ha.observe(4)
        hb = b.histogram("lat", bin_width=10)
        hb.observe(4)
        hb.observe(17)
        a.merge(b)
        assert ha.counts == {0: 2, 10: 1}
        assert ha.observations == 3

    def test_histogram_bin_width_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", bin_width=10)
        b.histogram("lat", bin_width=5)
        with pytest.raises(TelemetryError, match="bin_width"):
            a.merge(b)

    def test_kind_collision_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x")
        b.gauge("x")
        with pytest.raises(TelemetryError, match="counter.*gauge"):
            a.merge(b)

    def test_adopts_metrics_only_in_other(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        state = {"v": 2}
        b.counter("c").inc(5)
        b.gauge("g", fn=lambda: state["v"])
        a.merge(b)
        assert a.counter("c").value == 5
        # Callback gauges are snapshotted: the callable stays in the
        # worker process, the merged registry keeps the value it read.
        state["v"] = 99
        assert a.gauge("g").value == 2
        a.gauge("g").set(3.0)  # and the copy is settable here
        # The source registry is untouched by the merge.
        assert b.counter("c").value == 5

    def test_merged_document_still_validates(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc()
        b.counter("c").inc()
        b.series("s", window=5).observe(2, 1.0)
        b.histogram("h", bin_width=2).observe(3)
        doc = a.merge(b).to_dict(sim_cycles=10)
        validate_metrics(doc)
        assert doc["counters"]["c"]["value"] == 2


class TestPrometheusExposition:
    def registry(self):
        reg = MetricsRegistry()
        reg.counter("noc.flits_sent", help="flits offered").inc(7)
        reg.gauge("queue.sw_0_0/p0").set(1.5)
        reg.gauge("bad", fn=lambda: float("nan"))
        h = reg.histogram("latency", bin_width=10)
        for v in (4, 14, 17):
            h.observe(v)
        s = reg.series("util", window=10)
        s.observe(3, 1.0)
        s.observe(7, 3.0)
        return reg

    def test_names_are_sanitized_and_prefixed(self):
        text = self.registry().to_prometheus()
        assert "repro_noc_flits_sent 7" in text
        assert "repro_queue_sw_0_0_p0 1.5" in text
        assert "# HELP repro_noc_flits_sent flits offered" in text
        assert "# TYPE repro_noc_flits_sent counter" in text

    def test_histogram_buckets_are_cumulative(self):
        text = self.registry().to_prometheus()
        assert 'repro_latency_bucket{le="10"} 1' in text
        assert 'repro_latency_bucket{le="20"} 3' in text
        assert 'repro_latency_bucket{le="+Inf"} 3' in text
        assert "repro_latency_count 3" in text

    def test_series_export_count_and_sum(self):
        text = self.registry().to_prometheus()
        assert "repro_util_count 2" in text
        assert "repro_util_sum 4.0" in text

    def test_nonfinite_gauges_are_skipped(self):
        text = self.registry().to_prometheus()
        assert "repro_bad" not in text

    def test_custom_prefix(self):
        text = self.registry().to_prometheus(prefix="xp")
        assert "xp_noc_flits_sent 7" in text
        assert "repro_" not in text

    def test_noc_telemetry_writes_metrics_prom(self, tmp_path):
        noc = tiny_noc()
        telem = NocTelemetry(noc)
        noc.run_until_drained(max_cycles=500_000)
        paths = telem.write(str(tmp_path / "out"))
        assert paths["metrics_prom"].name == "metrics.prom"
        text = paths["metrics_prom"].read_text()
        # The .prom exposition describes the same registry as the
        # validated metrics.json next to it.
        doc = json.loads(paths["metrics"].read_text())
        validate_metrics(doc)
        done = doc["gauges"]["noc.transactions_completed"]["value"]
        assert done > 0
        assert f"repro_noc_transactions_completed {done}" in text


class TestLaneMetricsRoundTrip:
    """Satellite contract: per-lane campaign metrics and their ci95
    half-widths survive a ``metrics.json`` round-trip intact."""

    @pytest.mark.timeout_guard(240)
    def test_replicated_campaign_metrics_round_trip(self, tmp_path):
        from repro.faults import CampaignSpec, FaultWindow, run_campaign_replicated
        from repro.network.experiments import TopologyNocBuilder
        from repro.network.topology import mesh as mesh_topo

        spec = CampaignSpec(
            builder=TopologyNocBuilder(
                mesh_topo, (2, 2), n_initiators=2, n_targets=2,
                config=NocBuildConfig(
                    ni_txn_timeout=300, ni_txn_retries=1,
                    link_resync_timeout=40,
                ),
            ),
            windows=(FaultWindow("link.*", start=150, duration=400,
                                 error_rate=0.05),),
            rate=0.08, warmup_cycles=100, measure_cycles=800, seed=3,
            label="roundtrip-test",
        )
        result = run_campaign_replicated(spec, replicas=3)
        assert result.ci95 and result.lane_metrics

        reg = MetricsRegistry()
        for name, column in sorted(result.lane_metrics.items()):
            for lane, value in enumerate(column):
                reg.gauge(f"lane.{name}.{lane}").set(float(value))
        for name, half in sorted(result.ci95.items()):
            reg.gauge(f"ci95.{name}").set(float(half))

        path = tmp_path / "metrics.json"
        path.write_text(reg.to_json(sim_cycles=spec.measure_cycles))
        doc = json.loads(path.read_text())
        validate_metrics(doc)

        gauges = doc["gauges"]
        for name, column in result.lane_metrics.items():
            got = tuple(
                gauges[f"lane.{name}.{lane}"]["value"]
                for lane in range(len(column))
            )
            assert got == tuple(float(v) for v in column)
        for name, half in result.ci95.items():
            assert gauges[f"ci95.{name}"]["value"] == pytest.approx(half)
