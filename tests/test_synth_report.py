"""Unit tests for whole-NoC synthesis reports."""

import pytest

from repro.core.config import NocParameters
from repro.network.noc import NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.synth.report import mesh_operating_point, synthesize_noc


def attached_mesh():
    topo = mesh(2, 2)
    attach_round_robin(topo, 2, 2)
    return topo


class TestSynthesisReport:
    def test_component_counts(self):
        report = synthesize_noc(attached_mesh())
        assert len(report.by_kind("switch")) == 4
        assert len(report.by_kind("initiator_ni")) == 2
        assert len(report.by_kind("target_ni")) == 2
        assert len(report.by_kind("link")) == 1  # one aggregate row

    def test_totals_are_sums(self):
        report = synthesize_noc(attached_mesh())
        assert report.total_area_mm2 == pytest.approx(
            sum(c.area_mm2 for c in report.components)
        )
        assert report.total_power_mw == pytest.approx(
            sum(c.power_mw for c in report.components)
        )

    def test_area_by_kind_partitions_total(self):
        report = synthesize_noc(attached_mesh())
        assert sum(report.area_by_kind().values()) == pytest.approx(
            report.total_area_mm2
        )

    def test_min_max_freq_is_slowest_component(self):
        report = synthesize_noc(attached_mesh())
        assert report.min_max_freq_mhz == min(c.max_freq_mhz for c in report.components)

    def test_links_can_be_excluded(self):
        with_links = synthesize_noc(attached_mesh())
        without = synthesize_noc(attached_mesh(), include_links=False)
        assert without.total_area_mm2 < with_links.total_area_mm2
        assert not without.by_kind("link")

    def test_unreachable_target_freq_falls_back_to_component_max(self):
        # 5 GHz is beyond every component; the report must not raise.
        report = synthesize_noc(attached_mesh(), target_freq_mhz=5000.0)
        assert report.total_area_mm2 > 0

    def test_wider_flits_cost_more(self):
        wide = synthesize_noc(
            attached_mesh(), NocBuildConfig(params=NocParameters(flit_width=128))
        )
        narrow = synthesize_noc(
            attached_mesh(), NocBuildConfig(params=NocParameters(flit_width=16))
        )
        assert wide.total_area_mm2 > 2 * narrow.total_area_mm2

    def test_table_rendering_mentions_every_component(self):
        report = synthesize_noc(attached_mesh())
        table = report.to_table()
        for c in report.components:
            assert c.name in table
        assert "TOTAL" in table

    def test_operating_point_per_kind(self):
        report = synthesize_noc(attached_mesh())
        ops = mesh_operating_point(report)
        assert set(ops) == {"switch", "initiator_ni", "target_ni", "link"}
        assert ops["switch"] <= ops["initiator_ni"]

    def test_switch_labels_reflect_radix(self):
        report = synthesize_noc(attached_mesh())
        labels = {c.label for c in report.by_kind("switch")}
        assert labels == {"3x3"}  # 2 mesh neighbours + 1 NI on every switch

    def test_csv_export(self):
        report = synthesize_noc(attached_mesh())
        csv = report.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "name,kind,label,area_mm2,max_freq_mhz,power_mw"
        assert lines[-1].startswith("TOTAL,")
        # One row per component plus header and total.
        assert len(lines) == len(report.components) + 2
        total_area = float(lines[-1].split(",")[3])
        assert total_area == pytest.approx(report.total_area_mm2, abs=1e-5)
