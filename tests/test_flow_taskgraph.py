"""Unit tests for task graphs and core graphs."""

import pytest

from repro.flow.taskgraph import (
    CoreGraph,
    CoreSpec,
    TaskGraph,
    demo_multimedia_soc,
    demo_telecom_soc,
)


def cores():
    return [
        CoreSpec("cpu0", True),
        CoreSpec("cpu1", True),
        CoreSpec("mem0", False),
        CoreSpec("mem1", False),
    ]


class TestTaskGraph:
    def test_flows_accumulate(self):
        tg = TaskGraph("t")
        tg.add_flow("a", "b", 10)
        tg.add_flow("a", "b", 5)
        assert tg.flows() == [("a", "b", 15)]

    def test_zero_rate_rejected(self):
        tg = TaskGraph("t")
        with pytest.raises(ValueError):
            tg.add_flow("a", "b", 0)

    def test_fold_moves_flows_to_cores(self):
        tg = TaskGraph("t")
        tg.add_flow("ta", "tm", 10)
        cg = tg.fold({"ta": "cpu0", "tm": "mem0"}, cores())
        assert cg.demands() == [("cpu0", "mem0", 10)]

    def test_fold_drops_intra_core_flows(self):
        tg = TaskGraph("t")
        tg.add_flow("t1", "t2", 10)
        cg = tg.fold({"t1": "cpu0", "t2": "cpu0"}, cores())
        assert cg.demands() == []

    def test_fold_requires_full_assignment(self):
        tg = TaskGraph("t")
        tg.add_flow("ta", "tb", 1)
        with pytest.raises(ValueError, match="no core assignment"):
            tg.fold({"ta": "cpu0"}, cores())


class TestCoreGraph:
    def test_demand_directions(self):
        cg = CoreGraph("c", cores())
        cg.add_demand("cpu0", "mem0", 10)  # write-ish
        cg.add_demand("mem0", "cpu0", 4)  # read-ish
        assert cg.demand_between("cpu0", "mem0") == 14

    def test_initiator_to_initiator_rejected(self):
        cg = CoreGraph("c", cores())
        with pytest.raises(ValueError, match="initiators"):
            cg.add_demand("cpu0", "cpu1", 5)

    def test_target_to_target_rejected(self):
        cg = CoreGraph("c", cores())
        with pytest.raises(ValueError, match="targets"):
            cg.add_demand("mem0", "mem1", 5)

    def test_unknown_core_rejected(self):
        cg = CoreGraph("c", cores())
        with pytest.raises(ValueError, match="unknown core"):
            cg.add_demand("ghost", "mem0", 5)

    def test_duplicate_core_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CoreGraph("c", [CoreSpec("x", True), CoreSpec("x", False)])

    def test_partition_properties(self):
        cg = CoreGraph("c", cores())
        assert cg.initiators == ["cpu0", "cpu1"]
        assert cg.targets == ["mem0", "mem1"]

    def test_initiator_demands_fold_both_directions(self):
        cg = CoreGraph("c", cores())
        cg.add_demand("cpu0", "mem0", 10)
        cg.add_demand("mem1", "cpu0", 6)
        assert cg.initiator_demands("cpu0") == {"mem0": 10, "mem1": 6}

    def test_total_demand(self):
        cg = CoreGraph("c", cores())
        cg.add_demand("cpu0", "mem0", 10)
        cg.add_demand("cpu1", "mem1", 5)
        assert cg.total_demand() == 15


class TestDemoSoc:
    def test_demo_is_well_formed(self):
        tg, assignment, cg = demo_multimedia_soc()
        assert set(assignment) == set(tg.tasks)
        assert len(cg.initiators) == 4
        assert len(cg.targets) == 4
        assert cg.total_demand() > 0

    def test_demo_demands_touch_every_core(self):
        _, _, cg = demo_multimedia_soc()
        touched = set()
        for a, b, _ in cg.demands():
            touched.add(a)
            touched.add(b)
        assert touched == set(cg.cores)


class TestTelecomDemo:
    def test_well_formed(self):
        tg, assignment, cg = demo_telecom_soc()
        assert set(assignment) == set(tg.tasks)
        assert len(cg.initiators) == 5
        assert len(cg.targets) == 5
        assert cg.total_demand() > 0

    def test_folding_keeps_demand_directions_legal(self):
        _, _, cg = demo_telecom_soc()
        for src, dst, rate in cg.demands():
            assert cg.cores[src].is_initiator != cg.cores[dst].is_initiator
            assert rate > 0

    def test_both_demos_differ_in_shape(self):
        """The pipeline demo concentrates demand; the telecom demo
        spreads it -- selection should see different pictures."""
        _, _, mm = demo_multimedia_soc()
        _, _, tc = demo_telecom_soc()
        assert len(tc.demands()) > len(mm.demands())
        assert set(tc.cores) != set(mm.cores)

    def test_telecom_maps_and_selects(self):
        from repro.flow import select_topology
        from repro.network.topology import mesh, star

        _, _, cg = demo_telecom_soc()
        results = select_topology(cg, [mesh(2, 3), star(4)], seed=1)
        assert len(results) == 2
        assert all(r.feasible for r in results)
