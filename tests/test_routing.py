"""Unit tests for source routing: routes, address maps, LUTs."""

import pytest

from repro.core.packet import ADDR_OFFSET_BITS
from repro.core.routing import AddressMap, Route, RoutingTable, compute_routes, route_between
from repro.network.topology import attach_round_robin, mesh, ring, star


class TestRoute:
    def test_sequence_protocol(self):
        r = Route((1, 2, 0))
        assert len(r) == 3
        assert list(r) == [1, 2, 0]
        assert r[1] == 2
        assert r.hops == 3

    def test_negative_port_rejected(self):
        with pytest.raises(ValueError):
            Route((0, -1))

    def test_empty_route_valid(self):
        assert len(Route(())) == 0


class TestAddressMap:
    def test_regions_are_disjoint_and_aligned(self):
        amap = AddressMap(["a", "b", "c"])
        regions = [amap.region_of(t) for t in ("a", "b", "c")]
        for i, (base, end) in enumerate(regions):
            assert base == i << ADDR_OFFSET_BITS
            assert end - base == 1 << ADDR_OFFSET_BITS

    def test_decode_splits_target_and_offset(self):
        amap = AddressMap(["a", "b"])
        target, offset = amap.decode((1 << ADDR_OFFSET_BITS) + 0x34)
        assert target == "b" and offset == 0x34

    def test_decode_unknown_slot_raises(self):
        amap = AddressMap(["a"])
        with pytest.raises(KeyError):
            amap.decode(5 << ADDR_OFFSET_BITS)

    def test_duplicate_target_rejected(self):
        with pytest.raises(ValueError):
            AddressMap(["a", "a"])

    def test_contains_and_len(self):
        amap = AddressMap(["a", "b"])
        assert "a" in amap and "z" not in amap
        assert len(amap) == 2
        assert amap.targets == ["a", "b"]


class TestRoutingTable:
    def test_lookup_addr(self):
        amap = AddressMap(["m0", "m1"])
        table = RoutingTable(
            address_map=amap,
            forward={"m0": (5, Route((1,))), "m1": (6, Route((2, 0)))},
        )
        target, dest, offset, route = table.lookup_addr(
            (1 << ADDR_OFFSET_BITS) + 7
        )
        assert (target, dest, offset) == ("m1", 6, 7)
        assert tuple(route) == (2, 0)

    def test_lookup_without_map_raises(self):
        with pytest.raises(ValueError, match="no address map"):
            RoutingTable().lookup_addr(0)

    def test_route_back(self):
        table = RoutingTable(reverse={3: Route((0, 1))})
        assert tuple(table.route_back(3)) == (0, 1)
        with pytest.raises(KeyError):
            table.route_back(9)


class TestComputeRoutes:
    def make_attached_mesh(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 2, 2)
        return topo

    def test_routes_exist_for_all_pairs_both_directions(self):
        topo = self.make_attached_mesh()
        routes = compute_routes(topo)
        assert len(routes) == 2 * 2 * 2  # 2 cpus x 2 mems x 2 directions

    def test_route_length_is_switch_count_on_path(self):
        topo = self.make_attached_mesh()
        route = route_between(topo, "cpu0", "mem0")
        src_sw = topo.switch_of("cpu0")
        dst_sw = topo.switch_of("mem0")
        path = topo.switch_path(src_sw, dst_sw, topo.default_policy)
        assert route.hops == len(path)

    def test_last_hop_points_at_target_ni(self):
        topo = self.make_attached_mesh()
        route = route_between(topo, "cpu0", "mem1")
        dst_sw = topo.switch_of("mem1")
        assert route[-1] == topo.port_toward(dst_sw, "mem1")

    def test_intermediate_hops_follow_the_path(self):
        topo = self.make_attached_mesh()
        route = route_between(topo, "cpu0", "mem1", "dor")
        path = topo.switch_path(topo.switch_of("cpu0"), topo.switch_of("mem1"), "dor")
        for i in range(len(path) - 1):
            assert route[i] == topo.port_toward(path[i], path[i + 1])

    def test_same_switch_pair_has_single_hop_route(self):
        topo = star(2)
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "hub")
        topo.attach("mem", "hub")
        route = route_between(topo, "cpu", "mem")
        assert route.hops == 1
        assert route[0] == topo.port_toward("hub", "mem")

    def test_dor_vs_shortest_can_differ_but_both_valid(self):
        topo = mesh(3, 3)
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "sw_0_0")
        topo.attach("mem", "sw_2_2")
        dor = route_between(topo, "cpu", "mem", "dor")
        shortest = route_between(topo, "cpu", "mem", "shortest")
        assert dor.hops == shortest.hops == 5  # 4 fabric hops + ejection

    def test_ring_routes_take_short_way_around(self):
        topo = ring(6)
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "sw_0")
        topo.attach("mem", "sw_5")  # one hop the short way
        route = route_between(topo, "cpu", "mem")
        assert route.hops == 2  # sw_0 -> sw_5 -> eject
