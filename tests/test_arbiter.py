"""Unit tests for the switch arbiters."""

import pytest

from repro.core.arbiter import (
    FixedPriorityArbiter,
    RoundRobinArbiter,
    make_arbiter,
)
from repro.core.config import ArbitrationPolicy


class TestFixedPriority:
    def test_lowest_index_wins(self):
        arb = FixedPriorityArbiter(4)
        assert arb.grant([False, True, True, False]) == 1

    def test_no_request_grants_none(self):
        assert FixedPriorityArbiter(3).grant([False] * 3) is None

    def test_starvation_is_real(self):
        """Fixed priority starves high indices while low ones request."""
        arb = FixedPriorityArbiter(2)
        grants = [arb.grant([True, True]) for _ in range(10)]
        assert grants == [0] * 10

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            FixedPriorityArbiter(3).grant([True])


class TestRoundRobin:
    def test_rotates_after_grant(self):
        arb = RoundRobinArbiter(3)
        grants = [arb.grant([True, True, True]) for _ in range(6)]
        assert grants == [0, 1, 2, 0, 1, 2]

    def test_fair_under_persistent_contention(self):
        arb = RoundRobinArbiter(4)
        counts = [0] * 4
        for _ in range(400):
            counts[arb.grant([True] * 4)] += 1
        assert counts == [100] * 4

    def test_skips_idle_requesters(self):
        arb = RoundRobinArbiter(3)
        assert arb.grant([False, False, True]) == 2
        # Priority now points past 2, wraps to 0.
        assert arb.grant([True, False, True]) == 0

    def test_single_requester_always_wins(self):
        arb = RoundRobinArbiter(3)
        for _ in range(5):
            assert arb.grant([False, True, False]) == 1

    def test_no_request_grants_none_and_keeps_state(self):
        arb = RoundRobinArbiter(2)
        arb.grant([True, False])
        assert arb.grant([False, False]) is None
        assert arb.grant([True, True]) == 1  # state unchanged by the idle cycle

    def test_reset_restores_priority(self):
        arb = RoundRobinArbiter(3)
        arb.grant([True, True, True])
        arb.reset()
        assert arb.grant([True, True, True]) == 0

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(2).grant([True] * 3)


class TestFactory:
    def test_builds_both_policies(self):
        assert isinstance(
            make_arbiter(ArbitrationPolicy.FIXED_PRIORITY, 2), FixedPriorityArbiter
        )
        assert isinstance(
            make_arbiter(ArbitrationPolicy.ROUND_ROBIN, 2), RoundRobinArbiter
        )

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            make_arbiter(ArbitrationPolicy.ROUND_ROBIN, 0)
