"""Unit tests for floorplanning and link pipelining."""

import pytest

from repro.flow.floorplan import (
    Floorplan,
    MM_PER_STAGE_AT_1GHZ,
    floorplan_topology,
    stages_for_length,
)
from repro.network.topology import attach_round_robin, mesh, ring, star


class TestStagesForLength:
    def test_short_wire_needs_one_stage(self):
        assert stages_for_length(0.5, 1000) == 1

    def test_long_wire_needs_more(self):
        assert stages_for_length(MM_PER_STAGE_AT_1GHZ * 2.5, 1000) == 3

    def test_faster_clock_shrinks_reach(self):
        length = MM_PER_STAGE_AT_1GHZ * 1.5
        assert stages_for_length(length, 2000) > stages_for_length(length, 500)

    def test_validation(self):
        with pytest.raises(ValueError):
            stages_for_length(-1, 1000)
        with pytest.raises(ValueError):
            stages_for_length(1, 0)


class TestMeshPlacement:
    def test_mesh_placed_on_its_own_grid(self):
        topo = mesh(2, 3)
        plan = floorplan_topology(topo, tile_mm=1.0)
        assert plan.positions["sw_0_0"] == (0.0, 0.0)
        assert plan.positions["sw_2_1"] == (2.0, 1.0)

    def test_mesh_links_are_one_tile_long(self):
        topo = mesh(2, 2)
        plan = floorplan_topology(topo, tile_mm=1.0)
        assert all(
            length == pytest.approx(1.0) for length in plan.link_lengths_mm.values()
        )

    def test_bounding_box(self):
        topo = mesh(2, 2)
        plan = floorplan_topology(topo, tile_mm=1.0)
        assert plan.bounding_box_mm2 () == pytest.approx(4.0)

    def test_stage_queries(self):
        topo = mesh(2, 2)
        plan = floorplan_topology(topo, tile_mm=1.0)
        assert plan.stages_for("sw_0_0", "sw_1_0", 1000) == 1
        assert plan.max_stages(1000) == 1
        with pytest.raises(KeyError):
            plan.stages_for("sw_0_0", "sw_1_1", 1000)  # not an edge


class TestAnnealedPlacement:
    def test_ring_placement_covers_all_switches(self):
        topo = ring(6)
        plan = floorplan_topology(topo, seed=4)
        assert set(plan.positions) == set(topo.switches)
        # No two switches share a tile.
        assert len(set(plan.positions.values())) == len(topo.switches)

    def test_star_hub_placement_is_compact(self):
        topo = star(4)
        plan = floorplan_topology(topo, seed=1)
        # Total wirelength must beat the worst diagonal placement.
        assert plan.total_wirelength_mm < 4 * 4.0

    def test_deterministic_per_seed(self):
        topo = ring(5)
        a = floorplan_topology(topo, seed=9)
        b = floorplan_topology(topo, seed=9)
        assert a.positions == b.positions

    def test_empty_topology_rejected(self):
        from repro.network.topology import Topology

        with pytest.raises(ValueError):
            floorplan_topology(Topology("empty"))

    def test_attached_nis_do_not_break_floorplan(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 2, 2)
        plan = floorplan_topology(topo)
        assert len(plan.positions) == 4  # switches only
