"""ExperimentRunner: caching, parallelism, and stable cache keys."""

import dataclasses
import enum
import functools

import pytest

from repro.flow.runner import (
    CACHE_VERSION,
    ExperimentRunner,
    RunManifest,
    stable_repr,
)
from repro.network.topology import mesh


def _square(x):
    """Module-level so worker processes can unpickle it."""
    return x * x


def _boom(x):
    raise ValueError(f"point {x} exploded")


class TestMap:
    def test_sequential_matches_list_comprehension(self):
        runner = ExperimentRunner()
        assert runner.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert runner.cache_hits == 0 and runner.cache_misses == 3

    def test_parallel_preserves_input_order(self):
        runner = ExperimentRunner(jobs=2)
        assert runner.map(_square, list(range(8))) == [x * x for x in range(8)]

    def test_reports_one_entry_per_point(self):
        runner = ExperimentRunner()
        runner.map(_square, [5, 6], label="sq")
        labels = [r.label for r in runner.reports]
        assert labels == ["sq[0]", "sq[1]"]
        assert all(not r.cached for r in runner.reports)
        assert "sq[0]" in runner.render_report()

    def test_worker_exception_propagates(self):
        runner = ExperimentRunner(jobs=2)
        with pytest.raises(ValueError, match="exploded"):
            runner.map(_boom, [1])


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        first = runner.map(_square, [3, 4])
        assert (runner.cache_hits, runner.cache_misses) == (0, 2)
        second = runner.map(_square, [3, 4])
        assert (runner.cache_hits, runner.cache_misses) == (2, 2)
        assert first == second
        assert [r.cached for r in runner.reports] == [False, False, True, True]

    def test_cache_survives_runner_instances(self, tmp_path):
        ExperimentRunner(cache_dir=str(tmp_path)).map(_square, [9])
        fresh = ExperimentRunner(cache_dir=str(tmp_path))
        assert fresh.map(_square, [9]) == [81]
        assert fresh.cache_hits == 1

    def test_different_args_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        runner.map(_square, [3])
        runner.map(_square, [4])
        assert runner.cache_hits == 0

    def test_different_functions_do_not_collide(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        runner.map(_square, [3])
        assert runner.map(abs, [3]) == [3]  # not 9 served from _square's entry
        assert runner.cache_hits == 0

    def test_salt_invalidates(self, tmp_path):
        ExperimentRunner(cache_dir=str(tmp_path)).map(_square, [3])
        salted = ExperimentRunner(cache_dir=str(tmp_path), salt="rev2")
        salted.map(_square, [3])
        assert salted.cache_misses == 1 and salted.cache_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        runner.map(_square, [3])
        for p in tmp_path.glob("*.pkl"):
            p.write_bytes(b"not a pickle")
        again = ExperimentRunner(cache_dir=str(tmp_path))
        with pytest.warns(RuntimeWarning, match="quarantined"):
            assert again.map(_square, [3]) == [9]
        assert again.cache_misses == 1
        assert again.corrupt_cache_entries == 1

    def test_parallel_runs_populate_the_cache(self, tmp_path):
        runner = ExperimentRunner(jobs=2, cache_dir=str(tmp_path))
        runner.map(_square, [1, 2, 3])
        sequential = ExperimentRunner(cache_dir=str(tmp_path))
        assert sequential.map(_square, [1, 2, 3]) == [1, 4, 9]
        assert sequential.cache_hits == 3


class TestManifests:
    def test_map_records_one_manifest_per_point_in_order(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        runner.map(_square, [3, 4])
        assert len(runner.last_manifests) == 2
        assert [m.cached for m in runner.last_manifests] == [False, False]
        keys = [m.key for m in runner.last_manifests]
        assert keys[0] != keys[1]
        runner.map(_square, [3, 4])
        assert [m.cached for m in runner.last_manifests] == [True, True]
        assert [m.key for m in runner.last_manifests] == keys
        assert all(m.seconds == 0.0 for m in runner.last_manifests)

    def test_manifest_pins_library_state(self):
        import repro

        runner = ExperimentRunner()
        runner.map(_square, [2])
        m = runner.last_manifests[0]
        assert m.repro_version == repro.__version__
        assert m.cache_version == CACHE_VERSION
        assert m.seconds >= 0.0

    def test_manifests_reset_per_map_call(self):
        runner = ExperimentRunner()
        runner.map(_square, [1, 2, 3])
        runner.map(_square, [9])
        assert len(runner.last_manifests) == 1

    def test_parallel_map_still_manifests_in_order(self, tmp_path):
        runner = ExperimentRunner(jobs=2, cache_dir=str(tmp_path))
        runner.map(_square, [1, 2, 3])
        assert len(runner.last_manifests) == 3
        assert all(isinstance(m, RunManifest) for m in runner.last_manifests)
        assert all(not m.cached for m in runner.last_manifests)


class TestFromEnv:
    def test_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        runner = ExperimentRunner.from_env()
        assert runner.jobs == 1 and runner.cache_dir is None

    def test_garbage_jobs_value_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "abc")
        with pytest.raises(ValueError, match="REPRO_JOBS"):
            ExperimentRunner.from_env()

    def test_reads_environment(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_JOBS", "4")
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        runner = ExperimentRunner.from_env()
        assert runner.jobs == 4 and runner.cache_dir == str(tmp_path)


class _Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass
class _Cfg:
    depth: int
    label: str


class _Token:
    def __init__(self, value):
        self.value = value

    def cache_token(self):
        return ("_Token", self.value)


class TestStableRepr:
    def test_primitives_round_trip(self):
        assert stable_repr(3) != stable_repr("3")
        assert stable_repr(0.1) == stable_repr(0.1)
        assert stable_repr(True) != stable_repr(1)

    def test_dict_order_is_canonical(self):
        assert stable_repr({"a": 1, "b": 2}) == stable_repr({"b": 2, "a": 1})

    def test_set_order_is_canonical(self):
        assert stable_repr({3, 1, 2}) == stable_repr({2, 3, 1})

    def test_dataclass_by_fields(self):
        assert stable_repr(_Cfg(4, "x")) == stable_repr(_Cfg(4, "x"))
        assert stable_repr(_Cfg(4, "x")) != stable_repr(_Cfg(6, "x"))

    def test_enum_by_name(self):
        assert "_Color.RED" in stable_repr(_Color.RED)

    def test_callable_by_qualname_not_address(self):
        assert stable_repr(_square) == stable_repr(_square)
        assert "0x" not in stable_repr(_square)
        assert stable_repr(_square) != stable_repr(_boom)

    def test_partial_includes_bound_arguments(self):
        a = functools.partial(_square, 2)
        b = functools.partial(_square, 3)
        assert stable_repr(a) != stable_repr(b)

    def test_cache_token_is_honoured(self):
        assert stable_repr(_Token(1)) == stable_repr(_Token(1))
        assert stable_repr(_Token(1)) != stable_repr(_Token(2))

    def test_topology_token_distinguishes_shapes(self):
        assert stable_repr(mesh(2, 2)) != stable_repr(mesh(3, 3))
        assert stable_repr(mesh(2, 2)) == stable_repr(mesh(2, 2))

    def test_opaque_fallback_is_type_only(self):
        class Opaque:
            pass

        # Documented limitation: value-carrying objects without
        # cache_token() collide by design -- the repr is type identity.
        assert stable_repr(Opaque()) == stable_repr(Opaque())
        assert "Opaque" in stable_repr(Opaque())

    def test_salt_and_version_feed_the_key(self):
        assert isinstance(CACHE_VERSION, int)
        k1 = ExperimentRunner()._key(_square, 3)
        k2 = ExperimentRunner(salt="s")._key(_square, 3)
        assert k1 != k2


def _make_adder(n):
    def add(x):
        return x + n

    return add


class TestKeyableGuard:
    """Cached runs must refuse functions whose stable_repr collides."""

    def test_closures_with_different_cells_share_a_key(self):
        """The collision the guard exists for: stable_repr hashes
        callables by qualname, so these two semantically different
        functions would silently share every cache record."""
        runner = ExperimentRunner()
        add1, add2 = _make_adder(1), _make_adder(1000)
        assert add1(1) != add2(1)
        assert stable_repr(add1) == stable_repr(add2)
        assert runner._key(add1, 5) == runner._key(add2, 5)

    def test_lambda_rejected_when_caching(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="lambda"):
            runner.map(lambda x: x, [1])

    def test_closure_rejected_when_caching(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="closure"):
            runner.map(_make_adder(3), [1])

    def test_closure_rejected_when_storing(self, tmp_path):
        from repro.store import ResultStore

        runner = ExperimentRunner(store=ResultStore(tmp_path / "store"))
        with pytest.raises(ValueError, match="captured"):
            runner.map(_make_adder(3), [1])

    def test_partial_over_named_function_is_fine(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
        assert runner.map(functools.partial(_square), [3]) == [9]

    def test_partial_over_lambda_still_rejected(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path / "cache"))
        with pytest.raises(ValueError, match="lambda"):
            runner.map(functools.partial(lambda x: x), [1])

    def test_uncached_runner_still_accepts_lambdas(self):
        """Without a cache the key is only a reporting label; refusing
        lambdas there would break exploratory use for no protection."""
        assert ExperimentRunner().map(lambda x: x + 1, [1, 2]) == [2, 3]
