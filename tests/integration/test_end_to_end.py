"""Integration tests: whole networks moving real transactions.

These exercise the full stack -- OCP cores, NIs, switches, links,
flow control -- on multiple topologies, checking delivery, ordering,
data integrity and robustness against injected link errors.
"""

import pytest

from repro.core.config import LinkConfig, NocParameters
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import (
    attach_round_robin,
    mesh,
    ring,
    spidergon,
    star,
    torus,
)
from repro.network.traffic import (
    PermutationTraffic,
    ScriptedTraffic,
    TxnTemplate,
    UniformRandomTraffic,
)


def run_uniform(topo, n_cpus, n_mems, txns=30, rate=0.15, cfg=None, max_cycles=300_000):
    cpus, mems = attach_round_robin(topo, n_cpus, n_mems)
    noc = Noc(topo, cfg)
    noc.populate(
        {c: UniformRandomTraffic(mems, rate, seed=10 + i) for i, c in enumerate(cpus)},
        max_transactions=txns,
    )
    noc.run_until_drained(max_cycles=max_cycles)
    return noc


class TestTopologies:
    @pytest.mark.parametrize("factory,args", [
        (mesh, (2, 2)),
        (mesh, (3, 3)),
        (star, (4,)),
        (spidergon, (4,)),
        (torus, (3, 3)),
    ])
    def test_all_transactions_complete(self, factory, args):
        noc = run_uniform(factory(*args), n_cpus=3, n_mems=3)
        assert noc.total_completed() == 3 * 30

    def test_ring_light_load(self):
        noc = run_uniform(ring(4), n_cpus=2, n_mems=2, rate=0.05)
        assert noc.total_completed() == 2 * 30

    def test_no_retransmissions_without_contention_or_errors(self):
        topo = mesh(1, 2)
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "sw_0_0")
        topo.attach("mem", "sw_1_0")
        noc = Noc(topo)
        noc.populate(
            {"cpu": PermutationTraffic("mem", rate=0.02, seed=1)},
            max_transactions=20,
        )
        noc.run_until_drained(max_cycles=100_000)
        assert noc.total_completed() == 20
        assert noc.total_retransmissions() == 0


class TestDataIntegrity:
    def test_every_written_word_reads_back(self):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 1, 2)
        noc = Noc(topo)
        script = []
        for i in range(8):
            script.append(
                (i * 5, TxnTemplate("mem0", offset=i, is_read=False, burst_len=1))
            )
        for i in range(8):
            script.append(
                (400 + i * 5, TxnTemplate("mem0", offset=i, is_read=True, burst_len=1))
            )
        master = noc.add_traffic_master(
            "cpu0", ScriptedTraffic(script), max_transactions=len(script)
        )
        for m in mems:
            noc.add_memory_slave(m)
        noc.run_until_drained(max_cycles=100_000)
        slave = noc.slaves["mem0"]
        reads = list(master.read_data.values())
        assert len(reads) == 8
        stored = [slave.memory[i] for i in range(8)]
        assert sorted(d[0] for d in reads) == sorted(stored)

    def test_burst_integrity_across_the_network(self):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 1, 1)
        noc = Noc(topo)
        script = [
            (0, TxnTemplate("mem0", offset=0x20, is_read=False, burst_len=8)),
            (200, TxnTemplate("mem0", offset=0x20, is_read=True, burst_len=8)),
        ]
        master = noc.add_traffic_master("cpu0", ScriptedTraffic(script), max_transactions=2)
        noc.add_memory_slave("mem0")
        noc.run_until_drained(max_cycles=100_000)
        data = list(master.read_data.values())[0]
        slave = noc.slaves["mem0"]
        assert data == tuple(slave.memory[0x20 + b] for b in range(8))

    @pytest.mark.parametrize("width", [16, 64, 128])
    def test_flit_width_sweep_preserves_data(self, width):
        cfg = NocBuildConfig(params=NocParameters(flit_width=width))
        noc = run_uniform(mesh(2, 2), 2, 2, txns=15, cfg=cfg)
        assert noc.total_completed() == 30


class TestUnreliableLinks:
    @pytest.mark.parametrize("ber", [0.001, 0.01, 0.05])
    def test_all_transactions_survive_link_errors(self, ber):
        cfg = NocBuildConfig(link=LinkConfig(stages=1, error_rate=ber), seed=33)
        noc = run_uniform(mesh(2, 2), 2, 2, txns=25, rate=0.1, cfg=cfg,
                          max_cycles=500_000)
        assert noc.total_completed() == 50
        if ber >= 0.01:
            assert noc.total_errors_injected() > 0
            assert noc.total_retransmissions() > 0

    def test_error_free_payloads_despite_corruption(self):
        """Corrupted flits are retransmitted, never delivered."""
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        cfg = NocBuildConfig(link=LinkConfig(error_rate=0.05), seed=7)
        noc = Noc(topo, cfg)
        script = [
            (0, TxnTemplate("mem0", offset=1, is_read=False, burst_len=4)),
            (300, TxnTemplate("mem0", offset=1, is_read=True, burst_len=4)),
        ]
        master = noc.add_traffic_master("cpu0", ScriptedTraffic(script), max_transactions=2)
        noc.add_memory_slave("mem0")
        noc.run_until_drained(max_cycles=300_000)
        data = list(master.read_data.values())[0]
        slave = noc.slaves["mem0"]
        assert data == tuple(slave.memory[1 + b] for b in range(4))


class TestPipelinedLinks:
    @pytest.mark.parametrize("stages", [1, 2, 4])
    def test_deeper_links_deliver(self, stages):
        cfg = NocBuildConfig(link=LinkConfig(stages=stages))
        noc = run_uniform(mesh(2, 2), 2, 2, txns=20, cfg=cfg)
        assert noc.total_completed() == 40

    def test_latency_grows_with_link_depth(self):
        def mean_latency(stages):
            cfg = NocBuildConfig(link=LinkConfig(stages=stages))
            noc = run_uniform(mesh(2, 2), 2, 2, txns=20, rate=0.02, cfg=cfg)
            return noc.aggregate_latency().mean()

        assert mean_latency(4) > mean_latency(1)


class TestSwitchGenerations:
    def test_lite_2stage_beats_original_7stage(self):
        """The paper's headline: 7 -> 2 stage switches cut latency."""
        def mean_latency(stages):
            cfg = NocBuildConfig(pipeline_stages=stages)
            noc = run_uniform(mesh(3, 3), 2, 2, txns=20, rate=0.02, cfg=cfg)
            return noc.aggregate_latency().mean()

        lite, old = mean_latency(2), mean_latency(7)
        assert lite < old
        assert old - lite >= 5  # several hops x 5 extra stages, both directions


class TestSideband:
    def test_interrupt_crosses_the_network(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        noc = Noc(topo)
        master = noc.add_traffic_master(
            "cpu0", ScriptedTraffic([]), max_transactions=0
        )
        noc.add_memory_slave("mem0", interrupt_schedule=[(20, 0x3)])
        noc.run(300)
        assert len(master.interrupts) == 1
        assert master.interrupts[0].vector == 0x3


class TestOrdering:
    def test_per_target_responses_in_issue_order(self):
        """In-order per path: reads from one target complete in order."""
        topo = mesh(2, 2)
        attach_round_robin(topo, 1, 1)
        noc = Noc(topo)
        script = [
            (0, TxnTemplate("mem0", offset=i, is_read=True)) for i in range(6)
        ]
        master = noc.add_traffic_master(
            "cpu0", ScriptedTraffic(script), max_outstanding=4,
            max_transactions=6,
        )
        noc.add_memory_slave("mem0")
        noc.run_until_drained(max_cycles=100_000)
        # Latency samples are appended in completion order; issue order
        # equals txn_id order, and completions must match it.
        assert master.completed == 6


class TestScale:
    def test_4x4_mesh_with_12_cores(self):
        noc = run_uniform(mesh(4, 4), 6, 6, txns=15, rate=0.08)
        assert noc.total_completed() == 90

    def test_aggregate_stats_consistent(self):
        noc = run_uniform(mesh(2, 2), 2, 2, txns=25)
        lat = noc.aggregate_latency()
        assert lat.count == noc.total_completed()
        assert noc.total_issued() == noc.total_completed()
        assert lat.minimum() >= 10  # floor: NIs + 2 switches + 3 links
