"""Scale soak tests: bigger fabrics, more cores, longer runs."""

import pytest

from repro.network.noc import Noc, NocBuildConfig
from repro.network.scoreboard import (
    add_checked_masters,
    assert_all_clean,
    private_stripe_patterns,
)
from repro.network.topology import attach_round_robin, mesh, torus
from repro.network.traffic import UniformRandomTraffic


class TestScale:
    def test_5x5_mesh_20_cores_checked(self):
        topo = mesh(5, 5)
        cpus, mems = attach_round_robin(topo, 10, 10)
        noc = Noc(topo)
        patterns = private_stripe_patterns(cpus, mems, rate=0.04, seed=9)
        masters = add_checked_masters(noc, patterns, max_transactions=8)
        for m in mems:
            noc.add_memory_slave(m)
        noc.run_until_drained(max_cycles=2_000_000)
        assert noc.total_completed() == 80
        assert_all_clean(masters)

    def test_4x4_torus_12_cores(self):
        topo = torus(4, 4)
        cpus, mems = attach_round_robin(topo, 6, 6)
        noc = Noc(topo)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.03, seed=i) for i, c in enumerate(cpus)},
            max_transactions=10,
        )
        noc.run_until_drained(max_cycles=2_000_000)
        assert noc.total_completed() == 60

    def test_mesh_case_study_platform_runs(self):
        """The paper's 3x4 mesh with 19 cores, moving real traffic."""
        topo = mesh(4, 3)
        switches = topo.switches
        cpus, mems = [], []
        for i in range(8):
            topo.add_initiator(f"cpu{i}")
            topo.attach(f"cpu{i}", switches[i])
            cpus.append(f"cpu{i}")
        for i in range(11):
            topo.add_target(f"mem{i}")
            topo.attach(f"mem{i}", switches[(8 + i) % 12])
            mems.append(f"mem{i}")
        noc = Noc(topo)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.05, seed=i) for i, c in enumerate(cpus)},
            max_transactions=12,
        )
        cycles = noc.run_until_drained(max_cycles=2_000_000)
        assert noc.total_completed() == 8 * 12
        # Network latency on the case-study platform stays modest.
        assert noc.network_latency().mean() < 40
        assert cycles < 50_000

    def test_many_masters_one_hot_target(self):
        """Worst-case convergecast: 8 masters, 1 memory, heavy load."""
        topo = mesh(3, 3)
        cpus, mems = attach_round_robin(topo, 8, 1)
        noc = Noc(topo)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.3, seed=i) for i, c in enumerate(cpus)},
            wait_states=0,
            max_transactions=10,
        )
        noc.run_until_drained(max_cycles=5_000_000)
        assert noc.total_completed() == 80
        # Convergecast forces real arbitration work.
        assert sum(sw.allocation_conflicts for sw in noc.switches.values()) > 0
