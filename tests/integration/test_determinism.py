"""Determinism invariants: reset, rebuild and seed reproducibility.

A simulator whose runs cannot be reproduced cannot be debugged.  These
tests pin the three reproducibility contracts: (1) ``Simulator.reset``
restores the exact power-on state of a whole NoC, (2) two independently
built identical NoCs behave identically, (3) changing a seed actually
changes stochastic behaviour.
"""

from repro.core.config import LinkConfig
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import UniformRandomTraffic


def build(seed=1, error_rate=0.0):
    topo = mesh(2, 2)
    cpus, mems = attach_round_robin(topo, 2, 2)
    noc = Noc(topo, NocBuildConfig(link=LinkConfig(error_rate=error_rate), seed=seed))
    noc.populate(
        {c: UniformRandomTraffic(mems, 0.1, seed=10 + i) for i, c in enumerate(cpus)},
        max_transactions=20,
    )
    return noc


def signature(noc):
    return (
        noc.sim.cycle,
        noc.total_completed(),
        sorted(noc.aggregate_latency().samples),
        sorted(noc.network_latency().samples),
        noc.total_flits_carried(),
        noc.total_retransmissions(),
    )


class TestDeterminism:
    def test_reset_restores_power_on_state(self):
        noc = build()
        noc.run_until_drained()
        first = signature(noc)
        noc.sim.reset()
        noc.run_until_drained()
        assert signature(noc) == first

    def test_reset_with_error_injection(self):
        """Link PRNGs reseed on reset, so lossy runs replay exactly."""
        noc = build(error_rate=0.03)
        noc.run_until_drained(max_cycles=1_000_000)
        first = signature(noc)
        assert noc.total_errors_injected() > 0
        noc.sim.reset()
        noc.run_until_drained(max_cycles=1_000_000)
        assert signature(noc) == first

    def test_identical_builds_behave_identically(self):
        a, b = build(), build()
        a.run_until_drained()
        b.run_until_drained()
        assert signature(a) == signature(b)

    def test_different_link_seed_changes_error_pattern(self):
        a = build(seed=1, error_rate=0.05)
        b = build(seed=999, error_rate=0.05)
        a.run_until_drained(max_cycles=1_000_000)
        b.run_until_drained(max_cycles=1_000_000)
        # Same workload, same totals...
        assert a.total_completed() == b.total_completed()
        # ...but different stochastic behaviour.
        assert (
            a.total_retransmissions() != b.total_retransmissions()
            or sorted(a.aggregate_latency().samples)
            != sorted(b.aggregate_latency().samples)
        )
