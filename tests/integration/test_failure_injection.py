"""Failure-injection sweeps: the protocol under combined stress.

Each test combines several stressors (deep links, bit errors, heavy
contention, posted writes, exotic topologies) and demands the same
outcome: every transaction completes and every checked word is exact.
"""

import pytest

from repro.core.config import LinkConfig, NocParameters
from repro.network.noc import Noc, NocBuildConfig
from repro.network.scoreboard import (
    add_checked_masters,
    assert_all_clean,
    private_stripe_patterns,
)
from repro.network.topology import (
    attach_round_robin,
    fat_tree,
    hypercube,
    mesh,
    spidergon,
)


def checked_run(
    topo_factory,
    topo_args,
    cfg,
    n_cpus=2,
    n_mems=2,
    rate=0.08,
    txns=20,
    max_cycles=3_000_000,
    burst_len=1,
):
    topo = topo_factory(*topo_args)
    cpus, mems = attach_round_robin(topo, n_cpus, n_mems)
    noc = Noc(topo, cfg)
    patterns = private_stripe_patterns(
        cpus, mems, rate=rate, burst_len=burst_len, seed=77
    )
    masters = add_checked_masters(noc, patterns, max_transactions=txns)
    for m in mems:
        noc.add_memory_slave(m)
    noc.run_until_drained(max_cycles=max_cycles)
    assert noc.total_completed() == n_cpus * txns
    assert_all_clean(masters)
    return noc


class TestCombinedStress:
    def test_deep_links_with_errors(self):
        cfg = NocBuildConfig(link=LinkConfig(stages=3, error_rate=0.02), seed=8)
        noc = checked_run(mesh, (2, 2), cfg)
        assert noc.total_errors_injected() > 0

    def test_bit_errors_with_crc_and_bursts(self):
        cfg = NocBuildConfig(
            crc_mode=True,
            link=LinkConfig(error_rate=0.01, bit_errors=True),
            seed=9,
        )
        checked_run(mesh, (2, 2), cfg, burst_len=4, txns=15)

    def test_errors_with_shallow_queues(self):
        cfg = NocBuildConfig(
            buffer_depth=2, link=LinkConfig(error_rate=0.02), seed=10
        )
        checked_run(mesh, (2, 2), cfg, rate=0.15)

    def test_posted_writes_under_errors(self):
        cfg = NocBuildConfig(
            ni_posted_writes=True, link=LinkConfig(error_rate=0.02), seed=11
        )
        noc = checked_run(mesh, (2, 2), cfg, txns=15)
        assert noc.total_errors_injected() > 0

    def test_thread_order_under_errors(self):
        cfg = NocBuildConfig(
            ni_enforce_thread_order=True, link=LinkConfig(error_rate=0.01), seed=12
        )
        checked_run(mesh, (2, 2), cfg, txns=15)

    def test_old_7stage_switches_with_errors(self):
        cfg = NocBuildConfig(
            pipeline_stages=7, link=LinkConfig(error_rate=0.01), seed=13
        )
        checked_run(mesh, (2, 2), cfg, txns=12)

    @pytest.mark.parametrize("factory,args", [
        (spidergon, (6,)),
        (hypercube, (3,)),
        (fat_tree, (3,)),
    ])
    def test_exotic_topologies_with_errors(self, factory, args):
        cfg = NocBuildConfig(link=LinkConfig(error_rate=0.01), seed=14)
        checked_run(factory, args, cfg, txns=12, rate=0.05)

    def test_narrow_flits_under_everything(self):
        """16-bit flits: long packets, deep links, errors, contention."""
        cfg = NocBuildConfig(
            params=NocParameters(flit_width=16),
            link=LinkConfig(stages=2, error_rate=0.01),
            buffer_depth=3,
            seed=15,
        )
        checked_run(mesh, (2, 2), cfg, burst_len=4, rate=0.1, txns=12)

    def test_interrupt_storm_alongside_traffic(self):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 1, 2)
        noc = Noc(topo, NocBuildConfig(link=LinkConfig(error_rate=0.01), seed=16))
        patterns = private_stripe_patterns(cpus, mems, rate=0.1, seed=3)
        masters = add_checked_masters(noc, patterns, max_transactions=20)
        noc.add_memory_slave(mems[0], interrupt_schedule=[(i * 40, i) for i in range(8)])
        noc.add_memory_slave(mems[1])
        noc.run_until_drained(max_cycles=2_000_000)
        assert_all_clean(masters)
        assert len(masters[cpus[0]].interrupts) == 8
