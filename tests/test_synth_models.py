"""Unit tests for the synthesis area/power/timing models (structure)."""

import pytest

from repro.core.config import LinkConfig, NiConfig, NocParameters, SwitchConfig
from repro.synth import (
    UMC130,
    frequency_area_curve,
    link_area_mm2,
    ni_area_mm2,
    ni_max_freq_mhz,
    ni_power_mw,
    scale_to_node,
    speed_fraction,
    switch_area_mm2,
    switch_delay_ps,
    switch_max_freq_mhz,
    switch_power_mw,
)


def sw(n_in=4, n_out=4, **kw):
    return SwitchConfig(n_inputs=n_in, n_outputs=n_out, **kw)


def params(w=32):
    return NocParameters(flit_width=w)


class TestAreaMonotonicity:
    def test_area_grows_with_flit_width(self):
        areas = [switch_area_mm2(sw(), params(w)) for w in (16, 32, 64, 128)]
        assert areas == sorted(areas)
        assert areas[-1] > 2 * areas[0]

    def test_area_grows_with_radix(self):
        a44 = switch_area_mm2(sw(4, 4), params())
        a55 = switch_area_mm2(sw(5, 5), params())
        a66 = switch_area_mm2(sw(6, 6), params())
        assert a44 < a55 < a66

    def test_area_grows_with_buffer_depth(self):
        shallow = switch_area_mm2(sw(buffer_depth=2), params())
        deep = switch_area_mm2(sw(buffer_depth=12), params())
        assert deep > shallow

    def test_deep_pipeline_costs_extra_registers(self):
        lite = switch_area_mm2(sw(pipeline_stages=2), params())
        old = switch_area_mm2(sw(pipeline_stages=7), params())
        assert old > lite

    def test_asymmetric_radix(self):
        a64 = switch_area_mm2(sw(6, 4), params())
        a44 = switch_area_mm2(sw(4, 4), params())
        assert a64 > a44

    def test_ni_grows_with_flit_width(self):
        areas = [
            ni_area_mm2(NiConfig(params=params(w))) for w in (16, 32, 64, 128)
        ]
        assert areas == sorted(areas)

    def test_target_ni_bigger_than_initiator(self):
        cfg = NiConfig(params=params())
        assert ni_area_mm2(cfg, initiator=False) > ni_area_mm2(cfg, initiator=True)

    def test_ni_much_smaller_than_switch(self):
        cfg = NiConfig(params=params())
        assert ni_area_mm2(cfg) < 0.6 * switch_area_mm2(sw(), params())

    def test_lut_size_matters(self):
        cfg = NiConfig(params=params())
        small = ni_area_mm2(cfg, n_destinations=2)
        big = ni_area_mm2(cfg, n_destinations=40)
        assert big > small

    def test_ni_needs_a_destination(self):
        with pytest.raises(ValueError):
            ni_area_mm2(NiConfig(params=params()), n_destinations=0)

    def test_link_area_scales_with_stages_and_width(self):
        a1 = link_area_mm2(LinkConfig(stages=1), params())
        a3 = link_area_mm2(LinkConfig(stages=3), params())
        assert a3 == pytest.approx(3 * a1)
        wide = link_area_mm2(LinkConfig(stages=1), params(128))
        assert wide > a1


class TestTiming:
    def test_delay_grows_with_radix(self):
        assert switch_delay_ps(sw(8, 8), params()) > switch_delay_ps(sw(2, 2), params())

    def test_delay_grows_with_flit_width(self):
        assert switch_delay_ps(sw(), params(128)) > switch_delay_ps(sw(), params(16))

    def test_max_freq_inverse_of_delay(self):
        f = switch_max_freq_mhz(sw(), params())
        d = switch_delay_ps(sw(), params())
        assert f == pytest.approx(1e6 / (d / UMC130.effort_gain))

    def test_ni_faster_than_switch(self):
        assert ni_max_freq_mhz(NiConfig(params=params())) > switch_max_freq_mhz(
            sw(), params()
        )

    def test_speed_fraction_bounds(self):
        relaxed = 1000.0
        assert speed_fraction(relaxed, UMC130, 100.0) == 0.0  # easy target
        max_f = 1e6 / (relaxed / UMC130.effort_gain)
        assert speed_fraction(relaxed, UMC130, max_f) == pytest.approx(1.0)
        with pytest.raises(ValueError, match="beyond"):
            speed_fraction(relaxed, UMC130, max_f * 1.1)
        with pytest.raises(ValueError):
            speed_fraction(relaxed, UMC130, -5)


class TestFrequencyDerating:
    def test_area_flat_until_relaxed_frequency(self):
        cfg, p = sw(), params()
        relaxed_f = 1e6 / switch_delay_ps(cfg, p)
        a_lo = switch_area_mm2(cfg, p, target_freq_mhz=relaxed_f * 0.5)
        a_rel = switch_area_mm2(cfg, p, target_freq_mhz=relaxed_f)
        assert a_lo == pytest.approx(a_rel)

    def test_area_grows_toward_max_frequency(self):
        cfg, p = sw(5, 5), params()
        fmax = switch_max_freq_mhz(cfg, p)
        a_rel = switch_area_mm2(cfg, p)
        a_max = switch_area_mm2(cfg, p, target_freq_mhz=fmax)
        assert a_max == pytest.approx(a_rel * (1 + UMC130.area_derate_max), rel=1e-6)

    def test_curve_monotonic_and_skips_unreachable(self):
        cfg, p = sw(5, 5), params()
        fmax = switch_max_freq_mhz(cfg, p)
        freqs = [100, 500, 900, 1200, fmax, fmax * 2]
        curve = frequency_area_curve(cfg, p, freqs)
        assert len(curve) == 5  # the 2*fmax point fails timing
        areas = [a for _, a in curve]
        assert areas == sorted(areas)


class TestPower:
    def test_power_scales_with_frequency(self):
        p1 = switch_power_mw(sw(), params(), 500, target_freq_mhz=500)
        p2 = switch_power_mw(sw(), params(), 1000, target_freq_mhz=1000)
        assert p2 > 1.8 * p1

    def test_power_scales_with_flit_width(self):
        p16 = switch_power_mw(sw(), params(16), 1000)
        p128 = switch_power_mw(sw(), params(128), 1000)
        assert p128 > 2 * p16

    def test_activity_scales_dynamic_power(self):
        lo = switch_power_mw(sw(), params(), 1000, activity=0.1)
        hi = switch_power_mw(sw(), params(), 1000, activity=0.9)
        assert hi > 5 * lo

    def test_ni_power_positive_and_smaller_than_switch(self):
        cfg = NiConfig(params=params())
        ni_p = ni_power_mw(cfg, 1000)
        sw_p = switch_power_mw(sw(), params(), 1000)
        assert 0 < ni_p < sw_p

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            switch_power_mw(sw(), params(), -1)
        with pytest.raises(ValueError):
            switch_power_mw(sw(), params(), 1000, activity=0.0)


class TestTechnologyScaling:
    def test_smaller_node_shrinks_area(self):
        lib90 = scale_to_node(UMC130, 90)
        assert switch_area_mm2(sw(), params(), lib=lib90) < switch_area_mm2(
            sw(), params()
        )

    def test_smaller_node_speeds_up(self):
        lib90 = scale_to_node(UMC130, 90)
        assert switch_max_freq_mhz(sw(), params(), lib=lib90) > switch_max_freq_mhz(
            sw(), params()
        )

    def test_invalid_node_rejected(self):
        with pytest.raises(ValueError):
            scale_to_node(UMC130, 0)

    def test_library_validation(self):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(UMC130, ff_area_um2_per_bit=-1.0)
        with pytest.raises(ValueError):
            dataclasses.replace(UMC130, effort_gain=0.5)
