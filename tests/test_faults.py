"""Tests for repro.faults: injection, watchdog, timeouts, campaigns.

The resilience contract under test (docs/RESILIENCE.md): fault windows
open and close punctually on the links they name; a network that stops
moving raises :class:`NoProgressError` with a diagnostic snapshot
instead of hanging; NI transaction timeouts retry and then *report*
lost transactions; and campaigns measure all of it reproducibly through
the experiment runner.
"""

import dataclasses

import pytest

from repro.faults import (
    CampaignSpec,
    FaultCampaign,
    FaultInjector,
    FaultWindow,
    NoProgressError,
    ProgressWatchdog,
    randomized_windows,
    run_campaign,
)
from repro.flow.runner import ExperimentRunner
from repro.network.experiments import TopologyNocBuilder, verify_fast_path
from repro.network.monitors import occupancy_snapshot
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh, ring
from repro.network.traffic import UniformRandomTraffic
from repro.sim.kernel import SimulationError

from tests.conftest import build_small_mesh_noc

CORNER = "link.sw_0_0.p*"

RECOVERY = dict(ni_txn_timeout=300, ni_txn_retries=1, link_resync_timeout=40)


def populated(noc, cpus, mems, rate=0.05, **kw):
    noc.populate(
        {c: UniformRandomTraffic(mems, rate, seed=i) for i, c in enumerate(cpus)},
        **kw,
    )
    return noc


class TestFaultWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultWindow("l", start=-1, duration=10)
        with pytest.raises(ValueError):
            FaultWindow("l", start=0, duration=0)
        with pytest.raises(ValueError):
            FaultWindow("l", start=0, duration=1, mode="flaky")
        with pytest.raises(ValueError):
            FaultWindow("l", start=0, duration=1, error_rate=0.0)
        with pytest.raises(ValueError):
            FaultWindow("l", start=0, duration=1, error_rate=1.5)

    def test_end_is_exclusive(self):
        assert FaultWindow("l", start=10, duration=5).end == 15

    def test_stuck_at_full_rate_allowed_as_fault(self):
        # Build-time LinkConfig rejects error_rate >= 1.0; the runtime
        # fault override is exactly how stuck-at links are expressed.
        FaultWindow("l", start=0, duration=1, mode="stuck")


class TestLinkFaultOverride:
    def test_set_fault_validation(self):
        noc, _, _ = build_small_mesh_noc()
        link = noc.links[0]
        with pytest.raises(ValueError):
            link.set_fault(error_rate=1.5)
        with pytest.raises(ValueError):
            link.set_fault()  # neither a rate nor drop

    def test_clear_restores_configured_behaviour(self):
        noc, _, _ = build_small_mesh_noc()
        link = noc.links[0]
        link.set_fault(error_rate=1.0)
        assert link.fault_active
        link.clear_fault()
        assert not link.fault_active


class TestFaultInjector:
    def test_unknown_link_fails_at_construction(self):
        noc, _, _ = build_small_mesh_noc()
        with pytest.raises(SimulationError, match="matches no link"):
            FaultInjector(noc, [FaultWindow("link.nope*", start=0, duration=5)])

    def test_pattern_resolves_to_many_links(self):
        noc, _, _ = build_small_mesh_noc()
        inj = FaultInjector(noc, [FaultWindow(CORNER, start=0, duration=5)])
        (_, links), = inj._resolved
        assert len(links) >= 2  # the corner switch drives several links
        assert all(l.name.startswith("link.sw_0_0.") for l in links)

    def test_windows_open_and_close_on_schedule(self):
        noc, cpus, mems = build_small_mesh_noc()
        links = [l for l in noc.links if l.name.startswith("link.sw_0_0.")]
        inj = FaultInjector(
            noc, [FaultWindow(CORNER, start=10, duration=20, error_rate=0.9)]
        )
        populated(noc, cpus, mems)
        noc.run(10)
        assert not any(l.fault_active for l in links)
        noc.run(1)  # tick(10) has executed: window open
        assert all(l.fault_active for l in links)
        noc.run(20)  # through tick(30): window closed again
        assert not any(l.fault_active for l in links)
        assert inj.windows_opened == len(links)
        assert inj.windows_closed == len(links)
        assert inj.done

    def test_overlapping_windows_newest_wins_then_revert(self):
        noc, cpus, mems = build_small_mesh_noc()
        name = next(l.name for l in noc.links if l.name.startswith("link.sw_0_0."))
        link = next(l for l in noc.links if l.name == name)
        FaultInjector(
            noc,
            [
                FaultWindow(name, start=5, duration=40, error_rate=0.2),
                FaultWindow(name, start=15, duration=10, mode="dead"),
            ],
        )
        populated(noc, cpus, mems)
        noc.run(12)
        assert link.fault_active and not link._fault_drop
        noc.run(10)  # inside the nested dead window
        assert link._fault_drop
        noc.run(10)  # dead closed, outer burst window restored
        assert link.fault_active and not link._fault_drop
        assert link._fault_rate == 0.2
        noc.run(20)
        assert not link.fault_active

    def test_dead_window_drops_flits_and_counts_activity(self):
        noc, cpus, mems = build_small_mesh_noc(**RECOVERY)
        inj = FaultInjector(
            noc, [FaultWindow(CORNER, start=100, duration=200, mode="dead")]
        )
        populated(noc, cpus, mems, rate=0.1)
        noc.run(800)
        assert noc.total_flits_dropped() > 0
        assert sum(inj.flits_during_fault.values()) > 0

    def test_randomized_windows_reproducible(self):
        names = ["a", "b"]
        w1 = randomized_windows(names, 5, horizon=1000, seed=7)
        w2 = randomized_windows(names, 5, horizon=1000, seed=7)
        w3 = randomized_windows(names, 5, horizon=1000, seed=8)
        assert w1 == w2
        assert w1 != w3
        assert all(w.start < 1000 for w in w1)


class TestNiTimeouts:
    def test_timeout_without_retry_reports_lost(self):
        # A link dead forever, no resync: the NI must deliver SResp.ERR
        # so the master learns the loss instead of waiting forever.
        noc, cpus, mems = build_small_mesh_noc(
            ni_txn_timeout=200, ni_txn_retries=0
        )
        FaultInjector(
            noc, [FaultWindow(CORNER, start=50, duration=100_000, mode="dead")]
        )
        populated(noc, cpus, mems, rate=0.1)
        noc.run(3000)
        assert noc.total_transactions_failed() > 0
        failed = sum(m.failed for m in noc.masters.values())
        assert failed == noc.total_transactions_failed()
        # Failed transactions freed their slots: masters kept issuing.
        assert noc.total_issued() > noc.total_completed() + 1

    def test_retry_recovers_transient_dead_link(self):
        noc, cpus, mems = build_small_mesh_noc(**RECOVERY)
        FaultInjector(
            noc, [FaultWindow(CORNER, start=200, duration=400, mode="dead")]
        )
        populated(noc, cpus, mems)
        noc.run(3000)
        assert noc.total_transactions_retried() > 0
        assert noc.total_flits_dropped() > 0
        # Recovery won: the fabric keeps completing after the window.
        before = noc.total_completed()
        noc.run(1000)
        assert noc.total_completed() > before


class TestProgressWatchdog:
    def test_idle_network_never_trips(self):
        noc, cpus, mems = build_small_mesh_noc()
        wd = ProgressWatchdog(noc, horizon=50)
        noc.run(1000)  # nothing populated: idle, not stuck
        assert wd.trips == 0 and wd.checks > 0

    def test_healthy_traffic_never_trips(self):
        noc, cpus, mems = build_small_mesh_noc()
        wd = ProgressWatchdog(noc, horizon=200)
        populated(noc, cpus, mems)
        noc.run(3000)
        assert wd.trips == 0

    def test_dead_link_without_recovery_trips_with_snapshot(self):
        noc, cpus, mems = build_small_mesh_noc()
        FaultInjector(
            noc, [FaultWindow(CORNER, start=100, duration=100_000, mode="dead")]
        )
        ProgressWatchdog(noc, horizon=500)
        populated(noc, cpus, mems)
        with pytest.raises(NoProgressError) as exc_info:
            noc.run(20_000)
        exc = exc_info.value
        # Caught within one horizon + check interval of the stall, not
        # at the end of the cycle budget.
        assert exc.cycle < 2000
        assert exc.horizon == 500
        stuck = [m for m in exc.snapshot["masters"].values() if m["in_flight"]]
        assert stuck, "the snapshot must show who is still waiting"
        assert "no progress for 500 cycles" in exc.describe()

    def test_deadlock_prone_policy_caught_at_runtime(self):
        # The acceptance scenario: a routing policy the design-time
        # analysis already rejects (ring + shortest has a dependency
        # cycle) wedges under heavy wormhole traffic; the watchdog must
        # convert the hang into a diagnostic within its horizon.
        from repro.network.deadlock import check_deadlock_freedom

        topo = ring(6)
        cpus, mems = attach_round_robin(topo, 3, 3)
        assert not check_deadlock_freedom(topo, "shortest").is_deadlock_free
        noc = Noc(topo, config=NocBuildConfig(
            buffer_depth=2, routing_policy="shortest"
        ))
        ProgressWatchdog(noc, horizon=1000)
        noc.populate(
            {
                c: UniformRandomTraffic(mems, 0.8, burst_len=8, seed=i)
                for i, c in enumerate(cpus)
            },
            max_outstanding=8,
        )
        with pytest.raises(NoProgressError) as exc_info:
            noc.run(30_000)
        exc = exc_info.value
        assert exc.cycle < 10_000, "must fire within the horizon, not the budget"
        # The snapshot pins the deadlock: switch queues hold flits.
        depths = [
            d for sw in exc.snapshot["switches"].values()
            for d in sw["queue_depths"]
        ]
        assert any(depths)

    def test_detach_disarms(self):
        noc, cpus, mems = build_small_mesh_noc()
        FaultInjector(
            noc, [FaultWindow(CORNER, start=100, duration=100_000, mode="dead")]
        )
        wd = ProgressWatchdog(noc, horizon=300)
        populated(noc, cpus, mems)
        wd.detach()
        noc.run(5000)  # would have tripped; detached watchdog must not
        assert wd.trips == 0

    def test_occupancy_snapshot_shape(self):
        noc, cpus, mems = build_small_mesh_noc()
        populated(noc, cpus, mems)
        noc.run(200)
        snap = occupancy_snapshot(noc)
        assert snap["cycle"] == 200
        assert set(snap["switches"]) == set(noc.switches)
        assert set(snap["masters"]) == set(noc.masters)


BUILDER = TopologyNocBuilder(mesh, (2, 2), n_initiators=2, n_targets=2)
HARDENED = TopologyNocBuilder(
    mesh, (2, 2), n_initiators=2, n_targets=2,
    config=NocBuildConfig(**RECOVERY),
)


class TestCampaign:
    def test_run_campaign_measures(self):
        spec = CampaignSpec(
            builder=BUILDER,
            windows=(FaultWindow(CORNER, start=300, duration=400, error_rate=0.4),),
            rate=0.05, measure_cycles=1500, label="burst",
        )
        r = run_campaign(spec)
        assert r.label == "burst"
        assert r.completed > 0 and r.accepted_rate > 0
        assert r.errors_injected > 0
        assert r.windows_opened > 0
        assert not r.no_progress

    def test_no_progress_is_reported_not_raised(self):
        spec = CampaignSpec(
            builder=BUILDER,
            windows=(FaultWindow(CORNER, start=100, duration=50_000, mode="dead"),),
            rate=0.05, measure_cycles=10_000,
            watchdog_horizon=500, label="wedged",
        )
        r = run_campaign(spec)
        assert r.no_progress
        assert 0 < r.no_progress_cycle < 10_000
        assert "no progress" in r.diagnosis

    def test_recovery_campaign_reports_retries(self):
        spec = CampaignSpec(
            builder=HARDENED,
            windows=(FaultWindow(CORNER, start=300, duration=400, mode="dead"),),
            rate=0.05, measure_cycles=2000, label="dead+recovery",
        )
        r = run_campaign(spec)
        assert not r.no_progress
        assert r.flits_dropped > 0
        assert r.retried > 0 or r.failed == 0

    def test_campaign_results_are_deterministic(self):
        spec = CampaignSpec(builder=BUILDER, rate=0.05, measure_cycles=800)
        assert run_campaign(spec) == run_campaign(spec)

    def test_runner_caches_campaigns(self, tmp_path):
        specs = [
            CampaignSpec(builder=BUILDER, rate=r, measure_cycles=600)
            for r in (0.02, 0.05)
        ]
        runner = ExperimentRunner(jobs=1, cache_dir=str(tmp_path))
        first = FaultCampaign(specs, runner=runner).run()
        second = FaultCampaign(specs, runner=runner).run()
        assert [m.cached for m in (r.manifest for r in first)] == [False, False]
        assert [r.manifest.cached for r in second] == [True, True]
        strip = lambda r: dataclasses.replace(r, manifest=None)
        assert [strip(r) for r in first] == [strip(r) for r in second]


class TestFastPathParityWithFaults:
    def test_quiescence_holds_with_campaign_active(self):
        # The injector is an always-on component and fault windows mutate
        # sleeping links; the fast-path digest must still match the
        # full-tick loop exactly.
        def attach(noc):
            FaultInjector(
                noc,
                [
                    FaultWindow(CORNER, start=200, duration=300, error_rate=0.4),
                    FaultWindow(CORNER, start=700, duration=150, mode="dead"),
                ],
            )

        digest = verify_fast_path(HARDENED, cycles=1500, rate=0.05, attach=attach)
        assert digest
