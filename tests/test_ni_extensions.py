"""Unit tests for NI extensions: posted writes, thread resequencing."""

import pytest

from repro.core.config import LinkConfig, NiConfig, NocParameters
from repro.core.link import Link
from repro.core.ni import InitiatorNI, TargetNI
from repro.core.ocp import OcpMasterPort, OcpSlavePort
from repro.core.packet import PacketKind
from repro.core.routing import AddressMap, Route, RoutingTable
from repro.network.cores import OcpMemorySlave, OcpTrafficMaster
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import ScriptedTraffic, TxnTemplate
from repro.sim.kernel import Simulator


def rig(ni_cfg_kwargs=None, wait_states=1, script=(), slave_waits=None):
    """Initiator NI <-> Target NI back to back (same shape as test_ni)."""
    params = NocParameters(flit_width=32)
    ni_cfg = NiConfig(params=params, **(ni_cfg_kwargs or {}))
    sim = Simulator()
    amap = AddressMap(["mem"])
    i_tx = sim.flit_channel("i.tx")
    t_rx = sim.flit_channel("t.rx")
    sim.add(Link("l.req", i_tx, t_rx, LinkConfig(), seed=1))
    t_tx = sim.flit_channel("t.tx")
    i_rx = sim.flit_channel("i.rx")
    sim.add(Link("l.resp", t_tx, i_rx, LinkConfig(), seed=2))
    m_port = OcpMasterPort(sim, "cpu.ocp")
    s_port = OcpSlavePort(sim, "mem.ocp")
    ini = sim.add(
        InitiatorNI(
            "cpu.ni", 0, ni_cfg, m_port, i_tx, i_rx,
            RoutingTable(address_map=amap, forward={"mem": (1, Route(()))}),
        )
    )
    targ = sim.add(
        TargetNI(
            "mem.ni", 1, ni_cfg, s_port, t_rx, t_tx,
            RoutingTable(reverse={0: Route(())}),
        )
    )
    master = sim.add(
        OcpTrafficMaster(
            "cpu", m_port, ScriptedTraffic(list(script)), amap,
            max_outstanding=4, max_transactions=len(script) or None,
        )
    )
    slave = sim.add(OcpMemorySlave("mem", s_port, wait_states=wait_states))
    return sim, master, slave, ini, targ


def wr(offset, cycle=0):
    return (cycle, TxnTemplate("mem", offset=offset, is_read=False))


def rd(offset, cycle=0):
    return (cycle, TxnTemplate("mem", offset=offset, is_read=True))


class TestPostedWrites:
    def test_posted_write_completes_locally_and_lands(self):
        sim, master, slave, ini, targ = rig(
            {"posted_writes": True}, script=[wr(0x10)]
        )
        sim.run(200)
        assert master.completed == 1
        assert 0x10 in slave.memory  # the data still arrived
        # No response packet crossed the network.
        assert targ.tx.packets_sent == 0

    def test_posted_write_is_faster(self):
        def write_latency(posted):
            sim, master, slave, ini, targ = rig(
                {"posted_writes": posted}, script=[wr(0)], wait_states=4
            )
            sim.run(300)
            return master.latency.samples[0]

        assert write_latency(True) < write_latency(False) / 2

    def test_reads_still_round_trip_when_posted(self):
        sim, master, slave, ini, targ = rig(
            {"posted_writes": True}, script=[wr(0x4), rd(0x4, cycle=100)]
        )
        sim.run(400)
        assert master.completed == 2
        assert list(master.read_data.values())[0] == (slave.memory[0x4],)

    def test_posted_kind_on_the_wire(self):
        sim, master, slave, ini, targ = rig({"posted_writes": True}, script=[wr(1)])
        sim.run(200)
        # The target NI served it without issuing a response.
        assert targ.requests_served == 1
        assert ini.idle and targ.idle

    def test_many_posted_writes_drain(self):
        script = [wr(i) for i in range(10)]
        sim, master, slave, ini, targ = rig({"posted_writes": True}, script=script)
        sim.run(800)
        assert master.completed == 10
        assert len(slave.memory) == 10


class TestThreadResequencing:
    def test_in_order_delivery_within_thread(self):
        """Responses from targets with different service times must be
        delivered in issue order when enforce_thread_order is set."""
        topo = mesh(1, 2)
        topo.add_initiator("cpu")
        topo.add_target("fast")
        topo.add_target("slow")
        topo.attach("cpu", "sw_0_0")
        topo.attach("fast", "sw_0_0")
        topo.attach("slow", "sw_1_0")
        noc = Noc(topo, NocBuildConfig())
        # Flip the NI config: rebuild with enforce_thread_order.
        # (Build path: use NocBuildConfig's NI knobs via a fresh Noc.)
        import dataclasses

        for ni in noc.initiator_nis.values():
            ni.config = dataclasses.replace(ni.config, enforce_thread_order=True)
        script = [
            (0, TxnTemplate("slow", offset=0, is_read=True)),
            (0, TxnTemplate("fast", offset=0, is_read=True)),
            (0, TxnTemplate("fast", offset=1, is_read=True)),
        ]
        master = noc.add_traffic_master("cpu", ScriptedTraffic(script),
                                        max_outstanding=4, max_transactions=3)
        noc.add_memory_slave("fast", wait_states=0)
        noc.add_memory_slave("slow", wait_states=30)
        order = []
        original = master.port.accept_response

        def spy(txn_id):
            order.append(txn_id)
            original(txn_id)

        master.port.accept_response = spy
        noc.run_until_drained(max_cycles=200_000)
        assert master.completed == 3
        # Issue order == txn_id order: the slow response came first.
        assert order == sorted(order)

    def test_threads_do_not_block_each_other(self):
        """A slow thread-0 read must not delay a thread-1 response."""
        topo = mesh(1, 2)
        topo.add_initiator("cpu")
        topo.add_target("fast")
        topo.add_target("slow")
        topo.attach("cpu", "sw_0_0")
        topo.attach("fast", "sw_0_0")
        topo.attach("slow", "sw_1_0")
        noc = Noc(topo)
        import dataclasses

        for ni in noc.initiator_nis.values():
            ni.config = dataclasses.replace(ni.config, enforce_thread_order=True)
        script = [
            (0, TxnTemplate("slow", offset=0, is_read=True, thread_id=0)),
            (0, TxnTemplate("fast", offset=0, is_read=True, thread_id=1)),
        ]
        master = noc.add_traffic_master("cpu", ScriptedTraffic(script),
                                        max_outstanding=4, max_transactions=2)
        noc.add_memory_slave("fast", wait_states=0)
        noc.add_memory_slave("slow", wait_states=60)
        completions = {}
        original = master.port.accept_response

        def spy(txn_id):
            completions[txn_id] = noc.sim.cycle
            original(txn_id)

        master.port.accept_response = spy
        noc.run_until_drained(max_cycles=200_000)
        slow_txn, fast_txn = sorted(completions)
        assert completions[fast_txn] < completions[slow_txn] - 20

    def test_back_to_back_rig_with_ordering(self):
        sim, master, slave, ini, targ = rig(
            {"enforce_thread_order": True},
            script=[rd(0), rd(1), wr(2), rd(3)],
        )
        sim.run(800)
        assert master.completed == 4
        assert ini.idle

    def test_posted_plus_ordering(self):
        sim, master, slave, ini, targ = rig(
            {"posted_writes": True, "enforce_thread_order": True},
            script=[wr(0), rd(0, cycle=5), wr(1, cycle=10)],
        )
        sim.run(800)
        assert master.completed == 3
        assert ini.idle
