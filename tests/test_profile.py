"""The compiled-kernel sampling profiler (docs/OBSERVABILITY.md).

The contracts: attaching a :class:`KernelProfiler` must never change
simulation results (digest parity with an unprofiled run); with no
profiler attached the generated source carries exactly one build-time
``_PROF`` branch and zero wrappers; counts attribute to codegen lanes;
``BatchSimulator`` reports per-replica wall time through
:meth:`record_replica`; and the ``profile.json`` document round-trips
through :func:`validate_profile`.
"""

import json

import pytest

from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import UniformRandomTraffic
from repro.telemetry import KernelProfiler, TelemetryError, validate_profile
from repro.telemetry.profile import PROFILE_SCHEMA


def tiny_noc(rate=0.1, max_transactions=20, config=None):
    topo = mesh(2, 2)
    cpus, mems = attach_round_robin(topo, 2, 2)
    noc = Noc(topo, config)
    noc.populate(
        {c: UniformRandomTraffic(mems, rate, seed=i) for i, c in enumerate(cpus)},
        max_transactions=max_transactions,
    )
    return noc


def profiled_run(cycles=2000, sample_every=4):
    noc = tiny_noc()
    prof = KernelProfiler(sample_every=sample_every)
    noc.sim.set_profiler(prof)
    noc.sim.set_kernel("compiled")
    noc.run(cycles)
    return noc, prof


class TestKernelProfiler:
    def test_rejects_nonpositive_sampling(self):
        with pytest.raises(TelemetryError, match="sample_every"):
            KernelProfiler(sample_every=0)

    def test_counts_every_thunk_call(self):
        noc, prof = profiled_run()
        assert prof.installs == 1
        assert prof.total_calls > 0
        # Every thunk-table dispatch went through a wrapper.  The count
        # stays below the executed-tick total because drawer-lane
        # masters run through their pre-bound fast path, not the table.
        assert prof.total_calls <= noc.sim.ticks_executed

    def test_digest_identical_with_and_without_profiler(self):
        plain = tiny_noc()
        plain.sim.set_kernel("compiled")
        plain.run(2000)
        noc, _ = profiled_run()
        assert noc.stats_digest() == plain.stats_digest()

    def test_unprofiled_source_has_only_the_build_branch(self):
        from repro.sim.compiled import compiled_source

        source = compiled_source(tiny_noc().sim)
        # The global, the build-time test, the install call: no
        # per-cycle profiler code exists when nothing is attached.
        assert source.count("_PROF") == 3

    def test_components_attribute_to_codegen_lanes(self):
        _, prof = profiled_run()
        doc = prof.report()
        lanes = {c["lane"] for c in doc["components"]}
        assert "switch" in lanes
        assert "link" in lanes
        assert {"ni-initiator", "ni-target"} <= lanes
        by_name = {c["name"]: c for c in doc["components"]}
        assert by_name["sw_0_0"]["lane"] == "switch"

    def test_sampling_extrapolates_est_seconds(self):
        _, prof = profiled_run(sample_every=4)
        doc = prof.report()
        busy = [c for c in doc["components"] if c["sampled"] > 0]
        assert busy, "nothing was ever sampled"
        for c in busy:
            est = c["sampled_seconds"] * c["calls"] / c["sampled"]
            assert c["est_seconds"] == pytest.approx(est)
        assert doc["total_est_seconds"] == pytest.approx(
            sum(c["est_seconds"] for c in doc["components"])
        )

    def test_lane_shares_sum_to_one(self):
        _, prof = profiled_run()
        doc = prof.report()
        assert sum(l["share"] for l in doc["lanes"].values()) == pytest.approx(
            1.0
        )

    def test_clear_resets_accumulation(self):
        _, prof = profiled_run()
        prof.clear()
        assert prof.total_calls == 0
        assert prof.report()["components"] == []

    def test_set_profiler_invalidates_the_compiled_program(self):
        # Unbounded traffic: the fabric must still be busy after the
        # mid-run re-elaboration, or there is nothing to count.
        noc = tiny_noc(max_transactions=None)
        noc.sim.set_kernel("compiled")
        noc.run(500)
        prof = KernelProfiler(sample_every=4)
        noc.sim.set_profiler(prof)  # must force re-elaboration
        noc.run(500)
        assert prof.total_calls > 0

    def test_render_mentions_the_top_components(self):
        _, prof = profiled_run()
        table = prof.render(top=3)
        assert "compiled-kernel profile" in table
        assert "switch" in table
        assert "lane" in table


class TestBatchAttribution:
    @pytest.mark.timeout_guard(240)
    def test_batch_lanes_record_replica_wall_time(self):
        from repro.sim.batch import BatchSimulator

        noc = tiny_noc(
            rate=0.02, max_transactions=3,
            config=NocBuildConfig(kernel="compiled"),
        )
        prof = KernelProfiler(sample_every=16)
        noc.sim.set_profiler(prof)
        lanes = 3
        batch = BatchSimulator(noc, lanes)
        batch.run_lanes(4000, lambda n, k: {"completed": n.total_completed()})
        assert len(prof.replica_batches) == lanes
        assert [lane for lane, _, _ in prof.replica_batches] == [0, 1, 2]
        assert all(cycles == 4000 for _, cycles, _ in prof.replica_batches)
        assert all(seconds >= 0.0 for _, _, seconds in prof.replica_batches)
        doc = prof.report()
        assert doc["replicas"]["lanes"] == lanes
        assert doc["replicas"]["cycles"] == lanes * 4000
        validate_profile(doc)

    def test_scalar_profile_has_no_replica_section(self):
        _, prof = profiled_run()
        assert prof.report()["replicas"] is None


class TestProfileDocument:
    def test_write_round_trips_through_validate(self, tmp_path):
        _, prof = profiled_run()
        path = str(tmp_path / "profile.json")
        assert prof.write(path) == path
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        validate_profile(doc)
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["sample_every"] == 4

    def test_validate_rejects_wrong_schema(self):
        _, prof = profiled_run(cycles=200)
        doc = prof.report()
        doc["schema"] = "nope/v0"
        with pytest.raises(TelemetryError, match="schema"):
            validate_profile(doc)

    def test_validate_rejects_malformed_components(self):
        _, prof = profiled_run(cycles=200)
        doc = prof.report()
        doc["components"].append({"name": 7})
        with pytest.raises(TelemetryError, match="component"):
            validate_profile(doc)

    def test_validate_is_itemized(self):
        with pytest.raises(TelemetryError, match="sample_every"):
            validate_profile({"schema": PROFILE_SCHEMA, "sample_every": 0,
                              "lanes": {}, "components": []})
