"""The deterministic chaos harness (docs/RESILIENCE.md).

Plan compilation is seeded and pure; the monkey's store faults must be
caught by the store's own verification; and the full drills --
``run_chaos`` clean-vs-chaotic digest identity and the ``run_poison``
quarantine -- are exactly what ``make chaos-smoke`` gates on.
"""

import os

import pytest

from repro.chaos import (
    ChaosMonkey,
    ChaosPlan,
    chaos_point,
    run_chaos,
    run_poison,
)
from repro.chaos.plan import ChaosAction
from repro.store import ResultStore


class TestChaosPlan:
    def test_same_seed_same_schedule(self):
        assert ChaosPlan(42).actions == ChaosPlan(42).actions

    def test_different_seeds_differ(self):
        assert ChaosPlan(1).actions != ChaosPlan(2).actions

    def test_counts_match_request(self):
        plan = ChaosPlan(9, kills=2, stalls=1, slows=0, corruptions=3,
                         manifest_tears=0, event_truncations=1, horizon=12)
        assert plan.count("kill") == 2
        assert plan.count("stall") == 1
        assert plan.count("slow") == 0
        assert plan.count("corrupt_record") == 3
        assert plan.count("truncate_events") == 1

    def test_worker_faults_on_distinct_ordinals_after_first(self):
        plan = ChaosPlan(5, kills=3, stalls=3, slows=3, horizon=9)
        ordinals = [a.at for a in plan.actions
                    if a.kind in ("kill", "stall", "slow")]
        assert len(set(ordinals)) == len(ordinals) == 9
        assert min(ordinals) >= 2  # dispatch 1 always lands clean

    def test_overfull_horizon_rejected(self):
        with pytest.raises(ValueError, match="worker faults"):
            ChaosPlan(1, kills=5, stalls=5, slows=5, horizon=4)
        with pytest.raises(ValueError, match="store faults"):
            ChaosPlan(1, corruptions=9, manifest_tears=9, horizon=4)

    def test_action_validation(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosAction("meteor", 3)
        with pytest.raises(ValueError, match="1-based"):
            ChaosAction("kill", 0)

    def test_render_lists_every_action(self):
        plan = ChaosPlan(3)
        text = plan.render()
        for action in plan.actions:
            assert f"@{action.at:>3}" in text
            assert action.kind in text


class TestMonkeyStoreFaults:
    def _monkey(self, **counts):
        base = dict(kills=0, stalls=0, slows=0, corruptions=0,
                    manifest_tears=0, event_truncations=0)
        base.update(counts)
        return ChaosMonkey(ChaosPlan(11, horizon=4, **base))

    def test_corrupted_record_is_quarantined_on_read(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.chaos = self._monkey(corruptions=1)
        # The plan picks one of the first 4 puts; write 4 records.
        for k in range(4):
            store.put(f"{k:064x}", {"v": k})
        assert store.chaos.corruptions == 1
        fresh = ResultStore(tmp_path / "store")
        values = [fresh.get(f"{k:064x}") for k in range(4)]
        assert fresh.corrupt_records == 1
        assert sum(1 for hit, _ in values if hit) == 3

    def test_torn_manifest_tail_is_tolerated(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.chaos = self._monkey(manifest_tears=1)
        for k in range(4):
            store.put(f"{k:064x}", {"v": k})
        assert store.chaos.manifest_tears == 1
        with open(store.manifest_path, encoding="utf-8") as fh:
            assert "torn-by-chaos" in fh.read()
        entries = ResultStore(tmp_path / "store").manifest_entries()
        # The torn half line merged with its successor: both lost from
        # the index, never crashing it; the rest are intact.
        assert len(entries) >= 2
        assert "torn-by-chaos" not in entries

    def test_production_stores_have_no_hook(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.chaos is None
        store.put("a" * 64, 1)
        assert store.get("a" * 64) == (True, 1)


class TestChaosPoint:
    def test_deterministic(self):
        assert chaos_point(("pt-1", 50, 0.0)) == chaos_point(("pt-1", 50, 0.0))
        assert (chaos_point(("pt-1", 50, 0.0))
                != chaos_point(("pt-2", 50, 0.0)))


@pytest.mark.timeout_guard(240.0)
class TestHarnessDrills:
    def test_run_chaos_invariants_hold(self, tmp_path):
        report = run_chaos(
            str(tmp_path), seed=23, points=10, workers=3, delay=0.05
        )
        assert report.ok, report.render()
        assert report.clean_digest == report.chaos_digest
        assert report.delivered["kills"] >= 1
        assert report.delivered["stalls"] >= 1
        assert report.delivered["corruptions"] >= 1
        assert report.journal_points == 10
        assert report.orphans == []
        assert report.corrupt_quarantined >= 1
        assert report.recompute_digest == report.clean_digest
        assert "all invariants held" in report.render()

    def test_run_poison_quarantines_exactly_the_pill(self, tmp_path):
        report = run_poison(str(tmp_path))
        assert report.ok, report.render()
        assert len(report.poisoned_keys) == 1
        assert report.journal_points == 5
        assert report.orphans == []

    def test_too_few_points_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="points"):
            run_chaos(str(tmp_path), points=2)

    def test_cli_round_trip(self, tmp_path, capsys):
        from repro.__main__ import main

        scratch = str(tmp_path / "cli")
        os.makedirs(scratch)
        assert main([
            "chaos", "--seed", "3", "--points", "8", "--workers", "2",
            "--chaos-dir", scratch,
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos harness: OK" in out
        assert "all invariants held" in out
