"""Tests for repro.sim.batch: replica lanes over one compiled network.

The batching contract under test (docs/BATCHING.md): lane 0 of a batch
is bit-identical to a scalar run of the network as built, and lane k to
a scalar rebuild with every seed offset by ``k * seed_stride``;
reseed-and-reset reuse of the compiled object graph is unobservable;
idle-span skipping changes no statistic and no counter; the CI math is
Student-t with NaN-dropping; batch checkpoints ride the v2 snapshot
format and a killed replicated campaign resumes to exactly the
uninterrupted result.
"""

import math

import numpy as np
import pytest

from repro.faults import (
    CampaignSpec,
    FaultInjector,
    FaultWindow,
    ReplicatedCampaign,
    replicas_from_env,
    run_campaign,
    run_campaign_replicated,
)
from repro.flow.runner import ExperimentRunner
from repro.network.experiments import TopologyNocBuilder, load_sweep
from repro.network.noc import NocBuildConfig
from repro.network.topology import mesh
from repro.network.traffic import UniformRandomTraffic
from repro.sim.batch import (
    SEED_STRIDE,
    BatchResult,
    BatchSimulator,
    mean_ci95,
    run_batch,
    summarize,
    t_quantile_95,
)
from repro.sim.kernel import SimulationError
from repro.sim.snapshot import SimSnapshot

CORNER = "link.sw_0_0.p*"
WINDOW = FaultWindow(CORNER, start=100, duration=200, error_rate=0.2)


def build(lane: int = 0, windows=(WINDOW,), max_transactions=2, rate=0.01,
          kernel="compiled"):
    """The scalar construction of replica ``lane``: seeds offset by
    ``lane * SEED_STRIDE``, exactly what ``begin_lane`` re-creates."""
    builder = TopologyNocBuilder(
        mesh, (2, 2), n_initiators=2, n_targets=2,
        config=NocBuildConfig(kernel=kernel),
    )
    noc = builder()
    if windows:
        FaultInjector(noc, windows)
    off = lane * SEED_STRIDE
    noc.populate(
        {
            c: UniformRandomTraffic(noc.topology.targets, rate, seed=17 * i + off)
            for i, c in enumerate(noc.topology.initiators)
        },
        max_transactions=max_transactions,
    )
    for link in noc.links:
        link._seed += off
    noc.sim.reset()  # links re-draw their RNGs from the offset seeds
    return noc


class TestCIMath:
    def test_t_quantiles(self):
        assert t_quantile_95(1) == pytest.approx(12.706)
        assert t_quantile_95(30) == pytest.approx(2.042)
        assert t_quantile_95(31) == pytest.approx(1.960)  # normal beyond
        with pytest.raises(ValueError):
            t_quantile_95(0)

    def test_mean_ci95_known_value(self):
        mean, half = mean_ci95([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        # t(df=2) * std(ddof=1) / sqrt(3) = 4.303 * 1 / sqrt(3)
        assert half == pytest.approx(4.303 / math.sqrt(3))

    def test_single_observation_has_no_spread(self):
        assert mean_ci95([5.0]) == (5.0, 0.0)

    def test_nans_dropped_before_reduction(self):
        mean, half = mean_ci95([1.0, float("nan"), 3.0])
        ref_mean, ref_half = mean_ci95([1.0, 3.0])
        assert (mean, half) == (ref_mean, ref_half)

    def test_all_nan_reduces_to_nan(self):
        mean, half = mean_ci95([float("nan"), float("nan")])
        assert math.isnan(mean) and half == 0.0
        mean, half = mean_ci95([])
        assert math.isnan(mean) and half == 0.0

    def test_summarize_counts_finite_lanes(self):
        s = summarize([1.0, float("nan"), 3.0])
        assert s["n"] == 2
        assert s["mean"] == pytest.approx(2.0)
        assert set(s) == {"mean", "ci95", "n"}


class TestBatchSimulator:
    def test_validation(self):
        noc = build()
        with pytest.raises(SimulationError):
            BatchSimulator(noc, 0)
        with pytest.raises(SimulationError):
            BatchSimulator(noc, 4, assume_lane=4)
        batch = BatchSimulator(noc, 2)
        with pytest.raises(SimulationError):
            batch.begin_lane(2)
        batch.begin_lane(0)
        with pytest.raises(SimulationError):
            batch.run_exact(-1)

    def test_every_lane_matches_a_scalar_rebuild(self):
        batch = BatchSimulator(build(), 3)
        result = batch.run_lanes(
            5000, lambda noc, k: {"completed": float(noc.total_completed())},
            digest=True,
        )
        for k in range(3):
            scalar = build(lane=k)
            scalar.sim.compile()
            scalar.run(5000)
            assert result.digests[k] == scalar.stats_digest(), f"lane {k}"

    def test_reset_reuse_is_unobservable(self):
        # Re-running lane 0 after other lanes have dirtied the object
        # graph must reproduce the first pass exactly.
        batch = BatchSimulator(build(), 2)
        batch.begin_lane(0)
        batch.run_exact(5000)
        first = batch.noc.stats_digest()
        batch.begin_lane(1)
        batch.run_exact(5000)
        batch.begin_lane(0)
        batch.run_exact(5000)
        assert batch.noc.stats_digest() == first

    def test_skipping_matches_full_execution_and_its_counters(self):
        # A bounded episode on a long horizon: the skipping path must
        # land on the same digest, cycle, and tick totals as the plain
        # compiled loop.
        ref = build()
        ref.sim.compile()
        ref.run(20_000)

        batch_noc = build()
        batch = BatchSimulator(batch_noc, 1)
        batch.begin_lane(0)
        batch.run_exact(20_000)

        assert batch_noc.stats_digest() == ref.stats_digest()
        assert batch_noc.sim.cycle == ref.sim.cycle
        assert batch_noc.sim.ticks_executed == ref.sim.ticks_executed
        assert batch_noc.sim.ticks_skipped == ref.sim.ticks_skipped
        # ...and the span was actually skipped, not just re-run.
        assert batch_noc.sim.ticks_skipped > 0

    def test_lane_windows_reschedule_faults_per_lane(self):
        def lane_windows(k):
            return (FaultWindow(CORNER, start=100 + 50 * k, duration=200,
                                error_rate=0.2),)

        noc = build()
        batch = BatchSimulator(noc, 2, lane_windows=lane_windows)
        result = batch.run_lanes(
            3000,
            lambda n, k: {"errors": float(n.total_errors_injected())},
            digest=True,
        )
        # Lane 1 == scalar rebuild with lane-1 seeds AND lane-1 windows.
        scalar = build(lane=1, windows=lane_windows(1))
        scalar.sim.compile()
        scalar.run(3000)
        assert result.digests[1] == scalar.stats_digest()

    def test_lane_windows_on_unprobed_links_fail_fast(self):
        noc = build(windows=())
        FaultInjector(noc, (WINDOW,))  # probes only the corner links
        batch = BatchSimulator(
            noc, 2,
            lane_windows=lambda k: (
                FaultWindow("link.sw_1_1.p*", start=10, duration=5,
                            error_rate=0.1),
            ),
        )
        with pytest.raises(SimulationError):
            batch.begin_lane(0)

    def test_run_lanes_reduces_to_soa_arrays(self):
        result = run_batch(
            lambda: build(),
            3, 2000,
            lambda noc, k: {"completed": float(noc.total_completed())},
            digest=True,
        )
        assert isinstance(result, BatchResult)
        assert result.replicas == 3
        assert result.seeds.dtype == np.int64
        assert list(result.seeds) == [0, SEED_STRIDE, 2 * SEED_STRIDE]
        assert result.metrics["completed"].shape == (3,)
        assert result.metrics["completed"].dtype == np.float64
        assert set(result.reduced["completed"]) == {"mean", "ci95", "n"}
        assert len(result.digests) == 3

    def test_interpreted_kernel_network_is_recompiled(self):
        noc = build(kernel="interpreted")
        batch = BatchSimulator(noc, 1)
        assert noc.sim.kernel == "compiled"
        assert batch.program is not None


class TestBatchCheckpoint:
    def test_snapshot_v2_roundtrip_carries_batch_state(self, tmp_path):
        noc = build()
        batch = BatchSimulator(noc, 4)
        batch.begin_lane(2)
        batch.run_exact(500)
        snap = noc.sim.snapshot()
        snap.batch = batch.batch_state()
        path = str(tmp_path / "batch.ckpt")
        snap.save(path)

        loaded = SimSnapshot.load(path)
        assert loaded.version == 2
        assert loaded.batch == {
            "replicas": 4, "lane": 2, "seed_stride": SEED_STRIDE,
        }

    def test_scalar_snapshots_have_no_batch(self, tmp_path):
        noc = build()
        noc.run(200)
        snap = noc.sim.snapshot()
        assert snap.batch is None
        path = str(tmp_path / "scalar.ckpt")
        snap.save(path)
        assert SimSnapshot.load(path).batch is None

    def test_resume_lane_validates_geometry(self):
        batch = BatchSimulator(build(), 4)
        with pytest.raises(SimulationError):
            batch.resume_lane({"replicas": 8, "lane": 1,
                               "seed_stride": SEED_STRIDE})
        with pytest.raises(SimulationError):
            batch.resume_lane({"replicas": 4, "lane": 1, "seed_stride": 7})
        assert batch.resume_lane(
            {"replicas": 4, "lane": 3, "seed_stride": SEED_STRIDE}
        ) == 3
        assert batch.lane == 3

    def test_restored_lane_continues_bit_identically(self):
        # Snapshot lane 1 mid-run, restore into a *fresh* build (the
        # crash-recovery path: assume_lane subtracts the lane offset the
        # restored pattern seeds carry), finish, compare to an
        # uninterrupted lane 1.
        ref_batch = BatchSimulator(build(), 3)
        ref_batch.begin_lane(1)
        ref_batch.run_exact(4000)
        ref = ref_batch.noc.stats_digest()

        donor = BatchSimulator(build(), 3)
        donor.begin_lane(1)
        donor.run_exact(1500)
        snap = donor.noc.sim.snapshot()
        snap.batch = donor.batch_state()

        fresh = build()
        fresh.sim.restore(snap)
        resumed = BatchSimulator(
            fresh, snap.batch["replicas"],
            seed_stride=snap.batch["seed_stride"],
            assume_lane=snap.batch["lane"],
        )
        resumed.lane = snap.batch["lane"]
        resumed.run_exact(4000 - 1500)
        assert fresh.stats_digest() == ref


def campaign_spec(**kw):
    builder = TopologyNocBuilder(
        mesh, (2, 2), n_initiators=2, n_targets=2,
        config=NocBuildConfig(
            ni_txn_timeout=300, ni_txn_retries=1, link_resync_timeout=40,
        ),
    )
    defaults = dict(
        builder=builder,
        windows=(FaultWindow("link.*", start=150, duration=500,
                             error_rate=0.05),),
        rate=0.08,
        warmup_cycles=150,
        measure_cycles=1200,
        seed=3,
        label="batch-test",
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


class TestReplicatedCampaign:
    def test_one_replica_equals_the_scalar_campaign(self):
        spec = campaign_spec()
        scalar = run_campaign(spec)
        replicated = run_campaign_replicated(spec, 1)
        assert replicated.replicas == 1
        # Field-for-field on everything the scalar campaign measures.
        for name in ("label", "offered_rate", "cycles_run", "issued",
                     "completed", "failed", "retried", "accepted_rate",
                     "mean_latency", "p95_latency", "errors_injected",
                     "flits_dropped", "retransmissions", "windows_opened",
                     "no_progress"):
            assert getattr(replicated, name) == getattr(scalar, name), name

    def test_replicas_carry_cis_and_lane_zero_is_the_scalar_run(self):
        spec = campaign_spec()
        scalar = run_campaign(spec)
        replicated = run_campaign_replicated(spec, 3)
        assert replicated.replicas == 3
        assert set(replicated.ci95) == {
            "accepted_rate", "mean_latency", "p95_latency",
        }
        lanes = replicated.lane_metrics
        assert all(len(v) == 3 for v in lanes.values())
        assert lanes["accepted_rate"][0] == pytest.approx(scalar.accepted_rate)
        assert lanes["completed"][0] == scalar.completed
        mean, half = mean_ci95(lanes["accepted_rate"])
        assert replicated.accepted_rate == pytest.approx(mean)
        assert replicated.ci95["accepted_rate"] == pytest.approx(half)

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path,
                                                   monkeypatch):
        spec = campaign_spec()
        reference = run_campaign_replicated(spec, 3)

        # Crash the campaign right after its second checkpoint lands.
        saves = {"n": 0}
        real_save = SimSnapshot.save

        def dying_save(self, path):
            real_save(self, path)
            saves["n"] += 1
            if saves["n"] >= 2:
                raise KeyboardInterrupt("simulated SIGKILL")

        monkeypatch.setattr(SimSnapshot, "save", dying_save)
        with pytest.raises(KeyboardInterrupt):
            run_campaign_replicated(
                spec, 3, checkpoint_every=300, checkpoint_dir=str(tmp_path),
            )
        monkeypatch.setattr(SimSnapshot, "save", real_save)
        ckpts = list(tmp_path.glob("campaign-*.ckpt"))
        assert len(ckpts) == 1 and ckpts[0].name.endswith("-r3.ckpt")

        resumed = run_campaign_replicated(
            spec, 3, checkpoint_every=300, checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert resumed.lane_metrics == reference.lane_metrics
        assert resumed.ci95 == reference.ci95
        assert resumed == reference
        # A finished campaign cleans up after itself.
        assert not list(tmp_path.glob("campaign-*.ckpt"))

    def test_incompatible_checkpoint_falls_back_to_fresh(self, tmp_path):
        spec = campaign_spec()
        reference = run_campaign_replicated(spec, 2)
        # A checkpoint from a *different* geometry at the path the
        # 2-replica campaign will probe: must be ignored, not trusted.
        donor_noc = spec.builder()
        donor_noc.run(100)
        snap = donor_noc.sim.snapshot()
        snap.batch = {"replicas": 5, "lane": 3, "seed_stride": 7,
                      "lane_results": []}
        from repro.faults.campaign import campaign_checkpoint_path
        base = campaign_checkpoint_path(spec, str(tmp_path))
        stale = base[: -len(".ckpt")] + "-r2.ckpt"
        snap.save(stale)
        resumed = run_campaign_replicated(
            spec, 2, checkpoint_every=300, checkpoint_dir=str(tmp_path),
            resume=True,
        )
        assert resumed == reference
        assert resumed.lane_metrics == reference.lane_metrics

    def test_cache_token_distinguishes_replication(self):
        wrapped = ReplicatedCampaign(3)
        assert "replicas=3" in wrapped.cache_token()
        assert ReplicatedCampaign(3).cache_token() != ReplicatedCampaign(
            4
        ).cache_token()

    def test_replicas_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_REPLICAS", raising=False)
        assert replicas_from_env() is None
        assert replicas_from_env(default=8) == 8
        monkeypatch.setenv("REPRO_REPLICAS", "4")
        assert replicas_from_env(default=8) == 4
        monkeypatch.setenv("REPRO_REPLICAS", "0")
        with pytest.raises(ValueError):
            replicas_from_env()
        monkeypatch.setenv("REPRO_REPLICAS", "many")
        with pytest.raises(ValueError):
            replicas_from_env()


class TestReplicatedSweeps:
    def test_load_sweep_replicas_reduce_with_cis(self):
        pts = load_sweep(
            TopologyNocBuilder(mesh, (2, 2), n_initiators=2, n_targets=2),
            rates=(0.02,), seed=3, warmup_cycles=150, measure_cycles=800,
            replicas=3,
        )
        (p,) = pts
        assert p.replicas == 3
        assert set(p.ci95) == {"accepted_rate", "mean_latency", "p95_latency"}
        assert p.ci95["accepted_rate"] >= 0.0

    def test_load_sweep_single_replica_stays_raw(self):
        pts = load_sweep(
            TopologyNocBuilder(mesh, (2, 2), n_initiators=2, n_targets=2),
            rates=(0.02,), seed=3, warmup_cycles=150, measure_cycles=800,
        )
        assert pts[0].replicas == 1 and pts[0].ci95 is None

    def test_map_replicated_groups_lanes_by_point(self):
        runner = ExperimentRunner(jobs=1)
        groups = runner.map_replicated(
            _lane_value, [10, 20], 3, fan=lambda p, k: (p, k),
        )
        assert groups == [[10, 11, 12], [20, 21, 22]]
        with pytest.raises(ValueError):
            runner.map_replicated(_lane_value, [10], 0,
                                  fan=lambda p, k: (p, k))


def _lane_value(point_and_lane):
    point, lane = point_and_lane
    return point + lane
