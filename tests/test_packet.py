"""Unit tests for packets and header packing."""

import pytest

from repro.core.config import NocParameters
from repro.core.packet import (
    ADDR_OFFSET_BITS,
    Packet,
    PacketHeader,
    PacketKind,
)


def header(**kw):
    defaults = dict(
        route=(1, 2, 0), kind=PacketKind.READ_REQ, src_id=3, burst_len=1, addr=0x40
    )
    defaults.update(kw)
    return PacketHeader(**defaults)


class TestPacketKind:
    def test_request_response_partition(self):
        assert PacketKind.READ_REQ.is_request
        assert PacketKind.WRITE_REQ.is_request
        assert PacketKind.READ_RESP.is_response
        assert PacketKind.WRITE_ACK.is_response
        assert not PacketKind.INTERRUPT.is_request
        assert not PacketKind.INTERRUPT.is_response

    @pytest.mark.parametrize("kind,beats", [
        (PacketKind.READ_REQ, 0),
        (PacketKind.WRITE_REQ, 4),
        (PacketKind.READ_RESP, 4),
        (PacketKind.WRITE_ACK, 0),
        (PacketKind.INTERRUPT, 0),
    ])
    def test_payload_beats(self, kind, beats):
        assert kind.payload_beats(4) == beats


class TestHeaderPacking:
    def test_roundtrip(self, params32):
        h = header()
        packed = h.pack(params32)
        out = PacketHeader.unpack(packed, params32, route_len=len(h.route))
        assert out == h

    def test_roundtrip_all_kinds(self, params32):
        for kind in PacketKind:
            h = header(kind=kind)
            out = PacketHeader.unpack(h.pack(params32), params32, len(h.route))
            assert out.kind is kind

    def test_route_leads_the_header(self, params32):
        # Hop 0 occupies the most significant port_bits of the header.
        h = header(route=(5,))
        packed = h.pack(params32)
        total = PacketHeader.bit_width(params32)
        top_bits = packed >> (total - params32.port_bits)
        assert top_bits == 5

    def test_header_width_is_about_50_bits(self, params32):
        assert 45 <= PacketHeader.bit_width(params32) <= 60

    def test_validate_rejects_long_route(self, params32):
        h = header(route=tuple([0] * (params32.max_hops + 1)))
        with pytest.raises(ValueError, match="max_hops"):
            h.validate(params32)

    def test_validate_rejects_wide_port(self, params32):
        with pytest.raises(ValueError, match="out of range"):
            header(route=(params32.max_radix,)).validate(params32)

    def test_validate_rejects_big_src(self, params32):
        with pytest.raises(ValueError, match="src_id"):
            header(src_id=params32.max_nodes).validate(params32)

    def test_validate_rejects_big_burst(self, params32):
        with pytest.raises(ValueError, match="burst_len"):
            header(burst_len=params32.max_burst + 1).validate(params32)

    def test_validate_rejects_big_addr(self, params32):
        with pytest.raises(ValueError, match="addr"):
            header(addr=1 << ADDR_OFFSET_BITS).validate(params32)

    def test_thread_id_roundtrip(self, params32):
        h = header(thread_id=3)
        out = PacketHeader.unpack(h.pack(params32), params32, len(h.route))
        assert out.thread_id == 3


class TestPacket:
    def test_write_needs_matching_beats(self, params32):
        h = header(kind=PacketKind.WRITE_REQ, burst_len=2)
        Packet(header=h, payload=(1, 2)).validate(params32)
        with pytest.raises(ValueError, match="beats"):
            Packet(header=h, payload=(1,)).validate(params32)

    def test_read_request_has_no_payload(self, params32):
        h = header(kind=PacketKind.READ_REQ)
        with pytest.raises(ValueError, match="beats"):
            Packet(header=h, payload=(1,)).validate(params32)

    def test_payload_word_must_fit_data_width(self, params32):
        h = header(kind=PacketKind.WRITE_REQ, burst_len=1)
        with pytest.raises(ValueError, match="exceeds"):
            Packet(header=h, payload=(1 << 32,)).validate(params32)

    def test_total_bits(self, params32):
        h = header(kind=PacketKind.WRITE_REQ, burst_len=3)
        p = Packet(header=h, payload=(1, 2, 3))
        expected = PacketHeader.bit_width(params32) + 3 * 32
        assert p.total_bits(params32) == expected

    def test_flit_count_rounds_up(self, params32):
        h = header(kind=PacketKind.READ_REQ)
        p = Packet(header=h)
        bits = PacketHeader.bit_width(params32)
        assert p.flit_count(params32) == -(-bits // 32)

    def test_packet_ids_unique(self, params32):
        a = Packet(header=header())
        b = Packet(header=header())
        assert a.packet_id != b.packet_id
