"""Unit tests for the CRC codec."""

import pytest

from repro.core.crc import CRC8_ATM, CRC16_CCITT, CrcCodec, codec_for_flit_width


class TestCrcCodec:
    def test_known_crc8_vector(self):
        # CRC-8-ATM of 0x00 byte is 0x00; of 0xC2 it is a fixed value
        # we can pin by construction.
        codec = CrcCodec(8, width=8, poly=CRC8_ATM)
        assert codec.compute(0x00) == 0x00

    def test_encode_check_roundtrip(self):
        codec = CrcCodec(32)
        for value in (0, 1, 0xDEADBEEF, 0xFFFFFFFF, 0x12345678):
            assert codec.check(codec.encode(value))

    def test_single_bit_errors_always_detected(self):
        codec = CrcCodec(32)
        value = 0xCAFEBABE
        for bit in range(32 + 8):
            assert codec.detects(value, [bit]), f"missed single-bit flip at {bit}"

    def test_double_bit_errors_detected_crc8(self):
        codec = CrcCodec(16, width=8, poly=CRC8_ATM)
        value = 0xA55A
        for b1 in range(0, 24, 3):
            for b2 in range(b1 + 1, 24, 5):
                assert codec.detects(value, [b1, b2])

    def test_no_error_means_no_detection(self):
        codec = CrcCodec(16)
        assert not codec.detects(0x1234, [])

    def test_corrupted_codeword_fails_check(self):
        codec = CrcCodec(16)
        cw = codec.encode(0xBEEF)
        assert not codec.check(cw ^ 0b100)

    def test_value_must_fit(self):
        with pytest.raises(ValueError):
            CrcCodec(8).compute(256)

    def test_bit_position_validated(self):
        codec = CrcCodec(8)
        with pytest.raises(ValueError):
            codec.detects(0, [99])

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            CrcCodec(0)
        with pytest.raises(ValueError):
            CrcCodec(8, width=0)
        with pytest.raises(ValueError):
            CrcCodec(8, width=8, poly=0)
        with pytest.raises(ValueError):
            CrcCodec(8, width=8, poly=1 << 8)


class TestCodecSelection:
    def test_narrow_flits_get_crc8(self):
        codec = codec_for_flit_width(32)
        assert codec.width == 8 and codec.poly == CRC8_ATM

    def test_wide_flits_get_crc16(self):
        codec = codec_for_flit_width(64)
        assert codec.width == 16 and codec.poly == CRC16_CCITT
        assert codec_for_flit_width(128).width == 16
