"""Unit tests for the load-sweep measurement methodology."""

import pytest

from repro.flow.runner import CACHE_VERSION, ExperimentRunner
from repro.network.experiments import (
    LoadPoint,
    TopologyNocBuilder,
    load_sweep,
    render_sweep,
    saturation_rate,
)
from repro.network.noc import Noc
from repro.network.topology import attach_round_robin, mesh


def small_builder():
    def build():
        topo = mesh(2, 2)
        attach_round_robin(topo, 2, 2)
        return Noc(topo)

    return build


class TestLoadSweep:
    def test_points_match_rates(self):
        pts = load_sweep(small_builder(), [0.02, 0.1], warmup_cycles=200,
                         measure_cycles=600)
        assert [p.offered_rate for p in pts] == [0.02, 0.1]
        assert all(p.completed > 0 for p in pts)

    def test_accepted_rate_grows_with_offered(self):
        pts = load_sweep(small_builder(), [0.01, 0.1], warmup_cycles=200,
                         measure_cycles=1000)
        assert pts[1].accepted_rate > pts[0].accepted_rate

    def test_warmup_samples_excluded(self):
        """All-warmup runs yield empty measurement windows gracefully."""
        pts = load_sweep(small_builder(), [0.0], warmup_cycles=100,
                         measure_cycles=100)
        assert pts[0].completed == 0
        assert pts[0].mean_latency == float("inf")

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            load_sweep(small_builder(), [0.1], warmup_cycles=-1)
        with pytest.raises(ValueError):
            load_sweep(small_builder(), [0.1], measure_cycles=0)

    def test_builder_must_provide_cores(self):
        def build():
            topo = mesh(2, 2)
            # Only a target attached: no initiators to drive traffic.
            topo.add_target("mem")
            topo.attach("mem", "sw_0_0")
            return Noc(topo)

        with pytest.raises(ValueError, match="initiators"):
            load_sweep(build, [0.1])

    def test_deterministic_for_seed(self):
        a = load_sweep(small_builder(), [0.05], warmup_cycles=100,
                       measure_cycles=500, seed=9)
        b = load_sweep(small_builder(), [0.05], warmup_cycles=100,
                       measure_cycles=500, seed=9)
        assert a == b


class TestManifests:
    def test_inline_sweep_attaches_timed_manifests(self):
        pts = load_sweep(small_builder(), [0.02], warmup_cycles=100,
                         measure_cycles=300)
        m = pts[0].manifest
        assert m is not None
        assert m.cached is False and m.seconds > 0
        assert m.key == ""  # inline points have no cache identity

    def test_runner_sweep_manifests_surface_cache_state(self, tmp_path):
        import repro

        builder = TopologyNocBuilder(mesh, (2, 2), n_initiators=2, n_targets=2)
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        first = load_sweep(builder, [0.05], warmup_cycles=100,
                           measure_cycles=300, runner=runner)
        m1 = first[0].manifest
        assert m1.cached is False and m1.key and m1.seconds > 0
        assert m1.repro_version == repro.__version__
        assert m1.cache_version == CACHE_VERSION
        second = load_sweep(builder, [0.05], warmup_cycles=100,
                            measure_cycles=300, runner=runner)
        m2 = second[0].manifest
        assert m2.cached is True and m2.key == m1.key and m2.seconds == 0.0
        # Provenance rides along without breaking point equality.
        assert second[0] == first[0]


class TestHelpers:
    def make_points(self, latencies):
        return [
            LoadPoint(offered_rate=0.01 * (i + 1), accepted_rate=0.1,
                      mean_latency=l, p95_latency=l * 2, completed=10)
            for i, l in enumerate(latencies)
        ]

    def test_saturation_rate_finds_knee(self):
        pts = self.make_points([10, 11, 12, 40])
        assert saturation_rate(pts, knee_factor=3.0) == pytest.approx(0.04)

    def test_saturation_rate_none_when_flat(self):
        pts = self.make_points([10, 11, 12])
        assert saturation_rate(pts) is None

    def test_saturation_rate_empty(self):
        assert saturation_rate([]) is None

    def test_render(self):
        text = render_sweep(self.make_points([10, 20]), title="T")
        assert text.startswith("T")
        assert "offered" in text and "0.010" in text
