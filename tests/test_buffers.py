"""Unit tests for the bounded FIFO."""

import pytest

from repro.core.buffers import BoundedFifo, BufferOverflowError


class TestBoundedFifo:
    def test_fifo_order(self):
        q = BoundedFifo(3)
        for x in (1, 2, 3):
            q.push(x)
        assert [q.pop() for _ in range(3)] == [1, 2, 3]

    def test_overflow_raises(self):
        q = BoundedFifo(1)
        q.push("a")
        with pytest.raises(BufferOverflowError):
            q.push("b")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            BoundedFifo(2).pop()

    def test_flags(self):
        q = BoundedFifo(2)
        assert q.is_empty and not q.is_full and q.free == 2
        q.push(1)
        assert not q.is_empty and not q.is_full and q.free == 1
        q.push(2)
        assert q.is_full and q.free == 0

    def test_peek_does_not_consume(self):
        q = BoundedFifo(2)
        q.push("x")
        assert q.peek() == "x"
        assert len(q) == 1

    def test_peek_empty_is_none(self):
        assert BoundedFifo(2).peek() is None

    def test_clear(self):
        q = BoundedFifo(2)
        q.push(1)
        q.clear()
        assert q.is_empty

    def test_iteration_is_fifo_order(self):
        q = BoundedFifo(3)
        for x in "abc":
            q.push(x)
        assert list(q) == ["a", "b", "c"]

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedFifo(0)
