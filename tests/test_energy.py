"""Unit tests for the energy models."""

import math

import pytest

from repro.core.config import LinkConfig, NiConfig, NocParameters, SwitchConfig
from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import UniformRandomTraffic
from repro.synth.energy import (
    EnergyReport,
    link_energy_per_flit_pj,
    measure_noc_energy,
    ni_energy_per_packet_pj,
    switch_energy_per_flit_pj,
)


def params(w=32):
    return NocParameters(flit_width=w)


class TestPerEventEnergies:
    def test_wider_flits_cost_more_per_hop(self):
        narrow = switch_energy_per_flit_pj(SwitchConfig(4, 4), params(16))
        wide = switch_energy_per_flit_pj(SwitchConfig(4, 4), params(128))
        assert wide > 3 * narrow

    def test_bigger_radix_costs_more_total_but_amortizes(self):
        e44 = switch_energy_per_flit_pj(SwitchConfig(4, 4), params())
        e88 = switch_energy_per_flit_pj(SwitchConfig(8, 8), params())
        # Per flit the bigger switch pays for its bigger crossbar...
        assert e88 > e44 * 0.8
        # ...but less than the full area ratio (radix amortization).
        from repro.synth import switch_area_mm2

        ratio = switch_area_mm2(SwitchConfig(8, 8), params()) / switch_area_mm2(
            SwitchConfig(4, 4), params()
        )
        assert e88 / e44 < ratio

    def test_link_energy_scales_with_stages(self):
        e1 = link_energy_per_flit_pj(LinkConfig(stages=1), params())
        e3 = link_energy_per_flit_pj(LinkConfig(stages=3), params())
        assert e3 == pytest.approx(3 * e1)

    def test_ni_packet_energy_positive(self):
        e = ni_energy_per_packet_pj(NiConfig(params=params()))
        assert e > 0
        assert ni_energy_per_packet_pj(
            NiConfig(params=params()), initiator=False
        ) > e  # target NI is bigger


class TestMeasuredEnergy:
    def run_noc(self, txns=30, rate=0.1):
        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo)
        noc.populate(
            {c: UniformRandomTraffic(mems, rate, seed=i) for i, c in enumerate(cpus)},
            max_transactions=txns,
        )
        noc.run_until_drained(max_cycles=500_000)
        return noc

    def test_report_structure(self):
        noc = self.run_noc()
        report = measure_noc_energy(noc)
        assert set(report.dynamic_pj) == {"switch", "link", "ni"}
        assert report.total_dynamic_pj > 0
        assert report.leakage_pj > 0
        assert report.total_pj == pytest.approx(
            report.total_dynamic_pj + report.leakage_pj
        )
        assert report.completed_transactions == 60

    def test_more_traffic_more_dynamic_energy(self):
        small = measure_noc_energy(self.run_noc(txns=10))
        big = measure_noc_energy(self.run_noc(txns=60))
        assert big.total_dynamic_pj > 2 * small.total_dynamic_pj

    def test_leakage_scales_with_time_not_traffic(self):
        noc = self.run_noc(txns=10)
        before = measure_noc_energy(noc)
        noc.run(5000)  # idle cycles: leakage only
        after = measure_noc_energy(noc)
        assert after.leakage_pj > 3 * before.leakage_pj
        assert after.total_dynamic_pj == pytest.approx(before.total_dynamic_pj)

    def test_per_transaction_figure(self):
        report = measure_noc_energy(self.run_noc())
        assert 0 < report.pj_per_transaction < 1e6

    def test_empty_run_has_nan_per_transaction(self):
        report = EnergyReport(
            dynamic_pj={"switch": 0.0}, leakage_pj=0.0, cycles=0,
            completed_transactions=0,
        )
        assert math.isnan(report.pj_per_transaction)

    def test_describe_renders(self):
        report = measure_noc_energy(self.run_noc())
        text = report.describe()
        assert "dynamic" in text and "leakage" in text and "pJ/txn" in text
