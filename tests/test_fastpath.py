"""The fast-path scheduler: differential equivalence + kernel behaviour.

The kernel's activity-tracked fast path (see ``docs/PERFORMANCE.md``)
must be invisible: any network, any seed, any cycle count produces
byte-identical statistics whether components are scheduled by activity
or ticked unconditionally.  The differential tests here prove it with
the strongest observer available -- self-checking scoreboard traffic
over real NoCs -- and the unit tests pin the kernel-level contract
(wake on wire activity, wake on request, skip accounting, the
``run_until`` error paths).
"""

import pytest

from repro.network.experiments import TopologyNocBuilder, verify_fast_path
from repro.network.noc import NocBuildConfig
from repro.network.scoreboard import (
    add_checked_masters,
    assert_all_clean,
    private_stripe_patterns,
    scoreboard_digest,
)
from repro.network.topology import mesh, ring
from repro.sim.component import Component
from repro.sim.kernel import SimulationError, Simulator


# ---------------------------------------------------------------------------
# Differential tests: fast path vs full tick on real networks.
# ---------------------------------------------------------------------------

TOPOLOGIES = [
    pytest.param((mesh, (3, 3)), id="mesh3x3"),
    pytest.param((ring, (4,)), id="ring4"),
]


def _run_checked(factory, args, seed, fast_path, cycles=1000):
    """A scoreboard-checked run; returns (stats digest, scoreboard digest,
    completed count)."""
    noc = TopologyNocBuilder(
        factory, args, config=NocBuildConfig(fast_path=fast_path)
    )()
    initiators = noc.topology.initiators
    patterns = private_stripe_patterns(
        initiators, noc.topology.targets, rate=0.1, seed=seed
    )
    masters = add_checked_masters(noc, patterns)
    for t in noc.topology.targets:
        noc.add_memory_slave(t)
    noc.run(cycles)
    assert_all_clean(masters)
    return noc.stats_digest(), scoreboard_digest(masters), noc.total_completed()


@pytest.mark.parametrize("topo", TOPOLOGIES)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_differential_digests(topo, seed):
    factory, args = topo
    fast = _run_checked(factory, args, seed, fast_path=True)
    full = _run_checked(factory, args, seed, fast_path=False)
    assert fast[2] > 0, "the workload must actually complete transactions"
    assert fast[0] == full[0], "stats digests must be byte-identical"
    assert fast[1] == full[1], "scoreboard digests must be byte-identical"


def test_verify_fast_path_smoke():
    digest = verify_fast_path(
        TopologyNocBuilder(mesh, (2, 2), n_initiators=2, n_targets=2),
        cycles=400,
        rate=0.05,
    )
    assert len(digest) == 64


def test_fast_path_actually_skips_work():
    noc = TopologyNocBuilder(mesh, (3, 3))()
    noc.populate(
        {c: _no_traffic() for c in noc.topology.initiators},
    )
    noc.run(200)
    sim = noc.sim
    assert sim.ticks_skipped > sim.ticks_executed, (
        "an idle NoC must sleep most of its components"
    )


def _no_traffic():
    from repro.network.traffic import UniformRandomTraffic

    return UniformRandomTraffic(["never"], rate=0.0, seed=0)


# ---------------------------------------------------------------------------
# Kernel-level contract.
# ---------------------------------------------------------------------------


class _Counter(Component):
    """Counts pulses on one wire; optionally self-schedules wakeups."""

    def __init__(self, name, wire, self_wake_at=None):
        super().__init__(name)
        self.inp = wire
        self.ticks = 0
        self.pulses = 0
        self.self_wake_at = self_wake_at

    def wake_inputs(self):
        return [self.inp]

    def is_quiescent(self):
        return True

    def tick(self, cycle):
        self.ticks += 1
        if self.inp.value is not None:
            self.pulses += 1
        if self.self_wake_at is not None and cycle < self.self_wake_at:
            self.request_wakeup()


def test_idle_component_is_skipped():
    sim = Simulator()
    c = sim.add(_Counter("c", sim.wire("w")))
    sim.run(50)
    assert c.ticks == 1  # the initial arming tick only
    assert sim.ticks_skipped == 49


def test_wire_activity_wakes_reader():
    sim = Simulator()
    w = sim.wire("w")
    c = sim.add(_Counter("c", w))
    sim.run(10)
    w.drive(7)
    sim.run(2)  # latch at end of t, read at t+1
    assert c.pulses == 1
    sim.run(20)
    assert c.pulses == 1  # decayed back to sleep


def test_request_wakeup_keeps_component_running():
    sim = Simulator()
    c = sim.add(_Counter("c", sim.wire("w"), self_wake_at=10))
    sim.run(30)
    # Ticked at 0..10 via self-wakeup (arming tick + requested ones),
    # then slept.
    assert c.ticks == 11
    assert sim.ticks_skipped == 30 - c.ticks


def test_full_tick_mode_ticks_everything():
    sim = Simulator(fast_path=False)
    c = sim.add(_Counter("c", sim.wire("w")))
    sim.run(25)
    assert c.ticks == 25
    assert sim.ticks_skipped == 0


def test_set_fast_path_mid_run_stays_correct():
    def build():
        sim = Simulator()
        w = sim.wire("w")
        return sim, w, sim.add(_Counter("c", w))

    sim, w, c = build()
    sim.run(5)
    sim.set_fast_path(False)
    w.drive(1)
    sim.run(2)
    sim.set_fast_path(True)
    w.drive(2)
    sim.run(2)
    assert c.pulses == 2  # no pulse lost across mode switches


def test_foreign_wire_keeps_component_always_active():
    from repro.sim.channel import Wire

    sim = Simulator()
    foreign = Wire("foreign")  # not kernel-owned: no hot-list tracking
    c = sim.add(_Counter("c", foreign))
    sim.run(10)
    assert c.ticks == 10  # cannot sleep on a wire the kernel can't watch


def test_run_until_rejects_non_callable_predicate():
    sim = Simulator()
    with pytest.raises(SimulationError, match="callable predicate"):
        sim.run_until(True)  # a classic typo: passing the result


def test_run_until_timeout_reports_stop_cycle():
    sim = Simulator()
    sim.run(3)
    with pytest.raises(SimulationError, match="stopped at cycle 8"):
        sim.run_until(lambda: False, max_cycles=5)
