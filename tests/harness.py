"""Reusable micro-harness components for protocol-level tests."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.flit import Flit, flit_type_for
from repro.core.flow_control import GoBackNReceiver, GoBackNSender
from repro.sim.channel import FlitChannel
from repro.sim.component import Component


def packet_flits(
    n: int,
    route: tuple,
    width: int = 16,
    packet_id: int = 1,
    payload_base: int = 0,
) -> List[Flit]:
    """A hand-built packet of ``n`` flits with a route on its head."""
    flits = []
    for i in range(n):
        ftype = flit_type_for(i, n)
        flits.append(
            Flit(
                ftype=ftype,
                payload=(payload_base + i) % (1 << width),
                width=width,
                packet_id=packet_id,
                index=i,
                route=route if ftype.is_head else None,
            )
        )
    return flits


class FlitSource(Component):
    """Feeds a flit list through a go-back-N sender."""

    def __init__(self, name: str, channel: FlitChannel, flits=None, window: int = 7):
        super().__init__(name)
        self.sender = GoBackNSender(channel, window=window, name=name)
        self.queue: List[Flit] = list(flits or [])

    def submit(self, flits) -> None:
        self.queue.extend(flits)

    @property
    def drained(self) -> bool:
        return not self.queue and self.sender.idle

    def tick(self, cycle):
        if self.queue and self.sender.can_accept():
            self.sender.enqueue(self.queue.pop(0))
        self.sender.on_cycle()


class FlitSink(Component):
    """Accepts flits through a go-back-N receiver, optionally gated."""

    def __init__(
        self,
        name: str,
        channel: FlitChannel,
        accept: Optional[Callable[[Flit], bool]] = None,
    ):
        super().__init__(name)
        self.receiver = GoBackNReceiver(channel, name=name)
        self.accept = accept or (lambda f: True)
        self.got: List[Flit] = []

    def tick(self, cycle):
        f = self.receiver.poll(self.accept)
        if f is not None:
            self.got.append(f)
