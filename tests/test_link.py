"""Unit tests for pipelined, unreliable links."""

import pytest

from repro.core.config import LinkConfig
from repro.core.flit import Flit, FlitType
from repro.core.link import Link
from repro.sim.channel import AckSignal
from repro.sim.kernel import Simulator


def flit(payload=1):
    return Flit(ftype=FlitType.HEAD_TAIL, payload=payload, width=8)


def make_link(stages=1, error_rate=0.0, seed=0):
    sim = Simulator()
    up = sim.flit_channel("up")
    down = sim.flit_channel("down")
    link = sim.add(Link("l", up, down, LinkConfig(stages=stages, error_rate=error_rate), seed))
    return sim, up, down, link


class TestForwardPath:
    @pytest.mark.parametrize("stages", [1, 2, 5])
    def test_latency_is_stages_plus_one(self, stages):
        sim, up, down, _ = make_link(stages=stages)
        up.send(flit(7))
        for cyc in range(stages + 1):
            sim.step()
            if cyc < stages:
                assert down.peek_flit() is None
        assert down.peek_flit().payload == 7

    def test_back_to_back_stream(self):
        sim, up, down, _ = make_link(stages=2)
        received = []
        for i in range(10):
            up.send(flit(i))
            sim.step()
            f = down.peek_flit()
            if f is not None:
                received.append(f.payload)
        for _ in range(3):
            sim.step()
            f = down.peek_flit()
            if f is not None:
                received.append(f.payload)
        assert received == list(range(10))

    def test_bubbles_preserved(self):
        sim, up, down, _ = make_link(stages=1)
        up.send(flit(1))
        sim.step()
        sim.step()  # nothing sent this cycle
        assert down.peek_flit().payload == 1
        sim.step()
        assert down.peek_flit() is None


class TestBackwardPath:
    @pytest.mark.parametrize("stages", [1, 3])
    def test_ack_latency_matches_forward(self, stages):
        sim, up, down, _ = make_link(stages=stages)
        down.send_ack(AckSignal.ack(0))
        for cyc in range(stages + 1):
            sim.step()
            if cyc < stages:
                assert up.peek_ack() is None
        assert up.peek_ack() == AckSignal.ack(0)


class TestErrorInjection:
    def test_zero_rate_never_corrupts(self):
        sim, up, down, link = make_link(error_rate=0.0)
        for i in range(50):
            up.send(flit(i % 256))
            sim.step()
        sim.step()
        assert link.errors_injected == 0

    def test_rate_one_half_corrupts_roughly_half(self):
        sim, up, down, link = make_link(error_rate=0.5, seed=9)
        for i in range(400):
            up.send(flit(i % 256))
            sim.step()
        sim.step()  # flush: the last flit is seen one cycle after its send
        assert 120 < link.errors_injected < 280
        assert link.flits_carried == 400

    def test_deterministic_for_seed(self):
        counts = []
        for _ in range(2):
            sim, up, down, link = make_link(error_rate=0.3, seed=42)
            for i in range(100):
                up.send(flit(i % 256))
                sim.step()
            counts.append(link.errors_injected)
        assert counts[0] == counts[1]

    def test_reset_restores_rng_and_pipes(self):
        sim, up, down, link = make_link(stages=3, error_rate=0.3, seed=7)
        for i in range(50):
            up.send(flit(i % 256))
            sim.step()
        first = link.errors_injected
        sim.reset()
        assert link.errors_injected == 0
        for i in range(50):
            up.send(flit(i % 256))
            sim.step()
        assert link.errors_injected == first

    def test_corruption_flags_flit_not_drops_it(self):
        sim, up, down, link = make_link(error_rate=1.0 - 1e-9, seed=1)
        up.send(flit(3))
        sim.step()
        sim.step()
        f = down.peek_flit()
        assert f is not None and f.corrupted and f.payload == 3
