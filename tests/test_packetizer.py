"""Unit tests for flit decomposition and reassembly."""

import pytest

from repro.core.config import NocParameters
from repro.core.flit import FlitType
from repro.core.packet import Packet, PacketHeader, PacketKind
from repro.core.packetizer import (
    Depacketizer,
    PacketizationError,
    Packetizer,
    decompose_bits,
    recompose_bits,
)


def make_packet(kind=PacketKind.WRITE_REQ, beats=2, route=(1, 2)):
    payload = tuple(0x1000 + i for i in range(beats)) if kind.payload_beats(beats) else ()
    return Packet(
        header=PacketHeader(
            route=route,
            kind=kind,
            src_id=5,
            burst_len=beats,
            addr=0x123,
        ),
        payload=payload,
    )


class TestBitChunking:
    def test_exact_fit(self):
        assert decompose_bits(0xABCD, 16, 8) == [0xAB, 0xCD]

    def test_padding_on_last_chunk(self):
        # 12 bits into 8-bit flits: second flit has 4 bits of padding.
        chunks = decompose_bits(0xABC, 12, 8)
        assert chunks == [0xAB, 0xC0]

    def test_roundtrip(self):
        value, bits, width = 0x1F2E3D, 24, 7
        chunks = decompose_bits(value, bits, width)
        assert recompose_bits(chunks, bits, width) == value

    def test_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            decompose_bits(0x100, 8, 8)

    def test_recompose_rejects_impossible_count(self):
        with pytest.raises(PacketizationError):
            recompose_bits([0, 0], 17, 8)


class TestPacketizer:
    def test_flit_count_matches_packet(self, params32):
        pk = Packetizer(params32)
        packet = make_packet()
        flits = pk.decompose(packet)
        assert len(flits) == packet.flit_count(params32)

    def test_flit_types_frame_the_packet(self, params32):
        flits = Packetizer(params32).decompose(make_packet())
        assert flits[0].ftype is FlitType.HEAD
        assert flits[-1].ftype is FlitType.TAIL
        for f in flits[1:-1]:
            assert f.ftype is FlitType.BODY

    def test_wide_flit_gives_single_head_tail(self):
        params = NocParameters(flit_width=128)
        packet = make_packet(kind=PacketKind.READ_REQ, beats=1)
        flits = Packetizer(params).decompose(packet)
        assert len(flits) == 1
        assert flits[0].ftype is FlitType.HEAD_TAIL

    def test_head_flit_carries_route_metadata(self, params32):
        flits = Packetizer(params32).decompose(make_packet(route=(3, 1)))
        assert flits[0].route == (3, 1)
        assert all(f.route is None for f in flits[1:])

    def test_head_route_matches_leading_payload_bits(self, params32):
        """The route metadata mirrors the head flit's actual bits."""
        flits = Packetizer(params32).decompose(make_packet(route=(3, 1)))
        head = flits[0]
        top = head.payload >> (params32.flit_width - 2 * params32.port_bits)
        assert top == (3 << params32.port_bits) | 1

    def test_birth_cycle_propagates(self, params32):
        flits = Packetizer(params32).decompose(make_packet(), birth_cycle=77)
        assert all(f.birth_cycle == 77 for f in flits)

    def test_invalid_packet_rejected(self, params32):
        bad = Packet(
            header=PacketHeader(
                route=(1,), kind=PacketKind.WRITE_REQ, src_id=1, burst_len=2, addr=0
            ),
            payload=(1,),  # wrong beat count
        )
        with pytest.raises(ValueError):
            Packetizer(params32).decompose(bad)


def roundtrip(params, packet):
    flits = Packetizer(params).decompose(packet)
    # Simulate full route consumption as the network would do.
    arrived = [
        f.with_route_offset(len(packet.header.route)) if f.is_head else f for f in flits
    ]
    dp = Depacketizer(params)
    out = None
    for f in arrived:
        result = dp.feed(f)
        if result is not None:
            out = result
    return out


class TestDepacketizer:
    @pytest.mark.parametrize("width", [16, 32, 64, 128])
    @pytest.mark.parametrize("kind,beats", [
        (PacketKind.READ_REQ, 1),
        (PacketKind.WRITE_REQ, 1),
        (PacketKind.WRITE_REQ, 4),
        (PacketKind.READ_RESP, 8),
        (PacketKind.WRITE_ACK, 1),
        (PacketKind.INTERRUPT, 0),
    ])
    def test_roundtrip_kinds_and_widths(self, width, kind, beats):
        params = NocParameters(flit_width=width)
        if kind is PacketKind.INTERRUPT:
            packet = Packet(
                header=PacketHeader(
                    route=(1, 2), kind=kind, src_id=5, burst_len=0, addr=7
                )
            )
        else:
            packet = make_packet(kind=kind, beats=beats)
        out = roundtrip(params, packet)
        assert out is not None
        assert out.header == packet.header
        assert out.payload == packet.payload

    def test_partial_packet_returns_none(self, params32):
        flits = Packetizer(params32).decompose(make_packet())
        dp = Depacketizer(params32)
        head = flits[0].with_route_offset(2)
        assert dp.feed(head) is None
        assert dp.busy

    def test_corrupted_flit_rejected(self, params32):
        flits = Packetizer(params32).decompose(make_packet())
        dp = Depacketizer(params32)
        with pytest.raises(PacketizationError, match="corrupted"):
            dp.feed(flits[0].corrupt())

    def test_stray_body_flit_rejected(self, params32):
        flits = Packetizer(params32).decompose(make_packet())
        dp = Depacketizer(params32)
        with pytest.raises(PacketizationError, match="stray"):
            dp.feed(flits[1])

    def test_interleaved_packets_rejected(self, params32):
        a = Packetizer(params32).decompose(make_packet())
        b = Packetizer(params32).decompose(make_packet())
        dp = Depacketizer(params32)
        dp.feed(a[0].with_route_offset(2))
        with pytest.raises(PacketizationError, match="head flit while"):
            dp.feed(b[0].with_route_offset(2))

    def test_wrong_packet_body_rejected(self, params32):
        a = Packetizer(params32).decompose(make_packet())
        b = Packetizer(params32).decompose(make_packet())
        dp = Depacketizer(params32)
        dp.feed(a[0].with_route_offset(2))
        with pytest.raises(PacketizationError, match="interleaved"):
            dp.feed(b[1])

    def test_reset_clears_state(self, params32):
        flits = Packetizer(params32).decompose(make_packet())
        dp = Depacketizer(params32)
        dp.feed(flits[0].with_route_offset(2))
        dp.reset()
        assert not dp.busy

    def test_packet_id_preserved(self, params32):
        packet = make_packet()
        out = roundtrip(params32, packet)
        assert out.packet_id == packet.packet_id

    def test_route_length_recovered_from_offset(self, params32):
        """The receiver infers route length from consumed hops."""
        packet = make_packet(route=(1, 2, 3, 0))
        out = roundtrip(params32, packet)
        assert out.header.route == (1, 2, 3, 0)
