"""Unit tests for the simulation kernel: wires, components, time."""

import pytest

from repro.sim.channel import Wire
from repro.sim.component import Component
from repro.sim.kernel import SimulationError, Simulator


class Driver(Component):
    """Drives a wire with the cycle number every tick."""

    def __init__(self, name, wire):
        super().__init__(name)
        self.wire = wire

    def tick(self, cycle):
        self.wire.drive(cycle)


class Sampler(Component):
    """Records what it sees on a wire each tick."""

    def __init__(self, name, wire):
        super().__init__(name)
        self.wire = wire
        self.seen = []

    def reset(self):
        self.seen = []

    def tick(self, cycle):
        self.seen.append(self.wire.value)


class TestWire:
    def test_initial_value_is_default(self):
        w = Wire("w", default=7)
        assert w.value == 7

    def test_drive_not_visible_until_update(self):
        w = Wire("w")
        w.drive(42)
        assert w.value is None
        w.update()
        assert w.value == 42

    def test_undriven_wire_decays_to_default(self):
        w = Wire("w", default=0)
        w.drive(5)
        w.update()
        assert w.value == 5
        w.update()  # nobody drove this cycle
        assert w.value == 0

    def test_last_drive_wins(self):
        w = Wire("w")
        w.drive(1)
        w.drive(2)
        w.update()
        assert w.value == 2

    def test_reset_restores_default(self):
        w = Wire("w", default="idle")
        w.drive("busy")
        w.update()
        w.reset()
        assert w.value == "idle"


class TestSimulator:
    def test_one_cycle_wire_latency(self, sim):
        w = sim.wire("w")
        sim.add(Driver("drv", w))
        sampler = sim.add(Sampler("smp", w))
        sim.run(3)
        # Value driven in cycle t is seen in cycle t+1.
        assert sampler.seen == [None, 0, 1]

    def test_component_order_does_not_matter(self):
        results = []
        for reverse in (False, True):
            sim = Simulator()
            w = sim.wire("w")
            comps = [Driver("drv", w), Sampler("smp", w)]
            if reverse:
                comps.reverse()
            for c in comps:
                sim.add(c)
            sim.run(4)
            sampler = sim.component("smp")
            results.append(list(sampler.seen))
        assert results[0] == results[1]

    def test_duplicate_component_name_rejected(self, sim):
        w = sim.wire("w")
        sim.add(Driver("x", w))
        with pytest.raises(SimulationError, match="duplicate component"):
            sim.add(Sampler("x", w))

    def test_duplicate_wire_name_rejected(self, sim):
        sim.wire("w")
        with pytest.raises(SimulationError, match="duplicate wire"):
            sim.wire("w")

    def test_component_lookup(self, sim):
        w = sim.wire("w")
        drv = sim.add(Driver("drv", w))
        assert sim.component("drv") is drv
        with pytest.raises(SimulationError, match="no component"):
            sim.component("nope")

    def test_cycle_counter_advances(self, sim):
        assert sim.cycle == 0
        sim.run(10)
        assert sim.cycle == 10

    def test_run_until_counts_cycles(self, sim):
        w = sim.wire("w")
        sampler = sim.add(Sampler("smp", w))
        spent = sim.run_until(lambda: sim.cycle >= 5)
        assert spent == 5

    def test_run_until_raises_on_timeout(self, sim):
        with pytest.raises(SimulationError, match="exceeded"):
            sim.run_until(lambda: False, max_cycles=10)

    def test_reset_restores_time_and_components(self, sim):
        w = sim.wire("w")
        sim.add(Driver("drv", w))
        sampler = sim.add(Sampler("smp", w))
        sim.run(5)
        sim.reset()
        assert sim.cycle == 0
        assert sampler.seen == []
        assert w.value is None

    def test_watchers_run_every_cycle(self, sim):
        calls = []
        sim.add_watcher(calls.append)
        sim.run(3)
        assert calls == [0, 1, 2]

    def test_flit_channel_names_wires(self, sim):
        ch = sim.flit_channel("lnk")
        assert ch.forward.name == "lnk.fwd"
        assert ch.backward.name == "lnk.bwd"

    def test_base_component_tick_is_abstract(self, sim):
        c = Component("raw")
        with pytest.raises(NotImplementedError):
            c.tick(0)
