"""Calibration anchors: the paper's published numbers, pinned.

These tests lock the analytic models to the anchor points listed in
DESIGN.md section 5.  If a model constant is retuned and an anchor
breaks, the reproduction's evaluation figures are no longer comparable
to the paper -- so these fail loudly.
"""

import pytest

from repro.core.config import NiConfig, NocParameters, SwitchConfig
from repro.network.noc import NocBuildConfig
from repro.network.topology import mesh
from repro.synth import (
    ni_max_freq_mhz,
    switch_area_mm2,
    switch_max_freq_mhz,
    synthesize_noc,
)
from repro.synth.timing import switch_relaxed_freq_mhz


def params32():
    return NocParameters(flit_width=32)


class TestSwitchFrequencyAnchors:
    def test_4x4_32bit_reaches_1ghz(self):
        """Paper: 'Initiator NI / Target NI / 4x4 Switch @ 1GHz'."""
        cfg = SwitchConfig(n_inputs=4, n_outputs=4)
        assert switch_relaxed_freq_mhz(cfg, params32()) >= 999.0
        assert switch_max_freq_mhz(cfg, params32()) > 1000.0

    def test_6x4_32bit_lands_in_875_to_980_mhz(self):
        """Paper: '6x4 Switch @ 875 - 980 MHz'."""
        cfg = SwitchConfig(n_inputs=6, n_outputs=4)
        relaxed = switch_relaxed_freq_mhz(cfg, params32())
        assert 875.0 <= relaxed <= 980.0

    def test_5x5_32bit_achieves_about_1500mhz_with_effort(self):
        """Paper F6: the 32-bit 5x5 curve extends to ~1.5 GHz."""
        cfg = SwitchConfig(n_inputs=5, n_outputs=5)
        fmax = switch_max_freq_mhz(cfg, params32())
        assert 1400.0 <= fmax <= 1900.0

    def test_nis_reach_1ghz_at_every_flit_width(self):
        """Paper: NIs run at 1 GHz for flit widths 16..128."""
        for w in (16, 32, 64, 128):
            cfg = NiConfig(params=NocParameters(flit_width=w))
            assert ni_max_freq_mhz(cfg, initiator=True) > 1000.0
            assert ni_max_freq_mhz(cfg, initiator=False) > 1000.0


class TestSwitchAreaAnchors:
    def test_5x5_32bit_relaxed_area_near_paper_low_end(self):
        """Paper F6 low end: ~0.100 mm² (we allow the substitution's
        +-30% band)."""
        cfg = SwitchConfig(n_inputs=5, n_outputs=5)
        area = switch_area_mm2(cfg, params32())
        assert 0.08 <= area <= 0.14

    def test_5x5_32bit_effort_range_is_about_1_8x(self):
        """Paper F6: 0.100 -> 0.180 mm², a 1.8x span."""
        cfg = SwitchConfig(n_inputs=5, n_outputs=5)
        relaxed = switch_area_mm2(cfg, params32())
        at_max = switch_area_mm2(
            cfg, params32(), target_freq_mhz=switch_max_freq_mhz(cfg, params32())
        )
        assert at_max / relaxed == pytest.approx(1.8, rel=0.05)

    def test_4x4_area_tracks_paper_flit_sweep(self):
        """Paper F5: 4x4 grows from ~0.1 (32b) to ~0.3 mm² (128b)."""
        a32 = switch_area_mm2(SwitchConfig(4, 4), NocParameters(flit_width=32))
        a128 = switch_area_mm2(SwitchConfig(4, 4), NocParameters(flit_width=128))
        assert 0.07 <= a32 <= 0.13
        assert 0.24 <= a128 <= 0.45
        assert 2.5 <= a128 / a32 <= 4.5


class TestMeshCaseStudyAnchor:
    def test_3x4_mesh_totals_about_2_6_mm2(self):
        """Paper: 'A 3x4 xpipes mesh for 8 processors and 11 slaves
        occupies ~2.6 mm²'."""
        topo = mesh(4, 3)
        switches = topo.switches
        for i in range(8):
            topo.add_initiator(f"cpu{i}")
            topo.attach(f"cpu{i}", switches[i])
        for i in range(11):
            topo.add_target(f"mem{i}")
            topo.attach(f"mem{i}", switches[(8 + i) % 12])
        report = synthesize_noc(
            topo, NocBuildConfig(params=params32()), target_freq_mhz=1000
        )
        assert 2.2 <= report.total_area_mm2 <= 3.0

    def test_mesh_switch_count_and_kinds(self):
        topo = mesh(4, 3)
        report = synthesize_noc(topo, target_freq_mhz=800)
        assert len(report.by_kind("switch")) == 12
