"""Unit tests for the component parameter dataclasses."""

import pytest

from repro.core.config import (
    ArbitrationPolicy,
    LinkConfig,
    NiConfig,
    NocParameters,
    SwitchConfig,
)


class TestNocParameters:
    def test_defaults_give_about_50_bit_headers(self):
        from repro.core.packet import PacketHeader

        p = NocParameters()
        assert 45 <= PacketHeader.bit_width(p) <= 60  # "about 50 bits"

    def test_route_bits(self):
        p = NocParameters(max_hops=8, port_bits=3)
        assert p.route_bits == 24

    def test_max_radix(self):
        assert NocParameters(port_bits=3).max_radix == 8

    def test_max_burst(self):
        assert NocParameters(burst_bits=8).max_burst == 255

    def test_max_nodes(self):
        assert NocParameters(node_id_bits=6).max_nodes == 64

    @pytest.mark.parametrize("field,value", [
        ("flit_width", 2),
        ("data_width", 4),
        ("max_hops", 0),
        ("port_bits", 0),
        ("node_id_bits", 0),
        ("burst_bits", 0),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            NocParameters(**{field: value})

    def test_frozen(self):
        p = NocParameters()
        with pytest.raises(AttributeError):
            p.flit_width = 64


class TestSwitchConfig:
    def test_label(self):
        assert SwitchConfig(4, 5).label() == "4x5"

    def test_radix_is_max_dimension(self):
        assert SwitchConfig(6, 4).radix == 6

    def test_rejects_no_ports(self):
        with pytest.raises(ValueError):
            SwitchConfig(0, 4)
        with pytest.raises(ValueError):
            SwitchConfig(4, 0)

    def test_rejects_tiny_buffer(self):
        with pytest.raises(ValueError):
            SwitchConfig(4, 4, buffer_depth=1)

    def test_rejects_zero_pipeline(self):
        with pytest.raises(ValueError):
            SwitchConfig(4, 4, pipeline_stages=0)

    def test_paper_default_is_two_stages(self):
        assert SwitchConfig(4, 4).pipeline_stages == 2


class TestLinkConfig:
    def test_defaults(self):
        cfg = LinkConfig()
        assert cfg.stages == 1
        assert cfg.error_rate == 0.0

    def test_rejects_zero_stages(self):
        with pytest.raises(ValueError):
            LinkConfig(stages=0)

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_rejects_bad_error_rate(self, rate):
        with pytest.raises(ValueError):
            LinkConfig(error_rate=rate)

    def test_accepts_valid_error_rate(self):
        assert LinkConfig(error_rate=0.25).error_rate == 0.25


class TestNiConfig:
    def test_defaults_carry_params(self):
        cfg = NiConfig()
        assert cfg.params.flit_width == 32

    def test_rejects_tiny_buffer(self):
        with pytest.raises(ValueError):
            NiConfig(buffer_depth=1)

    def test_rejects_zero_outstanding(self):
        with pytest.raises(ValueError):
            NiConfig(max_outstanding=0)


class TestArbitrationPolicy:
    def test_both_paper_policies_exist(self):
        assert ArbitrationPolicy.FIXED_PRIORITY.value == "fixed"
        assert ArbitrationPolicy.ROUND_ROBIN.value == "round_robin"
