"""Documentation stays executable and truthful.

The README quickstart and the package docstring example are executed;
file references in the docs must exist.  Documentation that silently
rots is worse than none.
"""

import os
import re

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def extract_python_blocks(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_runs(self):
        blocks = extract_python_blocks(os.path.join(ROOT, "README.md"))
        assert blocks, "README must contain a python quickstart"
        # The first python block is the quickstart; it must execute.
        exec(compile(blocks[0], "README-quickstart", "exec"), {})

    def test_examples_table_points_at_real_files(self):
        with open(os.path.join(ROOT, "README.md"), encoding="utf-8") as f:
            text = f.read()
        for match in re.findall(r"`(examples/[\w./]+\.py)`", text):
            assert os.path.exists(os.path.join(ROOT, match)), match


class TestPackageDocstring:
    def test_init_example_runs(self):
        import repro

        doc = repro.__doc__
        # Extract the indented code block after "Quick start::".
        lines = doc.split("Quick start::", 1)[1].splitlines()
        code = "\n".join(
            l[4:] for l in lines if l.startswith("    ") or not l.strip()
        )
        exec(compile(code, "repro-docstring", "exec"), {})


class TestDesignDoc:
    def test_every_bench_in_the_index_exists(self):
        with open(os.path.join(ROOT, "DESIGN.md"), encoding="utf-8") as f:
            text = f.read()
        benches = set(re.findall(r"`(?:benchmarks/)?(bench_\w+\.py)`", text))
        assert benches
        for b in benches:
            assert os.path.exists(os.path.join(ROOT, "benchmarks", b)), b

    def test_every_bench_file_is_indexed(self):
        with open(os.path.join(ROOT, "DESIGN.md"), encoding="utf-8") as f:
            design = f.read()
        on_disk = {
            f for f in os.listdir(os.path.join(ROOT, "benchmarks"))
            if f.startswith("bench_") and f.endswith(".py")
        }
        for b in on_disk:
            assert b in design, f"{b} missing from DESIGN.md's experiment index"


class TestPerformanceDoc:
    PATH = os.path.join(ROOT, "docs", "PERFORMANCE.md")

    def test_exists_and_is_cross_linked(self):
        assert os.path.exists(self.PATH)
        for doc in ("README.md", "DESIGN.md", os.path.join("docs", "ARCHITECTURE.md")):
            with open(os.path.join(ROOT, doc), encoding="utf-8") as f:
                assert "PERFORMANCE.md" in f.read(), f"{doc} must link the guide"

    def test_covers_the_contract(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        for term in (
            "wake_inputs", "is_quiescent", "request_wakeup",
            "verify_fast_path", "fast_path=False", "set_fast_path",
            "cache_token", "CACHE_VERSION", "--jobs", "--cache",
            # the compiled kernel
            'kernel="compiled"', "set_kernel", "sim.compile()",
            "CompileError", "compile_fallback", "stride=",
            "kernel-smoke", "BENCH_s1.json",
            # the kernel decision table + the batched mode it indexes
            "## Choosing a kernel", "batched", "BatchSimulator",
            "BATCHING.md",
        ):
            assert term in text, term

    def test_every_python_block_runs(self):
        blocks = extract_python_blocks(self.PATH)
        assert len(blocks) >= 3, "the guide promises runnable snippets"
        for i, block in enumerate(blocks):
            exec(compile(block, f"PERFORMANCE-snippet-{i}", "exec"), {})


class TestObservabilityDoc:
    PATH = os.path.join(ROOT, "docs", "OBSERVABILITY.md")

    def test_exists_and_is_cross_linked(self):
        assert os.path.exists(self.PATH)
        for doc in (
            "README.md",
            os.path.join("docs", "ARCHITECTURE.md"),
            os.path.join("docs", "PERFORMANCE.md"),
            os.path.join("docs", "BATCHING.md"),
            os.path.join("docs", "CHECKPOINT.md"),
        ):
            with open(os.path.join(ROOT, doc), encoding="utf-8") as f:
                assert "OBSERVABILITY.md" in f.read(), f"{doc} must link the guide"

    def test_covers_the_contract(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        for term in (
            # metrics schema
            "repro.telemetry/v1", "counters", "gauges", "series",
            "histograms", "validate_metrics",
            # trace event reference + Perfetto howto
            "pkt_inject", "hop", "pkt_eject", "link_error",
            "ui.perfetto.dev", "chrome://tracing", "trace.json",
            # heatmaps, probes, CLI, overhead table
            "heatmap_csv", "add_probe", "python -m repro report",
            "report-smoke", "bench_s2_telemetry_overhead",
            # the three-kernel model and the CI-bearing artifacts
            "all three kernels", "compile_fallback",
            "ci95", "replicas", "BENCH_s3.json", "BENCH_a8.json",
            "--replicas", "BATCHING.md",
            # fleet telemetry: run events, profiler, dashboard, regress
            "repro.telemetry.events/v1", "events.jsonl",
            "point_start", "retry", "point_end", "checkpoint",
            "lane_batch", "run_end", "replay_summary",
            "KernelProfiler", "sample_every", "profile.json",
            "python -m repro top", "metrics.prom",
            "MetricsRegistry.merge",
            "bench-diff", "BENCH_TRAJECTORY.json", "top-smoke",
        ):
            assert term in text, term

    def test_has_an_overhead_table(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        assert "| telemetry off" in text and "| full suite" in text

    def test_every_python_block_runs(self):
        blocks = extract_python_blocks(self.PATH)
        assert len(blocks) >= 2, "the guide promises runnable snippets"
        for i, block in enumerate(blocks):
            exec(compile(block, f"OBSERVABILITY-snippet-{i}", "exec"), {})


class TestResilienceDoc:
    PATH = os.path.join(ROOT, "docs", "RESILIENCE.md")

    def test_exists_and_is_cross_linked(self):
        assert os.path.exists(self.PATH)
        for doc in (
            "README.md",
            os.path.join("docs", "PROTOCOL.md"),
            os.path.join("docs", "OBSERVABILITY.md"),
        ):
            with open(os.path.join(ROOT, doc), encoding="utf-8") as f:
                assert "RESILIENCE.md" in f.read(), f"{doc} must link the guide"

    def test_covers_the_contract(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        for term in (
            # fault model
            "FaultInjector", "FaultWindow", "burst", "stuck", "dead",
            "set_fault", "randomized_windows",
            # recovery machinery
            "txn_timeout", "txn_retries", "SResp.ERR", "resync_timeout",
            "stale",
            # watchdog semantics
            "ProgressWatchdog", "NoProgressError", "horizon",
            "occupancy_snapshot",
            # campaign harness, CLI, CI
            "CampaignSpec", "run_campaign", "python -m repro faults",
            "faults-smoke", "bench_s3_resilience",
            # fleet supervision + chaos harness
            "heartbeat", "liveness", "worker_stall", "restart_budget",
            "poison_threshold", "poisoned", "CircuitBreaker",
            "circuit_open", "degraded", "ChaosPlan", "ChaosMonkey",
            "corrupt_record", "tear_manifest", "truncate_events",
            "exactly once", "orphan", "python -m repro chaos",
            "chaos-smoke",
        ):
            assert term in text, term

    def test_every_python_block_runs(self):
        blocks = extract_python_blocks(self.PATH)
        assert len(blocks) >= 2, "the guide promises runnable snippets"
        for i, block in enumerate(blocks):
            exec(compile(block, f"RESILIENCE-snippet-{i}", "exec"), {})


class TestCheckpointDoc:
    PATH = os.path.join(ROOT, "docs", "CHECKPOINT.md")

    def test_exists_and_is_cross_linked(self):
        assert os.path.exists(self.PATH)
        for doc in (
            os.path.join("docs", "RESILIENCE.md"),
            os.path.join("docs", "PERFORMANCE.md"),
        ):
            with open(os.path.join(ROOT, doc), encoding="utf-8") as f:
                assert "CHECKPOINT.md" in f.read(), f"{doc} must link the guide"

    def test_covers_the_contract(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        for term in (
            # snapshot contract + format
            "SimSnapshot", "SnapshotError", "snapshot()", "restore(",
            "SNAPSHOT_STRUCTURAL", "SNAPSHOT_VERSION", "sha256",
            "verify_checkpoint", "stats_digest",
            # hardened runner
            "runs.jsonl", "timeout", "retries", "PointFailure",
            "on_failure", "corrupt", "journal_entries",
            # campaign + CLI + CI
            "checkpoint_every", "--checkpoint-every", "--resume",
            "REPRO_CHECKPOINT_EVERY", "checkpoint-smoke", "timeout_guard",
            # kernel-agnostic restores
            "kernel-agnostic", "snap.kernel", "restore_kernel",
            # the v2 batch container and its kill-and-resume smoke
            "snap.batch", "assume_lane", "batch-smoke", "BATCHING.md",
        ):
            assert term in text, term

    def test_every_python_block_runs(self):
        blocks = extract_python_blocks(self.PATH)
        assert len(blocks) >= 3, "the guide promises runnable snippets"
        for i, block in enumerate(blocks):
            exec(compile(block, f"CHECKPOINT-snippet-{i}", "exec"), {})


class TestBatchingDoc:
    PATH = os.path.join(ROOT, "docs", "BATCHING.md")

    def test_exists_and_is_cross_linked(self):
        assert os.path.exists(self.PATH)
        for doc in (
            "README.md",
            os.path.join("docs", "ARCHITECTURE.md"),
            os.path.join("docs", "PERFORMANCE.md"),
            os.path.join("docs", "OBSERVABILITY.md"),
            os.path.join("docs", "RESILIENCE.md"),
            os.path.join("docs", "CHECKPOINT.md"),
        ):
            with open(os.path.join(ROOT, doc), encoding="utf-8") as f:
                assert "BATCHING.md" in f.read(), f"{doc} must link the guide"

    def test_covers_the_contract(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        for term in (
            # lanes and the bit-identity contract
            "BatchSimulator", "begin_lane", "run_lanes", "SEED_STRIDE",
            "seed_stride", "invalidate_program=False", "stats_digest",
            # idle-span skipping
            "run_to_event", "catch_up", "compile_fallback",
            # per-lane fault schedules
            "lane_windows", "set_windows", "probe_links",
            # CI math
            "mean_ci95", "t_quantile_95", "Student-t", "summarize",
            # harness integration + CLI
            "run_campaign_replicated", "replicas=", "lane_metrics",
            "map_replicated", "--replicas", "REPRO_REPLICAS",
            # checkpoints + CI artifacts
            "snap.batch", "SNAPSHOT_VERSION", "assume_lane",
            "batch-smoke", "BENCH_s4.json",
        ):
            assert term in text, term

    def test_every_python_block_runs(self):
        blocks = extract_python_blocks(self.PATH)
        assert len(blocks) >= 3, "the guide promises runnable snippets"
        for i, block in enumerate(blocks):
            exec(compile(block, f"BATCHING-snippet-{i}", "exec"), {})


class TestExperimentsDoc:
    def test_mentions_every_figure(self):
        with open(os.path.join(ROOT, "EXPERIMENTS.md"), encoding="utf-8") as f:
            text = f.read()
        for fig in [f"F{i}" for i in range(1, 11)]:
            assert f"## {fig} " in text or f"{fig} —" in text or f"{fig} --" in text, fig


class TestServiceDoc:
    PATH = os.path.join(ROOT, "docs", "SERVICE.md")

    def test_exists_and_is_cross_linked(self):
        assert os.path.exists(self.PATH)
        for doc in (
            "README.md",
            os.path.join("docs", "OBSERVABILITY.md"),
            os.path.join("docs", "CHECKPOINT.md"),
        ):
            with open(os.path.join(ROOT, doc), encoding="utf-8") as f:
                assert "SERVICE.md" in f.read(), f"{doc} must link the guide"

    def test_covers_the_contract(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        for term in (
            # the store: layout, keys, verification, maintenance
            "repro.store/v1", "STORE.json", "manifest.jsonl",
            ".rec", "*.corrupt", "sha256", "CACHE_VERSION",
            "stable_repr", "os.replace", "last-write-wins",
            "conflicts", "compact()", "gc(", "StoreError",
            "functools.partial",
            # the dispatcher
            "WorkStealingDispatcher", "MapSession", "round-robin",
            "steals", "worker_restarts", "digest-identical",
            "`steal` event", "thief", "victim",
            # the HTTP service
            "python -m repro serve", "--port 0", "--max-inflight",
            "POST /query", "GET /healthz", "GET /metrics",
            "/jobs/", "since=", "429", "202", "curl",
            "to_prometheus", "events.jsonl",
            "repro.telemetry.events/v1", "serve.inflight",
            # the query grammar
            "QuerySpec", "parse_query", "QueryEngine",
            "mesh-5x5", "min_freq_mhz", "objective",
            "served_from", "wait",
            # supervision + graceful degradation
            "heartbeat", "liveness", "worker_stall", "restart_budget",
            "poison_threshold", "poisoned", "CircuitBreaker",
            "circuit_open", "circuit_close", "serve.circuit_open",
            "\"degraded\": true", "hints", "FarmUnavailable",
            "Retry-After", "retryable", "method_not_allowed",
            "--request-timeout", "RESILIENCE.md",
            # smoke coverage
            "serve-smoke", "bench-smoke", "chaos-smoke",
        ):
            assert term in text, term

    def test_has_the_store_layout_and_endpoint_table(self):
        with open(self.PATH, encoding="utf-8") as f:
            text = f.read()
        assert "objects/" in text and "| endpoint |" in text

    def test_every_python_block_runs(self):
        blocks = extract_python_blocks(self.PATH)
        assert len(blocks) >= 3, "the guide promises runnable snippets"
        for i, block in enumerate(blocks):
            exec(compile(block, f"SERVICE-snippet-{i}", "exec"), {})
