"""Unit tests for wormhole deadlock analysis (channel dependency graphs)."""

import pytest

from repro.network.deadlock import (
    channel_dependency_graph,
    check_deadlock_freedom,
)
from repro.network.topology import attach_round_robin, mesh, ring, star, torus


class TestChannelDependencyGraph:
    def test_mesh_dor_is_acyclic(self):
        topo = mesh(3, 3)
        attach_round_robin(topo, 4, 4)
        report = check_deadlock_freedom(topo, "dor")
        assert report.is_deadlock_free
        assert report.cycles == []
        assert report.n_channels > 0

    def test_larger_mesh_dor_still_acyclic(self):
        topo = mesh(4, 4)
        attach_round_robin(topo, 6, 6)
        assert check_deadlock_freedom(topo, "dor").is_deadlock_free

    def test_ring_with_all_pairs_has_cycle(self):
        """The textbook wormhole deadlock: cyclic channel dependencies
        around a ring without virtual channels."""
        topo = ring(6)
        attach_round_robin(topo, 3, 3)
        report = check_deadlock_freedom(topo)
        assert not report.is_deadlock_free
        assert len(report.cycles) >= 1
        # The reported cycle is a genuine cycle: consecutive channels
        # chain head to tail.
        cycle = report.cycles[0]
        for (a1, b1), (a2, b2) in zip(cycle, cycle[1:]):
            assert b1 == a2

    def test_star_is_trivially_deadlock_free(self):
        topo = star(4)
        attach_round_robin(topo, 3, 3)
        assert check_deadlock_freedom(topo).is_deadlock_free

    def test_cdg_nodes_are_fabric_channels_only(self):
        topo = mesh(2, 2)
        attach_round_robin(topo, 2, 2)
        cdg = channel_dependency_graph(topo)
        switches = set(topo.switches)
        for a, b in cdg.nodes:
            assert a in switches and b in switches

    def test_describe_both_ways(self):
        good = mesh(2, 2)
        attach_round_robin(good, 2, 2)
        text = check_deadlock_freedom(good).describe()
        assert "deadlock-free" in text

        bad = ring(6)
        attach_round_robin(bad, 3, 3)
        text = check_deadlock_freedom(bad).describe()
        assert "NOT deadlock-free" in text
        assert "->" in text

    def test_policy_changes_the_answer(self):
        """On a mesh, both DOR and shortest-path route sets are acyclic;
        the dependency counts still differ because the paths differ."""
        topo = mesh(3, 3)
        attach_round_robin(topo, 4, 4)
        dor = check_deadlock_freedom(topo, "dor")
        short = check_deadlock_freedom(topo, "shortest")
        assert dor.is_deadlock_free and short.is_deadlock_free

    def test_torus_under_few_pairs_may_be_acyclic(self):
        """Deadlock freedom is a property of the *route set*, not the
        topology alone: a lightly loaded torus can be fine."""
        topo = torus(3, 3)
        topo.add_initiator("cpu")
        topo.add_target("mem")
        topo.attach("cpu", "sw_0_0")
        topo.attach("mem", "sw_1_1")
        assert check_deadlock_freedom(topo).is_deadlock_free


class TestCycleEnumeration:
    """The report counts cycles truthfully (the pre-fix code stopped at
    the first one found, so every cyclic topology claimed exactly 1)."""

    def test_multiple_cycles_are_enumerated(self):
        # A bigger ring under shortest-path routing wraps dependencies
        # in both directions: two distinct cycles, not "1".
        topo = ring(8)
        attach_round_robin(topo, 4, 4)
        report = check_deadlock_freedom(topo, "shortest")
        assert not report.is_deadlock_free
        assert len(report.cycles) >= 2
        assert not report.cycles_truncated
        # Every reported cycle is genuine, including the wrap-around.
        for cycle in report.cycles:
            closed = cycle + [cycle[0]]
            for (a1, b1), (a2, b2) in zip(closed, closed[1:]):
                assert b1 == a2

    def test_enumeration_is_capped_and_flagged(self):
        # A torus under all-pairs shortest routing has combinatorially
        # many dependency cycles; enumeration must stop at the cap and
        # say so instead of pretending the count is exact.
        topo = torus(4, 4)
        attach_round_robin(topo, 8, 8)
        report = check_deadlock_freedom(topo, "shortest")
        assert report.cycles_truncated
        assert len(report.cycles) == 64  # CYCLE_SAMPLE_CAP
        capped = check_deadlock_freedom(topo, "shortest", cycle_cap=2)
        assert capped.cycles_truncated and len(capped.cycles) == 2
        assert "2+" in capped.describe()

    def test_acyclic_report_is_never_truncated(self):
        topo = mesh(3, 3)
        attach_round_robin(topo, 4, 4)
        report = check_deadlock_freedom(topo, "dor")
        assert report.is_deadlock_free
        assert not report.cycles_truncated
