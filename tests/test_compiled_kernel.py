"""The compiled tick kernel: differential equivalence + compile contract.

The codegen kernel (``docs/PERFORMANCE.md``, "Compiled kernel") must be
invisible: any network, any seed, any load -- including contended
regimes that exercise allocation conflicts, NACK recovery and wormhole
blocking -- produces statistics byte-identical to the interpreted loop
and the fast path.  The differential tests prove it on real NoCs (the
contended-rate case is load-bearing: a sticky arbitration bug once
survived every light-load test in the suite); the unit tests pin the
compile-time contract -- who gets a specialized lane, what raises
:class:`~repro.sim.compiled.CompileError`, when programs go stale, and
that observers (probes, watchers, tracers) see exactly the cycles
``step()`` would have shown them.
"""

import pytest

from repro.faults.injector import FaultInjector, FaultWindow
from repro.network.experiments import (
    TopologyNocBuilder,
    verify_checkpoint,
    verify_fast_path,
)
from repro.network.noc import NocBuildConfig
from repro.network.topology import mesh, ring
from repro.network.traffic import UniformRandomTraffic
from repro.sim.compiled import CompileError, compiled_source
from repro.sim.component import Component
from repro.sim.kernel import KERNEL_MODES, SimulationError, Simulator
from repro.sim.trace import TextTracer

THREE_WAY = ("compiled", "fast", "interpreted")


# ---------------------------------------------------------------------------
# Differential tests: compiled vs fast vs interpreted on real networks.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("topo", [
    pytest.param((mesh, (3, 3)), id="mesh3x3"),
    pytest.param((ring, (4,)), id="ring4"),
])
@pytest.mark.parametrize("rate", [0.02, 0.3], ids=["light", "contended"])
def test_three_way_digest_equivalence(topo, rate):
    factory, args = topo
    digest = verify_fast_path(
        TopologyNocBuilder(factory, args),
        cycles=700,
        rate=rate,
        kernels=THREE_WAY,
    )
    assert len(digest) == 64


def test_equivalence_with_open_fault_windows():
    # Error recovery under codegen: the window opens mid-run, corrupts
    # real traffic, and go-back-N must replay identically in all modes.
    window = FaultWindow("link.*", start=100, duration=300, error_rate=0.15)
    verify_fast_path(
        TopologyNocBuilder(mesh, (2, 2)),
        cycles=700,
        rate=0.1,
        attach=lambda noc: FaultInjector(noc, [window]),
        kernels=THREE_WAY,
    )


@pytest.mark.parametrize("kernel,restore_kernel", [
    ("compiled", "interpreted"),
    ("interpreted", "compiled"),
    ("fast", "compiled"),
    ("compiled", "fast"),
])
def test_cross_kernel_checkpoint_restore(kernel, restore_kernel):
    verify_checkpoint(
        TopologyNocBuilder(mesh, (2, 2)),
        snapshot_at=200,
        cycles=600,
        rate=0.1,
        kernel=kernel,
        restore_kernel=restore_kernel,
    )


def test_mesh_gets_specialized_lanes():
    noc = TopologyNocBuilder(mesh, (3, 3), n_initiators=4, n_targets=4)()
    noc.populate(
        {
            c: UniformRandomTraffic(noc.topology.targets, 0.05, seed=i)
            for i, c in enumerate(noc.topology.initiators)
        }
    )
    program = noc.sim.compile()
    assert program.lanes["switch"] == 9
    assert program.lanes["master"] == 4
    assert program.lanes["ni-initiator"] == 4
    assert program.lanes["ni-target"] == 4
    assert program.lanes["link"] > 0
    assert set(program.lane_of) == {c.name for c in noc.sim._components}


# ---------------------------------------------------------------------------
# The compile contract.
# ---------------------------------------------------------------------------


class _Pulse(Component):
    """Minimal well-behaved component: counts values on one wire."""

    def __init__(self, name, wire):
        super().__init__(name)
        self.inp = wire
        self.ticks = 0
        self.pulses = 0

    def wake_inputs(self):
        return [self.inp]

    def is_quiescent(self):
        return True

    def tick(self, cycle):
        self.ticks += 1
        if self.inp.value is not None:
            self.pulses += 1


class _NoContract(Component):
    """Opts out: no wake_inputs/is_quiescent, so it can never sleep."""

    def __init__(self, name):
        super().__init__(name)
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1


def _tiny_sim(kernel="compiled"):
    sim = Simulator(kernel=kernel)
    w = sim.wire("w")
    c = sim.add(_Pulse("c", w))
    return sim, w, c


def test_no_contract_component_takes_the_always_lane():
    # No quiescence contract is not an opt-out: the component runs every
    # cycle under codegen, exactly as step()'s _always_active list does.
    sim, w, c = _tiny_sim()
    free = sim.add(_NoContract("free"))
    program = sim.compile()
    assert program.lane_of["free"] == "always"
    w.drive(5)
    sim.run(20)
    assert free.ticks == 20
    assert c.pulses == 1  # sleepy neighbor still wakes and sleeps


def test_strict_compile_names_the_offender():
    sim, _, c = _tiny_sim()
    c.tick = lambda cycle: None  # instance-level: invisible to codegen
    with pytest.raises(CompileError, match="'c'"):
        sim.compile()


def test_non_strict_compile_falls_back_and_stays_correct():
    sim, w, c = _tiny_sim()
    rogue = sim.add(_Pulse("rogue", sim.wire("w2")))
    rogue.tick = rogue.tick  # freeze the bound method: instance-level
    assert sim.compile(strict=False) is None
    assert "rogue" in sim.compile_fallback
    assert sim.kernel == "compiled"  # nominally; runs on the fast path
    w.drive(5)
    sim.run(10)
    assert c.pulses == 1


def test_structural_mutation_recompiles():
    sim, w, c = _tiny_sim()
    first = sim.compile()
    sim.run(3)
    c2 = sim.add(_Pulse("c2", sim.wire("w2")))
    second = sim.compile()
    assert second is not first and second.rev > first.rev
    sim.run(3)
    assert sim.cycle == 6 and c2.ticks >= 1


def test_compiled_source_is_deterministic():
    a = compiled_source(_tiny_sim()[0])
    b = compiled_source(_tiny_sim()[0])
    assert a == b and "def run_cycles" in a


def test_set_kernel_validates_mode():
    sim = Simulator()
    with pytest.raises(SimulationError, match="set_kernel"):
        sim.set_kernel("vectorized")
    for mode in KERNEL_MODES:
        sim.set_kernel(mode)
        assert sim.kernel == mode


# ---------------------------------------------------------------------------
# Observers: probes, watchers, tracers see step()-identical cycles.
# ---------------------------------------------------------------------------


def _drive_schedule(sim, w):
    """Stimulus with gaps, so wake/sleep transitions are exercised."""
    sim.run(2)
    w.drive(1)
    sim.run(5)
    w.drive(2)
    sim.run(5)


def test_probes_are_cycle_exact():
    # Probes fire only on cycles their component executed; under the
    # interpreted loop that is every cycle, so the activity-aware
    # contract is fast-vs-compiled equivalence (tests/test_fastpath.py
    # pins the fast-path side of the contract).
    def observed(kernel):
        sim, w, c = _tiny_sim(kernel)
        seen = []
        sim.add_probe(c, lambda cyc: seen.append((cyc, c.pulses)))
        _drive_schedule(sim, w)
        return seen

    want = observed("fast")
    assert observed("compiled") == want
    assert any(pulses for _, pulses in want)
    assert len(want) < 12  # skipped cycles really are skipped


def test_watchers_are_cycle_exact():
    def observed(kernel):
        sim, w, c = _tiny_sim(kernel)
        seen = []
        sim.add_watcher(lambda cyc: seen.append((cyc, c.pulses)))
        _drive_schedule(sim, w)
        return seen

    want = observed("interpreted")
    assert len(want) == 12  # watchers run every cycle, in every mode
    assert observed("compiled") == want


def test_tracer_swap_mid_run_is_honored():
    # A tracer swap doesn't invalidate the program (it's not structure);
    # the run dispatcher must notice it anyway: observed runs take the
    # slow generated loop, which traces cycle-exactly.  Note the swap
    # also changes lane assignment territory -- the program was compiled
    # under NullTracer with specialized lanes -- so this doubles as the
    # proof that the dispatcher, not recompilation, carries correctness.
    from repro.sim.snapshot import _global_id_state, _set_global_id_state

    ids = _global_id_state()

    def events(kernel):
        # Flit reprs in trace fields carry process-global packet ids;
        # rewind the allocators so both runs see identical streams.
        _set_global_id_state(ids)
        noc = TopologyNocBuilder(mesh, (2, 2))()
        noc.sim.set_kernel(kernel)
        noc.populate(
            {
                c: UniformRandomTraffic(noc.topology.targets, 0.1, seed=5 + i)
                for i, c in enumerate(noc.topology.initiators)
            }
        )
        noc.run(100)
        tracer = TextTracer()
        noc.sim.tracer = tracer
        noc.run(200)
        return tracer.events

    want = events("interpreted")
    assert want, "the workload must actually produce trace events"
    assert events("compiled") == want


def test_run_until_stride_under_compiled_kernel():
    sim, w, c = _tiny_sim()
    sim.compile()
    spent = sim.run_until(lambda: sim.cycle >= 900, stride=128)
    assert spent == sim.cycle == 1024  # predicate polled at stride marks
