"""Unit tests for topology selection."""

import pytest

from repro.flow.selection import (
    CandidateResult,
    estimate_mean_cycles,
    evaluate_candidate,
    select_topology,
)
from repro.flow.taskgraph import demo_multimedia_soc
from repro.network.topology import mesh, ring, star


@pytest.fixture(scope="module")
def core_graph():
    return demo_multimedia_soc()[2]


class TestEstimateMeanCycles:
    def test_single_hop_estimate(self, core_graph):
        from repro.core.config import NocParameters
        from repro.flow.bandwidth import flits_per_transaction

        topo = mesh(2, 2)
        mapping = {c: "sw_0_0" for c in core_graph.cores}
        cycles = estimate_mean_cycles(core_graph, topo, mapping)
        # Everything co-located: 1 hop x 3 cycles + 6 NI cycles +
        # wormhole serialization of the default 4-beat packet.
        ser = flits_per_transaction(NocParameters(), 4) - 1
        assert cycles == pytest.approx(9.0 + ser)

    def test_wider_flits_estimate_lower_latency(self, core_graph):
        from repro.core.config import NocParameters

        topo = mesh(2, 2)
        mapping = {c: "sw_0_0" for c in core_graph.cores}
        narrow = estimate_mean_cycles(
            core_graph, topo, mapping, params=NocParameters(flit_width=16)
        )
        wide = estimate_mean_cycles(
            core_graph, topo, mapping, params=NocParameters(flit_width=128)
        )
        assert wide < narrow

    def test_spread_mapping_costs_more(self, core_graph):
        topo = mesh(2, 2)
        together = {c: "sw_0_0" for c in core_graph.cores}
        spread = {}
        switches = topo.switches
        for i, c in enumerate(core_graph.cores):
            spread[c] = switches[i % 4]
        assert estimate_mean_cycles(core_graph, topo, spread) > estimate_mean_cycles(
            core_graph, topo, together
        )


class TestEvaluateCandidate:
    def test_result_fields_consistent(self, core_graph):
        res = evaluate_candidate(core_graph, mesh(2, 2), seed=1)
        assert isinstance(res, CandidateResult)
        assert res.area_mm2 == pytest.approx(res.report.total_area_mm2)
        assert res.mean_latency_ns == pytest.approx(
            res.mean_cycles / (res.freq_mhz / 1000.0)
        )
        assert res.freq_mhz <= 1000.0

    def test_candidate_fabric_not_mutated(self, core_graph):
        fabric = mesh(2, 2)
        evaluate_candidate(core_graph, fabric, seed=1)
        assert fabric.nis == []  # deep copy protected the input

    def test_row_renders(self, core_graph):
        res = evaluate_candidate(core_graph, mesh(2, 2), seed=1)
        row = res.row()
        assert "MHz" in row and "mm2" in row and "cyc" in row


class TestSelectTopology:
    def test_results_sorted_by_objective(self, core_graph):
        results = select_topology(
            core_graph, [mesh(2, 2), ring(4), star(3)], seed=1
        )
        scores = [r.mean_latency_ns * r.area_mm2 for r in results]
        assert scores == sorted(scores)

    def test_custom_objective_respected(self, core_graph):
        results = select_topology(
            core_graph,
            [mesh(2, 2), mesh(2, 3)],
            objective=lambda r: r.area_mm2,
            seed=1,
        )
        areas = [r.area_mm2 for r in results]
        assert areas == sorted(areas)

    def test_empty_candidates_rejected(self, core_graph):
        with pytest.raises(ValueError):
            select_topology(core_graph, [])

    def test_bigger_fabric_costs_more_area(self, core_graph):
        small = evaluate_candidate(core_graph, mesh(2, 2), seed=1)
        big = evaluate_candidate(core_graph, mesh(3, 3), seed=1)
        assert big.area_mm2 > small.area_mm2

    def test_feasibility_annotated(self, core_graph):
        res = evaluate_candidate(core_graph, mesh(2, 2), seed=1)
        # The demo SoC's demands are far below link capacity.
        assert res.feasible
        assert res.overloaded == []

    def test_infeasible_candidates_rank_last(self, core_graph):
        """Scale demands up until links overload; the default objective
        must sink infeasible candidates below feasible ones."""
        import copy

        heavy = copy.deepcopy(core_graph)
        for u, v in list(heavy.graph.edges):
            heavy.graph[u][v]["rate"] *= 40
        results = select_topology(heavy, [mesh(2, 2), mesh(3, 3)], seed=1)
        if any(not r.feasible for r in results) and any(r.feasible for r in results):
            feas_flags = [r.feasible for r in results]
            assert feas_flags == sorted(feas_flags, reverse=True)
