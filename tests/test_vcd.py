"""Unit tests for the VCD waveform writer."""

import io

import pytest

from repro.sim.component import Component
from repro.sim.kernel import Simulator
from repro.sim.vcd import VcdWriter, _identifier, _render


class Counter(Component):
    def __init__(self, name, wire):
        super().__init__(name)
        self.wire = wire

    def tick(self, cycle):
        self.wire.drive(cycle % 4)


class TestHelpers:
    def test_identifiers_unique_and_printable(self):
        idents = [_identifier(i) for i in range(200)]
        assert len(set(idents)) == 200
        assert all(33 <= ord(c) <= 126 for ident in idents for c in ident)

    def test_render_none_is_x(self):
        assert _render(None, 4) == "bxxxx"

    def test_render_int(self):
        assert _render(5, 4) == "b0101"

    def test_render_bool(self):
        assert _render(True, 2) == "b01"

    def test_render_object_is_stable(self):
        class Thing:
            def __repr__(self):
                return "Thing<1>"

        a, b = Thing(), Thing()
        assert _render(a, 16) == _render(b, 16)


class TestVcdWriter:
    def build(self):
        sim = Simulator()
        w = sim.wire("bus.data")
        sim.add(Counter("cnt", w))
        buf = io.StringIO()
        vcd = VcdWriter(buf, sim, wires=[w], width=8)
        sim.add_watcher(vcd.sample)
        return sim, vcd, buf

    def test_header_declares_signals(self):
        sim, vcd, buf = self.build()
        text = buf.getvalue()
        assert "$timescale 1ns $end" in text
        assert "$var wire 8" in text
        assert "bus.data" in text
        assert "$enddefinitions $end" in text

    def test_value_changes_recorded(self):
        sim, vcd, buf = self.build()
        sim.run(6)
        vcd.close()
        text = buf.getvalue()
        # Counter pattern 0,1,2,3,0... -> several change records.
        assert "#1" in text
        assert "b00000001" in text
        assert "b00000010" in text

    def test_only_changes_emitted(self):
        sim = Simulator()
        w = sim.wire("const", default=7)
        buf = io.StringIO()
        vcd = VcdWriter(buf, sim, wires=[w], width=8)
        sim.add_watcher(vcd.sample)
        sim.run(10)
        vcd.close()
        body = buf.getvalue().split("$enddefinitions $end")[1]
        # One initial record plus the closing timestamp, nothing else.
        assert body.count("b00000111") == 1

    def test_close_is_idempotent(self):
        sim, vcd, buf = self.build()
        sim.run(2)
        vcd.close()
        size = len(buf.getvalue())
        vcd.close()
        vcd.sample(99)  # ignored after close
        assert len(buf.getvalue()) == size

    def test_needs_wires(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            VcdWriter(io.StringIO(), sim, wires=[])
