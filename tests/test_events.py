"""The fleet event stream: sinks, runner/campaign emission, replay.

Covers the ``repro.telemetry.events/v1`` contracts from
docs/OBSERVABILITY.md ("Fleet telemetry"): the process-local sink
stack, the append-only torn-tolerant ``events.jsonl`` format, the
validator, worker-to-parent event forwarding through
:class:`ExperimentRunner`, replicated-campaign ``lane_batch`` /
``checkpoint`` emission, the kill-and-resume replay guarantee, the
Chrome-trace export (golden-filed) and the ``repro top`` dashboard
built on :func:`replay_summary`.

Regenerate the Chrome-trace snapshot with::

    PYTHONPATH=src:. python - <<'PY'
    from tests.test_events import GOLDEN_RECORDS
    from repro.telemetry.events import events_chrome_trace_json
    open("tests/data/golden_campaign_trace.json", "w").write(
        events_chrome_trace_json(GOLDEN_RECORDS) + "\n")
    PY
"""

import json
import os

import pytest

from repro.faults import CampaignSpec, FaultWindow, run_campaign_replicated
from repro.sim.snapshot import SimSnapshot
from repro.flow.runner import ExperimentRunner
from repro.network.experiments import TopologyNocBuilder
from repro.network.noc import NocBuildConfig
from repro.network.topology import mesh
from repro.telemetry import (
    EVENT_TYPES,
    EVENTS_SCHEMA,
    EventCollector,
    EventWriter,
    TelemetryError,
    emit,
    events_to_chrome_trace,
    install_sink,
    read_events,
    remove_sink,
    replay_summary,
    validate_events,
)
from repro.telemetry import events as events_mod
from repro.telemetry.events import events_chrome_trace_json
from repro.telemetry.top import (
    eta_seconds,
    lane_throughput,
    load_summary,
    render_dashboard,
    summary_registry,
    write_prometheus,
)

DATA = os.path.join(os.path.dirname(os.path.abspath(__file__)), "data")
GOLDEN_TRACE = os.path.join(DATA, "golden_campaign_trace.json")


@pytest.fixture(autouse=True)
def _no_leaked_sinks():
    """Every test must leave the process-local sink stack empty."""
    yield
    assert events_mod.current_sink() is None, "test leaked an event sink"


def rec(seq, pid, t, event, **fields):
    base = {"schema": EVENTS_SCHEMA, "seq": seq, "pid": pid, "t": t,
            "event": event}
    base.update(fields)
    return base


# A fixed two-process campaign stream: parent pid 100 runs the map,
# worker pid 101 contributes a forwarded checkpoint, point 1 retries
# once, point 0 is a cache hit, and two replica lanes finish.
GOLDEN_RECORDS = [
    rec(1, 100, 1000.0, "run_start", label="sweep", points=3, pending=2,
        cached=1, jobs=2),
    rec(2, 100, 1000.001, "point_end", label="sweep[0]", key="k0",
        status="ok", seconds=0.0, attempts=0, cached=True),
    rec(3, 100, 1000.002, "point_start", label="sweep[1]", key="k1",
        attempt=1),
    rec(1, 101, 1000.010, "checkpoint", cycle=300, lane=None),
    rec(4, 100, 1000.050, "retry", label="sweep[1]", key="k1", attempt=1,
        kind="error", message="ValueError: boom"),
    rec(5, 100, 1000.051, "point_start", label="sweep[1]", key="k1",
        attempt=2),
    rec(6, 100, 1000.120, "point_end", label="sweep[1]", key="k1",
        status="ok", seconds=0.069, attempts=2, cached=False),
    rec(7, 100, 1000.130, "lane_batch", lane=0, replicas=2,
        metrics={"cycles_run": 1400.0, "completed": 21.0}, digest="aa" * 32),
    rec(8, 100, 1000.140, "lane_batch", lane=1, replicas=2,
        metrics={"cycles_run": 1400.0, "completed": 19.0}, digest="bb" * 32),
    rec(9, 100, 1000.150, "point_end", label="sweep[2]", key="k2",
        status="failed", seconds=0.120, attempts=1, cached=False,
        kind="timeout", message="exceeded 0.1s"),
    rec(10, 100, 1000.160, "run_end", label="sweep", ok=1, failed=1,
        cached=1, retries=1),
]


def small_spec(**kw):
    builder = TopologyNocBuilder(
        mesh, (2, 2), n_initiators=2, n_targets=2,
        config=NocBuildConfig(
            ni_txn_timeout=300, ni_txn_retries=1, link_resync_timeout=40,
        ),
    )
    defaults = dict(
        builder=builder,
        windows=(FaultWindow("link.*", start=150, duration=400,
                             error_rate=0.05),),
        rate=0.08, warmup_cycles=100, measure_cycles=800, seed=3,
        label="events-test",
    )
    defaults.update(kw)
    return CampaignSpec(**defaults)


# ---------------------------------------------------------------------------
# sink stack
# ---------------------------------------------------------------------------
class TestSinkStack:
    def test_emit_without_sink_is_a_noop(self):
        assert emit("checkpoint", cycle=1) is None

    def test_collector_receives_schema_stamped_records(self):
        col = install_sink(EventCollector())
        try:
            out = emit("checkpoint", cycle=7, lane=None)
        finally:
            remove_sink(col)
        assert col.records == [out]
        r = col.records[0]
        assert r["schema"] == EVENTS_SCHEMA
        assert r["event"] == "checkpoint"
        assert r["cycle"] == 7
        assert r["pid"] == os.getpid()
        assert isinstance(r["seq"], int) and isinstance(r["t"], float)

    def test_top_sink_shadows_the_one_below(self):
        outer = install_sink(EventCollector())
        inner = install_sink(EventCollector())
        try:
            emit("checkpoint", cycle=1)
        finally:
            remove_sink(inner)
        try:
            emit("checkpoint", cycle=2)
        finally:
            remove_sink(outer)
        assert [r["cycle"] for r in inner.records] == [1]
        assert [r["cycle"] for r in outer.records] == [2]

    def test_remove_absent_sink_is_a_noop(self):
        remove_sink(EventCollector())  # must not raise

    def test_forward_keeps_records_verbatim(self):
        col = install_sink(EventCollector())
        try:
            n = events_mod.forward(GOLDEN_RECORDS[:3])
        finally:
            remove_sink(col)
        assert n == 3
        assert col.records == GOLDEN_RECORDS[:3]
        assert col.records[0]["pid"] == 100  # not rewritten to ours


# ---------------------------------------------------------------------------
# writer / reader
# ---------------------------------------------------------------------------
class TestEventWriterReader:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventWriter(path) as w:
            for r in GOLDEN_RECORDS:
                w.write(r)
        assert read_events(path) == GOLDEN_RECORDS

    def test_torn_tail_and_garbage_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventWriter(path) as w:
            w.write(GOLDEN_RECORDS[0])
            w.write(GOLDEN_RECORDS[1])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": "repro.telemetry.events/v1", "seq": 99')
        assert read_events(path) == GOLDEN_RECORDS[:2]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_events(str(tmp_path / "nope.jsonl")) == []

    def test_closed_writer_raises(self, tmp_path):
        w = EventWriter(str(tmp_path / "e.jsonl"))
        w.close()
        with pytest.raises(TelemetryError, match="closed"):
            w.write(GOLDEN_RECORDS[0])

    def test_append_mode_merges_two_writers(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with EventWriter(path) as w:
            w.write(GOLDEN_RECORDS[0])
        with EventWriter(path) as w:  # a resumed process re-opens
            w.write(GOLDEN_RECORDS[1])
        assert read_events(path) == GOLDEN_RECORDS[:2]


class TestConcurrentTailing:
    """Satellite: cursor-based tailing under a live writer.

    The HTTP job endpoint's :func:`repro.serve.http._tail_events` must
    never re-deliver or drop a record as the writer races it: a torn
    mid-record tail is withheld (not skipped!), and delivered exactly
    once when the writer finishes the line.
    """

    def _record(self, seq):
        return {"schema": EVENTS_SCHEMA, "event": "checkpoint",
                "seq": seq, "pid": 1, "t": float(seq)}

    def test_torn_tail_is_withheld_then_delivered_once(self, tmp_path):
        from repro.serve.http import _tail_events

        path = str(tmp_path / "events.jsonl")
        full = [json.dumps(self._record(s)) for s in range(1, 5)]
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(full[:3]) + "\n")
            fh.write(full[3][:10])  # the writer is mid-line
        got = _tail_events(path, 0)
        assert [r["seq"] for r in got] == [1, 2, 3]
        cursor = 0 + len(got)  # exactly the contract the endpoint uses
        assert _tail_events(path, cursor) == []  # torn: not yet
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(full[3][10:] + "\n")  # the writer finishes the line
        got2 = _tail_events(path, cursor)
        assert [r["seq"] for r in got2] == [4]
        assert _tail_events(path, cursor + len(got2)) == []

    def test_cursor_walk_covers_stream_exactly_once(self, tmp_path):
        """A reader polling with ``since=next`` while a writer appends
        sees every record exactly once, in order."""
        import threading
        import time as _time

        from repro.serve.http import _tail_events

        path = str(tmp_path / "events.jsonl")
        total = 60

        def writer():
            with EventWriter(path) as w:
                for s in range(1, total + 1):
                    w.write(self._record(s))
                    if s % 7 == 0:
                        _time.sleep(0.005)

        t = threading.Thread(target=writer)
        t.start()
        seen = []
        cursor = 0
        deadline = _time.monotonic() + 30
        while len(seen) < total and _time.monotonic() < deadline:
            batch = _tail_events(path, cursor)
            cursor += len(batch)
            seen.extend(batch)
        t.join(10)
        assert [r["seq"] for r in seen] == list(range(1, total + 1))

    def test_read_events_sees_a_clean_prefix_mid_write(self, tmp_path):
        """``read_events`` under a concurrent writer returns complete
        records only -- always a prefix, never a mangled line."""
        path = str(tmp_path / "events.jsonl")
        records = [self._record(s) for s in range(1, 4)]
        with open(path, "w", encoding="utf-8") as fh:
            for r in records:
                fh.write(json.dumps(r) + "\n")
            fh.write('{"schema": "repro.telemetry.events/v1", "se')
        assert read_events(path) == records
        validate_events(read_events(path))


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------
class TestValidateEvents:
    def test_golden_stream_validates(self):
        validate_events(GOLDEN_RECORDS)

    def test_bad_schema_flagged(self):
        bad = dict(GOLDEN_RECORDS[0], schema="nope/v0")
        with pytest.raises(TelemetryError, match="schema"):
            validate_events([bad])

    def test_unknown_event_flagged(self):
        bad = rec(1, 100, 1.0, "telepathy")
        with pytest.raises(TelemetryError, match="unknown event"):
            validate_events([bad])

    def test_seq_regression_flagged(self):
        records = [rec(5, 100, 1.0, "checkpoint", cycle=1),
                   rec(4, 100, 2.0, "checkpoint", cycle=2)]
        with pytest.raises(TelemetryError, match="seq went 5 -> 4"):
            validate_events(records)

    def test_seq_restart_at_one_is_pid_reuse_not_an_error(self):
        validate_events([rec(5, 100, 1.0, "checkpoint", cycle=1),
                         rec(1, 100, 2.0, "checkpoint", cycle=2)])

    def test_errors_are_itemized(self):
        bad = [rec(0, 0, "soon", "telepathy")]
        with pytest.raises(TelemetryError) as exc:
            validate_events(bad)
        msg = str(exc.value)
        for fragment in ("unknown event", "seq", "pid", "not a number"):
            assert fragment in msg

    def test_bool_is_not_a_valid_seq(self):
        with pytest.raises(TelemetryError, match="seq"):
            validate_events([rec(True, 100, 1.0, "checkpoint")])


# ---------------------------------------------------------------------------
# replay
# ---------------------------------------------------------------------------
class TestReplaySummary:
    def test_golden_stream_replays_to_the_campaign_summary(self):
        s = replay_summary(GOLDEN_RECORDS)
        assert s["label"] == "sweep"
        assert s["points_expected"] == 3
        assert (s["ok"], s["failed"], s["cached"]) == (1, 1, 1)
        assert s["retries"] == 1
        assert s["checkpoints"] == 1
        assert s["finished"] == pytest.approx(1000.160)
        assert s["points"]["sweep[0]"]["status"] == "cached"
        assert s["points"]["sweep[1]"]["status"] == "ok"
        assert s["points"]["sweep[1]"]["retries"] == 1
        assert s["points"]["sweep[2]"]["status"] == "failed"
        assert s["running"] == []
        assert sorted(s["lanes"]) == [0, 1]
        assert s["digests"] == ["aa" * 32, "bb" * 32]
        assert s["lane_metrics"]["completed"] == (21.0, 19.0)

    def test_unfinished_point_shows_as_running(self):
        s = replay_summary(GOLDEN_RECORDS[:3])
        assert s["running"] == ["sweep[1]"]
        assert s["finished"] is None

    def test_duplicate_lane_batch_keeps_the_last(self):
        dup = rec(11, 102, 1001.0, "lane_batch", lane=0, replicas=2,
                  metrics={"cycles_run": 1400.0, "completed": 21.0},
                  digest="cc" * 32)
        s = replay_summary(GOLDEN_RECORDS + [dup])
        assert s["digests"][0] == "cc" * 32
        assert len(s["lanes"]) == 2


# ---------------------------------------------------------------------------
# the experiment runner emits (and forwards) events
# ---------------------------------------------------------------------------
def _square(x):
    return x * x


def _square_with_worker_event(x):
    emit("checkpoint", cycle=x)
    return x * x


def _fail_unless_marker(arg):
    """Fails until the marker file exists (cross-process retry state)."""
    marker, x = arg
    if not os.path.exists(marker):
        open(marker, "w").close()
        raise ValueError("first attempt fails")
    return x


def _always_fails(x):
    raise ValueError("hopeless")


class TestRunnerEvents:
    def events_of(self, cache):
        records = read_events(os.path.join(str(cache), "events.jsonl"))
        validate_events(records)
        return records

    def test_inline_run_emits_full_lifecycle(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        assert runner.map(_square, [2, 3], label="sq") == [4, 9]
        records = self.events_of(tmp_path)
        kinds = [r["event"] for r in records]
        assert kinds == ["run_start", "point_start", "point_end",
                         "point_start", "point_end", "run_end"]
        s = replay_summary(records)
        assert (s["ok"], s["failed"], s["cached"]) == (2, 0, 0)
        assert s["jobs"] == 1

    def test_cache_hits_emit_cached_point_end(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path))
        runner.map(_square, [2, 3], label="sq")
        runner.map(_square, [2, 3], label="sq")
        s = replay_summary(self.events_of(tmp_path))
        assert s["cached"] == 2
        assert all(p["status"] == "cached" for p in s["points"].values())

    def test_inline_retry_and_failure_events(self, tmp_path):
        cache = tmp_path / "cache"
        runner = ExperimentRunner(
            cache_dir=str(cache), retries=1, backoff=0.0, on_failure="record",
        )
        marker = str(tmp_path / "marker")
        out = runner.map(
            _fail_unless_marker, [(marker, 5)], label="flaky",
        )
        assert out == [5]
        runner.map(_always_fails, ["x"], label="doomed", retries=0)
        records = self.events_of(cache)
        s = replay_summary(records)
        assert s["retries"] == 1
        assert s["points"]["flaky[0]"]["status"] == "ok"
        assert s["points"]["doomed[0]"]["status"] == "failed"
        retry = next(r for r in records if r["event"] == "retry")
        assert "first attempt fails" in retry["message"]

    def test_pool_forwards_worker_events_with_worker_pid(self, tmp_path):
        runner = ExperimentRunner(jobs=2, cache_dir=str(tmp_path))
        assert runner.map(
            _square_with_worker_event, [2, 3], label="pool",
        ) == [4, 9]
        records = self.events_of(tmp_path)
        s = replay_summary(records)
        assert (s["ok"], s["failed"]) == (2, 0)
        assert s["checkpoints"] == 2  # one forwarded from each worker
        worker_pids = {
            r["pid"] for r in records if r["event"] == "checkpoint"
        }
        assert worker_pids and os.getpid() not in worker_pids

    def test_pool_retry_emits_events(self, tmp_path):
        cache = tmp_path / "cache"
        runner = ExperimentRunner(
            jobs=2, cache_dir=str(cache), retries=1, backoff=0.0,
        )
        marker = str(tmp_path / "marker")
        assert runner.map(
            _fail_unless_marker, [(marker, 7)], label="flaky",
        ) == [7]
        records = self.events_of(cache)
        assert sum(r["event"] == "retry" for r in records) == 1
        assert replay_summary(records)["points"]["flaky[0]"]["retries"] == 1

    def test_events_path_empty_string_disables_the_stream(self, tmp_path):
        runner = ExperimentRunner(cache_dir=str(tmp_path), events_path="")
        runner.map(_square, [2], label="quiet")
        assert not os.path.exists(tmp_path / "events.jsonl")

    def test_explicit_events_path_overrides_cache_dir(self, tmp_path):
        path = str(tmp_path / "elsewhere" / "ev.jsonl")
        runner = ExperimentRunner(cache_dir=str(tmp_path), events_path=path)
        runner.map(_square, [2], label="sq")
        assert not os.path.exists(tmp_path / "events.jsonl")
        records = read_events(path)
        validate_events(records)
        assert replay_summary(records)["ok"] == 1


# ---------------------------------------------------------------------------
# replicated campaigns emit lane batches + checkpoints
# ---------------------------------------------------------------------------
class TestCampaignEvents:
    @pytest.mark.timeout_guard(240)
    def test_lane_batches_replay_to_the_campaign_result(self):
        col = install_sink(EventCollector())
        try:
            result = run_campaign_replicated(small_spec(), 3)
        finally:
            remove_sink(col)
        validate_events(col.records)
        s = replay_summary(col.records)
        assert sorted(s["lanes"]) == [0, 1, 2]
        assert s["lane_metrics"] == {
            name: tuple(values)
            for name, values in result.lane_metrics.items()
        }
        assert all(
            lane["replicas"] == 3 for lane in s["lanes"].values()
        )
        assert all(isinstance(d, str) and len(d) == 64 for d in s["digests"])

    @pytest.mark.timeout_guard(240)
    def test_no_sink_means_no_digest_hashing_and_same_result(self):
        quiet = run_campaign_replicated(small_spec(), 2)
        col = install_sink(EventCollector())
        try:
            watched = run_campaign_replicated(small_spec(), 2)
        finally:
            remove_sink(col)
        assert watched.lane_metrics == quiet.lane_metrics
        assert watched == quiet

    @pytest.mark.timeout_guard(240)
    def test_killed_and_resumed_stream_replays_to_the_final_result(
        self, tmp_path, monkeypatch
    ):
        """The tier-1 version of the batch-smoke guarantee: interrupt a
        checkpointing replicated campaign mid-run, resume into the same
        events.jsonl, and the merged stream must replay to the resumed
        campaign's lane metrics (duplicates deduplicate last-wins)."""
        spec = small_spec()
        events_path = str(tmp_path / "events.jsonl")
        saves = {"n": 0}
        real_save = SimSnapshot.save

        def dying_save(snap, path):
            real_save(snap, path)
            saves["n"] += 1
            if saves["n"] >= 2:
                raise KeyboardInterrupt("simulated SIGKILL")

        monkeypatch.setattr(SimSnapshot, "save", dying_save)
        writer = install_sink(EventWriter(events_path))
        try:
            with pytest.raises(KeyboardInterrupt):
                run_campaign_replicated(
                    spec, 3, checkpoint_every=300,
                    checkpoint_dir=str(tmp_path),
                )
        finally:
            remove_sink(writer)
            writer.close()
        monkeypatch.setattr(SimSnapshot, "save", real_save)

        writer = install_sink(EventWriter(events_path))
        try:
            resumed = run_campaign_replicated(
                spec, 3, checkpoint_every=300, checkpoint_dir=str(tmp_path),
                resume=True,
            )
        finally:
            remove_sink(writer)
            writer.close()

        records = read_events(events_path)
        validate_events(records)
        s = replay_summary(records)
        assert s["checkpoints"] >= 2  # pre-kill checkpoints survived
        assert s["lane_metrics"] == {
            name: tuple(values)
            for name, values in resumed.lane_metrics.items()
        }


# ---------------------------------------------------------------------------
# Chrome-trace export
# ---------------------------------------------------------------------------
class TestChromeTraceExport:
    def test_matches_the_golden_snapshot(self):
        got = events_chrome_trace_json(GOLDEN_RECORDS) + "\n"
        with open(GOLDEN_TRACE, encoding="utf-8") as fh:
            assert got == fh.read()

    def test_export_is_valid_json_with_the_campaign_plane(self):
        doc = json.loads(events_chrome_trace_json(GOLDEN_RECORDS))
        events = doc["traceEvents"]
        assert doc["otherData"]["schema"] == EVENTS_SCHEMA
        pids = {e["pid"] for e in events}
        assert pids == {events_mod.CAMPAIGN_TRACE_PID}
        process = next(e for e in events if e["name"] == "process_name")
        assert process["args"]["name"] == "repro campaign"

    def test_points_become_spans_and_retries_instants(self):
        events = events_to_chrome_trace(GOLDEN_RECORDS)
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["cat"] for e in spans} == {"run", "point"}
        point1 = next(
            e for e in spans if e["name"] == "sweep[1]" and not e["args"]["cached"]
        )
        # Opened by its first point_start (t=1000.002 -> 2000us).
        assert point1["ts"] == 2000
        assert point1["args"]["attempts"] == 2
        instants = {e["cat"] for e in events if e["ph"] == "i"}
        assert instants == {"retry", "checkpoint", "lane"}

    def test_cached_point_without_start_gets_a_synthetic_span(self):
        events = events_to_chrome_trace(GOLDEN_RECORDS)
        cached = next(e for e in events if e.get("args", {}).get("cached"))
        assert cached["ph"] == "X" and cached["dur"] >= 1

    def test_empty_stream_exports_nothing(self):
        assert events_to_chrome_trace([]) == []


# ---------------------------------------------------------------------------
# the dashboard layer
# ---------------------------------------------------------------------------
class TestDashboard:
    def test_render_dashboard_frame(self):
        s = replay_summary(GOLDEN_RECORDS)
        frame = render_dashboard(s, "/some/run")
        assert "repro top -- /some/run" in frame
        assert "points: 3 total | 1 ok, 1 failed, 1 cached" in frame
        assert "[finished]" in frame
        assert "retries: 1" in frame
        assert "checkpoints: 1" in frame
        assert "cache-hit rate: 50%" in frame
        assert "lanes: 2 finished" in frame
        assert "sweep[2]" in frame and "failed" in frame

    def test_eta_only_while_points_remain(self):
        assert eta_seconds(replay_summary(GOLDEN_RECORDS)) is None
        s = replay_summary(GOLDEN_RECORDS[:7])  # sweep[2] still pending
        eta = eta_seconds(s)
        assert eta == pytest.approx(0.069)  # one finished point, one left

    def test_lane_throughput_needs_two_stamped_lanes(self):
        s = replay_summary(GOLDEN_RECORDS)
        rate = lane_throughput(s)
        assert rate == pytest.approx(2800.0 / 0.010, rel=1e-6)
        assert lane_throughput(replay_summary(GOLDEN_RECORDS[:8])) is None

    def test_load_summary_prefers_events_over_journal(self, tmp_path):
        with EventWriter(str(tmp_path / "events.jsonl")) as w:
            for r in GOLDEN_RECORDS:
                w.write(r)
        with open(tmp_path / "runs.jsonl", "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"status": "ok", "label": "old[0]",
                                 "seconds": 1.0, "attempts": 1}) + "\n")
        s = load_summary(str(tmp_path))
        assert s["label"] == "sweep"
        assert s["source"].endswith("events.jsonl")

    def test_load_summary_falls_back_to_the_journal(self, tmp_path):
        with open(tmp_path / "runs.jsonl", "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"status": "ok", "label": "old[0]",
                                 "seconds": 1.0, "attempts": 2}) + "\n")
            fh.write(json.dumps({"status": "failed", "label": "old[1]",
                                 "kind": "error", "attempts": 1}) + "\n")
        s = load_summary(str(tmp_path))
        assert s["source"].endswith("runs.jsonl")
        assert s["ok"] == 1 and s["failed"] == 1
        assert s["points"]["old[0]"]["retries"] == 1

    def test_summary_registry_and_prometheus_exposition(self, tmp_path):
        s = replay_summary(GOLDEN_RECORDS)
        reg = summary_registry(s)
        assert reg.counter("top.points_ok").value == 1
        assert reg.counter("top.retries").value == 1
        assert reg.gauge("top.lanes_done").value == 2
        path = str(tmp_path / "metrics.prom")
        write_prometheus(path, s)
        text = open(path, encoding="utf-8").read()
        assert "repro_top_points_ok 1" in text
        assert "repro_top_points_failed 1" in text
        assert "repro_top_points_cached 1" in text
