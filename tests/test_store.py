"""ResultStore: self-verifying records, quarantine, concurrency."""

import hashlib
import json
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.flow.runner import ExperimentRunner
from repro.store import (
    MANIFEST_BASENAME,
    STORE_SCHEMA,
    ResultStore,
    StoreError,
    StoreRecord,
)

KEY_A = "a" * 64
KEY_B = "b" * 64
KEY_C = "c" * 64


def _square(x):
    """Module-level so worker processes can unpickle it."""
    return x * x


class TestRoundTrip:
    def test_put_then_get(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = store.put(KEY_A, {"latency": 12.5}, label="p0")
        assert record.key == KEY_A and record.size > 0
        hit, value = store.get(KEY_A)
        assert hit and value == {"latency": 12.5}
        assert store.hits == 1 and store.puts == 1

    def test_miss_is_counted(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        hit, value = store.get(KEY_A)
        assert not hit and value is None
        assert store.misses == 1

    def test_contains_and_len(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert KEY_A not in store and len(store) == 0
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        assert KEY_A in store and KEY_C not in store
        assert len(store) == 2 and list(store.keys()) == [KEY_A, KEY_B]

    def test_identical_republish_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = store.put(KEY_A, [1, 2])
        again = store.put(KEY_A, [1, 2])
        assert again == first  # same header, no second manifest line
        assert store.puts == 1 and store.conflicts == 0
        manifest = (tmp_path / "store" / MANIFEST_BASENAME).read_text()
        assert manifest.count(KEY_A) == 1

    def test_divergent_republish_wins_and_counts_conflict(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, "old")
        store.put(KEY_A, "new")
        assert store.conflicts == 1
        assert store.get(KEY_A) == (True, "new")

    def test_record_header_without_payload(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, list(range(100)), label="sweep")
        record = store.record(KEY_A)
        assert isinstance(record, StoreRecord)
        assert record.label == "sweep"
        assert record.digest == hashlib.sha256(
            pickle.dumps(list(range(100)))
        ).hexdigest()
        assert store.hits == 0  # header peeks don't count as reads

    def test_reopening_sees_existing_records(self, tmp_path):
        ResultStore(tmp_path / "store").put(KEY_A, "persisted")
        store = ResultStore(tmp_path / "store")
        assert store.get(KEY_A) == (True, "persisted")


class TestKeysAndMarkers:
    @pytest.mark.parametrize(
        "bad", ["", "short", "Z" * 64, "a" * 63, "../" + "a" * 61, 7, None]
    )
    def test_rejects_non_sha256_keys(self, tmp_path, bad):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(StoreError, match="sha256"):
            store.put(bad, 1)

    def test_refuses_foreign_directory(self, tmp_path):
        (tmp_path / "store").mkdir()
        (tmp_path / "store" / "STORE.json").write_text('{"schema": "x/v9"}')
        with pytest.raises(StoreError, match=STORE_SCHEMA):
            ResultStore(tmp_path / "store")

    def test_schema_marker_written(self, tmp_path):
        ResultStore(tmp_path / "store")
        doc = json.loads((tmp_path / "store" / "STORE.json").read_text())
        assert doc == {"schema": STORE_SCHEMA}


class TestQuarantine:
    def _flip_payload_byte(self, store, key):
        path = store.record_path(key)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        return path

    def test_corrupt_payload_quarantined_as_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, {"x": 1})
        path = self._flip_payload_byte(store, KEY_A)
        hit, value = store.get(KEY_A)
        assert not hit and value is None
        assert store.corrupt_records == 1
        assert not os.path.exists(path)
        assert os.path.exists(path[: -len(".rec")] + ".corrupt")

    def test_truncated_record_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, list(range(1000)))
        path = store.record_path(KEY_A)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        assert store.get(KEY_A) == (False, None)
        assert store.corrupt_records == 1

    def test_bad_magic_quarantined(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, 1)
        open(store.record_path(KEY_A), "wb").write(b"not a record at all")
        assert store.get(KEY_A) == (False, None)
        assert store.corrupt_records == 1

    def test_republish_after_quarantine_serves_cleanly(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, "good")
        self._flip_payload_byte(store, KEY_A)
        assert store.get(KEY_A) == (False, None)
        store.put(KEY_A, "good")
        assert store.get(KEY_A) == (True, "good")
        corrupt = store.record_path(KEY_A)[: -len(".rec")] + ".corrupt"
        assert os.path.exists(corrupt)  # evidence survives the recovery


class TestManifestAndGc:
    def test_manifest_tracks_latest_entry_per_key(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, 1)
        store.put(KEY_A, 2)  # conflict rewrite
        store.put(KEY_B, 3)
        entries = store.manifest_entries()
        assert set(entries) == {KEY_A, KEY_B}
        assert entries[KEY_A]["digest"] == store.record(KEY_A).digest

    def test_manifest_tolerates_torn_tail(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, 1)
        with open(store.manifest_path, "a", encoding="utf-8") as fh:
            fh.write('{"key": "torn')
        assert set(store.manifest_entries()) == {KEY_A}

    def test_compact_rewrites_from_objects(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, 1)
        store.put(KEY_A, 2)
        store.put(KEY_B, 3)
        os.unlink(store.record_path(KEY_B))  # dangling manifest entry
        assert store.compact() == 1
        lines = open(store.manifest_path).read().strip().splitlines()
        assert len(lines) == 1 and json.loads(lines[0])["key"] == KEY_A

    def test_gc_evicts_oldest_first(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for n, key in enumerate([KEY_A, KEY_B, KEY_C]):
            record = store.put(key, n)
            # Deterministic ordering without sleeping: rewrite created.
            path = store.record_path(key)
            blob = open(path, "rb").read()
            header = json.loads(blob[len(b"repro-store/v1\n"):].split(b"\n")[0])
            header["created"] = float(n)
            payload = blob.split(b"\n", 2)[2]
            open(path, "wb").write(
                b"repro-store/v1\n"
                + json.dumps(header, sort_keys=True).encode() + b"\n"
                + payload
            )
        evicted = store.gc(max_records=1)
        assert evicted == [KEY_A, KEY_B]
        assert list(store.keys()) == [KEY_C]
        assert set(store.manifest_entries()) == {KEY_C}

    def test_gc_keep_pins_keys(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, 1)
        store.put(KEY_B, 2)
        evicted = store.gc(max_records=1, keep={KEY_A, KEY_B})
        assert evicted == [] and len(store) == 2

    def test_gc_removes_quarantined_files(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, 1)
        path = store.record_path(KEY_A)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        store.get(KEY_A)  # quarantines
        store.gc()
        corrupt = path[: -len(".rec")] + ".corrupt"
        assert not os.path.exists(corrupt)

    def test_gc_rejects_negative_budgets(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.gc(max_records=-1)
        with pytest.raises(StoreError):
            store.gc(max_bytes=-5)


class TestRunnerIntegration:
    def test_runner_round_trips_through_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = ExperimentRunner(store=store)
        assert runner.map(_square, [2, 3]) == [4, 9]
        assert runner.cache_misses == 2 and len(store) == 2

        second = ExperimentRunner(store=ResultStore(tmp_path / "store"))
        assert second.map(_square, [2, 3]) == [4, 9]
        assert second.cache_hits == 2 and second.cache_misses == 0

    def test_store_and_cache_dir_both_publish(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = ExperimentRunner(
            store=store, cache_dir=str(tmp_path / "cache")
        )
        runner.map(_square, [5])
        assert len(store) == 1
        # Local pickles exist alongside the shared records.
        assert any(
            name.endswith(".pkl") for name in os.listdir(tmp_path / "cache")
        )

    def test_report_names_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        runner = ExperimentRunner(store=store)
        runner.map(_square, [1])
        assert str(store.root) in runner.render_report()


class TestConcurrency:
    def test_two_processes_same_key_last_write_wins(self, tmp_path):
        """Racing publishers settle on exactly one verified record whose
        digest equals one of the two written payloads -- never a torn
        mix of both."""
        root = str(tmp_path / "store")
        ResultStore(root)  # pre-create the marker
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(
                target=_race_put, args=(root, KEY_A, value, barrier)
            )
            for value in ("from-proc-one", "from-proc-two")
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(30)
            assert p.exitcode == 0
        store = ResultStore(root)
        hit, value = store.get(KEY_A)
        assert hit and value in ("from-proc-one", "from-proc-two")
        digests = {
            hashlib.sha256(pickle.dumps(v)).hexdigest()
            for v in ("from-proc-one", "from-proc-two")
        }
        assert store.record(KEY_A).digest in digests
        assert store.record(KEY_A).digest == hashlib.sha256(
            pickle.dumps(value)
        ).hexdigest()

    def test_kill_and_resume_dispatched_sweep(self, tmp_path):
        """SIGKILL a work-stealing sweep mid-run; a fresh dispatcher
        over the same store finishes it, serving the survivors as hits."""
        root = str(tmp_path / "store")
        script = tmp_path / "sweep.py"
        script.write_text(
            "import sys\n"
            "from repro.flow.runner import ExperimentRunner\n"
            "from repro.serve import WorkStealingDispatcher\n"
            "from repro.store import ResultStore\n"
            "from tests.test_store import _slow_square\n"
            f"store = ResultStore({root!r})\n"
            "runner = ExperimentRunner(store=store, jobs=2)\n"
            "disp = WorkStealingDispatcher(runner, workers=2)\n"
            "print('ready', flush=True)\n"
            "out = disp.map(_slow_square, list(range(6)), label='sweep')\n"
            "print('done', out, flush=True)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (
                os.path.join(os.getcwd(), "src"),
                os.getcwd(),
                env.get("PYTHONPATH", ""),
            ) if p
        )
        proc = subprocess.Popen(
            [sys.executable, str(script)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            deadline = time.monotonic() + 60
            store = ResultStore(root)
            while time.monotonic() < deadline and len(store) < 2:
                time.sleep(0.05)
            assert len(store) >= 2, "sweep produced nothing to kill over"
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(30)

        survivors = len(ResultStore(root))
        runner = ExperimentRunner(store=ResultStore(root), jobs=2)
        from repro.serve import WorkStealingDispatcher

        disp = WorkStealingDispatcher(runner, workers=2)
        out = disp.map(_slow_square, list(range(6)), label="sweep")
        assert out == [x * x for x in range(6)]
        assert runner.cache_hits >= survivors >= 2
        assert runner.cache_hits + runner.cache_misses == 6


def _race_put(root, key, value, barrier):
    store = ResultStore(root)
    barrier.wait(timeout=30)
    store.put(key, value)


def _slow_square(x):
    time.sleep(0.15)
    return x * x
