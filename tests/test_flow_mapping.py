"""Unit tests for core-to-switch mapping."""

import pytest

from repro.flow.mapping import (
    anneal_mapping,
    apply_mapping,
    greedy_mapping,
    mapping_cost,
)
from repro.flow.taskgraph import CoreGraph, CoreSpec, demo_multimedia_soc
from repro.network.topology import mesh


def line_core_graph():
    """cpu0 <-> mem0 heavy, cpu1 <-> mem1 light."""
    cg = CoreGraph(
        "line",
        [
            CoreSpec("cpu0", True),
            CoreSpec("cpu1", True),
            CoreSpec("mem0", False),
            CoreSpec("mem1", False),
        ],
    )
    cg.add_demand("cpu0", "mem0", 100)
    cg.add_demand("cpu1", "mem1", 1)
    return cg


class TestMappingCost:
    def test_colocated_pair_costs_one_hop(self):
        cg = line_core_graph()
        topo = mesh(2, 2)
        mapping = {
            "cpu0": "sw_0_0", "mem0": "sw_0_0",
            "cpu1": "sw_1_1", "mem1": "sw_1_1",
        }
        assert mapping_cost(cg, topo, mapping) == 100 * 1 + 1 * 1

    def test_distance_weighs_cost(self):
        cg = line_core_graph()
        topo = mesh(2, 2)
        near = {
            "cpu0": "sw_0_0", "mem0": "sw_0_0",
            "cpu1": "sw_1_1", "mem1": "sw_1_1",
        }
        far = {
            "cpu0": "sw_0_0", "mem0": "sw_1_1",
            "cpu1": "sw_1_0", "mem1": "sw_0_1",
        }
        assert mapping_cost(cg, topo, near) < mapping_cost(cg, topo, far)


class TestGreedy:
    def test_heavy_pair_ends_up_adjacent(self):
        cg = line_core_graph()
        topo = mesh(3, 3)
        mapping = greedy_mapping(cg, topo)
        import networkx as nx

        dist = nx.shortest_path_length(topo.graph, mapping["cpu0"], mapping["mem0"])
        assert dist <= 1

    def test_respects_capacity(self):
        cg = line_core_graph()
        topo = mesh(2, 2)
        mapping = greedy_mapping(cg, topo, max_radix=3)
        # Every mesh switch has 2 fabric ports -> capacity 1 NI each.
        loads = {}
        for sw in mapping.values():
            loads[sw] = loads.get(sw, 0) + 1
        assert all(v <= 1 for v in loads.values())

    def test_insufficient_capacity_rejected(self):
        cg = line_core_graph()
        topo = mesh(1, 2)  # 2 switches, degree 1 each
        with pytest.raises(ValueError, match="capacity"):
            greedy_mapping(cg, topo, max_radix=2)  # 1 slot per switch, 4 cores


class TestAnneal:
    def test_never_worse_than_greedy(self):
        _, _, cg = demo_multimedia_soc()
        topo = mesh(2, 2)
        greedy = greedy_mapping(cg, topo)
        annealed = anneal_mapping(cg, topo, initial=greedy, iterations=800, seed=3)
        assert mapping_cost(cg, topo, annealed) <= mapping_cost(cg, topo, greedy)

    def test_deterministic_per_seed(self):
        _, _, cg = demo_multimedia_soc()
        topo = mesh(2, 2)
        a = anneal_mapping(cg, topo, iterations=300, seed=11)
        b = anneal_mapping(cg, topo, iterations=300, seed=11)
        assert a == b

    def test_capacity_violating_initial_rejected(self):
        cg = line_core_graph()
        topo = mesh(2, 2)
        bad = {c: "sw_0_0" for c in cg.cores}  # all on one switch
        with pytest.raises(ValueError, match="capacity"):
            anneal_mapping(cg, topo, initial=bad, max_radix=3)

    def test_result_respects_capacity(self):
        _, _, cg = demo_multimedia_soc()
        topo = mesh(3, 3)
        mapping = anneal_mapping(cg, topo, max_radix=5, iterations=500, seed=2)
        loads = {}
        for sw in mapping.values():
            loads[sw] = loads.get(sw, 0) + 1
        for sw, n in loads.items():
            assert topo.graph.degree[sw] + n <= 5


class TestBandwidthAwareAnnealing:
    def heavy_graph(self):
        """Demands big enough that concentration overloads links."""
        cg = CoreGraph(
            "heavy",
            [CoreSpec(f"cpu{i}", True) for i in range(3)]
            + [CoreSpec(f"mem{i}", False) for i in range(3)],
        )
        for i in range(3):
            cg.add_demand(f"cpu{i}", f"mem{i}", 900.0)
        return cg

    def test_penalty_zero_when_spread(self):
        from repro.core.config import NocParameters
        from repro.flow.mapping import bandwidth_penalty

        cg = self.heavy_graph()
        topo = mesh(3, 3)
        spread = {
            "cpu0": "sw_0_0", "mem0": "sw_0_0",
            "cpu1": "sw_2_0", "mem1": "sw_2_0",
            "cpu2": "sw_0_2", "mem2": "sw_0_2",
        }
        assert bandwidth_penalty(cg, topo, spread, NocParameters()) == 0.0

    def test_penalty_positive_when_stretched(self):
        from repro.core.config import NocParameters
        from repro.flow.mapping import bandwidth_penalty

        cg = self.heavy_graph()
        topo = mesh(3, 3)
        stretched = {
            "cpu0": "sw_0_0", "mem0": "sw_2_2",
            "cpu1": "sw_2_0", "mem1": "sw_0_2",
            "cpu2": "sw_0_2", "mem2": "sw_2_0",
        }
        assert bandwidth_penalty(cg, topo, stretched, NocParameters()) > 0.0

    def test_bandwidth_aware_anneal_reduces_pressure(self):
        from repro.core.config import NocParameters
        from repro.flow.mapping import bandwidth_penalty

        cg = self.heavy_graph()
        topo = mesh(3, 3)
        params = NocParameters(flit_width=16)  # narrow flits: more pressure
        aware = anneal_mapping(
            cg, topo, iterations=1200, seed=4, bandwidth_params=params
        )
        assert bandwidth_penalty(cg, topo, aware, params) == pytest.approx(0.0)


class TestApplyMapping:
    def test_builds_attached_topology(self):
        cg = line_core_graph()
        fabric = mesh(2, 2)
        mapping = greedy_mapping(cg, fabric)
        topo = apply_mapping(fabric, cg, mapping)
        topo.validate()
        assert set(topo.initiators) == {"cpu0", "cpu1"}
        assert set(topo.targets) == {"mem0", "mem1"}
        for core, sw in mapping.items():
            assert topo.switch_of(core) == sw

    def test_unmapped_core_rejected(self):
        cg = line_core_graph()
        fabric = mesh(2, 2)
        with pytest.raises(ValueError, match="unmapped"):
            apply_mapping(fabric, cg, {"cpu0": "sw_0_0"})
