"""Unit tests for the behavioural OCP cores (master / memory slave)."""

import pytest

from repro.core.ocp import (
    BurstTransaction,
    OcpCmd,
    OcpMasterPort,
    OcpResponse,
    OcpSlavePort,
    SResp,
)
from repro.core.routing import AddressMap
from repro.network.cores import OcpMemorySlave, OcpTrafficMaster
from repro.network.traffic import ScriptedTraffic, TxnTemplate
from repro.sim.component import Component
from repro.sim.kernel import Simulator


class EchoNi(Component):
    """A fake NI: accepts every request, answers after a fixed delay."""

    def __init__(self, name, port, delay=3):
        super().__init__(name)
        self.port = port
        self.delay = delay
        self._seen = set()
        self._pending = []  # (ready_cycle, response)

    def tick(self, cycle):
        txn = self.port.peek_request()
        if txn is not None and txn.txn_id not in self._seen:
            self._seen.add(txn.txn_id)
            self.port.accept_request(txn.txn_id)
            data = (0xEC40,) * txn.burst_len if txn.is_read else ()
            self._pending.append(
                (cycle + self.delay, OcpResponse(txn.txn_id, SResp.DVA, data))
            )
        if self._pending:
            ready, resp = self._pending[0]
            if cycle >= ready:
                if self.port.accepted_response_id() == resp.txn_id:
                    self._pending.pop(0)
                elif not any(
                    r.txn_id == self.port.accepted_response_id()
                    for _, r in self._pending
                ):
                    self.port.drive_response(resp)


def master_rig(script, max_outstanding=2, delay=3):
    sim = Simulator()
    port = OcpMasterPort(sim, "p")
    amap = AddressMap(["mem"])
    master = sim.add(
        OcpTrafficMaster(
            "cpu",
            port,
            ScriptedTraffic(script),
            amap,
            max_outstanding=max_outstanding,
            max_transactions=len(script),
        )
    )
    sim.add(EchoNi("ni", port, delay=delay))
    return sim, master


class TestTrafficMaster:
    def test_issues_and_completes(self):
        sim, master = master_rig([(0, TxnTemplate("mem", is_read=True))])
        sim.run(40)
        assert master.issued == 1
        assert master.completed == 1
        assert master.done

    def test_latency_samples_match_completions(self):
        script = [(0, TxnTemplate("mem")), (4, TxnTemplate("mem"))]
        sim, master = master_rig(script)
        sim.run(80)
        assert master.latency.count == 2
        assert all(s > 0 for s in master.latency.samples)

    def test_outstanding_limit_respected(self):
        script = [(0, TxnTemplate("mem", is_read=True)) for _ in range(6)]
        sim, master = master_rig(script, max_outstanding=1, delay=10)
        sim.run(30)
        # With 1 outstanding and 10-cycle service, at most 3 issued by now.
        assert master.issued <= 3

    def test_write_data_is_generated(self):
        script = [(0, TxnTemplate("mem", is_read=False, burst_len=3))]
        sim, master = master_rig(script)
        sim.run(40)
        assert master.completed == 1

    def test_read_data_recorded(self):
        sim, master = master_rig([(0, TxnTemplate("mem", is_read=True, burst_len=2))])
        sim.run(40)
        assert list(master.read_data.values()) == [(0xEC40, 0xEC40)]

    def test_addresses_use_the_map(self):
        sim, master = master_rig([(0, TxnTemplate("mem", offset=0x2A))])
        txn = master._build_txn(TxnTemplate("mem", offset=0x2A), 0)
        assert txn.addr == master.address_map.base_of("mem") + 0x2A

    def test_quiescent_and_done_flags(self):
        sim, master = master_rig([(0, TxnTemplate("mem"))])
        assert master.quiescent and not master.done
        sim.run(40)
        assert master.done


def slave_rig(wait_states=2, interrupt_schedule=None):
    sim = Simulator()
    port = OcpSlavePort(sim, "s")
    slave = sim.add(
        OcpMemorySlave("mem", port, wait_states=wait_states,
                       interrupt_schedule=interrupt_schedule)
    )
    return sim, port, slave


def push_txn(sim, port, txn, max_cycles=50):
    """Drive a request at the slave until accepted; return accept cycle."""
    for c in range(max_cycles):
        if port.accepted_request_id() == txn.txn_id:
            return c
        port.drive_request(txn)
        sim.step()
    raise AssertionError("slave never accepted the request")


def collect_response(sim, port, txn_id, max_cycles=60):
    for _ in range(max_cycles):
        resp = port.peek_response()
        if resp is not None and resp.txn_id == txn_id:
            port.accept_response(txn_id)
            sim.step()
            return resp
        sim.step()
    raise AssertionError("no response arrived")


class TestMemorySlave:
    def test_write_then_read(self):
        sim, port, slave = slave_rig()
        w = BurstTransaction(cmd=OcpCmd.WRITE, addr=0x10, burst_len=2, data=(7, 8))
        push_txn(sim, port, w)
        collect_response(sim, port, w.txn_id)
        assert slave.memory[0x10] == 7 and slave.memory[0x11] == 8

        r = BurstTransaction(cmd=OcpCmd.READ, addr=0x10, burst_len=2)
        push_txn(sim, port, r)
        resp = collect_response(sim, port, r.txn_id)
        assert resp.data == (7, 8)

    def test_unwritten_reads_as_zero(self):
        sim, port, slave = slave_rig()
        r = BurstTransaction(cmd=OcpCmd.READ, addr=0x99)
        push_txn(sim, port, r)
        assert collect_response(sim, port, r.txn_id).data == (0,)

    def test_wait_states_delay_response(self):
        def service_time(ws):
            sim, port, slave = slave_rig(wait_states=ws)
            t = BurstTransaction(cmd=OcpCmd.READ, addr=0)
            push_txn(sim, port, t)
            start = sim.cycle
            collect_response(sim, port, t.txn_id)
            return sim.cycle - start

        assert service_time(8) - service_time(0) == 8

    def test_counters(self):
        sim, port, slave = slave_rig()
        w = BurstTransaction(cmd=OcpCmd.WRITE, addr=0, burst_len=1, data=(1,))
        push_txn(sim, port, w)
        collect_response(sim, port, w.txn_id)
        assert slave.writes_served == 1 and slave.reads_served == 0

    def test_interrupt_schedule_fires_once(self):
        sim, port, slave = slave_rig(interrupt_schedule=[(5, 0xA)])
        seen = []
        for _ in range(20):
            sim.step()
            ev = port.peek_sideband()
            if ev is not None:
                seen.append(ev)
        assert len(seen) == 1 and seen[0].vector == 0xA

    def test_negative_wait_states_rejected(self):
        sim = Simulator()
        port = OcpSlavePort(sim, "s")
        with pytest.raises(ValueError):
            OcpMemorySlave("m", port, wait_states=-1)

    def test_thread_id_echoed(self):
        sim, port, slave = slave_rig()
        t = BurstTransaction(cmd=OcpCmd.READ, addr=0, thread_id=2)
        push_txn(sim, port, t)
        assert collect_response(sim, port, t.txn_id).thread_id == 2
