"""Unit tests for simulation instrumentation."""

import math

import pytest

from repro.sim.stats import Counter, LatencySampler, ThroughputMeter


class TestCounter:
    def test_increments(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.count == 5

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.count == 0


class TestLatencySampler:
    def test_basic_sample(self):
        s = LatencySampler()
        s.start("a", 10)
        assert s.finish("a", 25) == 15
        assert s.samples == [15]

    def test_outstanding_tracking(self):
        s = LatencySampler()
        s.start("a", 0)
        s.start("b", 1)
        assert s.outstanding == 2
        s.finish("a", 5)
        assert s.outstanding == 1

    def test_finish_unknown_token_raises(self):
        s = LatencySampler()
        with pytest.raises(KeyError):
            s.finish("ghost", 3)

    def test_finish_unknown_token_error_is_descriptive(self):
        s = LatencySampler("ni.pkt_latency")
        s.start("open", 0)
        with pytest.raises(KeyError, match=r"ni\.pkt_latency.*'ghost'.*1 token"):
            s.finish("ghost", 3)

    def test_discard_forgets_without_recording(self):
        s = LatencySampler()
        s.start("a", 0)
        assert s.discard("a") is True
        assert s.outstanding == 0
        assert s.samples == []
        with pytest.raises(KeyError, match="discarded"):
            s.finish("a", 5)

    def test_discard_unknown_token_is_false(self):
        assert LatencySampler().discard("never-started") is False

    def test_mean_min_max(self):
        s = LatencySampler()
        for i, (b, e) in enumerate([(0, 10), (0, 20), (0, 30)]):
            s.start(i, b)
            s.finish(i, e)
        assert s.mean() == 20
        assert s.minimum() == 10
        assert s.maximum() == 30

    def test_mean_of_empty_is_nan(self):
        assert math.isnan(LatencySampler().mean())

    def test_percentile_interpolates(self):
        s = LatencySampler()
        s.samples.extend([10, 20, 30, 40])
        assert s.percentile(0) == 10
        assert s.percentile(100) == 40
        assert s.percentile(50) == 25

    def test_percentile_single_sample(self):
        s = LatencySampler()
        s.samples.append(42)
        assert s.percentile(99) == 42

    def test_percentile_empty_is_nan(self):
        assert math.isnan(LatencySampler().percentile(50))

    def test_reset(self):
        s = LatencySampler()
        s.start("a", 0)
        s.samples.append(5)
        s.reset()
        assert s.outstanding == 0
        assert s.count == 0

    def test_histogram_buckets(self):
        s = LatencySampler()
        s.samples.extend([1, 9, 10, 11, 25, 25])
        assert s.histogram(bin_width=10) == {0: 2, 10: 2, 20: 2}

    def test_histogram_sorted_keys(self):
        s = LatencySampler()
        s.samples.extend([35, 5, 15])
        assert list(s.histogram(10)) == [0, 10, 30]

    def test_histogram_invalid_width(self):
        with pytest.raises(ValueError):
            LatencySampler().histogram(0)


class TestThroughputMeter:
    def test_rate_over_window(self):
        t = ThroughputMeter()
        t.open_window(100)
        for cyc in range(100, 110):
            t.record(cyc)
        assert t.rate() == pytest.approx(10 / 10)

    def test_records_before_window_ignored(self):
        t = ThroughputMeter()
        t.open_window(10)
        t.record(5)
        assert t.accepted == 0

    def test_rate_without_window_is_zero(self):
        assert ThroughputMeter().rate() == 0.0

    def test_multi_item_record(self):
        t = ThroughputMeter()
        t.open_window(0)
        t.record(0, items=4)
        assert t.accepted == 4

    def test_reset(self):
        t = ThroughputMeter()
        t.open_window(0)
        t.record(0)
        t.reset()
        assert t.rate() == 0.0
