"""Unit tests for the bridged (hierarchical) bus."""

import pytest

from repro.bus import BridgedBus
from repro.network.traffic import ScriptedTraffic, TxnTemplate, UniformRandomTraffic


def scripted_bridged(script, bridge_latency=2):
    bb = BridgedBus(["cpu0"], ["dram"], ["uart"], bridge_latency=bridge_latency)
    bb.add_traffic_master("cpu0", ScriptedTraffic(script), max_transactions=len(script))
    bb.add_memory_slave("dram")
    bb.add_memory_slave("uart")
    return bb


class TestBridgedBus:
    def test_fast_slave_reached_directly(self):
        bb = scripted_bridged([(0, TxnTemplate("dram", is_read=False, burst_len=1))])
        bb.run_until_drained()
        assert bb.total_completed() == 1
        assert bb.fast.slaves["dram"].writes_served == 1
        assert bb.bridge.crossings == 0

    def test_slow_slave_reached_through_bridge(self):
        bb = scripted_bridged([(0, TxnTemplate("uart", is_read=False, burst_len=1))])
        bb.run_until_drained()
        assert bb.total_completed() == 1
        assert bb.slow.slaves["uart"].writes_served == 1
        assert bb.bridge.crossings == 1

    def test_bridge_adds_latency(self):
        def latency(target, bridge_latency=4):
            bb = scripted_bridged(
                [(0, TxnTemplate(target, is_read=True))], bridge_latency
            )
            bb.run_until_drained()
            return bb.aggregate_latency().samples[0]

        assert latency("uart") > latency("dram") + 4

    def test_bridge_latency_parameter(self):
        def uart_latency(bl):
            bb = scripted_bridged([(0, TxnTemplate("uart", is_read=True))], bl)
            bb.run_until_drained()
            return bb.aggregate_latency().samples[0]

        assert uart_latency(8) == uart_latency(0) + 16  # both directions

    def test_data_integrity_across_the_bridge(self):
        script = [
            (0, TxnTemplate("uart", offset=2, is_read=False, burst_len=2)),
            (100, TxnTemplate("uart", offset=2, is_read=True, burst_len=2)),
        ]
        bb = scripted_bridged(script)
        bb.run_until_drained()
        master = bb.fast.masters["cpu0"]
        uart = bb.slow.slaves["uart"]
        data = list(master.read_data.values())[0]
        assert data == (uart.memory[2], uart.memory[3])

    def test_mixed_traffic_drains(self):
        bb = BridgedBus(["cpu0", "cpu1"], ["dram"], ["uart", "timer"])
        bb.populate(
            {
                "cpu0": UniformRandomTraffic(["dram", "uart"], 0.1, seed=1),
                "cpu1": UniformRandomTraffic(["dram", "timer"], 0.1, seed=2),
            },
            max_transactions=25,
        )
        bb.run_until_drained(max_cycles=1_000_000)
        assert bb.total_completed() == 50

    def test_bridge_serializes_slow_access(self):
        """While the bridge is busy, even fast-bus slaves must wait:
        the AMBA pathology the paper's motivation points at."""
        bb = BridgedBus(["cpu0"], ["dram"], ["uart"], bridge_latency=10)
        script = [
            (0, TxnTemplate("uart", is_read=True)),
            (1, TxnTemplate("dram", is_read=True)),
        ]
        bb.add_traffic_master("cpu0", ScriptedTraffic(script), max_transactions=2)
        bb.add_memory_slave("dram")
        bb.add_memory_slave("uart")
        bb.run_until_drained()
        lat = sorted(bb.aggregate_latency().samples)
        # The dram access queued behind the uart crossing.
        assert lat[1] > 20

    def test_needs_slow_slaves(self):
        with pytest.raises(ValueError):
            BridgedBus(["cpu0"], ["dram"], [])

    def test_unknown_slave_rejected(self):
        bb = BridgedBus(["cpu0"], ["dram"], ["uart"])
        with pytest.raises(Exception, match="not a slave"):
            bb.add_memory_slave("ghost")

    def test_negative_bridge_latency_rejected(self):
        with pytest.raises(ValueError):
            BridgedBus(["cpu0"], ["dram"], ["uart"], bridge_latency=-1)
