"""Unit tests for link bandwidth feasibility analysis."""

import pytest

from repro.core.config import NocParameters
from repro.core.packet import PacketHeader
from repro.flow.bandwidth import (
    check_feasibility,
    demand_to_flit_rate,
    flits_per_transaction,
    link_loads,
)
from repro.flow.taskgraph import CoreGraph, CoreSpec
from repro.network.topology import mesh


def two_pair_graph(rate=100.0):
    cg = CoreGraph(
        "g",
        [
            CoreSpec("cpu0", True),
            CoreSpec("cpu1", True),
            CoreSpec("mem0", False),
            CoreSpec("mem1", False),
        ],
    )
    cg.add_demand("cpu0", "mem0", rate)
    cg.add_demand("cpu1", "mem1", rate)
    return cg


def attached_line(cg):
    topo = mesh(1, 2)
    topo.add_initiator("cpu0")
    topo.add_initiator("cpu1")
    topo.add_target("mem0")
    topo.add_target("mem1")
    topo.attach("cpu0", "sw_0_0")
    topo.attach("cpu1", "sw_0_0")
    topo.attach("mem0", "sw_1_0")
    topo.attach("mem1", "sw_1_0")
    return topo


class TestConversions:
    def test_flits_per_transaction(self):
        p = NocParameters(flit_width=32)
        header = PacketHeader.bit_width(p)
        expected = -(-(header + 4 * 32) // 32)
        assert flits_per_transaction(p, 4) == expected

    def test_demand_scaling(self):
        p = NocParameters(flit_width=32)
        # Double the demand, double the flit rate.
        one = demand_to_flit_rate(100, p)
        two = demand_to_flit_rate(200, p)
        assert two == pytest.approx(2 * one)

    def test_wider_flits_fewer_flits(self):
        narrow = demand_to_flit_rate(100, NocParameters(flit_width=16))
        wide = demand_to_flit_rate(100, NocParameters(flit_width=128))
        assert wide < narrow

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            demand_to_flit_rate(-1, NocParameters())


class TestLinkLoads:
    def test_shared_trunk_accumulates(self):
        cg = two_pair_graph(rate=100.0)
        topo = attached_line(cg)
        p = NocParameters(flit_width=32)
        loads = link_loads(topo, cg, p)
        # Both flows cross the single sw_0_0 -> sw_1_0 trunk.
        trunk = loads[("sw_0_0", "sw_1_0")]
        single = demand_to_flit_rate(100.0, p)
        assert trunk.flits_per_cycle == pytest.approx(2 * single)

    def test_ejection_links_counted(self):
        cg = two_pair_graph()
        topo = attached_line(cg)
        loads = link_loads(topo, cg, NocParameters())
        assert ("sw_1_0", "mem0") in loads
        assert ("cpu0", "sw_0_0") in loads

    def test_unused_links_absent(self):
        cg = two_pair_graph()
        topo = attached_line(cg)
        loads = link_loads(topo, cg, NocParameters())
        assert ("sw_1_0", "sw_0_0") not in loads  # no reverse demand


class TestFeasibility:
    def test_light_load_feasible(self):
        cg = two_pair_graph(rate=50.0)
        topo = attached_line(cg)
        ok, hot = check_feasibility(topo, cg, NocParameters(flit_width=32))
        assert ok and hot == []

    def test_overload_flagged_worst_first(self):
        cg = two_pair_graph(rate=1800.0)  # ~1.8 words/cycle on the trunk
        topo = attached_line(cg)
        ok, hot = check_feasibility(topo, cg, NocParameters(flit_width=32))
        assert not ok
        assert hot[0].flits_per_cycle == max(h.flits_per_cycle for h in hot)
        assert hot[0].utilization > 1.0

    def test_wider_flits_restore_feasibility(self):
        cg = two_pair_graph(rate=450.0)
        topo = attached_line(cg)
        ok_narrow, _ = check_feasibility(topo, cg, NocParameters(flit_width=16))
        ok_wide, _ = check_feasibility(topo, cg, NocParameters(flit_width=128))
        assert not ok_narrow
        assert ok_wide

    def test_margin_validated(self):
        cg = two_pair_graph()
        topo = attached_line(cg)
        with pytest.raises(ValueError):
            check_feasibility(topo, cg, NocParameters(), margin=0.0)
