"""Packet-level network latency instrumentation."""

import pytest

from repro.network.noc import Noc, NocBuildConfig
from repro.network.topology import attach_round_robin, mesh
from repro.network.traffic import PermutationTraffic, UniformRandomTraffic


def run_line(rate=0.02, txns=15, **cfg_kwargs):
    topo = mesh(1, 3)
    topo.add_initiator("cpu")
    topo.add_target("mem")
    topo.attach("cpu", "sw_0_0")
    topo.attach("mem", "sw_2_0")
    noc = Noc(topo, NocBuildConfig(**cfg_kwargs) if cfg_kwargs else None)
    noc.add_traffic_master(
        "cpu", PermutationTraffic("mem", rate, seed=1), max_transactions=txns
    )
    noc.add_memory_slave("mem", wait_states=4)
    noc.run_until_drained(max_cycles=300_000)
    return noc


class TestNetworkLatency:
    def test_samples_cover_both_directions(self):
        noc = run_line()
        # One request packet per txn at the target NI, one response at
        # the initiator NI.
        assert noc.network_latency().count == 2 * 15

    def test_network_latency_below_transaction_latency(self):
        noc = run_line()
        assert noc.network_latency().mean() < noc.aggregate_latency().mean()

    def test_memory_time_excluded(self):
        """Raising memory wait states must not move packet latency."""
        def pkt_mean(ws):
            topo = mesh(1, 3)
            topo.add_initiator("cpu")
            topo.add_target("mem")
            topo.attach("cpu", "sw_0_0")
            topo.attach("mem", "sw_2_0")
            noc = Noc(topo)
            noc.add_traffic_master(
                "cpu", PermutationTraffic("mem", 0.02, seed=1), max_transactions=10
            )
            noc.add_memory_slave("mem", wait_states=ws)
            noc.run_until_drained(max_cycles=300_000)
            return noc.network_latency().mean()

        assert pkt_mean(20) == pytest.approx(pkt_mean(0), abs=0.5)

    def test_network_latency_grows_with_hops(self):
        def pkt_mean(cols):
            topo = mesh(1, cols)
            topo.add_initiator("cpu")
            topo.add_target("mem")
            topo.attach("cpu", "sw_0_0")
            topo.attach("mem", f"sw_{cols - 1}_0")
            noc = Noc(topo)
            noc.add_traffic_master(
                "cpu", PermutationTraffic("mem", 0.02, seed=1), max_transactions=10
            )
            noc.add_memory_slave("mem")
            noc.run_until_drained(max_cycles=300_000)
            return noc.network_latency().mean()

        # Each extra switch hop costs CYCLES_PER_HOP = 3 cycles (the
        # switch's 2 stages overlap one cycle of the link's latency).
        assert pkt_mean(4) == pytest.approx(pkt_mean(2) + 2 * 3, abs=1.0)

    def test_matches_selection_model_roughly(self):
        """The flow's CYCLES_PER_HOP estimate tracks measurement."""
        from repro.flow.selection import CYCLES_PER_HOP, NI_OVERHEAD_CYCLES

        topo = mesh(2, 2)
        cpus, mems = attach_round_robin(topo, 2, 2)
        noc = Noc(topo)
        noc.populate(
            {c: UniformRandomTraffic(mems, 0.02, seed=i) for i, c in enumerate(cpus)},
            max_transactions=20,
        )
        noc.run_until_drained(max_cycles=300_000)
        measured = noc.network_latency().mean()
        # Mean path on a 2x2 mesh with these attachments: 1-3 switches.
        estimate_lo = 1 * CYCLES_PER_HOP + NI_OVERHEAD_CYCLES
        estimate_hi = 3 * CYCLES_PER_HOP + NI_OVERHEAD_CYCLES + 8
        assert estimate_lo <= measured <= estimate_hi
