"""Shared test fixtures and micro-harnesses."""

from __future__ import annotations

import signal

import pytest

from repro.core.config import NocParameters
from repro.sim.kernel import Simulator

#: Ceiling for any single test unless it opts into more via
#: ``@pytest.mark.timeout_guard(seconds)``.  Generous on purpose: the
#: guard exists to turn a hung simulation or a wedged worker pool into
#: a failing test instead of a hung CI job, not to police slowness.
DEFAULT_TEST_TIMEOUT = 120.0


@pytest.fixture(autouse=True)
def _timeout_guard(request):
    """Per-test wall-clock guard (no pytest-timeout dependency).

    Uses ``SIGALRM``/``setitimer``, so it is active only on platforms
    that have them and only in the main thread -- exactly the situation
    of this test suite.  A ``timeout_guard`` marker overrides the
    default budget for legitimately long tests.
    """
    if not hasattr(signal, "SIGALRM"):
        yield
        return
    marker = request.node.get_closest_marker("timeout_guard")
    seconds = DEFAULT_TEST_TIMEOUT
    if marker is not None and marker.args:
        seconds = float(marker.args[0])

    def on_alarm(signum, frame):
        pytest.fail(
            f"test exceeded the {seconds:g}s timeout guard "
            "(mark it @pytest.mark.timeout_guard(N) if it is "
            "legitimately long)",
            pytrace=False,
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def params32() -> NocParameters:
    return NocParameters(flit_width=32)


@pytest.fixture
def params16() -> NocParameters:
    return NocParameters(flit_width=16)


def build_small_mesh_noc(
    rows: int = 2,
    cols: int = 2,
    n_cpus: int = 2,
    n_mems: int = 2,
    **build_kwargs,
):
    """A populated-but-coreless mesh NoC used across integration tests."""
    from repro.network.noc import Noc, NocBuildConfig
    from repro.network.topology import attach_round_robin, mesh

    topo = mesh(rows, cols)
    cpus, mems = attach_round_robin(topo, n_cpus, n_mems)
    cfg = NocBuildConfig(**build_kwargs) if build_kwargs else None
    return Noc(topo, cfg), cpus, mems
