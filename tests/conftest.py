"""Shared test fixtures and micro-harnesses."""

from __future__ import annotations

import pytest

from repro.core.config import NocParameters
from repro.sim.kernel import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def params32() -> NocParameters:
    return NocParameters(flit_width=32)


@pytest.fixture
def params16() -> NocParameters:
    return NocParameters(flit_width=16)


def build_small_mesh_noc(
    rows: int = 2,
    cols: int = 2,
    n_cpus: int = 2,
    n_mems: int = 2,
    **build_kwargs,
):
    """A populated-but-coreless mesh NoC used across integration tests."""
    from repro.network.noc import Noc, NocBuildConfig
    from repro.network.topology import attach_round_robin, mesh

    topo = mesh(rows, cols)
    cpus, mems = attach_round_robin(topo, n_cpus, n_mems)
    cfg = NocBuildConfig(**build_kwargs) if build_kwargs else None
    return Noc(topo, cfg), cpus, mems
