"""Deterministic checkpoint/restore: differential and format tests.

The load-bearing guarantee (docs/CHECKPOINT.md): snapshot a simulator
at cycle N, restore into a structurally identical rebuild -- same
process or a fresh one -- run to cycle M, and every statistic matches a
run that was never interrupted.  These tests assert that digest
equality under both scheduling modes, with fault windows open across
the snapshot point, and across a process boundary, plus the integrity
checks of the on-disk format.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.faults.injector import FaultInjector, FaultWindow
from repro.network.experiments import TopologyNocBuilder, verify_checkpoint
from repro.network.topology import mesh
from repro.network.traffic import UniformRandomTraffic
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.snapshot import SNAPSHOT_VERSION, SimSnapshot, SnapshotError

BUILDER = TopologyNocBuilder(factory=mesh, args=(2, 2))

#: A burst window that is *open* at every snapshot point the tests use,
#: so restore must reproduce mid-fault link overrides exactly.
SPANNING_FAULT = FaultWindow("link.*", start=50, duration=600, error_rate=0.2)


def build_noc(fast_path: bool = True, windows=(SPANNING_FAULT,)):
    noc = BUILDER()
    noc.sim.set_fast_path(fast_path)
    injector = FaultInjector(noc, list(windows)) if windows else None
    targets = list(noc.topology.targets)
    noc.populate(
        {
            ni: UniformRandomTraffic(targets, 0.1, seed=7 + 17 * i)
            for i, ni in enumerate(noc.topology.initiators)
        }
    )
    return noc, injector


class TestRoundTrip:
    @pytest.mark.parametrize("fast_path", [True, False], ids=["fast", "full"])
    def test_restore_then_run_is_digest_identical(self, fast_path):
        reference, _ = build_noc(fast_path)
        reference.run(400)
        want = reference.stats_digest()

        donor, _ = build_noc(fast_path)
        donor.run(150)
        snap = donor.sim.snapshot()

        restored, _ = build_noc(fast_path)
        assert restored.sim.restore(snap) == {}
        assert restored.sim.cycle == 150
        restored.run(250)
        assert restored.stats_digest() == want

    def test_snapshot_point_inside_fault_window(self):
        # SPANNING_FAULT is open from cycle 50 to 650; snapshot at 300.
        digest = verify_checkpoint(
            BUILDER,
            snapshot_at=300,
            cycles=900,
            rate=0.1,
            attach=lambda noc: FaultInjector(noc, [SPANNING_FAULT]),
        )
        assert len(digest) == 64

    def test_both_flow_control_modes(self):
        # ACK/NACK go-back-N is the default; credit mode is the other
        # flow-control personality the switches support.
        from repro.network.noc import NocBuildConfig

        for kwargs in ({}, {"config": NocBuildConfig(flow_control="credit")}):
            builder = TopologyNocBuilder(
                factory=mesh, args=(2, 2), **kwargs
            )
            digest = verify_checkpoint(
                builder, snapshot_at=200, cycles=700, rate=0.1
            )
            assert len(digest) == 64

    def test_extras_ride_along(self):
        noc, _ = build_noc()
        noc.run(80)
        snap = noc.sim.snapshot(extras={"warm": 13, "tag": "x"})
        fresh, _ = build_noc()
        assert fresh.sim.restore(snap) == {"warm": 13, "tag": "x"}

    def test_global_id_counters_restored(self):
        from repro.core.flit import next_packet_id
        from repro.core.ocp import next_txn_id

        noc, _ = build_noc()
        noc.run(120)
        snap = noc.sim.snapshot()
        # Burn ids after the snapshot: restore must rewind them so the
        # continued run allocates the same ids the uninterrupted run did.
        burned_txn = [next_txn_id() for _ in range(5)]
        burned_pkt = [next_packet_id() for _ in range(5)]
        fresh, _ = build_noc()
        fresh.sim.restore(snap)
        assert next_txn_id() == burned_txn[0]
        assert next_packet_id() == burned_pkt[0]

    def test_snapshot_at_cycle_zero_restores(self):
        noc, _ = build_noc()
        snap = noc.sim.snapshot()
        fresh, _ = build_noc()
        fresh.sim.restore(snap)
        assert fresh.sim.cycle == 0
        fresh.run(100)  # and it still runs


class TestKernelAgnostic:
    """Snapshots restore across scheduler modes (docs/CHECKPOINT.md):
    the capture records which kernel took it, restore keeps the target's
    mode, and continuing is digest-identical either way -- including the
    interpreted-source case, where the capture carries no scheduler
    state and the restore must conservatively re-arm a fast-path target.
    """

    @pytest.mark.parametrize("src,dst", [
        ("interpreted", "fast"),
        ("interpreted", "compiled"),
        ("fast", "interpreted"),
        ("fast", "compiled"),
        ("compiled", "interpreted"),
        ("compiled", "fast"),
    ])
    def test_cross_kernel_restore_with_open_fault_window(self, src, dst):
        # SPANNING_FAULT is open at the snapshot point, so the restored
        # instance resumes mid-fault under a different scheduler.
        digest = verify_checkpoint(
            BUILDER,
            snapshot_at=300,
            cycles=900,
            rate=0.1,
            attach=lambda noc: FaultInjector(noc, [SPANNING_FAULT]),
            kernel=src,
            restore_kernel=dst,
        )
        assert len(digest) == 64

    def test_snapshot_records_the_capturing_kernel(self, tmp_path):
        noc, _ = build_noc()
        noc.sim.set_kernel("compiled")
        noc.run(100)
        snap = noc.sim.snapshot()
        assert snap.kernel == "compiled"
        assert snap.fast_path is True  # legacy field stays coherent
        path = os.path.join(tmp_path, "k.ckpt")
        snap.save(path)
        assert SimSnapshot.load(path).kernel == "compiled"

    def test_restore_keeps_target_kernel(self):
        noc, _ = build_noc()
        noc.run(120)
        snap = noc.sim.snapshot()  # captured under the fast path
        target, _ = build_noc()
        target.sim.set_kernel("compiled")
        target.sim.restore(snap)
        assert target.sim.kernel == "compiled"
        target2, _ = build_noc()
        target2.sim.set_kernel("interpreted")
        target2.sim.restore(snap)
        assert target2.sim.kernel == "interpreted"


class TestStructureValidation:
    def test_restoring_into_a_different_noc_raises(self):
        noc, _ = build_noc()
        noc.run(50)
        snap = noc.sim.snapshot()
        other = TopologyNocBuilder(factory=mesh, args=(3, 2))()
        with pytest.raises(SnapshotError) as exc:
            other.sim.restore(snap)
        # The diagnosis names what differs and how to fix it.
        assert "structure differs" in str(exc.value)
        assert "rebuild the simulator" in str(exc.value)

    def test_restoring_without_the_injector_raises(self):
        noc, _ = build_noc()
        noc.run(50)
        snap = noc.sim.snapshot()
        bare, _ = build_noc(windows=())
        with pytest.raises(SnapshotError, match="faults"):
            bare.sim.restore(snap)

    def test_version_skew_raises(self):
        noc, _ = build_noc()
        snap = noc.sim.snapshot()
        snap.version = SNAPSHOT_VERSION + 1
        fresh, _ = build_noc()
        with pytest.raises(SnapshotError, match="format v"):
            fresh.sim.restore(snap)


class TestFileFormat:
    def _snap(self):
        noc, _ = build_noc()
        noc.run(60)
        return noc.sim.snapshot()

    def test_save_load_round_trip(self, tmp_path):
        snap = self._snap()
        path = str(tmp_path / "ck.bin")
        snap.save(path)
        loaded = SimSnapshot.load(path)
        assert loaded == snap

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SnapshotError, match="cannot read"):
            SimSnapshot.load(str(tmp_path / "nope.bin"))

    def test_wrong_magic_raises(self, tmp_path):
        path = tmp_path / "ck.bin"
        path.write_bytes(b"NOTACKPT" + b"\0" * 64)
        with pytest.raises(SnapshotError, match="not a simulator snapshot"):
            SimSnapshot.load(str(path))

    def test_truncated_file_raises(self, tmp_path):
        snap = self._snap()
        path = str(tmp_path / "ck.bin")
        snap.save(path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        with pytest.raises(SnapshotError):
            SimSnapshot.load(path)

    def test_corrupted_payload_raises(self, tmp_path):
        snap = self._snap()
        path = str(tmp_path / "ck.bin")
        snap.save(path)
        raw = bytearray(open(path, "rb").read())
        raw[-10] ^= 0xFF
        open(path, "wb").write(bytes(raw))
        with pytest.raises(SnapshotError, match="integrity"):
            SimSnapshot.load(path)

    def test_future_version_file_raises(self, tmp_path):
        snap = self._snap()
        path = str(tmp_path / "ck.bin")
        snap.save(path)
        raw = bytearray(open(path, "rb").read())
        raw[8:12] = (SNAPSHOT_VERSION + 9).to_bytes(4, "big")
        open(path, "wb").write(bytes(raw))
        with pytest.raises(SnapshotError, match="format v"):
            SimSnapshot.load(path)


_CROSS_PROCESS_SCRIPT = """
import sys
from tests.test_snapshot import build_noc
from repro.sim.snapshot import SimSnapshot

snap = SimSnapshot.load(sys.argv[1])
noc, _ = build_noc(fast_path=snap.fast_path)
noc.sim.restore(snap)
noc.run(int(sys.argv[2]))
print(noc.stats_digest())
"""


class TestCrossProcess:
    @pytest.mark.timeout_guard(180)
    def test_restore_in_fresh_process_matches(self, tmp_path):
        reference, _ = build_noc()
        reference.run(400)
        want = reference.stats_digest()

        donor, _ = build_noc()
        donor.run(150)
        path = str(tmp_path / "ck.bin")
        donor.sim.snapshot().save(path)

        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(root, "src"), root, env.get("PYTHONPATH"))
            if p
        )
        out = subprocess.run(
            [sys.executable, "-c", _CROSS_PROCESS_SCRIPT, path, "250"],
            capture_output=True, text=True, env=env, cwd=root, check=True,
        )
        assert out.stdout.strip() == want


class TestKernelValidation:
    def test_negative_cycle_count_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="non-negative"):
            sim.run(-5)

    def test_zero_cycles_is_a_no_op(self):
        sim = Simulator()
        sim.run(0)
        assert sim.cycle == 0
