"""Golden-file tests: generated output is stable.

Two generators are snapshotted here.  The synthesis view (SystemC) is
an interchange artifact -- downstream flows diff and check it in.  The
compiled tick kernel's Python source (``repro.sim.compiled``) is an
internal artifact, but golden-filed for the same reason: unintentional
churn in either generator is a regression even when the text is still
"valid".  If you change a generator on purpose, regenerate the
snapshot.

Regenerate the SystemC snapshot with::

    python - <<'PY'
    from repro.compiler import NocSpecification, generate_systemc
    spec = NocSpecification.from_json(open("tests/data/golden_spec.json").read())
    for name, content in generate_systemc(spec).items():
        open(f"tests/data/golden_systemc/{name}", "w").write(content)
    PY

Regenerate the compiled-kernel snapshot with::

    PYTHONPATH=src python - <<'PY'
    from tests.test_codegen_golden import _golden_kernel_noc
    from repro.sim.compiled import compiled_source
    open("tests/data/golden_compiled_kernel.py.txt", "w").write(
        compiled_source(_golden_kernel_noc().sim))
    PY
"""

import os

import pytest

from repro.compiler import NocSpecification, generate_systemc

DATA = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_DIR = os.path.join(DATA, "golden_systemc")
GOLDEN_KERNEL = os.path.join(DATA, "golden_compiled_kernel.py.txt")


@pytest.fixture(scope="module")
def generated():
    with open(os.path.join(DATA, "golden_spec.json")) as f:
        spec = NocSpecification.from_json(f.read())
    return generate_systemc(spec)


class TestGoldenCodegen:
    def test_file_set_matches_snapshot(self, generated):
        assert sorted(generated) == sorted(os.listdir(GOLDEN_DIR))

    @pytest.mark.parametrize(
        "filename",
        sorted(os.listdir(GOLDEN_DIR)) if os.path.isdir(GOLDEN_DIR) else [],
    )
    def test_file_content_is_stable(self, generated, filename):
        with open(os.path.join(GOLDEN_DIR, filename)) as f:
            golden = f.read()
        assert generated[filename] == golden, (
            f"{filename} changed; if intentional, regenerate the snapshot "
            "(see module docstring)"
        )

    def test_generation_is_deterministic(self, generated):
        with open(os.path.join(DATA, "golden_spec.json")) as f:
            spec = NocSpecification.from_json(f.read())
        again = generate_systemc(spec)
        assert again == generated


def _golden_kernel_noc():
    """The canonical network the compiled-kernel snapshot is taken of:
    a populated 2x2 mesh, covering every specialized lane (switch,
    master, both NIs, link) plus the drawer-lane master unrolling."""
    from repro.network.experiments import TopologyNocBuilder
    from repro.network.topology import mesh
    from repro.network.traffic import UniformRandomTraffic

    noc = TopologyNocBuilder(mesh, (2, 2), n_initiators=2, n_targets=2)()
    noc.populate(
        {
            c: UniformRandomTraffic(noc.topology.targets, 0.05, seed=i)
            for i, c in enumerate(noc.topology.initiators)
        }
    )
    return noc


class TestCompiledKernelGolden:
    """The compiled tick kernel emits byte-stable Python source.

    The source is a pure function of network structure (names, shapes,
    rates -- never runtime state or ids), which is what makes the
    kernel auditable: you can read exactly the loop a network will run.
    """

    @pytest.fixture(scope="class")
    def source(self):
        from repro.sim.compiled import compiled_source

        return compiled_source(_golden_kernel_noc().sim)

    def test_source_matches_snapshot(self, source):
        with open(GOLDEN_KERNEL) as f:
            golden = f.read()
        assert source == golden, (
            "generated kernel source changed; if intentional, regenerate "
            "the snapshot (see module docstring)"
        )

    def test_generation_is_deterministic(self, source):
        from repro.sim.compiled import compiled_source

        assert compiled_source(_golden_kernel_noc().sim) == source

    def test_snapshot_still_compiles_and_runs(self):
        # The golden text is not just stable -- it is the program the
        # simulator actually executes.
        noc = _golden_kernel_noc()
        program = noc.sim.compile()
        with open(GOLDEN_KERNEL) as f:
            assert program.source == f.read()
        noc.run(200)
        assert noc.sim.cycle == 200
