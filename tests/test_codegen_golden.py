"""Golden-file tests: generated SystemC output is stable.

The synthesis view is an interchange artifact -- downstream flows diff
and check it in.  Unintentional churn in the generator is a regression
even when the text is still "valid", so the demo design's full output
is snapshotted under ``tests/data/golden_systemc`` and compared
byte-for-byte.  If you change the generator on purpose, regenerate the
snapshot (see the module-level docstring of this test).

Regenerate with::

    python - <<'PY'
    from repro.compiler import NocSpecification, generate_systemc
    spec = NocSpecification.from_json(open("tests/data/golden_spec.json").read())
    for name, content in generate_systemc(spec).items():
        open(f"tests/data/golden_systemc/{name}", "w").write(content)
    PY
"""

import os

import pytest

from repro.compiler import NocSpecification, generate_systemc

DATA = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_DIR = os.path.join(DATA, "golden_systemc")


@pytest.fixture(scope="module")
def generated():
    with open(os.path.join(DATA, "golden_spec.json")) as f:
        spec = NocSpecification.from_json(f.read())
    return generate_systemc(spec)


class TestGoldenCodegen:
    def test_file_set_matches_snapshot(self, generated):
        assert sorted(generated) == sorted(os.listdir(GOLDEN_DIR))

    @pytest.mark.parametrize(
        "filename",
        sorted(os.listdir(GOLDEN_DIR)) if os.path.isdir(GOLDEN_DIR) else [],
    )
    def test_file_content_is_stable(self, generated, filename):
        with open(os.path.join(GOLDEN_DIR, filename)) as f:
            golden = f.read()
        assert generated[filename] == golden, (
            f"{filename} changed; if intentional, regenerate the snapshot "
            "(see module docstring)"
        )

    def test_generation_is_deterministic(self, generated):
        with open(os.path.join(DATA, "golden_spec.json")) as f:
            spec = NocSpecification.from_json(f.read())
        again = generate_systemc(spec)
        assert again == generated
