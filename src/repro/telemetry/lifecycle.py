"""Flit/packet lifecycle tracing and Chrome trace-event export.

Where did a packet spend its cycles?  With lifecycle tracing enabled,
the instrumented components emit three span-anchor events through the
ordinary :class:`~repro.sim.trace.Tracer` interface:

``pkt_inject``
    Emitted by the NI back end when a packet is submitted for flit
    decomposition.  Fields: ``pkt`` (packet id), ``kind`` (packet
    kind name), ``dst`` (destination node id).
``hop``
    Emitted by a switch when a packet's head flit wins allocation.
    Fields: ``pkt``, ``inp``/``out`` (port indices), ``arrival`` (cycle
    the head was first seen on the input, surviving NACK/retransmission
    rounds) and ``wait = cycle - arrival`` (the arbitration wait).
``pkt_eject``
    Emitted by the receiving NI when the tail flit completes
    reassembly.  Fields: ``pkt``, ``kind``, ``latency`` (cycles since
    injection, ``-1`` if the birth cycle is unknown).

Links additionally emit ``link_error`` (fields ``pkt``, ``seq``) for
every injected error, so retransmission causes are visible inline, and
a :class:`repro.faults.FaultInjector` emits ``fault`` instants (fields
``link``, ``mode``, ``phase``) when campaign windows open and close --
exported on their own ``faults`` timeline row.

:func:`chrome_trace_events` folds a recorded event stream into the
Chrome trace-event format (the JSON Perfetto and ``chrome://tracing``
load): one timeline row per packet, with an end-to-end span, one
``arb@switch`` span per hop (arbitration wait) and one ``link->`` span
per inter-hop transfer (output queueing + serialization + wire
transit).  One simulation cycle maps to one microsecond of trace time.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, List, Optional, Tuple

from repro.sim.trace import Tracer

#: Event names that define the packet lifecycle (plus campaign fault
#: window instants, which share the retention/export pipeline).
LIFECYCLE_EVENTS = ("pkt_inject", "hop", "pkt_eject", "link_error", "fault")
_LIFECYCLE_SET = frozenset(LIFECYCLE_EVENTS)

#: Synthetic trace-event tid for the campaign fault timeline (packet
#: rows use the packet id, which is always >= 0).
FAULT_TRACK_TID = -1

#: The trace-event ``pid`` every NoC event is filed under.
TRACE_PID = 1

Event = Tuple[int, str, str, Dict[str, object]]


def enable_lifecycle(noc, enabled: bool = True) -> int:
    """Flip lifecycle instrumentation on every component of a NoC.

    Returns the number of components toggled.  Components without the
    hook (e.g. credit-mode switches) are skipped silently.
    """
    toggled = 0
    components = (
        list(noc.switches.values())
        + list(noc.initiator_nis.values())
        + list(noc.target_nis.values())
        + list(noc.links)
        # Fault injectors attach themselves to the NoC (see
        # repro.faults.FaultInjector); their window open/close instants
        # ride the same lifecycle switch.
        + list(getattr(noc, "fault_injectors", []))
    )
    for comp in components:
        if hasattr(comp, "lifecycle"):
            comp.lifecycle = bool(enabled)
            toggled += 1
    return toggled


class LifecycleCollector(Tracer):
    """A tracer that retains lifecycle events and forwards everything.

    Install as ``sim.tracer``; any previously installed tracer keeps
    working via ``inner``.  Only the four lifecycle event kinds are
    retained (bounded by ``limit``), so long runs don't accumulate the
    per-flit ``route`` chatter.
    """

    def __init__(self, inner: Optional[Tracer] = None, limit: Optional[int] = None) -> None:
        self.events: List[Event] = []
        self.inner = inner
        self.limit = limit
        self.dropped = 0

    def record(self, cycle: int, source: str, event: str, fields: Dict[str, object]) -> None:
        if event in _LIFECYCLE_SET:
            if self.limit is None or len(self.events) < self.limit:
                self.events.append((cycle, source, event, dict(fields)))
            else:
                self.dropped += 1
        if self.inner is not None:
            self.inner.record(cycle, source, event, fields)


def chrome_trace_events(events: Iterable[Event]) -> List[Dict[str, Any]]:
    """Convert recorded lifecycle events into Chrome trace-event dicts.

    Works from any ``(cycle, source, event, fields)`` stream -- a
    :class:`LifecycleCollector` or a plain
    :class:`~repro.sim.trace.TextTracer`.  Unknown event kinds are
    ignored, so mixed streams are fine.
    """
    injects: Dict[int, Event] = {}
    ejects: Dict[int, Event] = {}
    hops: Dict[int, List[Event]] = {}
    errors: Dict[int, List[Event]] = {}
    faults: List[Event] = []
    for ev in events:
        cycle, source, name, fields = ev
        if name == "fault":
            # Campaign window instants carry a link, not a packet.
            faults.append(ev)
            continue
        pkt = fields.get("pkt")
        if not isinstance(pkt, int):
            continue
        if name == "pkt_inject":
            injects.setdefault(pkt, ev)
        elif name == "pkt_eject":
            ejects.setdefault(pkt, ev)
        elif name == "hop":
            hops.setdefault(pkt, []).append(ev)
        elif name == "link_error":
            errors.setdefault(pkt, []).append(ev)

    out: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro NoC"},
        }
    ]
    for pkt in sorted(set(injects) | set(ejects) | set(hops)):
        inj = injects.get(pkt)
        ej = ejects.get(pkt)
        pkt_hops = sorted(hops.get(pkt, []), key=lambda e: e[0])
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": pkt,
                "args": {"name": f"pkt {pkt}"},
            }
        )
        begin = inj[0] if inj else (pkt_hops[0][3].get("arrival", pkt_hops[0][0]) if pkt_hops else None)
        end = ej[0] if ej else (pkt_hops[-1][0] if pkt_hops else None)
        if begin is not None and end is not None:
            kind = (inj or ej)[3].get("kind", "?")
            args: Dict[str, Any] = {"pkt": pkt, "kind": kind, "hops": len(pkt_hops)}
            if inj:
                args["src"] = inj[1]
                args["dst"] = inj[3].get("dst")
            if ej:
                args["ejected_by"] = ej[1]
                args["latency"] = ej[3].get("latency")
            out.append(
                {
                    "ph": "X",
                    "name": f"pkt {pkt} {kind}",
                    "cat": "packet",
                    "pid": TRACE_PID,
                    "tid": pkt,
                    "ts": begin,
                    "dur": max(end - begin, 0),
                    "args": args,
                }
            )
        for i, (cycle, source, _name, fields) in enumerate(pkt_hops):
            arrival = int(fields.get("arrival", cycle))
            wait = int(fields.get("wait", cycle - arrival))
            out.append(
                {
                    "ph": "X",
                    "name": f"arb@{source}",
                    "cat": "hop",
                    "pid": TRACE_PID,
                    "tid": pkt,
                    "ts": arrival,
                    "dur": max(wait, 0),
                    "args": {
                        "switch": source,
                        "in": fields.get("inp"),
                        "out": fields.get("out"),
                        "wait": wait,
                    },
                }
            )
            # The transfer to the next observation point: output queue +
            # go-back-N serialization + wire/pipeline transit, bounded by
            # the next hop's arrival (or ejection for the last hop).
            if i + 1 < len(pkt_hops):
                next_arrival = int(pkt_hops[i + 1][3].get("arrival", pkt_hops[i + 1][0]))
                link_name = f"link {source}->{pkt_hops[i + 1][1]}"
            elif ej is not None:
                next_arrival = ej[0]
                link_name = f"link {source}->{ej[1]}"
            else:
                continue
            out.append(
                {
                    "ph": "X",
                    "name": link_name,
                    "cat": "link",
                    "pid": TRACE_PID,
                    "tid": pkt,
                    "ts": cycle,
                    "dur": max(next_arrival - cycle, 0),
                    "args": {"from": source},
                }
            )
        for cycle, source, _name, fields in errors.get(pkt, []):
            out.append(
                {
                    "ph": "i",
                    "name": f"link_error@{source}",
                    "cat": "error",
                    "pid": TRACE_PID,
                    "tid": pkt,
                    "ts": cycle,
                    "s": "t",
                    "args": {"seq": fields.get("seq")},
                }
            )
    if faults:
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": TRACE_PID,
                "tid": FAULT_TRACK_TID,
                "args": {"name": "faults"},
            }
        )
        for cycle, source, _name, fields in faults:
            mode = fields.get("mode", "?")
            phase = fields.get("phase", "?")
            out.append(
                {
                    "ph": "i",
                    "name": f"{mode} {phase} {fields.get('link', '?')}",
                    "cat": "fault",
                    "pid": TRACE_PID,
                    "tid": FAULT_TRACK_TID,
                    "ts": cycle,
                    "s": "t",
                    "args": {
                        "injector": source,
                        "link": fields.get("link"),
                        "mode": mode,
                        "phase": phase,
                        "rate": fields.get("rate"),
                    },
                }
            )
    return out


def write_chrome_trace(
    stream: IO[str],
    events: Iterable[Event],
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write a complete trace-event JSON document; returns event count.

    The output loads directly in Perfetto (https://ui.perfetto.dev) or
    ``chrome://tracing``.  Trace timestamps are microseconds; one
    simulation cycle is exported as one microsecond.
    """
    trace_events = chrome_trace_events(events)
    doc = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry",
            "time_unit": "1 cycle = 1us",
            **(metadata or {}),
        },
    }
    json.dump(doc, stream, indent=1)
    return len(trace_events)
