"""The central metrics registry: counters, gauges, windowed series.

Components (and the attachment layer in :mod:`repro.telemetry.noc`)
register named metrics here instead of keeping private ad-hoc counters,
so every run can export one JSON document with a stable schema
(:data:`SCHEMA`).  Four metric kinds exist:

* :class:`CounterMetric` -- monotonically increasing event count;
* :class:`GaugeMetric` -- an instantaneous value, either set explicitly
  or read live from a zero-argument callable at export time (the way
  existing component instrumentation attributes are surfaced without
  touching the hot path);
* :class:`SeriesMetric` -- a windowed time series: observations are
  aggregated into fixed-width cycle windows, each keeping count / sum /
  min / max (a per-window histogram summary, bounded memory);
* :class:`HistogramMetric` -- value-bucketed counts (latency
  distributions).

:func:`validate_metrics` checks an exported document against the schema
without any external dependency; the ``python -m repro report --check``
CLI and the test suite both use it.
"""

from __future__ import annotations

import json
import math
from typing import Any, Callable, Dict, List, Optional, Union

#: Schema identifier stamped into every export; consumers should refuse
#: documents with an unknown identifier.
SCHEMA = "repro.telemetry/v1"


class TelemetryError(ValueError):
    """Schema violations and registry misuse."""


class _Metric:
    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def export(self) -> Dict[str, Any]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class CounterMetric(_Metric):
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self.value = 0

    def inc(self, by: int = 1) -> None:
        if by < 0:
            raise TelemetryError(f"counter {self.name!r}: negative increment {by}")
        self.value += by

    def export(self) -> Dict[str, Any]:
        return {"value": self.value, "help": self.help}


class GaugeMetric(_Metric):
    kind = "gauge"

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[], Union[int, float]]] = None,
        help: str = "",
    ) -> None:
        super().__init__(name, help)
        self._fn = fn
        self._value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        if self._fn is not None:
            raise TelemetryError(f"gauge {self.name!r} is callback-backed")
        self._value = value

    def inc(self, by: Union[int, float] = 1) -> None:
        """Adjust a level gauge (in-flight requests, queue depth)."""
        self.set(self.value + by)

    def dec(self, by: Union[int, float] = 1) -> None:
        self.set(self.value - by)

    @property
    def value(self) -> Union[int, float]:
        return self._fn() if self._fn is not None else self._value

    def export(self) -> Dict[str, Any]:
        value = self.value
        if isinstance(value, float) and not math.isfinite(value):
            value = None  # JSON has no inf/nan; absent beats invalid
        return {"value": value, "help": self.help}


class SeriesMetric(_Metric):
    kind = "series"

    def __init__(self, name: str, window: int = 100, help: str = "") -> None:
        if window < 1:
            raise TelemetryError(f"series {name!r}: window must be >= 1")
        super().__init__(name, help)
        self.window = window
        self.buckets: List[Dict[str, Union[int, float]]] = []

    def observe(self, cycle: int, value: Union[int, float]) -> None:
        start = (cycle // self.window) * self.window
        if self.buckets and self.buckets[-1]["start"] == start:
            b = self.buckets[-1]
            b["count"] += 1
            b["sum"] += value
            b["min"] = min(b["min"], value)
            b["max"] = max(b["max"], value)
        else:
            if self.buckets and start < self.buckets[-1]["start"]:
                raise TelemetryError(
                    f"series {self.name!r}: observation at cycle {cycle} is "
                    f"older than the current window"
                )
            self.buckets.append(
                {"start": start, "count": 1, "sum": value, "min": value, "max": value}
            )

    def export(self) -> Dict[str, Any]:
        return {
            "window": self.window,
            "help": self.help,
            "buckets": [dict(b) for b in self.buckets],
        }


class HistogramMetric(_Metric):
    kind = "histogram"

    def __init__(self, name: str, bin_width: int = 10, help: str = "") -> None:
        if bin_width < 1:
            raise TelemetryError(f"histogram {name!r}: bin_width must be >= 1")
        super().__init__(name, help)
        self.bin_width = bin_width
        self.counts: Dict[int, int] = {}
        self.observations = 0

    def observe(self, value: Union[int, float]) -> None:
        b = int(value // self.bin_width) * self.bin_width
        self.counts[b] = self.counts.get(b, 0) + 1
        self.observations += 1

    def clear(self) -> None:
        self.counts.clear()
        self.observations = 0

    def export(self) -> Dict[str, Any]:
        return {
            "bin_width": self.bin_width,
            "help": self.help,
            # JSON object keys are strings; sorted for byte-stable output.
            "counts": {str(k): self.counts[k] for k in sorted(self.counts)},
        }


class MetricsRegistry:
    """Namespace of named metrics with one-call JSON export.

    Registration is idempotent: asking for an existing name returns the
    existing metric if the kind matches and raises otherwise, so
    independent components can share a registry without coordination.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _Metric] = {}

    # -- registration -----------------------------------------------------
    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise TelemetryError(
                    f"metric {metric.name!r} already registered as "
                    f"{existing.kind}, cannot re-register as {metric.kind}"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> CounterMetric:
        return self._register(CounterMetric(name, help))  # type: ignore[return-value]

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[], Union[int, float]]] = None,
        help: str = "",
    ) -> GaugeMetric:
        return self._register(GaugeMetric(name, fn, help))  # type: ignore[return-value]

    def series(self, name: str, window: int = 100, help: str = "") -> SeriesMetric:
        return self._register(SeriesMetric(name, window, help))  # type: ignore[return-value]

    def histogram(self, name: str, bin_width: int = 10, help: str = "") -> HistogramMetric:
        return self._register(HistogramMetric(name, bin_width, help))  # type: ignore[return-value]

    # -- introspection ----------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str) -> Optional[_Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export -----------------------------------------------------------
    def to_dict(self, sim_cycles: Optional[int] = None) -> Dict[str, Any]:
        """The full schema-stable export document."""
        import repro

        doc: Dict[str, Any] = {
            "schema": SCHEMA,
            "version": repro.__version__,
            "sim_cycles": sim_cycles,
            "counters": {},
            "gauges": {},
            "series": {},
            "histograms": {},
        }
        section = {
            "counter": "counters",
            "gauge": "gauges",
            "series": "series",
            "histogram": "histograms",
        }
        for name in sorted(self._metrics):
            m = self._metrics[name]
            doc[section[m.kind]][name] = m.export()
        return doc

    def to_json(self, sim_cycles: Optional[int] = None, indent: int = 2) -> str:
        return json.dumps(self.to_dict(sim_cycles=sim_cycles), indent=indent)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus-style text exposition (``metrics.prom``).

        Counters and gauges map directly; histograms export cumulative
        ``_bucket{le=...}`` lines plus ``_count``; series export their
        aggregate ``_count``/``_sum``.  Metric names are sanitized to
        the ``[a-zA-Z0-9_]`` alphabet Prometheus requires.  Non-finite
        gauge values are skipped (the scrape format has no null).
        """
        def sanitize(name: str) -> str:
            out = []
            for ch in name:
                out.append(ch if (ch.isalnum() and ch.isascii()) or ch == "_" else "_")
            flat = "".join(out)
            return f"{prefix}_{flat}" if prefix else flat

        lines: List[str] = []
        for name in sorted(self._metrics):
            m = self._metrics[name]
            pn = sanitize(name)
            if m.help:
                lines.append(f"# HELP {pn} {m.help}")
            if m.kind == "counter":
                lines.append(f"# TYPE {pn} counter")
                lines.append(f"{pn} {m.value}")  # type: ignore[attr-defined]
            elif m.kind == "gauge":
                value = m.value  # type: ignore[attr-defined]
                if isinstance(value, float) and not math.isfinite(value):
                    continue
                lines.append(f"# TYPE {pn} gauge")
                lines.append(f"{pn} {value}")
            elif m.kind == "histogram":
                lines.append(f"# TYPE {pn} histogram")
                cumulative = 0
                for start in sorted(m.counts):  # type: ignore[attr-defined]
                    cumulative += m.counts[start]  # type: ignore[attr-defined]
                    le = start + m.bin_width  # type: ignore[attr-defined]
                    lines.append(f'{pn}_bucket{{le="{le}"}} {cumulative}')
                lines.append(f'{pn}_bucket{{le="+Inf"}} {m.observations}')  # type: ignore[attr-defined]
                lines.append(f"{pn}_count {m.observations}")  # type: ignore[attr-defined]
            elif m.kind == "series":
                count = sum(b["count"] for b in m.buckets)  # type: ignore[attr-defined]
                total = sum(b["sum"] for b in m.buckets)  # type: ignore[attr-defined]
                lines.append(f"# TYPE {pn}_count gauge")
                lines.append(f"{pn}_count {count}")
                lines.append(f"# TYPE {pn}_sum gauge")
                lines.append(f"{pn}_sum {total}")
        return "\n".join(lines) + "\n"

    # -- multi-process merge ----------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` (e.g. a worker process's registry) into this
        one and return ``self``.

        Semantics per kind: counters **sum**; gauges are **last-write**
        (the incoming value wins -- merging into a callback-backed
        gauge raises, its value is not ours to set); series concatenate
        **by window bucket** (same ``start`` -> count/sum add, min/max
        fold; windows must agree); histograms sum their bin counts
        (bin widths must agree).  A name registered with a different
        kind on the two sides raises :class:`TelemetryError`.  Metrics
        present only in ``other`` are copied in by value (callback
        gauges are snapshotted -- callables do not cross processes).
        """
        for name in other.names():
            theirs = other._metrics[name]
            mine = self._metrics.get(name)
            if mine is None:
                self._metrics[name] = _copy_metric(theirs)
                continue
            if type(mine) is not type(theirs):
                raise TelemetryError(
                    f"merge: metric {name!r} is a {mine.kind} here but a "
                    f"{theirs.kind} in the incoming registry"
                )
            if isinstance(mine, CounterMetric):
                mine.value += theirs.value  # type: ignore[union-attr]
            elif isinstance(mine, GaugeMetric):
                if mine._fn is not None:
                    raise TelemetryError(
                        f"merge: gauge {name!r} is callback-backed and "
                        f"cannot accept an incoming value"
                    )
                mine._value = theirs.value  # type: ignore[union-attr]
            elif isinstance(mine, SeriesMetric):
                if mine.window != theirs.window:  # type: ignore[union-attr]
                    raise TelemetryError(
                        f"merge: series {name!r} window mismatch "
                        f"({mine.window} != {theirs.window})"  # type: ignore[union-attr]
                    )
                by_start = {b["start"]: b for b in mine.buckets}
                for b in theirs.buckets:  # type: ignore[union-attr]
                    here = by_start.get(b["start"])
                    if here is None:
                        copy = dict(b)
                        mine.buckets.append(copy)
                        by_start[copy["start"]] = copy
                    else:
                        here["count"] += b["count"]
                        here["sum"] += b["sum"]
                        here["min"] = min(here["min"], b["min"])
                        here["max"] = max(here["max"], b["max"])
                mine.buckets.sort(key=lambda b: b["start"])
            elif isinstance(mine, HistogramMetric):
                if mine.bin_width != theirs.bin_width:  # type: ignore[union-attr]
                    raise TelemetryError(
                        f"merge: histogram {name!r} bin_width mismatch "
                        f"({mine.bin_width} != {theirs.bin_width})"  # type: ignore[union-attr]
                    )
                for start, count in theirs.counts.items():  # type: ignore[union-attr]
                    mine.counts[start] = mine.counts.get(start, 0) + count
                mine.observations += theirs.observations  # type: ignore[union-attr]
        return self


def _copy_metric(metric: _Metric) -> _Metric:
    """A by-value copy suitable for cross-process adoption."""
    if isinstance(metric, CounterMetric):
        copy: _Metric = CounterMetric(metric.name, metric.help)
        copy.value = metric.value  # type: ignore[attr-defined]
    elif isinstance(metric, GaugeMetric):
        # Snapshot callback gauges: the callable belongs to the source
        # process; the merged registry keeps the value it read.
        copy = GaugeMetric(metric.name, help=metric.help)
        copy._value = metric.value  # type: ignore[attr-defined]
    elif isinstance(metric, SeriesMetric):
        copy = SeriesMetric(metric.name, metric.window, metric.help)
        copy.buckets = [dict(b) for b in metric.buckets]  # type: ignore[attr-defined]
    elif isinstance(metric, HistogramMetric):
        copy = HistogramMetric(metric.name, metric.bin_width, metric.help)
        copy.counts = dict(metric.counts)  # type: ignore[attr-defined]
        copy.observations = metric.observations  # type: ignore[attr-defined]
    else:  # pragma: no cover - no other kinds exist
        raise TelemetryError(f"cannot copy metric kind {metric.kind!r}")
    return copy


def validate_metrics(doc: Any) -> None:
    """Raise :class:`TelemetryError` if ``doc`` violates the v1 schema."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        raise TelemetryError(f"metrics document must be an object, got {type(doc).__name__}")
    if doc.get("schema") != SCHEMA:
        errors.append(f"schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("version"), str):
        errors.append("version must be a string")
    if not (doc.get("sim_cycles") is None or isinstance(doc.get("sim_cycles"), int)):
        errors.append("sim_cycles must be an integer or null")
    for key in ("counters", "gauges", "series", "histograms"):
        if not isinstance(doc.get(key), dict):
            errors.append(f"{key} must be an object")
    if not errors:
        for name, c in doc["counters"].items():
            if not (isinstance(c, dict) and isinstance(c.get("value"), int) and c["value"] >= 0):
                errors.append(f"counter {name!r} must carry a non-negative int value")
        for name, g in doc["gauges"].items():
            ok = isinstance(g, dict) and (
                g.get("value") is None or isinstance(g.get("value"), (int, float))
            )
            if not ok:
                errors.append(f"gauge {name!r} must carry a numeric or null value")
        for name, s in doc["series"].items():
            if not (
                isinstance(s, dict)
                and isinstance(s.get("window"), int)
                and s["window"] >= 1
                and isinstance(s.get("buckets"), list)
            ):
                errors.append(f"series {name!r} must carry window >= 1 and a bucket list")
                continue
            for b in s["buckets"]:
                if not (
                    isinstance(b, dict)
                    and {"start", "count", "sum", "min", "max"} <= set(b)
                ):
                    errors.append(f"series {name!r} has a malformed bucket: {b!r}")
                    break
        for name, h in doc["histograms"].items():
            ok = (
                isinstance(h, dict)
                and isinstance(h.get("bin_width"), int)
                and h["bin_width"] >= 1
                and isinstance(h.get("counts"), dict)
                and all(
                    isinstance(v, int) and v >= 0 for v in h["counts"].values()
                )
            )
            if not ok:
                errors.append(f"histogram {name!r} must carry bin_width >= 1 and int counts")
    if errors:
        raise TelemetryError(
            "metrics document violates the schema:\n  " + "\n  ".join(errors)
        )
