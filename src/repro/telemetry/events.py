"""Cross-process run events: the fleet observability stream.

``repro.telemetry`` (PR 3) sees *inside one process*.  But the
experiment runner farms points out to worker processes, and a
replicated campaign spends minutes inside ``BatchSimulator`` lanes --
from the outside, a running campaign is a black box until it returns.
This module is the shared event stream that fixes that:

* a **versioned, append-only JSONL schema**
  (``repro.telemetry.events/v1``): one JSON object per line, each
  carrying ``schema``/``seq``/``pid``/``t``/``event`` plus
  event-specific fields.  Append-only means a SIGKILLed writer leaves
  at most one torn final line, which readers skip;
* a process-local **sink stack** (`install_sink` / `emit`): library
  code calls :func:`emit` unconditionally -- with no sink installed it
  is a no-op costing one global load, so instrumented code paths stay
  free when nobody is watching;
* an :class:`EventWriter` (file sink) and :class:`EventCollector`
  (in-memory sink used by pooled workers, whose records travel back to
  the parent over the existing result pipe and are merged into the
  parent's ``events.jsonl``);
* a torn-line tolerant :func:`read_events`, a :func:`validate_events`
  checker in the style of ``validate_metrics``, a
  :func:`replay_summary` reducer that reconstructs campaign state from
  the stream alone, and :func:`events_to_chrome_trace` so a whole
  campaign renders in Perfetto next to the flit lifecycles of
  ``repro.telemetry.lifecycle``.

Event vocabulary (the spans of a campaign):

==============  ====================================================
``run_start``   a runner ``map()`` began: ``label``, ``points``,
                ``pending``, ``cached``, ``jobs``
``point_start`` one point dispatched (an attempt began): ``label``,
                ``key``, ``attempt``
``retry``       an attempt failed and will be retried: ``label``,
                ``key``, ``attempt``, ``kind``, ``message``
``steal``       a work-stealing dispatcher worker ran dry and took a
                point from another worker's shard: ``label``, ``key``,
                ``thief``, ``victim`` (worker slots)
``point_end``   a point finished: ``label``, ``key``, ``status``
                (``ok``/``failed``), ``seconds``, ``attempts``,
                ``cached`` (True for cache hits, which skip
                ``point_start``)
``checkpoint``  a campaign checkpoint hit disk: ``cycle``, ``lane``
``lane_batch``  one replica lane of a replicated campaign finished:
                ``lane``, ``replicas``, ``metrics`` (the lane's row),
                ``digest``
``worker_stall``  a dispatcher worker went silent past its liveness
                deadline (wedged, not dead) and was killed: ``label``,
                ``key``, ``slot``, ``silent_for`` (seconds)
``poisoned``    a point killed enough consecutive workers to be
                quarantined instead of retried: ``label``, ``key``,
                ``worker_kills``
``circuit_open``  the serve farm circuit breaker opened after
                consecutive dispatch failures: ``failures``,
                ``cooldown``
``circuit_close``  the breaker closed again after a successful
                half-open probe: ``probes``
``run_end``     the ``map()`` returned: ``ok``, ``failed``,
                ``cached``, ``retries``
==============  ====================================================
"""

import io
import json
import os
import time
from typing import Dict, IO, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.registry import TelemetryError

EVENTS_SCHEMA = "repro.telemetry.events/v1"

EVENT_TYPES = (
    "run_start",
    "point_start",
    "retry",
    "steal",
    "point_end",
    "checkpoint",
    "lane_batch",
    "worker_stall",
    "poisoned",
    "circuit_open",
    "circuit_close",
    "run_end",
)

#: default stream file name, next to the runner's ``runs.jsonl``
EVENTS_BASENAME = "events.jsonl"

# The Perfetto process id for the campaign plane.  The flit lifecycle
# exporter owns pid 1 (``lifecycle.TRACE_PID``); campaigns render as a
# second process so both traces can be concatenated into one view.
CAMPAIGN_TRACE_PID = 2

# ---------------------------------------------------------------------------
# sinks


class EventSink:
    """Interface: anything with ``write(record) -> None``."""

    def write(self, record: Dict[str, object]) -> None:  # pragma: no cover
        raise NotImplementedError


class EventCollector(EventSink):
    """In-memory sink.  Workers install one and ship ``records`` back
    to the parent over the result pipe."""

    def __init__(self) -> None:
        self.records: List[Dict[str, object]] = []

    def write(self, record: Dict[str, object]) -> None:
        self.records.append(record)


class EventWriter(EventSink):
    """Append-only JSONL file sink.

    Every record is written as one line and flushed immediately, so a
    crash loses at most the line being written (readers tolerate the
    torn tail).  Records passed through :meth:`write` verbatim (e.g.
    merged worker records) keep their original ``pid``/``seq``/``t``.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._fh: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")

    def write(self, record: Dict[str, object]) -> None:
        if self._fh is None:
            raise TelemetryError("EventWriter is closed: %s" % self.path)
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# Process-local sink stack.  ``emit`` writes to the top entry only, so
# a forked worker that installs its own collector shadows any writer
# (and its file descriptor) inherited from the parent.
_SINKS: List[EventSink] = []
_SEQ = [0]


def install_sink(sink: EventSink) -> EventSink:
    """Push ``sink``; subsequent :func:`emit` calls go to it.  Returns
    the sink (handy for ``install_sink(EventCollector())``)."""
    _SINKS.append(sink)
    return sink


def remove_sink(sink: EventSink) -> None:
    """Pop ``sink`` from the stack (wherever it sits); no-op if absent."""
    try:
        _SINKS.remove(sink)
    except ValueError:
        pass


def current_sink() -> Optional[EventSink]:
    return _SINKS[-1] if _SINKS else None


def install_file_sink(path: str) -> EventWriter:
    """Open ``path`` for append and install it as the current sink.
    Used by processes that stream straight to disk (the batch-smoke
    victim, ``run_campaign_replicated`` under the CLI)."""
    return install_sink(EventWriter(path))  # type: ignore[return-value]


def make_record(event: str, **fields: object) -> Dict[str, object]:
    """Build (and sequence) a schema-stamped record without writing it."""
    _SEQ[0] += 1
    record: Dict[str, object] = {
        "schema": EVENTS_SCHEMA,
        "seq": _SEQ[0],
        "pid": os.getpid(),
        "t": time.time(),
        "event": event,
    }
    record.update(fields)
    return record


def emit(event: str, **fields: object) -> Optional[Dict[str, object]]:
    """Emit one event to the current sink; no-op when none installed."""
    if not _SINKS:
        return None
    record = make_record(event, **fields)
    _SINKS[-1].write(record)
    return record


def forward(records: Iterable[Dict[str, object]]) -> int:
    """Write pre-built records (e.g. a worker's collected stream) to
    the current sink verbatim.  Returns the count written."""
    sink = current_sink()
    n = 0
    if sink is None:
        return n
    for record in records:
        sink.write(record)
        n += 1
    return n


# ---------------------------------------------------------------------------
# reading + validation


def read_events(path: str) -> List[Dict[str, object]]:
    """Parse an ``events.jsonl``; torn or corrupt lines are skipped
    (the stream is append-only, so only the final line can be torn by
    a crash -- but we tolerate damage anywhere)."""
    records: List[Dict[str, object]] = []
    if not os.path.exists(path):
        return records
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if isinstance(obj, dict):
                records.append(obj)
    return records


def validate_events(records: Sequence[Dict[str, object]]) -> None:
    """Raise :class:`TelemetryError` (with an itemized list) unless
    every record conforms to ``repro.telemetry.events/v1``.

    Checks: schema stamp, known event type, integer ``seq``/``pid``,
    numeric timestamp, and per-``pid`` sequence monotonicity (a ``seq``
    may restart at a lower value only when a new writer process reused
    a pid, which restarts numbering from 1).
    """
    errors: List[str] = []
    last_seq: Dict[int, int] = {}
    for i, rec in enumerate(records):
        where = "record %d" % i
        if not isinstance(rec, dict):
            errors.append("%s: not an object" % where)
            continue
        if rec.get("schema") != EVENTS_SCHEMA:
            errors.append(
                "%s: schema %r != %r" % (where, rec.get("schema"), EVENTS_SCHEMA)
            )
        event = rec.get("event")
        if event not in EVENT_TYPES:
            errors.append("%s: unknown event %r" % (where, event))
        seq = rec.get("seq")
        pid = rec.get("pid")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
            errors.append("%s: seq %r is not a positive int" % (where, seq))
        if not isinstance(pid, int) or isinstance(pid, bool) or pid < 1:
            errors.append("%s: pid %r is not a positive int" % (where, pid))
        if not isinstance(rec.get("t"), (int, float)) or isinstance(
            rec.get("t"), bool
        ):
            errors.append("%s: t %r is not a number" % (where, rec.get("t")))
        if isinstance(seq, int) and isinstance(pid, int):
            prev = last_seq.get(pid)
            if prev is not None and seq <= prev and seq != 1:
                errors.append(
                    "%s: pid %d seq went %d -> %d" % (where, pid, prev, seq)
                )
            last_seq[pid] = seq
    if errors:
        raise TelemetryError(
            "invalid event stream:\n  " + "\n  ".join(errors)
        )


# ---------------------------------------------------------------------------
# replay


def replay_summary(records: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Reconstruct campaign state from the stream alone.

    This is the reducer behind ``python -m repro top`` and the
    batch-smoke replay check: after a mid-run SIGKILL and resume, the
    merged stream must replay to the same per-point statuses, retry
    counts, per-lane metrics and digests as the final
    ``CampaignResult``.  Duplicate ``lane_batch`` records for one lane
    (a lane re-run after resuming from an older checkpoint) keep the
    *last* occurrence -- re-runs are bit-identical by the batching
    contract, so this is a dedup, not a choice.
    """
    points: Dict[str, Dict[str, object]] = {}
    lanes: Dict[int, Dict[str, object]] = {}
    summary: Dict[str, object] = {
        "label": None,
        "points_expected": None,
        "jobs": None,
        "started": None,
        "finished": None,
        "ok": 0,
        "failed": 0,
        "cached": 0,
        "retries": 0,
        "steals": 0,
        "checkpoints": 0,
        "stalls": 0,
        "poisoned": 0,
        "circuit_opens": 0,
        "circuit": "closed",
    }
    for rec in records:
        event = rec.get("event")
        t = rec.get("t")
        if event == "run_start":
            summary["label"] = rec.get("label")
            summary["points_expected"] = rec.get("points")
            summary["jobs"] = rec.get("jobs")
            if summary["started"] is None:
                summary["started"] = t
        elif event == "point_start":
            label = str(rec.get("label"))
            entry = points.setdefault(
                label, {"status": "running", "retries": 0, "seconds": None}
            )
            entry["status"] = "running"
            entry["started"] = t
        elif event == "retry":
            label = str(rec.get("label"))
            entry = points.setdefault(
                label, {"status": "running", "retries": 0, "seconds": None}
            )
            entry["retries"] = int(entry.get("retries", 0)) + 1
            summary["retries"] = int(summary["retries"]) + 1
        elif event == "point_end":
            label = str(rec.get("label"))
            entry = points.setdefault(
                label, {"status": "running", "retries": 0, "seconds": None}
            )
            cached = bool(rec.get("cached"))
            status = str(rec.get("status", "ok"))
            if not cached and status == "failed" and rec.get("kind") == "poisoned":
                status = "poisoned"
            entry["status"] = "cached" if cached else status
            entry["seconds"] = rec.get("seconds")
            key = "cached" if cached else ("ok" if status == "ok" else "failed")
            summary[key] = int(summary[key]) + 1
        elif event == "steal":
            summary["steals"] = int(summary["steals"]) + 1
        elif event == "worker_stall":
            summary["stalls"] = int(summary["stalls"]) + 1
        elif event == "poisoned":
            summary["poisoned"] = int(summary["poisoned"]) + 1
        elif event == "circuit_open":
            summary["circuit_opens"] = int(summary["circuit_opens"]) + 1
            summary["circuit"] = "open"
        elif event == "circuit_close":
            summary["circuit"] = "closed"
        elif event == "checkpoint":
            summary["checkpoints"] = int(summary["checkpoints"]) + 1
        elif event == "lane_batch":
            lane = int(rec.get("lane", -1))
            lanes[lane] = {
                "metrics": rec.get("metrics") or {},
                "digest": rec.get("digest"),
                "replicas": rec.get("replicas"),
                "t": t,
            }
        elif event == "run_end":
            summary["finished"] = t
    summary["points"] = points
    summary["lanes"] = {k: lanes[k] for k in sorted(lanes)}
    summary["running"] = sorted(
        label for label, e in points.items() if e["status"] == "running"
    )
    summary["digests"] = [lanes[k].get("digest") for k in sorted(lanes)]
    metric_names: List[str] = []
    for k in sorted(lanes):
        for name in (lanes[k].get("metrics") or {}):
            if name not in metric_names:
                metric_names.append(name)
    summary["lane_metrics"] = {
        name: tuple(
            (lanes[k].get("metrics") or {}).get(name) for k in sorted(lanes)
        )
        for name in metric_names
    }
    return summary


# ---------------------------------------------------------------------------
# Chrome-trace export


def events_to_chrome_trace(
    records: Sequence[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Convert a merged campaign stream to Chrome trace-event dicts.

    Timestamps are wall-clock microseconds relative to the earliest
    record (the flit exporter uses one *cycle* per microsecond; the two
    planes render as separate Perfetto processes, so the units do not
    collide).  Every point label gets its own timeline row; retries and
    checkpoints are instant markers; lane batches render on a shared
    ``lanes`` row.
    """
    if not records:
        return []
    t0 = min(
        float(r["t"]) for r in records if isinstance(r.get("t"), (int, float))
    )

    def us(t: object) -> int:
        return int(round((float(t) - t0) * 1e6))

    labels = []
    for rec in records:
        label = rec.get("label")
        if rec.get("event") in ("point_start", "retry", "point_end") and label:
            if label not in labels:
                labels.append(label)
    tid_of = {label: i + 2 for i, label in enumerate(labels)}
    RUN_TID, LANES_TID = 0, 1

    out: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": CAMPAIGN_TRACE_PID,
            "tid": 0,
            "args": {"name": "repro campaign"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": CAMPAIGN_TRACE_PID,
            "tid": RUN_TID,
            "args": {"name": "run"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": CAMPAIGN_TRACE_PID,
            "tid": LANES_TID,
            "args": {"name": "lanes"},
        },
    ]
    for label, tid in tid_of.items():
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": CAMPAIGN_TRACE_PID,
                "tid": tid,
                "args": {"name": str(label)},
            }
        )

    open_at: Dict[object, int] = {}
    run_started: Optional[int] = None
    for rec in records:
        event, t = rec.get("event"), rec.get("t")
        if not isinstance(t, (int, float)):
            continue
        ts = us(t)
        if event == "run_start":
            run_started = ts
        elif event == "run_end" and run_started is not None:
            out.append(
                {
                    "name": str(rec.get("label") or "run"),
                    "cat": "run",
                    "ph": "X",
                    "pid": CAMPAIGN_TRACE_PID,
                    "tid": RUN_TID,
                    "ts": run_started,
                    "dur": max(ts - run_started, 1),
                    "args": {
                        "ok": rec.get("ok"),
                        "failed": rec.get("failed"),
                        "cached": rec.get("cached"),
                        "retries": rec.get("retries"),
                    },
                }
            )
            run_started = None
        elif event == "point_start":
            # Keep the first attempt's start: the span covers every
            # attempt, with retry instants rendered inside it.
            open_at.setdefault(rec.get("label"), ts)
        elif event == "point_end":
            label = rec.get("label")
            tid = tid_of.get(label, RUN_TID)
            started = open_at.pop(label, None)
            if started is None:
                seconds = rec.get("seconds") or 0.0
                started = ts - int(round(float(seconds) * 1e6))
            out.append(
                {
                    "name": str(label),
                    "cat": "point",
                    "ph": "X",
                    "pid": CAMPAIGN_TRACE_PID,
                    "tid": tid,
                    "ts": started,
                    "dur": max(ts - started, 1),
                    "args": {
                        "status": rec.get("status"),
                        "cached": bool(rec.get("cached")),
                        "attempts": rec.get("attempts"),
                        "seconds": rec.get("seconds"),
                    },
                }
            )
        elif event == "retry":
            out.append(
                {
                    "name": "retry",
                    "cat": "retry",
                    "ph": "i",
                    "s": "t",
                    "pid": CAMPAIGN_TRACE_PID,
                    "tid": tid_of.get(rec.get("label"), RUN_TID),
                    "ts": ts,
                    "args": {
                        "attempt": rec.get("attempt"),
                        "kind": rec.get("kind"),
                        "message": rec.get("message"),
                    },
                }
            )
        elif event == "checkpoint":
            out.append(
                {
                    "name": "checkpoint",
                    "cat": "checkpoint",
                    "ph": "i",
                    "s": "p",
                    "pid": CAMPAIGN_TRACE_PID,
                    "tid": RUN_TID,
                    "ts": ts,
                    "args": {"cycle": rec.get("cycle"), "lane": rec.get("lane")},
                }
            )
        elif event == "lane_batch":
            metrics = rec.get("metrics") or {}
            out.append(
                {
                    "name": "lane %s" % rec.get("lane"),
                    "cat": "lane",
                    "ph": "i",
                    "s": "t",
                    "pid": CAMPAIGN_TRACE_PID,
                    "tid": LANES_TID,
                    "ts": ts,
                    "args": {
                        "lane": rec.get("lane"),
                        "cycles_run": metrics.get("cycles_run"),
                        "completed": metrics.get("completed"),
                        "digest": rec.get("digest"),
                    },
                }
            )
    return out


def write_events_chrome_trace(
    stream: IO[str],
    records: Sequence[Dict[str, object]],
    metadata: Optional[Dict[str, object]] = None,
) -> int:
    """Serialize a campaign stream as a Chrome trace JSON document
    (same envelope as ``lifecycle.write_chrome_trace``).  Returns the
    number of trace events written."""
    trace = events_to_chrome_trace(records)
    doc = {
        "traceEvents": trace,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.telemetry.events",
            "schema": EVENTS_SCHEMA,
            "time_unit": "1 us = 1 us wall clock",
        },
    }
    if metadata:
        doc["otherData"].update(metadata)
    json.dump(doc, stream, indent=1, sort_keys=True)
    return len(trace)


def events_chrome_trace_json(
    records: Sequence[Dict[str, object]],
    metadata: Optional[Dict[str, object]] = None,
) -> str:
    buf = io.StringIO()
    write_events_chrome_trace(buf, records, metadata)
    return buf.getvalue()
