"""One-call telemetry attachment for a whole NoC.

:class:`NocTelemetry` is the aggregation layer the ``python -m repro
report`` CLI uses: constructing one against a built (ideally not yet
run) :class:`~repro.network.noc.Noc`

* creates a :class:`~repro.telemetry.registry.MetricsRegistry` and
  registers callback-backed gauges over the components' existing
  instrumentation counters (zero hot-path cost -- values are read at
  export time),
* attaches a :class:`~repro.network.monitors.NetworkMonitor`
  (activity-aware queue occupancy via kernel tick probes),
* attaches a :class:`~repro.telemetry.heatmap.LinkUtilizationSeries`
  (windowed per-link utilization),
* installs a :class:`~repro.telemetry.lifecycle.LifecycleCollector` as
  the simulator's tracer (chaining any tracer already installed) and
  flips lifecycle instrumentation on every component.

After (or during) the run, :meth:`snapshot` returns the schema-stable
metrics document and :meth:`write` dumps the full artifact set --
``metrics.json``, ``metrics.prom`` (Prometheus text exposition),
``trace.json`` (Chrome trace-event format, loadable in Perfetto),
``heatmap.txt`` and ``heatmap.csv`` -- into a directory.

Telemetry is strictly opt-in: a NoC without a ``NocTelemetry`` attached
pays only dormant ``if self.lifecycle`` flag checks, measured at under
5% wall clock by ``benchmarks/bench_s2_telemetry_overhead.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.network.monitors import NetworkMonitor
from repro.sim.trace import NullTracer
from repro.telemetry.heatmap import LinkUtilizationSeries, heatmap_csv, render_heatmap
from repro.telemetry.lifecycle import (
    LifecycleCollector,
    enable_lifecycle,
    write_chrome_trace,
)
from repro.telemetry.registry import MetricsRegistry, validate_metrics

if TYPE_CHECKING:
    from repro.network.noc import Noc


class NocTelemetry:
    """All telemetry collectors for one NoC, attached in one call."""

    def __init__(
        self,
        noc: "Noc",
        window: int = 100,
        trace_limit: Optional[int] = 100_000,
        latency_bin_width: int = 10,
    ) -> None:
        self.noc = noc
        self.latency_bin_width = latency_bin_width
        self.registry = MetricsRegistry()
        self.monitor = NetworkMonitor(noc)
        self.link_series = LinkUtilizationSeries(noc, window=window, registry=self.registry)
        inner = noc.sim.tracer
        self.collector = LifecycleCollector(
            inner=None if isinstance(inner, NullTracer) else inner,
            limit=trace_limit,
        )
        noc.sim.tracer = self.collector
        self.components_instrumented = enable_lifecycle(noc)
        self._register_gauges()

    def _register_gauges(self) -> None:
        reg, noc = self.registry, self.noc
        sim = noc.sim
        reg.gauge("sim.cycles", lambda: sim.cycle, help="cycles simulated")
        reg.gauge(
            "sim.ticks_executed", lambda: sim.ticks_executed,
            help="component ticks actually run",
        )
        reg.gauge(
            "sim.ticks_skipped", lambda: sim.ticks_skipped,
            help="component ticks elided by the fast-path scheduler",
        )
        reg.gauge(
            "noc.flits_carried", noc.total_flits_carried,
            help="flit-hops across all links",
        )
        reg.gauge(
            "noc.errors_injected", noc.total_errors_injected,
            help="link errors injected",
        )
        reg.gauge(
            "noc.retransmissions", noc.total_retransmissions,
            help="go-back-N retransmissions",
        )
        reg.gauge(
            "noc.transactions_issued", noc.total_issued,
            help="OCP transactions issued by all masters",
        )
        reg.gauge(
            "noc.transactions_completed", noc.total_completed,
            help="OCP transactions completed by all masters",
        )
        reg.gauge(
            "noc.flits_dropped", noc.total_flits_dropped,
            help="flits dropped by dead-link fault windows",
        )
        reg.gauge(
            "noc.transactions_failed", noc.total_transactions_failed,
            help="transactions reported lost (SResp.ERR) after timeout",
        )
        reg.gauge(
            "noc.transactions_retried", noc.total_transactions_retried,
            help="transaction resubmissions after an NI timeout",
        )
        for name, sw in noc.switches.items():
            reg.gauge(
                f"switch.{name}.flits_routed", lambda s=sw: s.flits_routed,
                help="flits committed through the crossbar",
            )
            reg.gauge(
                f"switch.{name}.allocation_conflicts",
                lambda s=sw: s.allocation_conflicts,
                help="cycles a requested output was taken",
            )
        for name, ni in noc.initiator_nis.items():
            reg.gauge(
                f"ni.{name}.transactions_issued",
                lambda n=ni: n.transactions_issued,
                help="transactions packetized by this initiator NI",
            )
            reg.gauge(
                f"ni.{name}.responses_delivered",
                lambda n=ni: n.responses_delivered,
                help="responses reassembled and handed to the core",
            )
            reg.gauge(
                f"ni.{name}.transactions_retried",
                lambda n=ni: n.transactions_retried,
                help="timed-out transactions this NI resubmitted",
            )
            reg.gauge(
                f"ni.{name}.transactions_failed",
                lambda n=ni: n.transactions_failed,
                help="transactions this NI reported lost (SResp.ERR)",
            )
        for name, ni in noc.target_nis.items():
            reg.gauge(
                f"ni.{name}.requests_served", lambda n=ni: n.requests_served,
                help="requests reassembled and served by this target NI",
            )
        for link in noc.links:
            reg.gauge(
                f"link.{link.name}.flits_carried",
                lambda l=link: l.flits_carried,
                help="flits carried by this link",
            )
        # Fault injectors attach themselves to the NoC; gauges cover any
        # that exist when telemetry is wired up (create injectors first).
        for inj in getattr(noc, "fault_injectors", []):
            reg.gauge(
                f"faults.{inj.name}.windows_opened",
                lambda i=inj: i.windows_opened,
                help="fault windows opened so far",
            )
            reg.gauge(
                f"faults.{inj.name}.windows_closed",
                lambda i=inj: i.windows_closed,
                help="fault windows closed so far",
            )
        col = self.collector
        reg.gauge(
            "telemetry.trace_events", lambda: len(col.events),
            help="lifecycle events retained",
        )
        reg.gauge(
            "telemetry.trace_dropped", lambda: col.dropped,
            help="lifecycle events dropped past the retention limit",
        )

    # -- export ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The schema-stable metrics document for the run so far."""
        noc = self.noc
        self.monitor.flush()
        self.link_series.finalize()
        net = self.registry.histogram(
            "latency.network", bin_width=self.latency_bin_width,
            help="packet latency, injection to reassembly (cycles)",
        )
        net.clear()
        for s in noc.network_latency().samples:
            net.observe(s)
        txn = self.registry.histogram(
            "latency.transaction", bin_width=self.latency_bin_width,
            help="end-to-end OCP transaction latency (cycles)",
        )
        txn.clear()
        for s in noc.aggregate_latency().samples:
            txn.observe(s)
        self.registry.counter(
            "monitor.cycles_observed", help="cycles accounted by the queue monitor"
        ).value = self.monitor.cycles_observed
        for qname, qs in self.monitor.queue_stats.items():
            g = self.registry.gauge(
                f"queue.{qname}.mean", help="mean output-queue occupancy (flits)"
            )
            g.set(qs.mean)
            g = self.registry.gauge(
                f"queue.{qname}.peak", help="peak output-queue occupancy (flits)"
            )
            g.set(qs.peak)
        return self.registry.to_dict(sim_cycles=noc.sim.cycle)

    def write(self, out_dir) -> Dict[str, Path]:
        """Write metrics.json / trace.json / heatmap.{txt,csv} to a dir.

        The metrics document is validated against the schema before it
        is written; returns the path of every artifact produced.
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        doc = self.snapshot()
        validate_metrics(doc)
        paths = {
            "metrics": out / "metrics.json",
            "metrics_prom": out / "metrics.prom",
            "trace": out / "trace.json",
            "heatmap_txt": out / "heatmap.txt",
            "heatmap_csv": out / "heatmap.csv",
        }
        paths["metrics"].write_text(json.dumps(doc, indent=2) + "\n")
        paths["metrics_prom"].write_text(self.registry.to_prometheus())
        with paths["trace"].open("w") as fh:
            write_chrome_trace(
                fh,
                self.collector.events,
                metadata={
                    "topology": self.noc.topology.name,
                    "cycles": self.noc.sim.cycle,
                    "trace_dropped": self.collector.dropped,
                },
            )
        paths["heatmap_txt"].write_text(render_heatmap(self.link_series) + "\n")
        paths["heatmap_csv"].write_text(heatmap_csv(self.link_series))
        return paths
