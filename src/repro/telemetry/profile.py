"""A sampling profiler for the compiled tick kernel.

The generated program (:mod:`repro.sim.compiled`) dispatches every
awake component through one lane thunk per cycle.  That makes the
thunk table the natural profiling seam: :class:`KernelProfiler` wraps
each thunk with a **counter** (every call) and a **wall-clock sample**
(every ``sample_every``-th call, extrapolated), attributing time to
the component and to its codegen lane (``switch`` / ``ni-initiator`` /
``ni-target`` / ``link`` / ``master`` / ``always`` / ``generic``).

Attach through the simulator::

    prof = KernelProfiler()
    noc.sim.set_profiler(prof)
    noc.sim.compile()           # re-elaborates with wrappers installed
    noc.run(20_000)
    print(prof.render(top=10))  # top-N table
    prof.write("profile.json")  # schema repro.telemetry.profile/v1

Design constraints, in order:

* **Disabled must be free.**  With no profiler attached the generated
  source contains a single build-time ``if _PROF is None`` branch --
  no wrappers exist, no per-cycle cost (the <=1% acceptance bound is
  structural, not statistical).
* **Enabled must be cheap.**  The wrapper is one list-index increment
  and a modulo; ``perf_counter`` fires only on sampled calls.  Cycle
  *results* are never perturbed -- wrapping changes when the clock is
  read, not what the thunk does, so digests stay bit-identical.
* **Replica attribution.**  :class:`~repro.sim.batch.BatchSimulator`
  reports per-lane wall time through :meth:`record_replica`, so a
  batched campaign's profile separates codegen-lane cost from
  replica-lane cost.
"""

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.telemetry.registry import TelemetryError

PROFILE_SCHEMA = "repro.telemetry.profile/v1"


class KernelProfiler:
    """Per-lane counters + sampled timing for compiled kernels.

    One profiler may serve several compiles (e.g. the per-replica
    recompiles of a batch); counts accumulate until :meth:`clear`.
    """

    def __init__(self, sample_every: int = 64) -> None:
        if sample_every < 1:
            raise TelemetryError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = sample_every
        #: component name -> [calls, sampled_calls, sampled_seconds]
        self._cells: Dict[str, List[float]] = {}
        #: component name -> codegen lane, captured at install time
        self.lane_of: Dict[str, str] = {}
        #: (replica_lane, cycles, seconds) tuples from BatchSimulator
        self.replica_batches: List[Tuple[int, int, float]] = []
        self.installs = 0

    # -- the compiled-kernel hook -----------------------------------------
    def _install(
        self, sim: Any, TH: Dict[Any, Any], lane_map: Dict[str, str]
    ) -> Dict[Any, Any]:
        """Wrap every thunk in ``TH`` in place (called from the
        generated ``_build`` via the ``_PROF`` hook)."""
        self.lane_of.update(lane_map)
        self.installs += 1
        pc = time.perf_counter
        every = self.sample_every
        for comp, thunk in list(TH.items()):
            cell = self._cells.setdefault(comp.name, [0, 0, 0.0])

            def wrapped(cyc, nxt, _t=thunk, _c=cell, _pc=pc, _n=every):
                calls = _c[0] + 1
                _c[0] = calls
                if calls % _n:
                    _t(cyc, nxt)
                else:
                    t0 = _pc()
                    _t(cyc, nxt)
                    _c[1] += 1
                    _c[2] += _pc() - t0

            TH[comp] = wrapped
        return TH

    # -- replica attribution ----------------------------------------------
    def record_replica(self, lane: int, cycles: int, seconds: float) -> None:
        """One finished replica lane of a :class:`BatchSimulator` run."""
        self.replica_batches.append((int(lane), int(cycles), float(seconds)))

    # -- accounting --------------------------------------------------------
    def clear(self) -> None:
        self._cells.clear()
        self.replica_batches.clear()

    @property
    def total_calls(self) -> int:
        return int(sum(c[0] for c in self._cells.values()))

    def report(self) -> Dict[str, Any]:
        """The full ``repro.telemetry.profile/v1`` document."""
        import repro

        components: List[Dict[str, Any]] = []
        for name in sorted(self._cells):
            calls, sampled, seconds = self._cells[name]
            est = (seconds * calls / sampled) if sampled else 0.0
            components.append(
                {
                    "name": name,
                    "lane": self.lane_of.get(name, "generic"),
                    "calls": int(calls),
                    "sampled": int(sampled),
                    "sampled_seconds": seconds,
                    "est_seconds": est,
                }
            )
        components.sort(key=lambda c: (-c["est_seconds"], c["name"]))
        total_est = sum(c["est_seconds"] for c in components)

        lanes: Dict[str, Dict[str, Any]] = {}
        for c in components:
            lane = lanes.setdefault(
                c["lane"],
                {"components": 0, "calls": 0, "est_seconds": 0.0, "share": 0.0},
            )
            lane["components"] += 1
            lane["calls"] += c["calls"]
            lane["est_seconds"] += c["est_seconds"]
        for lane in lanes.values():
            lane["share"] = (
                lane["est_seconds"] / total_est if total_est > 0 else 0.0
            )

        replicas = None
        if self.replica_batches:
            seconds = [s for _, _, s in self.replica_batches]
            replicas = {
                "lanes": len(self.replica_batches),
                "cycles": int(sum(c for _, c, _ in self.replica_batches)),
                "total_seconds": sum(seconds),
                "mean_seconds_per_lane": sum(seconds) / len(seconds),
            }

        return {
            "schema": PROFILE_SCHEMA,
            "version": repro.__version__,
            "sample_every": self.sample_every,
            "installs": self.installs,
            "total_est_seconds": total_est,
            "lanes": {k: lanes[k] for k in sorted(lanes)},
            "components": components,
            "replicas": replicas,
        }

    def render(self, top: int = 10) -> str:
        """Human-readable top-N table over :meth:`report`."""
        doc = self.report()
        lines = [
            f"compiled-kernel profile: sample_every={doc['sample_every']} "
            f"est_total={doc['total_est_seconds']:.4f}s"
        ]
        lines.append(f"  {'lane':<14} {'comps':>6} {'calls':>12} {'est s':>9} {'share':>7}")
        for lane, row in doc["lanes"].items():
            lines.append(
                f"  {lane:<14} {row['components']:>6} {row['calls']:>12} "
                f"{row['est_seconds']:>9.4f} {row['share']:>6.1%}"
            )
        lines.append(f"  top {min(top, len(doc['components']))} components:")
        lines.append(f"  {'component':<28} {'lane':<14} {'calls':>12} {'est s':>9}")
        for c in doc["components"][:top]:
            lines.append(
                f"  {c['name']:<28} {c['lane']:<14} {c['calls']:>12} "
                f"{c['est_seconds']:>9.4f}"
            )
        if doc["replicas"]:
            r = doc["replicas"]
            lines.append(
                f"  replica batches: {r['lanes']} lanes, "
                f"{r['cycles']} cycles, {r['total_seconds']:.3f}s total "
                f"({r['mean_seconds_per_lane']:.4f}s/lane)"
            )
        return "\n".join(lines)

    def write(self, path: str) -> str:
        """Serialize :meth:`report` to ``path`` (``profile.json``)."""
        parent = os.path.dirname(os.fspath(path))
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.report(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def validate_profile(doc: Any) -> None:
    """Raise :class:`TelemetryError` unless ``doc`` is a structurally
    valid ``repro.telemetry.profile/v1`` document."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        raise TelemetryError("profile document must be an object")
    if doc.get("schema") != PROFILE_SCHEMA:
        errors.append(f"schema must be {PROFILE_SCHEMA!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("sample_every"), int) or doc.get("sample_every", 0) < 1:
        errors.append("sample_every must be an int >= 1")
    if not isinstance(doc.get("lanes"), dict):
        errors.append("lanes must be an object")
    if not isinstance(doc.get("components"), list):
        errors.append("components must be a list")
    else:
        for c in doc["components"]:
            if not (
                isinstance(c, dict)
                and isinstance(c.get("name"), str)
                and isinstance(c.get("calls"), int)
                and c["calls"] >= 0
                and isinstance(c.get("est_seconds"), (int, float))
            ):
                errors.append(f"malformed component entry: {c!r}")
                break
    replicas = doc.get("replicas")
    if replicas is not None and not (
        isinstance(replicas, dict)
        and isinstance(replicas.get("lanes"), int)
        and isinstance(replicas.get("total_seconds"), (int, float))
    ):
        errors.append("replicas must be null or carry lanes/total_seconds")
    if errors:
        raise TelemetryError(
            "profile document violates the schema:\n  " + "\n  ".join(errors)
        )
