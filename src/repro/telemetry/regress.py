"""Perf-regression tracking over the committed BENCH_*.json artifacts.

``benchmarks/results/BENCH_s{1,3,4}.json`` / ``BENCH_a8.json`` record
what the measurement stack produced, but nothing watched their *trend*
-- a 2x compiled-kernel slowdown would land silently as a new number.
This module tracks a small set of named **ratios** (higher is better)
extracted from those documents and diffs them against the committed
trajectory file ``BENCH_TRAJECTORY.json`` at the repo root:

* :func:`collect_metrics` pulls the tracked values out of a results
  directory (missing files simply contribute nothing, so a partial
  bench run still diffs what it produced);
* :func:`diff_metrics` compares against the trajectory's last entry
  and flags any tracked metric whose relative drop exceeds the
  threshold (default 20%);
* ``python -m repro bench-diff`` is the CLI (wired into ``make
  bench-smoke``); ``--update`` appends the current values as a new
  trajectory entry.

The trajectory file is versioned (``repro.telemetry.regress/v1``) and
append-only: entries are kept in order, so the committed file is a
perf history the next PR can extend.
"""

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.telemetry.registry import TelemetryError

REGRESS_SCHEMA = "repro.telemetry.regress/v1"

TRAJECTORY_BASENAME = "BENCH_TRAJECTORY.json"

#: Default relative drop that fails the diff (0.20 = 20%).
DEFAULT_THRESHOLD = 0.20


@dataclass(frozen=True)
class TrackedMetric:
    """One named higher-is-better value extracted from a BENCH doc.

    ``path`` walks into the JSON; ``ratio_to`` (optional) names a
    second path whose value divides the first -- e.g. bench_s4's
    per-replica speedup is scalar seconds over batch seconds.
    """

    name: str
    source: str  # BENCH file basename, e.g. "BENCH_s1.json"
    path: Tuple[str, ...]
    ratio_to: Optional[Tuple[str, ...]] = None
    help: str = ""


TRACKED: Tuple[TrackedMetric, ...] = (
    TrackedMetric(
        "s1_compiled_over_fast_standard", "BENCH_s1.json",
        ("points", "standard", "speedup", "compiled_over_fast"),
        help="compiled-kernel speedup over the fast path, standard load",
    ),
    TrackedMetric(
        "s1_compiled_over_fast_sparse", "BENCH_s1.json",
        ("points", "sparse", "speedup", "compiled_over_fast"),
        help="compiled-kernel speedup over the fast path, sparse load",
    ),
    TrackedMetric(
        "s1_compiled_over_fast_idle", "BENCH_s1.json",
        ("points", "idle", "speedup", "compiled_over_fast"),
        help="compiled-kernel speedup over the fast path, idle-heavy load",
    ),
    TrackedMetric(
        "s4_per_replica_speedup", "BENCH_s4.json",
        ("scalar", "seconds_per_run"),
        ratio_to=("batch", "seconds_per_lane"),
        help="batched Monte-Carlo speedup per replica lane",
    ),
    TrackedMetric(
        "s4_ticks_skipped_fraction", "BENCH_s4.json",
        ("batch", "ticks_skipped_fraction_last_lane"),
        help="idle-span skipping effectiveness on the batch workload",
    ),
)


@dataclass(frozen=True)
class Regression:
    """One tracked metric that dropped past the threshold."""

    name: str
    baseline: float
    current: float
    change: float  # signed relative change; regressions are negative

    def describe(self) -> str:
        return (
            f"{self.name}: {self.baseline:.4g} -> {self.current:.4g} "
            f"({self.change:+.1%})"
        )


def _walk(doc: Any, path: Tuple[str, ...]) -> Optional[float]:
    node = doc
    for part in path:
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return float(node) if isinstance(node, (int, float)) else None


def collect_metrics(
    results_dir: str, tracked: Sequence[TrackedMetric] = TRACKED
) -> Dict[str, float]:
    """Extract every tracked value present under ``results_dir``."""
    out: Dict[str, float] = {}
    docs: Dict[str, Any] = {}
    for metric in tracked:
        if metric.source not in docs:
            path = os.path.join(results_dir, metric.source)
            try:
                with open(path, encoding="utf-8") as fh:
                    docs[metric.source] = json.load(fh)
            except (OSError, ValueError):
                docs[metric.source] = None
        doc = docs[metric.source]
        if doc is None:
            continue
        value = _walk(doc, metric.path)
        if value is None:
            continue
        if metric.ratio_to is not None:
            denom = _walk(doc, metric.ratio_to)
            if denom is None or denom == 0:
                continue
            value = value / denom
        out[metric.name] = value
    return out


# ---------------------------------------------------------------------------
# trajectory file


def load_trajectory(path: str) -> Dict[str, Any]:
    """Load (and schema-check) a trajectory document."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or doc.get("schema") != REGRESS_SCHEMA:
        raise TelemetryError(
            f"{path}: not a {REGRESS_SCHEMA!r} trajectory document"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list) or not all(
        isinstance(e, dict) and isinstance(e.get("metrics"), dict)
        for e in entries
    ):
        raise TelemetryError(f"{path}: entries must be a list of metric maps")
    return doc


def new_trajectory() -> Dict[str, Any]:
    return {"schema": REGRESS_SCHEMA, "entries": []}


def append_entry(
    doc: Dict[str, Any], metrics: Dict[str, float], note: str = ""
) -> Dict[str, Any]:
    entry: Dict[str, Any] = {"metrics": dict(metrics)}
    if note:
        entry["note"] = note
    doc["entries"].append(entry)
    return doc


def save_trajectory(path: str, doc: Dict[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def baseline_metrics(doc: Dict[str, Any]) -> Dict[str, float]:
    """The most recent entry's metric map (empty for a new file).

    Only finite numbers survive: a hand-edited or partially-written
    entry may hold nulls, strings or nested maps where a ratio should
    be, and a missing tracked ratio must degrade to "not comparable",
    never crash the diff."""
    entries = doc.get("entries") or []
    if not entries:
        return {}
    metrics = entries[-1].get("metrics") or {}
    out: Dict[str, float] = {}
    for k, v in metrics.items():
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            continue
        value = float(v)
        if value == value and value not in (float("inf"), float("-inf")):
            out[k] = value
    return out


# ---------------------------------------------------------------------------
# diffing


def diff_metrics(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Regression]:
    """Tracked metrics whose relative drop exceeds ``threshold``.

    All tracked metrics are higher-is-better; a metric absent on either
    side is not comparable and never flags (a partial bench run must
    not fail on what it did not measure).
    """
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    regressions: List[Regression] = []
    for name in sorted(baseline):
        if name not in current:
            continue
        base, cur = baseline[name], current[name]
        if base <= 0:
            continue
        change = (cur - base) / base
        if change < -threshold:
            regressions.append(Regression(name, base, cur, change))
    return regressions


def render_diff(
    baseline: Dict[str, float],
    current: Dict[str, float],
    regressions: Sequence[Regression],
    threshold: float,
) -> str:
    """The bench-diff report table."""
    flagged = {r.name for r in regressions}
    lines = [
        f"bench-diff: threshold {threshold:.0%} relative drop "
        f"({len(current)} tracked metrics, {len(baseline)} baselined)"
    ]
    lines.append(f"  {'metric':<34} {'baseline':>10} {'current':>10} {'change':>8}")
    for name in sorted(set(baseline) | set(current)):
        base, cur = baseline.get(name), current.get(name)
        if base is None or cur is None:
            mark = "  (not comparable)"
            bs = f"{base:.4g}" if base is not None else "-"
            cs = f"{cur:.4g}" if cur is not None else "-"
            lines.append(f"  {name:<34} {bs:>10} {cs:>10} {'-':>8}{mark}")
            continue
        change = (cur - base) / base if base > 0 else 0.0
        mark = "  REGRESSION" if name in flagged else ""
        lines.append(
            f"  {name:<34} {base:>10.4g} {cur:>10.4g} {change:>+8.1%}{mark}"
        )
    return "\n".join(lines)


def bench_diff(
    results_dir: str,
    trajectory_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    update: bool = False,
    note: str = "",
) -> int:
    """The ``python -m repro bench-diff`` engine.  Returns the exit
    code: 0 clean, 1 on any regression, 2 when there is nothing to
    compare (no trajectory and no ``--update``)."""
    current = collect_metrics(results_dir)
    if not os.path.exists(trajectory_path):
        if not update:
            print(
                f"bench-diff: no trajectory at {trajectory_path}; run with "
                f"--update to record the first entry"
            )
            return 2
        doc = new_trajectory()
        append_entry(doc, current, note=note)
        save_trajectory(trajectory_path, doc)
        print(
            f"bench-diff: recorded first trajectory entry "
            f"({len(current)} metrics) at {trajectory_path}"
        )
        return 0
    try:
        doc = load_trajectory(trajectory_path)
    except (TelemetryError, ValueError, OSError) as exc:
        # An unreadable/foreign trajectory is "no baseline", not a
        # crash: the diff cannot gate on it, so warn and pass.
        print(f"bench-diff: WARNING: unusable trajectory: {exc}")
        if update:
            doc = new_trajectory()
            append_entry(doc, current, note=note)
            save_trajectory(trajectory_path, doc)
            print(
                f"bench-diff: restarted trajectory "
                f"({len(current)} metrics) at {trajectory_path}"
            )
        else:
            print("bench-diff: OK -- nothing to compare against")
        return 0
    baseline = baseline_metrics(doc)
    if not baseline:
        print(
            f"bench-diff: WARNING: no usable baseline metrics in the "
            f"last entry of {trajectory_path}; nothing to compare"
        )
    regressions = diff_metrics(baseline, current, threshold)
    print(render_diff(baseline, current, regressions, threshold))
    if regressions:
        print("bench-diff: FAIL --")
        for r in regressions:
            print(f"  {r.describe()}")
        return 1
    if update:
        append_entry(doc, current, note=note)
        save_trajectory(trajectory_path, doc)
        print(
            f"bench-diff: OK -- appended entry #{len(doc['entries'])} "
            f"to {trajectory_path}"
        )
    else:
        print("bench-diff: OK -- no tracked metric regressed")
    return 0
