"""Unified telemetry: metrics registry, lifecycle tracing, heatmaps.

See ``docs/OBSERVABILITY.md`` for the metrics schema, the trace event
reference, and the Perfetto loading how-to.  The three layers are usable
independently; :class:`~repro.telemetry.noc.NocTelemetry` wires all of
them to a NoC in one call (what ``python -m repro report`` does).

The fleet layer rides on top: :mod:`repro.telemetry.events` (the
cross-process ``events.jsonl`` stream), :mod:`repro.telemetry.profile`
(the compiled-kernel sampling profiler),
:mod:`repro.telemetry.regress` (BENCH trajectory diffing behind
``python -m repro bench-diff``) and :mod:`repro.telemetry.top` (the
``python -m repro top`` dashboard).
"""

from repro.telemetry.events import (
    EVENT_TYPES,
    EVENTS_SCHEMA,
    EventCollector,
    EventWriter,
    emit,
    events_to_chrome_trace,
    install_file_sink,
    install_sink,
    read_events,
    remove_sink,
    replay_summary,
    validate_events,
    write_events_chrome_trace,
)
from repro.telemetry.heatmap import (
    LinkUtilizationSeries,
    heatmap_csv,
    render_heatmap,
)
from repro.telemetry.lifecycle import (
    LIFECYCLE_EVENTS,
    LifecycleCollector,
    chrome_trace_events,
    enable_lifecycle,
    write_chrome_trace,
)
from repro.telemetry.noc import NocTelemetry
from repro.telemetry.profile import (
    PROFILE_SCHEMA,
    KernelProfiler,
    validate_profile,
)
from repro.telemetry.registry import (
    SCHEMA,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    SeriesMetric,
    TelemetryError,
    validate_metrics,
)
from repro.telemetry.regress import (
    DEFAULT_THRESHOLD,
    REGRESS_SCHEMA,
    TRACKED,
    Regression,
    TrackedMetric,
    bench_diff,
    collect_metrics,
    diff_metrics,
)

__all__ = [
    "SCHEMA",
    "EVENTS_SCHEMA",
    "EVENT_TYPES",
    "PROFILE_SCHEMA",
    "REGRESS_SCHEMA",
    "DEFAULT_THRESHOLD",
    "LIFECYCLE_EVENTS",
    "TRACKED",
    "CounterMetric",
    "EventCollector",
    "EventWriter",
    "GaugeMetric",
    "HistogramMetric",
    "KernelProfiler",
    "LifecycleCollector",
    "LinkUtilizationSeries",
    "MetricsRegistry",
    "NocTelemetry",
    "Regression",
    "SeriesMetric",
    "TelemetryError",
    "TrackedMetric",
    "bench_diff",
    "chrome_trace_events",
    "collect_metrics",
    "diff_metrics",
    "emit",
    "enable_lifecycle",
    "events_to_chrome_trace",
    "heatmap_csv",
    "install_file_sink",
    "install_sink",
    "read_events",
    "remove_sink",
    "render_heatmap",
    "replay_summary",
    "validate_events",
    "validate_metrics",
    "validate_profile",
    "write_chrome_trace",
    "write_events_chrome_trace",
]
