"""Unified telemetry: metrics registry, lifecycle tracing, heatmaps.

See ``docs/OBSERVABILITY.md`` for the metrics schema, the trace event
reference, and the Perfetto loading how-to.  The three layers are usable
independently; :class:`~repro.telemetry.noc.NocTelemetry` wires all of
them to a NoC in one call (what ``python -m repro report`` does).
"""

from repro.telemetry.heatmap import (
    LinkUtilizationSeries,
    heatmap_csv,
    render_heatmap,
)
from repro.telemetry.lifecycle import (
    LIFECYCLE_EVENTS,
    LifecycleCollector,
    chrome_trace_events,
    enable_lifecycle,
    write_chrome_trace,
)
from repro.telemetry.noc import NocTelemetry
from repro.telemetry.registry import (
    SCHEMA,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    SeriesMetric,
    TelemetryError,
    validate_metrics,
)

__all__ = [
    "SCHEMA",
    "LIFECYCLE_EVENTS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "LifecycleCollector",
    "LinkUtilizationSeries",
    "MetricsRegistry",
    "NocTelemetry",
    "SeriesMetric",
    "TelemetryError",
    "chrome_trace_events",
    "enable_lifecycle",
    "heatmap_csv",
    "render_heatmap",
    "validate_metrics",
    "write_chrome_trace",
]
