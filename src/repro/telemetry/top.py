"""``python -m repro top`` -- a live terminal view of a running campaign.

Tails the structured event stream (``events.jsonl``, see
:mod:`repro.telemetry.events`) that :class:`ExperimentRunner` and the
replicated campaign harness write next to the run cache, falling back
to the ``runs.jsonl`` journal for runs that predate the stream.  Each
frame shows per-point state (running / ok / failed / cached), retry and
checkpoint totals, the cache-hit rate, an ETA extrapolated from the
mean finished-point duration, and replica-lane throughput from
``lane_batch`` events.

``--once`` renders a single frame and exits (the ``make top-smoke``
CI path); ``--prom FILE`` additionally writes a Prometheus-style text
exposition built from a :class:`MetricsRegistry`, so the same numbers
are scrapeable.
"""

import os
import time
from typing import Any, Dict, List, Optional

from repro.telemetry import events as _events
from repro.telemetry.registry import MetricsRegistry


def load_summary(run_dir: str) -> Dict[str, Any]:
    """Replay the run directory's event stream into a summary dict.

    ``events.jsonl`` is authoritative; when it is absent, ``runs.jsonl``
    journal entries are adapted into synthetic point states so old runs
    still render.
    """
    events_path = os.path.join(run_dir, _events.EVENTS_BASENAME)
    records = _events.read_events(events_path)
    summary = _events.replay_summary(records)
    summary["source"] = events_path if records else None
    if not records:
        journal = os.path.join(run_dir, "runs.jsonl")
        points: Dict[str, Dict[str, Any]] = {}
        for rec in _events.read_events(journal):  # same torn-line tolerance
            if not isinstance(rec, dict) or "status" not in rec:
                continue
            label = str(rec.get("label", rec.get("key", "?")))
            status = "ok" if rec.get("status") == "ok" else "failed"
            points[label] = {
                "status": status,
                "retries": max(int(rec.get("attempts", 1)) - 1, 0),
                "seconds": rec.get("seconds"),
            }
            summary[status] = int(summary.get(status, 0)) + 1
        summary["points"] = points
        summary["retries"] = sum(p["retries"] for p in points.values())
        summary["source"] = journal if points else None
    return summary


def eta_seconds(summary: Dict[str, Any], now: Optional[float] = None) -> Optional[float]:
    """Remaining-work estimate from mean finished-point duration."""
    points: Dict[str, Dict[str, Any]] = summary.get("points", {})
    expected = summary.get("points_expected")
    finished = [
        float(p["seconds"])
        for p in points.values()
        if p.get("seconds") is not None and p["status"] in ("ok", "failed")
    ]
    done = sum(
        1 for p in points.values() if p["status"] in ("ok", "failed", "cached")
    )
    if not isinstance(expected, int) or expected <= done:
        return None
    if not finished:
        return None
    mean = sum(finished) / len(finished)
    return mean * (expected - done)


def lane_throughput(summary: Dict[str, Any]) -> Optional[float]:
    """Aggregate replica-lane cycles per second from lane_batch events."""
    lanes: Dict[int, Dict[str, Any]] = summary.get("lanes", {})
    if len(lanes) < 2:
        return None
    stamps = [l["t"] for l in lanes.values() if isinstance(l.get("t"), (int, float))]
    if len(stamps) < 2 or max(stamps) <= min(stamps):
        return None
    cycles = 0.0
    for lane in lanes.values():
        metrics = lane.get("metrics") or {}
        cycles += float(metrics.get("cycles_run") or 0.0)
    span = max(stamps) - min(stamps)
    return cycles / span if span > 0 else None


def summary_registry(summary: Dict[str, Any]) -> MetricsRegistry:
    """The summary as a :class:`MetricsRegistry` (for ``metrics.prom``)."""
    reg = MetricsRegistry()
    reg.counter("top.points_ok").inc(int(summary.get("ok", 0)))
    reg.counter("top.points_failed").inc(int(summary.get("failed", 0)))
    reg.counter("top.points_cached").inc(int(summary.get("cached", 0)))
    reg.counter("top.retries").inc(int(summary.get("retries", 0)))
    reg.counter("top.checkpoints").inc(int(summary.get("checkpoints", 0)))
    reg.counter("top.worker_stalls").inc(int(summary.get("stalls", 0)))
    reg.counter("top.points_poisoned").inc(int(summary.get("poisoned", 0)))
    reg.gauge("top.circuit_open").set(
        1 if summary.get("circuit") == "open" else 0
    )
    reg.gauge("top.points_running").set(len(summary.get("running", [])))
    expected = summary.get("points_expected")
    reg.gauge("top.points_expected").set(
        int(expected) if isinstance(expected, int) else 0
    )
    reg.gauge("top.lanes_done").set(len(summary.get("lanes", {})))
    eta = eta_seconds(summary)
    if eta is not None:
        reg.gauge("top.eta_seconds").set(eta)
    rate = lane_throughput(summary)
    if rate is not None:
        reg.gauge("top.lane_cycles_per_second").set(rate)
    return reg


def write_prometheus(path: str, summary: Dict[str, Any]) -> str:
    """Write the Prometheus text exposition for ``summary``."""
    parent = os.path.dirname(os.fspath(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(summary_registry(summary).to_prometheus())
    return path


def render_dashboard(
    summary: Dict[str, Any], run_dir: str = "", max_rows: int = 20
) -> str:
    """One dashboard frame as text."""
    points: Dict[str, Dict[str, Any]] = summary.get("points", {})
    expected = summary.get("points_expected")
    total = expected if isinstance(expected, int) else len(points)
    ok = int(summary.get("ok", 0))
    failed = int(summary.get("failed", 0))
    cached = int(summary.get("cached", 0))
    running = summary.get("running", [])
    done = ok + failed + cached
    pending = max(total - done - len(running), 0)
    served = ok + cached
    hit_rate = cached / served if served else 0.0

    lines = [f"repro top -- {run_dir or summary.get('label') or 'run'}"]
    state = "finished" if summary.get("finished") else (
        "running" if summary.get("started") else "no run data"
    )
    lines.append(
        f"points: {total} total | {ok} ok, {failed} failed, {cached} cached, "
        f"{len(running)} running, {pending} pending [{state}]"
    )
    lines.append(
        f"retries: {summary.get('retries', 0)}   "
        f"checkpoints: {summary.get('checkpoints', 0)}   "
        f"cache-hit rate: {hit_rate:.0%}"
    )
    stalls = int(summary.get("stalls", 0) or 0)
    poisoned = int(summary.get("poisoned", 0) or 0)
    circuit = summary.get("circuit", "closed")
    if stalls or poisoned or circuit != "closed":
        lines.append(
            f"supervision: {stalls} worker stall(s), {poisoned} poisoned "
            f"point(s), farm circuit {circuit}"
        )
    eta = eta_seconds(summary)
    if eta is not None:
        lines.append(f"ETA: ~{eta:.1f}s for {total - done} outstanding point(s)")
    lanes = summary.get("lanes", {})
    if lanes:
        rate = lane_throughput(summary)
        rate_txt = f", {rate:,.0f} cycles/s" if rate else ""
        lines.append(f"lanes: {len(lanes)} finished{rate_txt}")
    if points:
        lines.append(f"  {'point':<32} {'state':<8} {'seconds':>8} {'retries':>8}")
        shown = 0
        for label in sorted(points):
            if shown >= max_rows:
                lines.append(f"  ... {len(points) - shown} more")
                break
            p = points[label]
            secs = p.get("seconds")
            secs_txt = f"{float(secs):8.3f}" if secs is not None else "       -"
            lines.append(
                f"  {label:<32} {p['status']:<8} {secs_txt} {p.get('retries', 0):>8}"
            )
            shown += 1
    if summary.get("source"):
        lines.append(f"source: {summary['source']}")
    return "\n".join(lines)


def top_main(
    run_dir: str,
    once: bool = False,
    interval: float = 1.0,
    prom: Optional[str] = None,
) -> int:
    """The ``python -m repro top`` entry point."""
    if not os.path.isdir(run_dir):
        print(f"top: {run_dir} is not a directory")
        return 2
    while True:
        summary = load_summary(run_dir)
        frame = render_dashboard(summary, run_dir)
        if prom:
            write_prometheus(prom, summary)
        if once:
            print(frame)
            return 0
        # Clear + home, then the frame: a classic full-repaint TUI.
        print("\x1b[2J\x1b[H" + frame, flush=True)
        if summary.get("finished"):
            return 0
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return 0
