"""Per-link utilization time series and heatmap export.

Which link saturates first?  :class:`LinkUtilizationSeries` samples
every link's ``flits_carried`` counter at fixed window boundaries and
stores per-window utilization (flits per cycle, 0..1 per direction).
The collection cost is one integer comparison per simulated cycle plus
one subtraction per link per *window*, so it composes with the
fast-path scheduler: quiescent windows cost the same as busy ones and
no component is ever woken for sampling.

Two exports: :func:`render_heatmap` (a terminal-friendly shaded grid,
links x windows) and :func:`heatmap_csv` (one row per link, one column
per window -- ready for a spreadsheet or matplotlib's ``imshow``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.network.noc import Noc
    from repro.telemetry.registry import MetricsRegistry

#: Ten shades from idle to saturated, for the text heatmap.
SHADES = " .:-=+*#%@"


class LinkUtilizationSeries:
    """Windowed per-link utilization sampler for a NoC.

    Construction registers a per-cycle watcher that closes a window
    every ``window`` cycles; :meth:`finalize` closes the trailing
    partial window (idempotent, safe to call mid-run).  When a
    ``registry`` is given, every link's series is mirrored into it as a
    :class:`~repro.telemetry.registry.SeriesMetric` named
    ``link.<name>.utilization``.
    """

    def __init__(
        self,
        noc: "Noc",
        window: int = 100,
        registry: "Optional[MetricsRegistry]" = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self.noc = noc
        self.window = window
        self.rows: Dict[str, List[float]] = {l.name: [] for l in noc.links}
        self.window_starts: List[int] = []
        self._last: Dict[str, int] = {l.name: l.flits_carried for l in noc.links}
        self._window_start = noc.sim.cycle
        self._series = None
        if registry is not None:
            self._series = {
                l.name: registry.series(
                    f"link.{l.name}.utilization",
                    window=window,
                    help="flits per cycle over one window",
                )
                for l in noc.links
            }
        noc.sim.add_watcher(self._on_cycle)

    def _on_cycle(self, cycle: int) -> None:
        if cycle - self._window_start + 1 >= self.window:
            self._close_window(cycle + 1)

    def _close_window(self, next_start: int) -> None:
        span = next_start - self._window_start
        if span <= 0:
            return
        self.window_starts.append(self._window_start)
        for link in self.noc.links:
            delta = link.flits_carried - self._last[link.name]
            self._last[link.name] = link.flits_carried
            util = delta / span
            self.rows[link.name].append(util)
            if self._series is not None:
                self._series[link.name].observe(self._window_start, util)
        self._window_start = next_start

    def finalize(self) -> None:
        """Close the trailing partial window at the current cycle."""
        self._close_window(self.noc.sim.cycle)

    def peak(self) -> Dict[str, float]:
        """Per-link peak window utilization."""
        return {name: max(vals) if vals else 0.0 for name, vals in self.rows.items()}


def render_heatmap(series: LinkUtilizationSeries, top: Optional[int] = None) -> str:
    """Shaded text heatmap: one row per link, one column per window.

    Rows are sorted by total traffic, hottest first; ``top`` limits the
    row count.  Utilization 0..1 maps onto :data:`SHADES`.
    """
    series.finalize()
    ranked = sorted(series.rows.items(), key=lambda kv: -sum(kv[1]))
    if top is not None:
        ranked = ranked[:top]
    width = max((len(name) for name, _ in ranked), default=4)
    lines = [
        f"link utilization heatmap: {len(series.window_starts)} windows "
        f"of {series.window} cycles, shades '{SHADES}' = 0..1 flits/cycle",
    ]
    for name, vals in ranked:
        cells = "".join(
            SHADES[min(int(v * len(SHADES)), len(SHADES) - 1)] for v in vals
        )
        lines.append(f"{name:<{width}} |{cells}|")
    return "\n".join(lines)


def heatmap_csv(series: LinkUtilizationSeries) -> str:
    """CSV export: header of window-start cycles, one row per link."""
    series.finalize()
    header = "link," + ",".join(str(s) for s in series.window_starts)
    lines = [header]
    for name in sorted(series.rows):
        vals = series.rows[name]
        lines.append(name + "," + ",".join(f"{v:.4f}" for v in vals))
    return "\n".join(lines) + "\n"
