"""Parallel, cached, crash-tolerant execution of independent experiment points.

Every sweep in the benchmarks decomposes into independent "build a NoC,
run it, summarise" points.  :class:`ExperimentRunner` executes a batch
of such points

* **in parallel** across worker processes when ``jobs > 1`` -- one
  short-lived process per point, so a worker that dies (segfault, OOM
  kill, unhandled exception) takes down only its own point,
* **memoized on disk** when a ``cache_dir`` is configured: each point's
  result is pickled under a sha256 key derived from the *identity* of
  the work (function qualname + arguments + salt), so re-generating
  figures after an unrelated edit costs nothing,
* **resiliently**: per-point wall-clock ``timeout``, bounded ``retries``
  with exponential backoff, and a ``runs.jsonl`` journal in the cache
  directory recording every completion and failure.  Results stream
  into the cache and journal *as points finish*, so killing a sweep
  mid-flight loses none of the completed points -- re-running with the
  same cache directory (or ``resume=True``) picks up where it stopped.
  See ``docs/CHECKPOINT.md`` and ``docs/RESILIENCE.md``.

The cache key is built by :func:`stable_repr`, which canonicalises
dataclasses, enums, dicts/sets (sorted), callables (by qualname) and
objects exposing a ``cache_token()`` method.  Invalidation is by
construction: change any argument -- or bump
:data:`ExperimentRunner.salt` / the library's :data:`CACHE_VERSION` --
and the key changes.  See ``docs/PERFORMANCE.md`` for the rules and for
what is deliberately *not* hashed (code bodies: delete the cache
directory after editing measurement code).

All knobs default off (``jobs=1``, no cache, no timeout, no retries),
so existing sequential behaviour is unchanged unless a caller -- or
``python -m repro figures --jobs N --cache DIR`` via
:meth:`ExperimentRunner.from_env` -- opts in.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import multiprocessing
import os
import pickle
import random
import tempfile
import time
import traceback
import warnings
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Bumped when the library changes in ways that invalidate cached
#: results wholesale (e.g. measurement-semantics fixes).  v2: sweep
#: points now carry a :class:`RunManifest`, so pre-manifest pickles must
#: not be served.
CACHE_VERSION = 2

#: Kinds a :class:`PointFailure` can carry: the worker function raised,
#: exceeded the wall-clock ``timeout``, the worker process died without
#: reporting (segfault / OOM kill / SIGKILL), went silent past the
#: dispatcher's liveness deadline (``stall``: wedged, not dead), or was
#: quarantined after killing too many consecutive workers
#: (``poisoned``; see :class:`repro.serve.WorkStealingDispatcher`).
FAILURE_KINDS = ("error", "timeout", "crash", "stall", "poisoned")


def stable_repr(obj: Any) -> str:
    """A deterministic, content-based representation for cache keys.

    Unlike ``repr``, never leaks memory addresses and orders unordered
    containers.  Objects may opt in with a ``cache_token()`` method
    returning any stable_repr-able value.  Unknown objects fall back to
    their class qualname (address masked) -- conservative, but two
    *different* unknown objects then collide, so sweep inputs should
    implement ``cache_token()`` (Topology and CoreGraph do).
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips floats exactly
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ", ".join(
            f"{f.name}={stable_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, (list, tuple)):
        inner = ", ".join(stable_repr(x) for x in obj)
        return f"[{inner}]" if isinstance(obj, list) else f"({inner})"
    if isinstance(obj, dict):
        items = sorted((stable_repr(k), stable_repr(v)) for k, v in obj.items())
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(obj, (set, frozenset)):
        return "{" + ", ".join(sorted(stable_repr(x) for x in obj)) + "}"
    if isinstance(obj, functools.partial):
        return (
            f"partial({stable_repr(obj.func)}, args={stable_repr(obj.args)}, "
            f"kwargs={stable_repr(obj.keywords)})"
        )
    token = getattr(obj, "cache_token", None)
    if callable(token):
        return stable_repr(token())
    if callable(obj):
        mod = getattr(obj, "__module__", "?")
        qual = getattr(obj, "__qualname__", repr(type(obj).__qualname__))
        return f"callable({mod}.{qual})"
    # Last resort: type identity only.  Good enough for singletons,
    # wrong for value-carrying objects -- hence cache_token().
    return f"opaque({type(obj).__module__}.{type(obj).__qualname__})"


def _pipe_worker(conn, fn: Callable[[Any], Any], point: Any) -> None:
    """Worker-process entry: run one point, report through the pipe.

    Sends ``("ok", seconds, result, events)`` on success.  On any
    exception sends ``("error", seconds, exc, summary, traceback_text,
    events)``, falling back to ``exc=None`` when the exception itself
    does not pickle.  ``events`` is the list of structured telemetry
    records (``repro.telemetry.events``) the point emitted -- campaign
    checkpoints, lane batches -- which the parent merges into its own
    ``events.jsonl``.  If the process dies before sending anything
    (segfault, SIGKILL) the parent sees EOF and classifies the point as
    a crash.
    """
    from repro.telemetry import events as _events

    # Shadow any sink inherited across fork (the parent's open
    # events.jsonl writer): this worker's records travel over the pipe.
    collector = _events.install_sink(_events.EventCollector())
    t0 = time.perf_counter()
    try:
        result = fn(point)
        conn.send(("ok", time.perf_counter() - t0, result, collector.records))
    except BaseException as exc:  # noqa: BLE001 -- report, parent decides
        seconds = time.perf_counter() - t0
        summary = f"{type(exc).__name__}: {exc}"
        tb = traceback.format_exc()
        try:
            conn.send(("error", seconds, exc, summary, tb, collector.records))
        except Exception:
            # The exception (or its payload) does not pickle; downgrade
            # to text so the parent still learns what happened.
            try:
                conn.send(("error", seconds, None, summary, tb, collector.records))
            except Exception:
                pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


@dataclass
class PointReport:
    """Wall-clock accounting for one executed (or cache-served) point."""

    label: str
    key: str
    seconds: float
    cached: bool


@dataclass
class PointFailure:
    """One point that exhausted its attempts -- with a repro bundle.

    ``kind`` is one of :data:`FAILURE_KINDS`.  ``point_repr`` /
    ``fn_repr`` are the :func:`stable_repr` of the inputs -- together
    with the cache key they identify the exact work to re-run in
    isolation (``runner.map(fn, [the_point])``).
    """

    label: str
    key: str
    kind: str
    message: str
    attempts: int
    seconds: float
    point_repr: str
    fn_repr: str
    traceback: str = ""

    def as_record(self) -> Dict[str, Any]:
        """JSON-serialisable journal form."""
        return {
            "status": "failed",
            "label": self.label,
            "key": self.key,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
            "point": self.point_repr,
            "fn": self.fn_repr,
        }


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one executed (or cache-served) point.

    Answers "where did this number come from?" long after the sweep: the
    cache key identifies the exact work, ``cached`` says whether this
    process computed it or served a pickle, ``seconds`` is the compute
    cost (0 for cache hits), and the version pair pins the library state
    the result was produced under.  :meth:`ExperimentRunner.map` stores
    one per point, in input order, in ``last_manifests``;
    :func:`repro.network.experiments.load_sweep` attaches them to its
    :class:`~repro.network.experiments.LoadPoint` results.
    """

    key: str
    cached: bool
    seconds: float
    repro_version: str
    cache_version: int = CACHE_VERSION

    @classmethod
    def local(cls, key: str, cached: bool, seconds: float) -> "RunManifest":
        import repro

        return cls(
            key=key,
            cached=cached,
            seconds=seconds,
            repro_version=repro.__version__,
        )


def _env_flag(name: str, raw: Optional[str]) -> bool:
    """Parse a boolean environment variable strictly."""
    if raw is None or raw == "":
        return False
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{name} must be a boolean flag (0/1/true/false), got {raw!r}")


@dataclass
class ExperimentRunner:
    """Fan independent experiment points out; memoize their results.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs inline in this
        process, which keeps everything debuggable and imposes no
        picklability requirement.  With ``jobs > 1`` each point runs in
        its own short-lived process, so a dying worker is isolated.
    cache_dir:
        Directory for pickled results; ``None`` (default) disables
        memoization.  Created on first use.  Also hosts the
        ``runs.jsonl`` journal.
    store:
        Optional :class:`repro.store.ResultStore`: the shared,
        sha256-verified content-addressed tier (docs/SERVICE.md).  When
        set it is consulted before the private ``cache_dir`` pickles
        and every computed result is published to it, so many runners
        -- possibly on many hosts -- pool their work.  With a store
        and no ``cache_dir``, the journal and event stream live in the
        store's root directory.
    salt:
        Extra string mixed into every cache key -- a manual
        invalidation lever for callers.
    timeout:
        Per-point wall-clock limit in seconds.  Enforced only when
        ``jobs > 1`` (a timed-out worker is terminated); inline
        execution cannot be preempted and ignores it.
    retries:
        How many times a failed point is re-attempted (so a point runs
        at most ``retries + 1`` times).  Re-attempts are delayed by
        ``backoff * 2**attempt`` seconds.
    backoff:
        Base delay for the exponential retry backoff, in seconds.
    backoff_jitter:
        Fractional jitter on every backoff delay: each delay is
        multiplied by ``1 + backoff_jitter * u`` where ``u`` in
        ``[0, 1)`` comes from a :class:`random.Random` seeded from the
        sweep's cache keys (see :meth:`MapSession.backoff_delay`).
        Deterministic by construction -- two runs of the same plan
        sleep the same delays in the same order -- so jitter decorrelates
        retry storms without costing reproducibility.  ``0`` disables.
    on_failure:
        ``"raise"`` (default): after *all* points have finished (so
        completed siblings are cached and journaled), re-raise the
        first failure's exception.  ``"record"``: never raise; failed
        points yield ``None`` results and a :class:`PointFailure` in
        ``failures``.
    resume:
        Consult the ``runs.jsonl`` journal before running: points whose
        key is journaled ``ok`` (and whose cached pickle is readable)
        are served without recomputation and counted in
        ``resumed_points``.
    metrics:
        Optional :class:`repro.telemetry.registry.MetricsRegistry`;
        when set, ``runner.retries`` / ``runner.timeouts`` /
        ``runner.crashes`` / ``runner.failures`` /
        ``runner.corrupt_cache_entries`` counters are kept there too.
    events_path:
        Structured event stream destination
        (``repro.telemetry.events``, schema
        ``repro.telemetry.events/v1``).  Defaults to
        ``<cache_dir>/events.jsonl`` whenever a cache directory is
        configured; set explicitly to stream without a cache, or to
        ``""`` to disable streaming entirely.  Workers ship their
        events back over the result pipe; the parent merges everything
        into one append-only file that ``python -m repro top`` tails.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    store: Optional[Any] = None
    salt: str = ""
    timeout: Optional[float] = None
    retries: int = 0
    backoff: float = 0.5
    backoff_jitter: float = 0.1
    on_failure: str = "raise"
    resume: bool = False
    metrics: Optional[Any] = None
    events_path: Optional[str] = None
    reports: List[PointReport] = field(default_factory=list)
    failures: List[PointFailure] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    retry_count: int = 0
    timeout_count: int = 0
    crash_count: int = 0
    stall_count: int = 0
    failure_count: int = 0
    corrupt_cache_entries: int = 0
    resumed_points: int = 0
    #: Per-point provenance for the most recent :meth:`map` call, in
    #: input order (unlike ``reports``, which accumulates across calls
    #: in completion order).  Failed points carry no manifest.
    last_manifests: List[RunManifest] = field(default_factory=list)
    _warned_corrupt: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be a positive worker count, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive seconds, got {self.timeout}")
        if self.backoff_jitter < 0:
            raise ValueError(
                f"backoff_jitter must be >= 0, got {self.backoff_jitter}"
            )
        if self.on_failure not in ("raise", "record"):
            raise ValueError(
                f"on_failure must be 'raise' or 'record', got {self.on_failure!r}"
            )

    @classmethod
    def from_env(cls) -> "ExperimentRunner":
        """Build from the ``REPRO_*`` environment (the channel ``python
        -m repro figures --jobs N --cache DIR`` uses to reach runners
        inside pytest-collected benchmarks).

        Recognised: ``REPRO_JOBS`` (positive int), ``REPRO_CACHE``
        (directory), ``REPRO_TIMEOUT`` (seconds), ``REPRO_RETRIES``
        (non-negative int), ``REPRO_RESUME`` (boolean flag).  Invalid
        values raise :class:`ValueError` naming the variable.
        """
        raw = os.environ.get("REPRO_JOBS", "1") or "1"
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {raw!r}"
            ) from None
        if jobs <= 0:
            raise ValueError(
                f"REPRO_JOBS must be a positive worker count (>= 1), got {jobs}"
            )
        cache = os.environ.get("REPRO_CACHE") or None
        raw_timeout = os.environ.get("REPRO_TIMEOUT") or None
        timeout: Optional[float] = None
        if raw_timeout is not None:
            try:
                timeout = float(raw_timeout)
            except ValueError:
                raise ValueError(
                    f"REPRO_TIMEOUT must be seconds (a number), got {raw_timeout!r}"
                ) from None
            if timeout <= 0:
                raise ValueError(
                    f"REPRO_TIMEOUT must be positive seconds, got {raw_timeout!r}"
                )
        raw_retries = os.environ.get("REPRO_RETRIES", "0") or "0"
        try:
            retries = int(raw_retries)
        except ValueError:
            raise ValueError(
                f"REPRO_RETRIES must be a non-negative integer, got {raw_retries!r}"
            ) from None
        if retries < 0:
            raise ValueError(
                f"REPRO_RETRIES must be a non-negative integer, got {retries}"
            )
        resume = _env_flag("REPRO_RESUME", os.environ.get("REPRO_RESUME"))
        return cls(
            jobs=jobs,
            cache_dir=cache,
            timeout=timeout,
            retries=retries,
            resume=resume,
        )

    # -- telemetry --------------------------------------------------------
    def _count(self, name: str, attr: str) -> None:
        setattr(self, attr, getattr(self, attr) + 1)
        if self.metrics is not None:
            self.metrics.counter(f"runner.{name}").inc()

    # -- cache plumbing ---------------------------------------------------
    def _check_keyable_fn(self, fn: Callable) -> None:
        """Refuse functions whose :func:`stable_repr` is ambiguous.

        Callables hash by qualname only, so every lambda is
        ``<lambda>`` and every instantiation of a closure keeps one
        qualname while capturing different cells -- semantically
        different functions would share a cache key, and a shared
        :class:`~repro.store.ResultStore` would then serve a
        wrong-function hit to another host.  Enforced only when results
        are memoized (``cache_dir`` or ``store`` configured): without a
        cache the keys are reporting labels, nothing is served by them.
        """
        probe = fn
        while isinstance(probe, functools.partial):
            probe = probe.func
        qualname = getattr(probe, "__qualname__", "")
        if getattr(probe, "__name__", None) == "<lambda>":
            raise ValueError(
                f"cannot cache results of lambda {qualname!r}: every "
                "lambda hashes to the same '<lambda>' identity, so "
                "cached results would be served across different "
                "functions.  Use a named module-level function (or "
                "functools.partial over one)."
            )
        if getattr(probe, "__closure__", None):
            raise ValueError(
                f"cannot cache results of closure {qualname!r}: captured "
                "cells do not enter the cache key, so two closures with "
                "the same qualname but different captured values would "
                "collide.  Pass captured values through the point or a "
                "functools.partial instead."
            )

    def _key(self, fn: Callable, point: Any) -> str:
        ident = (
            f"v{CACHE_VERSION}|{self.salt}|{stable_repr(fn)}|{stable_repr(point)}"
        )
        return hashlib.sha256(ident.encode()).hexdigest()

    def _cache_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _cache_load(self, key: str) -> "tuple[bool, Any]":
        if self.store is not None:
            hit, value = self.store.get(key)
            if hit:
                return True, value
        if self.cache_dir is None:
            return False, None
        path = self._cache_path(key)
        try:
            with open(path, "rb") as f:
                return True, pickle.load(f)
        except FileNotFoundError:
            return False, None
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            # The entry exists but cannot be served: quarantine it so
            # the evidence survives for debugging and the recomputed
            # result can be published cleanly at the original path.
            self._count("corrupt_cache_entries", "corrupt_cache_entries")
            try:
                os.replace(path, f"{path[:-len('.pkl')]}.corrupt")
            except OSError:
                pass
            if not self._warned_corrupt:
                self._warned_corrupt = True
                warnings.warn(
                    f"experiment cache entry {key[:12]}... in {self.cache_dir} "
                    "is unreadable; quarantined as *.corrupt and recomputing "
                    "(further corrupt entries this run are counted silently)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return False, None

    def _cache_store(self, key: str, result: Any) -> None:
        if self.store is not None:
            self.store.put(key, result)
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        # Atomic publish: concurrent runners may race on the same key.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(result, f)
            os.replace(tmp, self._cache_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- journal ----------------------------------------------------------
    @property
    def journal_path(self) -> Optional[str]:
        """``runs.jsonl`` inside the cache directory -- or, with only a
        shared store configured, inside the store root (None when fully
        uncached)."""
        if self.cache_dir is not None:
            return os.path.join(self.cache_dir, "runs.jsonl")
        if self.store is not None:
            return os.path.join(self.store.root, "runs.jsonl")
        return None

    def _journal_append(self, record: Dict[str, Any]) -> None:
        path = self.journal_path
        if path is None:
            return
        os.makedirs(os.path.dirname(path), exist_ok=True)
        line = json.dumps(record, sort_keys=True)
        with open(path, "a", encoding="utf-8") as f:
            f.write(line + "\n")
            f.flush()

    def journal_entries(self) -> Dict[str, Dict[str, Any]]:
        """Latest journal record per cache key (empty when uncached).

        Torn trailing lines (a run killed mid-write) are skipped, not
        fatal: the journal is an append-only ledger and every complete
        line stands on its own.
        """
        path = self.journal_path
        if path is None or not os.path.exists(path):
            return {}
        entries: Dict[str, Dict[str, Any]] = {}
        with open(path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(rec, dict) and "key" in rec:
                    entries[rec["key"]] = rec
        return entries

    # -- execution --------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        points: Sequence[Any],
        label: str = "point",
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        on_failure: Optional[str] = None,
        resume: Optional[bool] = None,
    ) -> List[Any]:
        """``[fn(p) for p in points]`` with caching, parallelism and
        failure isolation.

        Results come back in input order.  ``fn`` must be a module-level
        callable (or :func:`functools.partial` over one) when
        ``jobs > 1`` so worker processes can run it; its arguments
        should be stable_repr-hashable when caching is on.  The keyword
        arguments override the runner's instance-level defaults for
        this call only.

        Completed points are cached and journaled the moment they
        finish, *before* the batch ends -- a killed sweep loses nothing
        already done.  A failing point (exception, timeout, or worker
        death) is retried up to ``retries`` times with exponential
        backoff; a point that exhausts its attempts becomes a
        :class:`PointFailure` and, under ``on_failure="raise"``, the
        first failure is re-raised only after every sibling has
        finished.

        The bookkeeping (cache probing, journaling, manifests, event
        stream, retry accounting) lives in :class:`MapSession`, which
        the work-stealing dispatcher
        (:class:`repro.serve.WorkStealingDispatcher`) shares -- only
        the scheduling differs between the two.
        """
        session = MapSession(
            self, fn, points, label,
            timeout=timeout, retries=retries,
            on_failure=on_failure, resume=resume,
        )
        session.start()
        try:
            if session.pending and self.jobs > 1:
                self._run_pool(session)
            else:
                self._run_inline(session)
            session.emit_run_end()
        finally:
            session.close()
        return session.finalize()

    def map_replicated(
        self,
        fn: Callable[[Any], Any],
        points: Sequence[Any],
        replicas: int,
        fan: Callable[[Any, int], Any],
        label: str = "point",
        **map_kwargs: Any,
    ) -> List[List[Any]]:
        """Map every point under ``replicas`` variants, grouped back.

        ``fan(point, k)`` builds the ``k``-th variant of a point --
        typically the same measurement under a per-replica seed.  The
        fanned list runs through :meth:`map` as one flat batch, so each
        variant caches, journals and retries independently (growing
        ``replicas`` later re-runs only the new lanes).  Results come
        back grouped per original point, replicas in fan order;
        ``last_manifests`` stays flat in the fanned order
        (``len(points) * replicas`` entries when nothing failed).
        """
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        fanned = [fan(p, k) for p in points for k in range(replicas)]
        flat = self.map(fn, fanned, label=label, **map_kwargs)
        return [
            flat[i * replicas:(i + 1) * replicas] for i in range(len(points))
        ]

    def _run_inline(self, session: "MapSession") -> None:
        """Sequential execution of the pending points (``jobs == 1``)."""
        from repro.telemetry import events as _events

        for i in session.pending:
            attempts = 0
            while True:
                attempts += 1
                _events.emit(
                    "point_start", label=f"{session.label}[{i}]",
                    key=session.keys[i], attempt=attempts,
                )
                t0 = time.perf_counter()
                try:
                    result = session.fn(session.points[i])
                except Exception as exc:
                    seconds = time.perf_counter() - t0
                    if session.attempt_failed(
                        i, attempts, seconds, "error",
                        f"{type(exc).__name__}: {exc}", exc,
                        traceback.format_exc(),
                    ):
                        time.sleep(session.backoff_delay(i, attempts))
                        continue
                    break
                seconds = time.perf_counter() - t0
                session.finish_ok(i, attempts, seconds, result)
                break

    def _run_pool(self, session: "MapSession") -> None:
        """One process per point with timeout/crash isolation.

        A hand-rolled pool instead of :class:`ProcessPoolExecutor`
        because the executor cannot survive a dying worker: one SIGKILL
        poisons the whole pool (``BrokenProcessPool``) and aborts the
        sweep.  Here each point owns a process and a pipe; a death or
        deadline affects only that point.
        """
        from repro.telemetry import events as _events

        fn, points, keys = session.fn, session.points, session.keys
        label = session.label
        eff_timeout = session.timeout

        ctx = multiprocessing.get_context()
        ready_queue = deque((i, 1) for i in session.pending)  # (index, attempt_no)
        delayed: List["tuple[float, int, int]"] = []  # (not_before, index, attempt)
        running: Dict[Any, "tuple[int, int, Any, float]"] = {}  # conn -> (i, attempt, proc, started)

        def handle_failure(i: int, attempt: int, seconds: float, kind: str,
                           message: str, exc: Optional[BaseException], tb: str) -> None:
            if session.attempt_failed(i, attempt, seconds, kind, message, exc, tb):
                not_before = time.monotonic() + session.backoff_delay(i, attempt)
                delayed.append((not_before, i, attempt + 1))

        finish_ok = session.finish_ok

        try:
            while ready_queue or delayed or running:
                now = time.monotonic()
                if delayed:
                    due = [d for d in delayed if d[0] <= now]
                    delayed = [d for d in delayed if d[0] > now]
                    for _, i, attempt in sorted(due, key=lambda d: d[1]):
                        ready_queue.append((i, attempt))
                while ready_queue and len(running) < self.jobs:
                    i, attempt = ready_queue.popleft()
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_pipe_worker, args=(child_conn, fn, points[i]),
                        daemon=True,
                    )
                    proc.start()
                    child_conn.close()
                    running[parent_conn] = (i, attempt, proc, time.monotonic())
                    _events.emit(
                        "point_start", label=f"{label}[{i}]", key=keys[i],
                        attempt=attempt,
                    )
                if not running:
                    if delayed:
                        time.sleep(max(0.0, min(d[0] for d in delayed) - time.monotonic()))
                    continue

                # Bound the wait by the nearest deadline / backoff expiry.
                wait_for = 0.2
                now = time.monotonic()
                if eff_timeout is not None:
                    nearest = min(started + eff_timeout for _, _, _, started in running.values())
                    wait_for = min(wait_for, max(0.0, nearest - now))
                if delayed:
                    wait_for = min(wait_for, max(0.0, min(d[0] for d in delayed) - now))
                ready = _connection_wait(list(running), timeout=wait_for)

                for conn in ready:
                    i, attempt, proc, started = running.pop(conn)
                    seconds = time.monotonic() - started
                    try:
                        msg = conn.recv()
                    except (EOFError, OSError):
                        msg = None
                    conn.close()
                    proc.join()
                    if msg is None:
                        code = proc.exitcode
                        handle_failure(
                            i, attempt, seconds, "crash",
                            f"worker died without reporting (exitcode {code})",
                            None, "",
                        )
                    elif msg[0] == "ok":
                        _, fn_seconds, result, wevents = msg
                        _events.forward(wevents)
                        finish_ok(i, attempt, fn_seconds, result)
                    else:
                        _, fn_seconds, exc, summary, tb, wevents = msg
                        _events.forward(wevents)
                        handle_failure(i, attempt, fn_seconds, "error", summary, exc, tb)

                if eff_timeout is None:
                    continue
                now = time.monotonic()
                for conn, (i, attempt, proc, started) in list(running.items()):
                    if now - started < eff_timeout:
                        continue
                    running.pop(conn)
                    proc.terminate()
                    proc.join(1.0)
                    if proc.is_alive():
                        proc.kill()
                        proc.join()
                    conn.close()
                    handle_failure(
                        i, attempt, now - started, "timeout",
                        f"exceeded {eff_timeout:g}s wall-clock limit", None, "",
                    )
        finally:
            # Never leak workers, whatever interrupted the loop.
            for _, (_, _, proc, _) in list(running.items()):
                if proc.is_alive():
                    proc.terminate()
                    proc.join(1.0)
                    if proc.is_alive():
                        proc.kill()
                        proc.join()

    # -- reporting --------------------------------------------------------
    def render_report(self, title: str = "experiment runner") -> str:
        """Per-point wall-clock table plus hit/miss and failure totals."""
        lines = [
            f"{title}: jobs={self.jobs} "
            f"cache={'off' if self.cache_dir is None else self.cache_dir} "
            f"store={'off' if self.store is None else self.store.root} "
            f"hits={self.cache_hits} misses={self.cache_misses}",
        ]
        if (self.retry_count or self.timeout_count or self.crash_count
                or self.stall_count or self.failure_count
                or self.corrupt_cache_entries or self.resumed_points):
            lines.append(
                f"  resilience: retries={self.retry_count} "
                f"timeouts={self.timeout_count} crashes={self.crash_count} "
                f"stalls={self.stall_count} failures={self.failure_count} "
                f"corrupt_cache_entries={self.corrupt_cache_entries} "
                f"resumed={self.resumed_points}"
            )
        for r in self.reports:
            status = "cached" if r.cached else f"{r.seconds:8.3f}s"
            lines.append(f"  {r.label:<28} {status:>10}  {r.key[:12]}")
        for f in self.failures:
            lines.append(
                f"  {f.label:<28} {'FAILED':>10}  {f.key[:12]} "
                f"[{f.kind} x{f.attempts}] {f.message}"
            )
        return "\n".join(lines)


class MapSession:
    """Bookkeeping for one batch of points, shared across schedulers.

    :meth:`ExperimentRunner.map` and the work-stealing dispatcher
    (:class:`repro.serve.WorkStealingDispatcher`) schedule work very
    differently -- one process per point vs. long-lived workers pulling
    from shards -- but everything *around* the scheduling is identical
    and lives here: effective retry/timeout configuration, cache keys
    and cache probing, the streamed cache/journal/manifest updates as
    points finish, retry accounting, the telemetry event stream, and
    the deferred first-failure re-raise.

    Lifecycle: construct (probes the cache, classifying every point as
    a hit or ``pending``), :meth:`start` (opens the event stream and
    emits ``run_start`` plus the cache-hit ``point_end`` records), then
    the scheduler calls :meth:`finish_ok` / :meth:`attempt_failed` as
    attempts resolve, :meth:`emit_run_end`, :meth:`close` and
    :meth:`finalize` (publishes manifests, re-raises under
    ``on_failure="raise"``, returns results in input order).
    """

    def __init__(
        self,
        runner: ExperimentRunner,
        fn: Callable[[Any], Any],
        points: Sequence[Any],
        label: str = "point",
        *,
        timeout: Optional[float] = None,
        retries: Optional[int] = None,
        on_failure: Optional[str] = None,
        resume: Optional[bool] = None,
    ) -> None:
        self.runner = runner
        self.fn = fn
        self.points = points
        self.label = label
        self.timeout = runner.timeout if timeout is None else timeout
        self.retries = runner.retries if retries is None else retries
        self.on_failure = runner.on_failure if on_failure is None else on_failure
        self.resume = runner.resume if resume is None else resume
        if self.on_failure not in ("raise", "record"):
            raise ValueError(
                f"on_failure must be 'raise' or 'record', got {self.on_failure!r}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")

        if runner.cache_dir is not None or runner.store is not None:
            runner._check_keyable_fn(fn)
        self.keys = [runner._key(fn, p) for p in points]
        # Deterministic jitter seed: a function of *what* is being run,
        # not of wall-clock or pid, so chaos runs and resume replays
        # reproduce the exact same backoff delays (docs/RESILIENCE.md).
        self.jitter_seed = int.from_bytes(
            hashlib.sha256(
                ("backoff|" + label + "|" + "|".join(self.keys)).encode("utf-8")
            ).digest()[:8],
            "big",
        )
        self.results: List[Any] = [None] * len(points)
        self.manifests: List[Optional[RunManifest]] = [None] * len(points)
        self.tally = {"ok": 0, "failed": 0, "retries": 0}
        self.first_exc: Optional[BaseException] = None
        self.hits: List[int] = []
        self.pending: List[int] = []
        self._writer: Optional[Any] = None

        journal = runner.journal_entries() if self.resume else {}
        for i, key in enumerate(self.keys):
            hit, value = runner._cache_load(key)
            if hit:
                runner.cache_hits += 1
                if self.resume and journal.get(key, {}).get("status") == "ok":
                    runner._count("resumed_points", "resumed_points")
                self.results[i] = value
                self.manifests[i] = RunManifest.local(key, cached=True, seconds=0.0)
                runner.reports.append(
                    PointReport(f"{label}[{i}]", key, 0.0, cached=True)
                )
                self.hits.append(i)
            else:
                runner.cache_misses += 1
                self.pending.append(i)

    # -- backoff ----------------------------------------------------------
    def backoff_delay(self, i: int, attempt: int, kind: str = "retry") -> float:
        """Seconds to wait before re-attempt ``attempt + 1`` of point
        ``i`` (or before respawning dispatcher worker slot ``i`` with
        ``kind="respawn"``): exponential in the attempt number with
        deterministic multiplicative jitter.

        The jitter stream is keyed by ``(sweep, kind, i, attempt)``
        alone -- not by which worker failed or when -- so the delay for
        a given re-attempt is the same in every run of the same plan,
        regardless of scheduling order.  Two runs of one chaos plan
        therefore produce identically ordered retry timelines.
        """
        base = self.runner.backoff * (2 ** (attempt - 1))
        jitter = self.runner.backoff_jitter
        if jitter <= 0 or base <= 0:
            return base
        rng = random.Random(f"{self.jitter_seed}|{kind}|{i}|{attempt}")
        return base * (1.0 + jitter * rng.random())

    # -- event stream -----------------------------------------------------
    def events_path(self) -> Optional[str]:
        runner = self.runner
        if runner.events_path is not None:
            return runner.events_path or None  # "" disables streaming
        if runner.cache_dir is not None:
            return os.path.join(runner.cache_dir, "events.jsonl")
        if runner.store is not None:
            return os.path.join(runner.store.root, "events.jsonl")
        return None

    def start(self) -> None:
        from repro.telemetry import events as _events

        path = self.events_path()
        if path:
            self._writer = _events.install_sink(_events.EventWriter(path))
        _events.emit(
            "run_start", label=self.label, points=len(self.points),
            pending=len(self.pending), cached=len(self.hits),
            jobs=self.runner.jobs,
        )
        for i in self.hits:
            _events.emit(
                "point_end", label=f"{self.label}[{i}]", key=self.keys[i],
                status="ok", seconds=0.0, attempts=0, cached=True,
            )

    def emit_run_end(self) -> None:
        from repro.telemetry import events as _events

        _events.emit(
            "run_end", label=self.label, ok=self.tally["ok"],
            failed=self.tally["failed"], cached=len(self.hits),
            retries=self.tally["retries"],
        )

    def close(self) -> None:
        from repro.telemetry import events as _events

        if self._writer is not None:
            _events.remove_sink(self._writer)
            self._writer.close()
            self._writer = None

    # -- attempt outcomes -------------------------------------------------
    def finish_ok(self, i: int, attempts: int, seconds: float, result: Any) -> None:
        from repro.telemetry import events as _events

        runner = self.runner
        self.results[i] = result
        self.manifests[i] = RunManifest.local(
            self.keys[i], cached=False, seconds=seconds
        )
        runner.reports.append(
            PointReport(f"{self.label}[{i}]", self.keys[i], seconds, cached=False)
        )
        runner._cache_store(self.keys[i], result)
        runner._journal_append(
            {
                "status": "ok",
                "label": f"{self.label}[{i}]",
                "key": self.keys[i],
                "seconds": round(seconds, 6),
                "attempts": attempts,
            }
        )
        self.tally["ok"] += 1
        _events.emit(
            "point_end", label=f"{self.label}[{i}]", key=self.keys[i],
            status="ok", seconds=round(seconds, 6), attempts=attempts,
            cached=False,
        )

    def finish_failed(
        self,
        i: int,
        attempts: int,
        seconds: float,
        kind: str,
        message: str,
        exc: Optional[BaseException],
        tb: str = "",
    ) -> None:
        from repro.telemetry import events as _events

        runner = self.runner
        failure = PointFailure(
            label=f"{self.label}[{i}]",
            key=self.keys[i],
            kind=kind,
            message=message,
            attempts=attempts,
            seconds=seconds,
            point_repr=stable_repr(self.points[i]),
            fn_repr=stable_repr(self.fn),
            traceback=tb,
        )
        runner.failures.append(failure)
        runner._count("failures", "failure_count")
        runner._journal_append(failure.as_record())
        self.tally["failed"] += 1
        _events.emit(
            "point_end", label=failure.label, key=self.keys[i],
            status="failed", seconds=round(seconds, 6), attempts=attempts,
            cached=False, kind=kind, message=message,
        )
        if self.on_failure == "raise" and self.first_exc is None:
            self.first_exc = exc if exc is not None else RuntimeError(
                f"{failure.label} {kind} after {attempts} attempt(s): {message}"
            )

    def attempt_failed(
        self,
        i: int,
        attempt: int,
        seconds: float,
        kind: str,
        message: str,
        exc: Optional[BaseException],
        tb: str = "",
    ) -> bool:
        """Account one failed attempt.  Returns True when the point has
        retries left -- the caller schedules the re-attempt after its
        backoff -- and False when the failure is final (recorded,
        journaled and counted here)."""
        from repro.telemetry import events as _events

        runner = self.runner
        if kind == "timeout":
            runner._count("timeouts", "timeout_count")
        elif kind == "crash":
            runner._count("crashes", "crash_count")
        elif kind == "stall":
            runner._count("stalls", "stall_count")
        if attempt <= self.retries:
            runner._count("retries", "retry_count")
            self.tally["retries"] += 1
            _events.emit(
                "retry", label=f"{self.label}[{i}]", key=self.keys[i],
                attempt=attempt, kind=kind, message=message,
            )
            return True
        self.finish_failed(i, attempt, seconds, kind, message, exc, tb)
        return False

    # -- wrap-up ----------------------------------------------------------
    def finalize(self) -> List[Any]:
        self.runner.last_manifests = [m for m in self.manifests if m is not None]
        if self.first_exc is not None:
            raise self.first_exc
        return self.results
