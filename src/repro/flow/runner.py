"""Parallel, cached execution of independent experiment points.

Every sweep in the benchmarks decomposes into independent "build a NoC,
run it, summarise" points.  :class:`ExperimentRunner` executes a batch
of such points

* **in parallel** across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`) when ``jobs > 1``,
* **memoized on disk** when a ``cache_dir`` is configured: each point's
  result is pickled under a sha256 key derived from the *identity* of
  the work (function qualname + arguments + salt), so re-generating
  figures after an unrelated edit costs nothing,
* with a per-point wall-clock report either way.

The cache key is built by :func:`stable_repr`, which canonicalises
dataclasses, enums, dicts/sets (sorted), callables (by qualname) and
objects exposing a ``cache_token()`` method.  Invalidation is by
construction: change any argument -- or bump
:data:`ExperimentRunner.salt` / the library's :data:`CACHE_VERSION` --
and the key changes.  See ``docs/PERFORMANCE.md`` for the rules and for
what is deliberately *not* hashed (code bodies: delete the cache
directory after editing measurement code).

Both knobs default off (``jobs=1``, no cache), so existing sequential
behaviour is unchanged unless a caller -- or ``python -m repro figures
--jobs N --cache DIR`` via :meth:`ExperimentRunner.from_env` -- opts in.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import os
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

#: Bumped when the library changes in ways that invalidate cached
#: results wholesale (e.g. measurement-semantics fixes).  v2: sweep
#: points now carry a :class:`RunManifest`, so pre-manifest pickles must
#: not be served.
CACHE_VERSION = 2


def stable_repr(obj: Any) -> str:
    """A deterministic, content-based representation for cache keys.

    Unlike ``repr``, never leaks memory addresses and orders unordered
    containers.  Objects may opt in with a ``cache_token()`` method
    returning any stable_repr-able value.  Unknown objects fall back to
    their class qualname (address masked) -- conservative, but two
    *different* unknown objects then collide, so sweep inputs should
    implement ``cache_token()`` (Topology and CoreGraph do).
    """
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        return repr(obj)
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips floats exactly
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ", ".join(
            f"{f.name}={stable_repr(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, (list, tuple)):
        inner = ", ".join(stable_repr(x) for x in obj)
        return f"[{inner}]" if isinstance(obj, list) else f"({inner})"
    if isinstance(obj, dict):
        items = sorted((stable_repr(k), stable_repr(v)) for k, v in obj.items())
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(obj, (set, frozenset)):
        return "{" + ", ".join(sorted(stable_repr(x) for x in obj)) + "}"
    if isinstance(obj, functools.partial):
        return (
            f"partial({stable_repr(obj.func)}, args={stable_repr(obj.args)}, "
            f"kwargs={stable_repr(obj.keywords)})"
        )
    token = getattr(obj, "cache_token", None)
    if callable(token):
        return stable_repr(token())
    if callable(obj):
        mod = getattr(obj, "__module__", "?")
        qual = getattr(obj, "__qualname__", repr(type(obj).__qualname__))
        return f"callable({mod}.{qual})"
    # Last resort: type identity only.  Good enough for singletons,
    # wrong for value-carrying objects -- hence cache_token().
    return f"opaque({type(obj).__module__}.{type(obj).__qualname__})"


def _timed_call(fn: Callable[[Any], Any], point: Any) -> "tuple[float, Any]":
    """Run one point in a worker, returning (seconds, result).

    Module-level so it pickles into :class:`ProcessPoolExecutor` workers.
    """
    t0 = time.perf_counter()
    result = fn(point)
    return time.perf_counter() - t0, result


@dataclass
class PointReport:
    """Wall-clock accounting for one executed (or cache-served) point."""

    label: str
    key: str
    seconds: float
    cached: bool


@dataclass(frozen=True)
class RunManifest:
    """Provenance record for one executed (or cache-served) point.

    Answers "where did this number come from?" long after the sweep: the
    cache key identifies the exact work, ``cached`` says whether this
    process computed it or served a pickle, ``seconds`` is the compute
    cost (0 for cache hits), and the version pair pins the library state
    the result was produced under.  :meth:`ExperimentRunner.map` stores
    one per point, in input order, in ``last_manifests``;
    :func:`repro.network.experiments.load_sweep` attaches them to its
    :class:`~repro.network.experiments.LoadPoint` results.
    """

    key: str
    cached: bool
    seconds: float
    repro_version: str
    cache_version: int = CACHE_VERSION

    @classmethod
    def local(cls, key: str, cached: bool, seconds: float) -> "RunManifest":
        import repro

        return cls(
            key=key,
            cached=cached,
            seconds=seconds,
            repro_version=repro.__version__,
        )


@dataclass
class ExperimentRunner:
    """Fan independent experiment points out; memoize their results.

    Parameters
    ----------
    jobs:
        Worker process count; ``1`` (default) runs inline in this
        process, which keeps everything debuggable and imposes no
        picklability requirement.
    cache_dir:
        Directory for pickled results; ``None`` (default) disables
        memoization.  Created on first use.
    salt:
        Extra string mixed into every cache key -- a manual
        invalidation lever for callers.
    """

    jobs: int = 1
    cache_dir: Optional[str] = None
    salt: str = ""
    reports: List[PointReport] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-point provenance for the most recent :meth:`map` call, in
    #: input order (unlike ``reports``, which accumulates across calls
    #: in completion order).
    last_manifests: List[RunManifest] = field(default_factory=list)

    @classmethod
    def from_env(cls) -> "ExperimentRunner":
        """Build from ``REPRO_JOBS`` / ``REPRO_CACHE`` (the channel
        ``python -m repro figures --jobs N --cache DIR`` uses to reach
        runners inside pytest-collected benchmarks)."""
        raw = os.environ.get("REPRO_JOBS", "1") or "1"
        try:
            jobs = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer worker count, got {raw!r}"
            ) from None
        cache = os.environ.get("REPRO_CACHE") or None
        return cls(jobs=max(jobs, 1), cache_dir=cache)

    # -- cache plumbing ---------------------------------------------------
    def _key(self, fn: Callable, point: Any) -> str:
        ident = (
            f"v{CACHE_VERSION}|{self.salt}|{stable_repr(fn)}|{stable_repr(point)}"
        )
        return hashlib.sha256(ident.encode()).hexdigest()

    def _cache_path(self, key: str) -> str:
        assert self.cache_dir is not None
        return os.path.join(self.cache_dir, f"{key}.pkl")

    def _cache_load(self, key: str) -> "tuple[bool, Any]":
        if self.cache_dir is None:
            return False, None
        try:
            with open(self._cache_path(key), "rb") as f:
                return True, pickle.load(f)
        except (OSError, pickle.PickleError, EOFError):
            return False, None

    def _cache_store(self, key: str, result: Any) -> None:
        if self.cache_dir is None:
            return
        os.makedirs(self.cache_dir, exist_ok=True)
        # Atomic publish: concurrent runners may race on the same key.
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump(result, f)
            os.replace(tmp, self._cache_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- execution --------------------------------------------------------
    def map(self, fn: Callable[[Any], Any], points: Sequence[Any], label: str = "point") -> List[Any]:
        """``[fn(p) for p in points]`` with caching and parallelism.

        Results come back in input order.  ``fn`` must be a module-level
        callable (or :func:`functools.partial` over one) when
        ``jobs > 1`` so worker processes can unpickle it; its arguments
        should be stable_repr-hashable when caching is on.
        """
        keys = [self._key(fn, p) for p in points]
        results: List[Any] = [None] * len(points)
        manifests: List[Optional[RunManifest]] = [None] * len(points)
        pending: List[int] = []
        for i, key in enumerate(keys):
            hit, value = self._cache_load(key)
            if hit:
                self.cache_hits += 1
                results[i] = value
                manifests[i] = RunManifest.local(key, cached=True, seconds=0.0)
                self.reports.append(
                    PointReport(f"{label}[{i}]", key, 0.0, cached=True)
                )
            else:
                self.cache_misses += 1
                pending.append(i)

        if pending and self.jobs > 1:
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(pending))) as pool:
                futures = {i: pool.submit(_timed_call, fn, points[i]) for i in pending}
                for i in pending:
                    seconds, results[i] = futures[i].result()
                    manifests[i] = RunManifest.local(
                        keys[i], cached=False, seconds=seconds
                    )
                    self.reports.append(
                        PointReport(f"{label}[{i}]", keys[i], seconds, cached=False)
                    )
                    self._cache_store(keys[i], results[i])
        else:
            for i in pending:
                t0 = time.perf_counter()
                results[i] = fn(points[i])
                seconds = time.perf_counter() - t0
                manifests[i] = RunManifest.local(
                    keys[i], cached=False, seconds=seconds
                )
                self.reports.append(
                    PointReport(f"{label}[{i}]", keys[i], seconds, cached=False)
                )
                self._cache_store(keys[i], results[i])
        self.last_manifests = [m for m in manifests if m is not None]
        return results

    # -- reporting --------------------------------------------------------
    def render_report(self, title: str = "experiment runner") -> str:
        """Per-point wall-clock table plus hit/miss totals."""
        lines = [
            f"{title}: jobs={self.jobs} "
            f"cache={'off' if self.cache_dir is None else self.cache_dir} "
            f"hits={self.cache_hits} misses={self.cache_misses}",
        ]
        for r in self.reports:
            status = "cached" if r.cached else f"{r.seconds:8.3f}s"
            lines.append(f"  {r.label:<28} {status:>10}  {r.key[:12]}")
        return "\n".join(lines)
