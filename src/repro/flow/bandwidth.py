"""Link bandwidth feasibility analysis.

A mapping is only viable if no link is asked to carry more traffic than
it physically can -- the constraint SunMap checks before handing a
topology to the compiler.  Given a mapped topology and the application's
core graph, this module routes every demand along its actual source
route, accumulates per-link load, converts it into flits/cycle (header
overhead included) and flags violations against the link capacity of
one flit per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.config import NocParameters
from repro.core.packet import PacketHeader
from repro.core.routing import route_between
from repro.flow.taskgraph import CoreGraph
from repro.network.topology import Topology

#: A link carries at most one flit per cycle.
LINK_CAPACITY_FLITS_PER_CYCLE = 1.0


@dataclass(frozen=True)
class LinkLoad:
    """Load on one unidirectional link, in flits per cycle."""

    src: str  # switch or NI name
    dst: str
    flits_per_cycle: float

    @property
    def utilization(self) -> float:
        return self.flits_per_cycle / LINK_CAPACITY_FLITS_PER_CYCLE


def flits_per_transaction(params: NocParameters, burst_len: int) -> float:
    """Flits of one request packet carrying ``burst_len`` data beats."""
    bits = PacketHeader.bit_width(params) + burst_len * params.data_width
    return -(-bits // params.flit_width)


def demand_to_flit_rate(
    rate_words_per_kcycle: float,
    params: NocParameters,
    burst_len: int = 4,
) -> float:
    """Convert a words/kcycle demand into link flits/cycle.

    Traffic is assumed packetized into ``burst_len``-beat transactions;
    the header overhead is amortized over each burst.
    """
    if rate_words_per_kcycle < 0:
        raise ValueError("demand must be non-negative")
    transactions_per_cycle = rate_words_per_kcycle / 1000.0 / burst_len
    return transactions_per_cycle * flits_per_transaction(params, burst_len)


def link_loads(
    topology: Topology,
    core_graph: CoreGraph,
    params: NocParameters,
    burst_len: int = 4,
    policy: str = "",
) -> Dict[Tuple[str, str], LinkLoad]:
    """Per-link flit load when every demand follows its source route.

    Links are identified by (from-element, to-element) pairs in the
    direction of flow; NI injection and ejection links are included.
    """
    policy = policy or topology.default_policy
    loads: Dict[Tuple[str, str], float] = {}

    def add(src: str, dst: str, flits: float) -> None:
        loads[(src, dst)] = loads.get((src, dst), 0.0) + flits

    for src, dst, rate in core_graph.demands():
        flits = demand_to_flit_rate(rate, params, burst_len)
        route = route_between(topology, src, dst, policy)
        current = topology.switch_of(src)
        add(src, current, flits)  # injection link
        for hop in route:
            nxt = topology.ports_of(current)[hop]
            add(current, nxt, flits)
            if nxt in topology.switches:
                current = nxt
    return {
        key: LinkLoad(src=key[0], dst=key[1], flits_per_cycle=v)
        for key, v in loads.items()
    }


def check_feasibility(
    topology: Topology,
    core_graph: CoreGraph,
    params: NocParameters,
    burst_len: int = 4,
    margin: float = 0.8,
) -> Tuple[bool, List[LinkLoad]]:
    """Is the mapping's worst link within ``margin`` of capacity?

    Returns (feasible, overloaded links sorted worst-first).  ``margin``
    below 1.0 keeps headroom for the ACK/NACK retransmission overhead
    and burstiness that average-rate analysis cannot see.
    """
    if not 0 < margin <= 1.0:
        raise ValueError("margin must be in (0, 1]")
    loads = link_loads(topology, core_graph, params, burst_len)
    hot = [
        load
        for load in loads.values()
        if load.flits_per_cycle > margin * LINK_CAPACITY_FLITS_PER_CYCLE
    ]
    hot.sort(key=lambda x: -x.flits_per_cycle)
    return (not hot, hot)


def bisection_demand(topology: Topology, core_graph: CoreGraph, mapping_free=True) -> float:
    """Total demand as a fraction of the fabric's edge count.

    A coarse scalar used to compare fabrics before mapping: fabrics with
    more links spread the same demand thinner.
    """
    edges = max(topology.graph.number_of_edges(), 1)
    return core_graph.total_demand() / edges
