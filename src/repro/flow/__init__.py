"""The SunMap-style front-end design flow.

The paper's NoC synthesis flow (its design-flow figure) feeds the
xpipesCompiler from SunMap: the application is captured as a
communication graph, mapped onto candidate topologies, floorplanned,
and the best topology is selected using quick area/power/latency
estimations.  This package implements that front end:

* :mod:`~repro.flow.taskgraph` -- application task graphs and the core
  communication graphs derived from them;
* :mod:`~repro.flow.mapping` -- greedy and simulated-annealing mapping
  of cores onto a switch fabric;
* :mod:`~repro.flow.floorplan` -- grid floorplanning and wire-length /
  link-pipelining estimation;
* :mod:`~repro.flow.selection` -- topology selection driven by the
  synthesis models (the paper's "power of abstraction" loop);
* :mod:`~repro.flow.runner` -- parallel, disk-cached execution of
  independent experiment points (see ``docs/PERFORMANCE.md``).
"""

from repro.flow.bandwidth import LinkLoad, check_feasibility, link_loads
from repro.flow.dse import DesignPoint, explore_design_space, pareto_frontier, render_space
from repro.flow.floorplan import Floorplan, floorplan_topology
from repro.flow.mapping import (
    anneal_mapping,
    apply_mapping,
    greedy_mapping,
    mapping_cost,
)
from repro.flow.runner import ExperimentRunner, PointReport, stable_repr
from repro.flow.selection import CandidateResult, select_topology
from repro.flow.taskgraph import (
    CoreGraph,
    CoreSpec,
    TaskGraph,
    demo_multimedia_soc,
    demo_telecom_soc,
)

__all__ = [
    "CandidateResult",
    "DesignPoint",
    "LinkLoad",
    "explore_design_space",
    "pareto_frontier",
    "render_space",
    "check_feasibility",
    "link_loads",
    "CoreGraph",
    "CoreSpec",
    "ExperimentRunner",
    "Floorplan",
    "PointReport",
    "stable_repr",
    "TaskGraph",
    "anneal_mapping",
    "apply_mapping",
    "demo_multimedia_soc",
    "demo_telecom_soc",
    "floorplan_topology",
    "greedy_mapping",
    "mapping_cost",
    "select_topology",
]
