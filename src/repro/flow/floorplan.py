"""Floorplanning: switch placement, wire lengths, link pipelining.

SunMap's floorplanner box.  Switches are placed on a coarse grid of
tiles; each tile is sized by the silicon attached to it (switch + its
NIs + core estimate).  Wire lengths follow Manhattan distance between
tile centres, and every link is assigned the pipeline stages needed to
close timing at the NoC's clock given a signal-propagation budget per
stage -- exactly the reasoning that makes the paper's switches
"designed for pipelined links".
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.core.config import LinkConfig
from repro.network.topology import Topology

#: Reachable wire distance per clock at 1 GHz in a 130 nm process, mm.
#: Scales inversely with frequency: faster clocks reach shorter wires.
MM_PER_STAGE_AT_1GHZ = 2.0


@dataclass
class Floorplan:
    """Placement result: tile coordinates per switch plus wiring stats."""

    positions: Dict[str, Tuple[float, float]]  # switch -> (x, y) in mm
    tile_mm: float
    link_lengths_mm: Dict[Tuple[str, str], float] = field(default_factory=dict)

    @property
    def total_wirelength_mm(self) -> float:
        return sum(self.link_lengths_mm.values())

    def bounding_box_mm2(self) -> float:
        xs = [p[0] for p in self.positions.values()]
        ys = [p[1] for p in self.positions.values()]
        if not xs:
            return 0.0
        return (max(xs) - min(xs) + self.tile_mm) * (max(ys) - min(ys) + self.tile_mm)

    def stages_for(self, a: str, b: str, freq_mhz: float) -> int:
        """Pipeline stages the a-b link needs at an operating frequency."""
        length = self.link_lengths_mm.get((a, b)) or self.link_lengths_mm.get((b, a))
        if length is None:
            raise KeyError(f"no link between {a!r} and {b!r} in this floorplan")
        return stages_for_length(length, freq_mhz)

    def max_stages(self, freq_mhz: float) -> int:
        """Deepest link pipelining anywhere in the floorplan."""
        if not self.link_lengths_mm:
            return 1
        return max(
            stages_for_length(length, freq_mhz)
            for length in self.link_lengths_mm.values()
        )


def stages_for_length(length_mm: float, freq_mhz: float) -> int:
    """Repeater/pipeline stages needed for a wire at a clock frequency."""
    if length_mm < 0:
        raise ValueError("length must be non-negative")
    if freq_mhz <= 0:
        raise ValueError("frequency must be positive")
    reach = MM_PER_STAGE_AT_1GHZ * (1000.0 / freq_mhz)
    return max(1, math.ceil(length_mm / reach))


def _grid_dimensions(n: int) -> Tuple[int, int]:
    cols = math.ceil(math.sqrt(n))
    rows = math.ceil(n / cols)
    return rows, cols


def floorplan_topology(
    topology: Topology,
    tile_mm: float = 1.0,
    iterations: int = 1500,
    seed: int = 0,
) -> Floorplan:
    """Place switches on a tile grid minimizing weighted wirelength.

    Mesh-like topologies with coordinates are placed directly on their
    natural grid; anything else gets a simulated-annealing slot
    assignment on the smallest square grid that fits.
    """
    switches = topology.switches
    if not switches:
        raise ValueError("cannot floorplan an empty topology")

    if topology.coords and len(topology.coords) == len(switches):
        positions = {
            s: (c[0] * tile_mm, c[1] * tile_mm) for s, c in topology.coords.items()
        }
        return _finish(topology, positions, tile_mm)

    rows, cols = _grid_dimensions(len(switches))
    slots = [(x * tile_mm, y * tile_mm) for y in range(rows) for x in range(cols)]
    rng = random.Random(seed)
    order = list(switches)
    rng.shuffle(order)
    assign = {s: i for i, s in enumerate(order)}

    def cost() -> float:
        total = 0.0
        for a, b in topology.graph.edges:
            ax, ay = slots[assign[a]]
            bx, by = slots[assign[b]]
            total += abs(ax - bx) + abs(ay - by)
        return total

    cur = cost()
    best_assign, best_cost = dict(assign), cur
    temp = max(cur / 10.0, 1.0)
    alpha = 0.998
    free_slots = list(range(len(switches), len(slots)))
    for _ in range(iterations):
        a = rng.choice(switches)
        if free_slots and rng.random() < 0.3:
            # Move to an empty slot.
            j = rng.choice(free_slots)
            old = assign[a]
            assign[a] = j
            new = cost()
            if new <= cur or rng.random() < math.exp((cur - new) / temp):
                free_slots.remove(j)
                free_slots.append(old)
                cur = new
            else:
                assign[a] = old
        else:
            b = rng.choice(switches)
            if a == b:
                continue
            assign[a], assign[b] = assign[b], assign[a]
            new = cost()
            if new <= cur or rng.random() < math.exp((cur - new) / temp):
                cur = new
            else:
                assign[a], assign[b] = assign[b], assign[a]
        if cur < best_cost:
            best_assign, best_cost = dict(assign), cur
        temp = max(temp * alpha, 1e-3)

    positions = {s: slots[i] for s, i in best_assign.items()}
    return _finish(topology, positions, tile_mm)


def _finish(
    topology: Topology,
    positions: Dict[str, Tuple[float, float]],
    tile_mm: float,
) -> Floorplan:
    plan = Floorplan(positions=positions, tile_mm=tile_mm)
    for a, b in topology.graph.edges:
        ax, ay = positions[a]
        bx, by = positions[b]
        plan.link_lengths_mm[(a, b)] = abs(ax - bx) + abs(ay - by)
    return plan


def link_configs_from_floorplan(
    plan: Floorplan,
    freq_mhz: float,
    base: Optional[LinkConfig] = None,
) -> Dict[frozenset, LinkConfig]:
    """Per-link pipeline configurations implied by a floorplan.

    For each placed switch-to-switch wire, the stages needed to close
    timing at ``freq_mhz`` are computed from its Manhattan length; the
    result plugs straight into
    :attr:`repro.network.noc.NocBuildConfig.link_overrides`, closing
    the loop from floorplanning back into cycle-accurate simulation.
    NI attachment links are tile-local and keep the base config.
    """
    base = base or LinkConfig()
    overrides: Dict[frozenset, LinkConfig] = {}
    for (a, b), length in plan.link_lengths_mm.items():
        stages = stages_for_length(length, freq_mhz)
        if stages != base.stages:
            overrides[frozenset((a, b))] = replace(base, stages=stages)
    return overrides
