"""Mapping cores onto a switch fabric.

SunMap's "mapping onto topologies" step: given a core communication
graph and a bare switch fabric, decide which switch each core's NI
attaches to, minimizing hop-weighted communication (demand x hop count
summed over all core pairs).  Two engines are provided: a fast greedy
constructor and a simulated-annealing refiner that starts from it.

A mapping is a plain ``{core name -> switch name}`` dict;
:func:`apply_mapping` turns the fabric + mapping into an attached
:class:`~repro.network.topology.Topology` ready for the compiler.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

import networkx as nx

from repro.core.config import NocParameters
from repro.flow.taskgraph import CoreGraph
from repro.network.topology import Topology


def _hop_matrix(fabric: Topology) -> Dict[str, Dict[str, int]]:
    return dict(nx.all_pairs_shortest_path_length(fabric.graph))


def mapping_cost(
    core_graph: CoreGraph,
    fabric: Topology,
    mapping: Dict[str, str],
    hops: Optional[Dict[str, Dict[str, int]]] = None,
) -> float:
    """Hop-weighted communication cost of a mapping.

    Each demand pays ``rate * (hops between its switches + 1)``: the +1
    accounts for the NI injection/ejection hop so co-located cores are
    not free (they still cross their shared switch).
    """
    if hops is None:
        hops = _hop_matrix(fabric)
    total = 0.0
    for src, dst, rate in core_graph.demands():
        total += rate * (hops[mapping[src]][mapping[dst]] + 1)
    return total


def _slot_capacity(fabric: Topology, max_radix: int) -> Dict[str, int]:
    """NIs each switch can still take without exceeding ``max_radix``."""
    return {s: max(0, max_radix - fabric.radix_of(s)) for s in fabric.switches}


def greedy_mapping(
    core_graph: CoreGraph,
    fabric: Topology,
    max_radix: int = 8,
) -> Dict[str, str]:
    """Place cores in descending demand order, each where it is cheapest.

    The heaviest-communicating core seeds the fabric's most central
    switch; every next core tries all switches with free capacity and
    takes the one minimizing its demand-weighted distance to already
    placed partners.
    """
    hops = _hop_matrix(fabric)
    capacity = _slot_capacity(fabric, max_radix)
    if sum(capacity.values()) < len(core_graph.cores):
        raise ValueError(
            f"fabric has capacity for {sum(capacity.values())} NIs at "
            f"max_radix={max_radix}, need {len(core_graph.cores)}"
        )
    # Order cores by total attached demand, heaviest first.
    order = sorted(
        core_graph.cores,
        key=lambda c: -sum(
            core_graph.demand_between(c, o) for o in core_graph.cores if o != c
        ),
    )
    centrality = nx.closeness_centrality(fabric.graph) if len(fabric.switches) > 1 else {
        s: 1.0 for s in fabric.switches
    }
    mapping: Dict[str, str] = {}
    for core in order:
        best, best_cost = None, math.inf
        for sw in fabric.switches:
            if capacity[sw] <= 0:
                continue
            cost = sum(
                core_graph.demand_between(core, other) * (hops[sw][mapping[other]] + 1)
                for other in mapping
            )
            # Tie-break toward central switches for the seed core.
            cost -= 1e-6 * centrality.get(sw, 0.0)
            if cost < best_cost:
                best, best_cost = sw, cost
        assert best is not None
        mapping[core] = best
        capacity[best] -= 1
    return mapping


def bandwidth_penalty(
    core_graph: CoreGraph,
    fabric: Topology,
    mapping: Dict[str, str],
    params: NocParameters,
    hops: Optional[Dict[str, Dict[str, int]]] = None,
) -> float:
    """Overload pressure of a mapping, for bandwidth-aware annealing.

    A cheap proxy for the exact per-link routing of
    :mod:`repro.flow.bandwidth`: each demand's flit rate is charged to
    its whole path length, and the squared total penalizes
    concentrating traffic.  Zero when total pressure is comfortably
    below a one-flit-per-cycle-per-hop budget.
    """
    from repro.flow.bandwidth import demand_to_flit_rate

    if hops is None:
        hops = _hop_matrix(fabric)
    pressure = 0.0
    for src, dst, rate in core_graph.demands():
        flits = demand_to_flit_rate(rate, params)
        pressure += flits * (hops[mapping[src]][mapping[dst]] + 1)
    links = max(2 * fabric.graph.number_of_edges(), 1)
    utilization = pressure / links
    overload = max(0.0, utilization - 0.5)  # headroom margin
    return overload * overload


def anneal_mapping(
    core_graph: CoreGraph,
    fabric: Topology,
    initial: Optional[Dict[str, str]] = None,
    max_radix: int = 8,
    iterations: int = 2000,
    t_start: float = 10.0,
    t_end: float = 0.01,
    seed: int = 0,
    bandwidth_params: Optional[NocParameters] = None,
    bandwidth_weight: float = 1000.0,
) -> Dict[str, str]:
    """Refine a mapping by simulated annealing (swap / move neighbourhood).

    Moves relocate one core to a switch with free capacity or swap two
    cores; acceptance follows the Metropolis criterion with geometric
    cooling.  Deterministic for a given seed.

    When ``bandwidth_params`` is given, the objective adds
    ``bandwidth_weight x`` :func:`bandwidth_penalty`, steering the
    anneal away from mappings that concentrate more flit traffic than
    the fabric's links can carry (SunMap's bandwidth-constrained mode).
    """
    rng = random.Random(seed)
    hops = _hop_matrix(fabric)
    mapping = dict(initial) if initial else greedy_mapping(core_graph, fabric, max_radix)
    capacity = _slot_capacity(fabric, max_radix)
    for sw in mapping.values():
        capacity[sw] -= 1
    if any(v < 0 for v in capacity.values()):
        raise ValueError("initial mapping exceeds switch capacity")

    def objective(m: Dict[str, str]) -> float:
        total = mapping_cost(core_graph, fabric, m, hops)
        if bandwidth_params is not None:
            total += bandwidth_weight * bandwidth_penalty(
                core_graph, fabric, m, bandwidth_params, hops
            )
        return total

    cores: List[str] = list(core_graph.cores)
    switches = fabric.switches
    cost = objective(mapping)
    best_mapping, best_cost = dict(mapping), cost
    alpha = (t_end / t_start) ** (1.0 / max(iterations - 1, 1))
    temp = t_start

    for _ in range(iterations):
        if rng.random() < 0.5:
            # Move one core to a switch with a free slot.
            core = rng.choice(cores)
            frees = [s for s in switches if capacity[s] > 0 and s != mapping[core]]
            if not frees:
                temp *= alpha
                continue
            dest = rng.choice(frees)
            old = mapping[core]
            mapping[core] = dest
            new_cost = objective(mapping)
            if _accept(new_cost - cost, temp, rng):
                capacity[old] += 1
                capacity[dest] -= 1
                cost = new_cost
            else:
                mapping[core] = old
        else:
            # Swap two cores.
            a, b = rng.sample(cores, 2)
            if mapping[a] == mapping[b]:
                temp *= alpha
                continue
            mapping[a], mapping[b] = mapping[b], mapping[a]
            new_cost = objective(mapping)
            if _accept(new_cost - cost, temp, rng):
                cost = new_cost
            else:
                mapping[a], mapping[b] = mapping[b], mapping[a]
        if cost < best_cost:
            best_mapping, best_cost = dict(mapping), cost
        temp *= alpha
    return best_mapping


def _accept(delta: float, temp: float, rng: random.Random) -> bool:
    if delta <= 0:
        return True
    if temp <= 0:
        return False
    return rng.random() < math.exp(-delta / temp)


def apply_mapping(
    fabric: Topology,
    core_graph: CoreGraph,
    mapping: Dict[str, str],
) -> Topology:
    """Attach every core's NI to its mapped switch (mutates the fabric)."""
    for core in core_graph.cores:
        if core not in mapping:
            raise ValueError(f"core {core!r} unmapped")
    for core, spec in core_graph.cores.items():
        if spec.is_initiator:
            fabric.add_initiator(core)
        else:
            fabric.add_target(core)
        fabric.attach(core, mapping[core])
    return fabric
