"""Topology selection: the "power of abstraction" loop.

For each candidate fabric the flow maps the application, floorplans,
pipelines the links, runs the analytic synthesis models and estimates
average transaction latency -- then ranks candidates by a user-weighted
objective.  This is the paper's F7 experiment: different topologies for
the same application trade clock frequency, area and cycle counts
(e.g. 925 MHz / 0.51 mm² / +10% performance vs 850 MHz / 0.42 mm² /
-14% area).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import networkx as nx

from repro.flow.bandwidth import LinkLoad, check_feasibility
from repro.flow.floorplan import Floorplan, floorplan_topology
from repro.flow.mapping import anneal_mapping, apply_mapping, greedy_mapping, mapping_cost
from repro.flow.taskgraph import CoreGraph
from repro.network.noc import NocBuildConfig
from repro.network.topology import Topology
from repro.synth.report import SynthesisReport, synthesize_noc

#: Cycles a flit spends per hop: 2 switch pipeline stages + 1 link stage.
CYCLES_PER_HOP = 3
#: Fixed NI cycles per transaction (packetize + depacketize, both ends).
NI_OVERHEAD_CYCLES = 6


@dataclass
class CandidateResult:
    """Evaluation of one candidate topology for one application."""

    topology: Topology
    mapping: Dict[str, str]
    floorplan: Floorplan
    report: SynthesisReport
    freq_mhz: float
    area_mm2: float
    power_mw: float
    mean_cycles: float  # demand-weighted transaction latency in cycles
    mean_latency_ns: float
    mapping_cost: float
    feasible: bool = True  # all links within bandwidth margin
    overloaded: "List[LinkLoad]" = None  # type: ignore[assignment]

    @property
    def name(self) -> str:
        return self.topology.name

    def row(self) -> str:
        return (
            f"{self.name:<16} {self.freq_mhz:>7.0f} MHz {self.area_mm2:>7.3f} mm2 "
            f"{self.power_mw:>8.1f} mW {self.mean_cycles:>6.1f} cyc "
            f"{self.mean_latency_ns:>7.2f} ns"
        )


def estimate_mean_cycles(
    core_graph: CoreGraph,
    topology: Topology,
    mapping: Dict[str, str],
    params: "NocParameters | None" = None,
    burst_len: int = 4,
) -> float:
    """Demand-weighted average one-way transaction latency in cycles.

    Three terms per demand: hop traversal (``CYCLES_PER_HOP`` each), the
    fixed NI overhead, and wormhole serialization -- a packet of *n*
    flits finishes *n - 1* cycles after its head, so narrow flits pay
    for their cheap datapaths in latency (the tradeoff the A3 ablation
    measures and the DSE sweeps).
    """
    from repro.core.config import NocParameters
    from repro.flow.bandwidth import flits_per_transaction

    params = params or NocParameters()
    serialization = flits_per_transaction(params, burst_len) - 1
    hops = dict(nx.all_pairs_shortest_path_length(topology.graph))
    total_rate = 0.0
    total_cycles = 0.0
    for src, dst, rate in core_graph.demands():
        hop_count = hops[mapping[src]][mapping[dst]] + 1  # + ejection hop
        total_cycles += rate * (
            hop_count * CYCLES_PER_HOP + NI_OVERHEAD_CYCLES + serialization
        )
        total_rate += rate
    if total_rate == 0:
        return float(NI_OVERHEAD_CYCLES + serialization)
    return total_cycles / total_rate


def evaluate_candidate(
    core_graph: CoreGraph,
    fabric: Topology,
    config: Optional[NocBuildConfig] = None,
    target_freq_mhz: float = 1000.0,
    max_radix: int = 8,
    anneal_iterations: int = 1500,
    seed: int = 0,
) -> CandidateResult:
    """Map, floorplan and estimate one candidate fabric.

    The fabric is deep-copied before cores are attached, so callers can
    reuse candidate objects across evaluations.
    """
    fabric = copy.deepcopy(fabric)
    mapping = anneal_mapping(
        core_graph,
        fabric,
        initial=greedy_mapping(core_graph, fabric, max_radix),
        max_radix=max_radix,
        iterations=anneal_iterations,
        seed=seed,
    )
    topo = apply_mapping(fabric, core_graph, mapping)
    plan = floorplan_topology(topo)
    report = synthesize_noc(topo, config, target_freq_mhz=target_freq_mhz)
    freq = min(report.min_max_freq_mhz, target_freq_mhz)
    cfg = config
    params = cfg.params if cfg is not None else None
    if params is None:
        from repro.core.config import NocParameters

        params = NocParameters()
    cycles = estimate_mean_cycles(core_graph, topo, mapping, params=params)
    feasible, overloaded = check_feasibility(topo, core_graph, params)
    return CandidateResult(
        topology=topo,
        mapping=mapping,
        floorplan=plan,
        report=report,
        freq_mhz=freq,
        area_mm2=report.total_area_mm2,
        power_mw=report.total_power_mw,
        mean_cycles=cycles,
        mean_latency_ns=cycles / (freq / 1000.0),
        mapping_cost=mapping_cost(core_graph, topo, mapping),
        feasible=feasible,
        overloaded=overloaded,
    )


def select_topology(
    core_graph: CoreGraph,
    candidates: Sequence[Topology],
    config: Optional[NocBuildConfig] = None,
    target_freq_mhz: float = 1000.0,
    objective: Optional[Callable[[CandidateResult], float]] = None,
    max_radix: int = 8,
    seed: int = 0,
) -> List[CandidateResult]:
    """Evaluate all candidates; return them sorted best-first.

    The default objective minimizes latency x area (a standard
    energy-delay-style product); pass ``objective`` to re-weight, e.g.
    ``lambda r: r.area_mm2`` for an area-driven selection.
    """
    if not candidates:
        raise ValueError("need at least one candidate topology")
    if objective is None:
        # Minimise latency x area; bandwidth-infeasible candidates are
        # pushed to the bottom regardless of their other merits.
        objective = lambda r: (  # noqa: E731
            (0 if r.feasible else 1),
            r.mean_latency_ns * r.area_mm2,
        )
    results = [
        evaluate_candidate(
            core_graph,
            fabric,
            config=config,
            target_freq_mhz=target_freq_mhz,
            max_radix=max_radix,
            seed=seed,
        )
        for fabric in candidates
    ]
    results.sort(key=objective)
    return results
