"""Design-space exploration: the paper's concluding claim, as a tool.

"Allows faster & more accurate design space exploration" -- this module
is that loop: sweep topology x flit width x buffer depth for one
application, estimate every point with the synthesis models (seconds,
not synthesis runs), and keep the Pareto frontier over
(latency, area, power).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.core.config import NocParameters
from repro.flow.selection import CandidateResult, evaluate_candidate
from repro.flow.taskgraph import CoreGraph
from repro.network.noc import NocBuildConfig
from repro.network.topology import Topology


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of the design space."""

    topology_name: str
    flit_width: int
    buffer_depth: int
    latency_ns: float
    area_mm2: float
    power_mw: float
    freq_mhz: float
    feasible: bool

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance over (latency, area, power); feasibility is
        a hard gate -- an infeasible point never dominates."""
        if not self.feasible:
            return False
        if other.feasible:
            no_worse = (
                self.latency_ns <= other.latency_ns
                and self.area_mm2 <= other.area_mm2
                and self.power_mw <= other.power_mw
            )
            better = (
                self.latency_ns < other.latency_ns
                or self.area_mm2 < other.area_mm2
                or self.power_mw < other.power_mw
            )
            return no_worse and better
        return True  # feasible always dominates infeasible

    def row(self) -> str:
        flag = " " if self.feasible else "!"
        return (
            f"{flag}{self.topology_name:<12} flit{self.flit_width:<4} "
            f"buf{self.buffer_depth:<3} {self.latency_ns:>7.2f} ns "
            f"{self.area_mm2:>7.3f} mm2 {self.power_mw:>8.1f} mW "
            f"@{self.freq_mhz:>5.0f} MHz"
        )


def _evaluate_design_point(point: tuple) -> DesignPoint:
    """Evaluate one (core_graph, fabric, width, depth, knobs) combo.

    Module-level so an :class:`repro.flow.runner.ExperimentRunner` can
    pickle it into worker processes and hash it for the result cache.
    Deep-copies the fabric because mapping attaches NIs to it.
    """
    core_graph, fabric, width, depth, target_freq_mhz, max_radix, seed, anneal_iterations = point
    cfg = NocBuildConfig(
        params=NocParameters(flit_width=width),
        buffer_depth=depth,
    )
    result: CandidateResult = evaluate_candidate(
        core_graph,
        copy.deepcopy(fabric),
        config=cfg,
        target_freq_mhz=target_freq_mhz,
        max_radix=max_radix,
        anneal_iterations=anneal_iterations,
        seed=seed,
    )
    return DesignPoint(
        topology_name=fabric.name,
        flit_width=width,
        buffer_depth=depth,
        latency_ns=result.mean_latency_ns,
        area_mm2=result.area_mm2,
        power_mw=result.power_mw,
        freq_mhz=result.freq_mhz,
        feasible=result.feasible,
    )


def explore_design_space(
    core_graph: CoreGraph,
    candidates: Sequence[Topology],
    flit_widths: Iterable[int] = (16, 32, 64),
    buffer_depths: Iterable[int] = (4, 6),
    target_freq_mhz: float = 1000.0,
    max_radix: int = 8,
    seed: int = 0,
    anneal_iterations: int = 600,
    runner=None,
) -> List[DesignPoint]:
    """Evaluate the full cross product; returns every point.

    Each point is independent, so an optional ``runner``
    (:class:`repro.flow.runner.ExperimentRunner`) parallelizes and
    caches the sweep; both Topology and CoreGraph expose the
    ``cache_token()`` the cache keys need.
    """
    if not candidates:
        raise ValueError("need at least one candidate topology")
    combos = [
        (core_graph, fabric, width, depth, target_freq_mhz, max_radix, seed, anneal_iterations)
        for fabric in candidates
        for width in flit_widths
        for depth in buffer_depths
    ]
    if runner is None:
        return [_evaluate_design_point(p) for p in combos]
    return runner.map(_evaluate_design_point, combos, label="dse")


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated points, sorted by latency.

    Comparison is by *value*, never identity: points restored from the
    result store, a cache pickle, or another process are equal to (but
    not the same object as) their originals, and value-equal duplicates
    collapse to one frontier entry instead of distorting it.
    """
    unique = list(dict.fromkeys(points))  # value-dedup, order preserved
    frontier = [
        p for p in unique if not any(q.dominates(p) for q in unique if q != p)
    ]
    frontier.sort(key=lambda p: (p.latency_ns, p.area_mm2))
    return frontier


def render_space(
    points: Sequence[DesignPoint],
    frontier: Optional[Sequence[DesignPoint]] = None,
    title: str = "design space",
) -> str:
    frontier = list(frontier or [])
    # Membership by value, not id(): a frozen DesignPoint hashes by its
    # field values, so points that round-tripped through the cache, the
    # result store or a worker process still earn their ``*``.
    on_frontier = set(frontier)
    lines = [f"{title} ({len(points)} points, {len(frontier)} on the frontier)"]
    for p in sorted(points, key=lambda p: (p.topology_name, p.flit_width, p.buffer_depth)):
        marker = "*" if p in on_frontier else " "
        lines.append(f" {marker}{p.row()}")
    return "\n".join(lines)
