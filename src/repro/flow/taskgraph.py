"""Application task graphs and core communication graphs.

The design flow starts from the application: tasks exchanging data at
known rates, assigned to processing cores (the paper's
"P2(T2), P4(T4)..." example).  Folding the task graph through the
task-to-core assignment yields the *core graph*: initiator/target cores
with pairwise bandwidth demands, which is what mapping and topology
selection consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import networkx as nx


@dataclass(frozen=True)
class CoreSpec:
    """One core of the SoC: an OCP master or slave."""

    name: str
    is_initiator: bool


class TaskGraph:
    """Directed graph of tasks with communication demands.

    Edge weights are in words per 1000 cycles (a rate, so demands stay
    meaningful whatever the final clock turns out to be).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.graph = nx.DiGraph()

    def add_task(self, task: str) -> None:
        self.graph.add_node(task)

    def add_flow(self, src: str, dst: str, rate: float) -> None:
        """Declare that ``src`` sends ``rate`` words/kcycle to ``dst``."""
        if rate <= 0:
            raise ValueError("flow rate must be positive")
        for t in (src, dst):
            if t not in self.graph:
                self.graph.add_node(t)
        if self.graph.has_edge(src, dst):
            self.graph[src][dst]["rate"] += rate
        else:
            self.graph.add_edge(src, dst, rate=rate)

    @property
    def tasks(self) -> List[str]:
        return list(self.graph.nodes)

    def flows(self) -> List[Tuple[str, str, float]]:
        return [(u, v, d["rate"]) for u, v, d in self.graph.edges(data=True)]

    def fold(self, assignment: Dict[str, str], cores: Iterable[CoreSpec]) -> "CoreGraph":
        """Fold tasks onto cores; intra-core flows vanish.

        ``assignment`` maps every task to a core name.  Task flows
        whose endpoint core is a *target* (slave) stay as initiator ->
        target demands; flows between two initiator cores are modelled
        as going through a shared memory and are rejected -- split them
        explicitly in the task graph (that is what the paper's
        application example does: tasks talk through slaves).
        """
        core_graph = CoreGraph(f"{self.name}-cores", cores)
        for task in self.tasks:
            if task not in assignment:
                raise ValueError(f"task {task!r} has no core assignment")
        for src, dst, rate in self.flows():
            a, b = assignment[src], assignment[dst]
            if a == b:
                continue
            core_graph.add_demand(a, b, rate)
        return core_graph


class CoreGraph:
    """Cores plus pairwise bandwidth demands (words/kcycle).

    Demands must run initiator -> target or target -> initiator (an OCP
    transaction always has a master end and a slave end).
    """

    def __init__(self, name: str, cores: Iterable[CoreSpec]) -> None:
        self.name = name
        self.cores: Dict[str, CoreSpec] = {}
        for c in cores:
            if c.name in self.cores:
                raise ValueError(f"duplicate core {c.name!r}")
            self.cores[c.name] = c
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(self.cores)

    @property
    def initiators(self) -> List[str]:
        return [n for n, c in self.cores.items() if c.is_initiator]

    @property
    def targets(self) -> List[str]:
        return [n for n, c in self.cores.items() if not c.is_initiator]

    def add_demand(self, src: str, dst: str, rate: float) -> None:
        if src not in self.cores or dst not in self.cores:
            raise ValueError(f"unknown core in demand {src!r} -> {dst!r}")
        if rate <= 0:
            raise ValueError("demand rate must be positive")
        if self.cores[src].is_initiator == self.cores[dst].is_initiator:
            raise ValueError(
                f"demand {src!r} -> {dst!r} connects two "
                f"{'initiators' if self.cores[src].is_initiator else 'targets'}; "
                "route it through a slave"
            )
        if self.graph.has_edge(src, dst):
            self.graph[src][dst]["rate"] += rate
        else:
            self.graph.add_edge(src, dst, rate=rate)

    def demands(self) -> List[Tuple[str, str, float]]:
        return [(u, v, d["rate"]) for u, v, d in self.graph.edges(data=True)]

    def cache_token(self) -> tuple:
        """Stable content identity for experiment-cache keys (see
        :func:`repro.flow.runner.stable_repr`)."""
        return (
            "CoreGraph",
            self.name,
            tuple(sorted(self.cores.items())),
            tuple(sorted(self.demands())),
        )

    def demand_between(self, a: str, b: str) -> float:
        """Total demand in both directions between two cores."""
        total = 0.0
        if self.graph.has_edge(a, b):
            total += self.graph[a][b]["rate"]
        if self.graph.has_edge(b, a):
            total += self.graph[b][a]["rate"]
        return total

    def total_demand(self) -> float:
        return sum(r for _, _, r in self.demands())

    def initiator_demands(self, initiator: str) -> Dict[str, float]:
        """Demand of one master per target, both directions combined.

        Master-to-target demand is write traffic, target-to-master is
        read traffic; traffic generation folds both into one injection
        rate per target (splitting read/write by their share is the
        caller's choice).
        """
        out: Dict[str, float] = {}
        for _, dst, rate in self.graph.out_edges(initiator, data="rate"):
            out[dst] = out.get(dst, 0.0) + rate
        for src, _, rate in self.graph.in_edges(initiator, data="rate"):
            out[src] = out.get(src, 0.0) + rate
        return out


def demo_multimedia_soc() -> Tuple[TaskGraph, Dict[str, str], CoreGraph]:
    """The running example: a small multimedia SoC.

    Five processing tasks (the paper's T1..T5 application-mapping
    example) pipelined through shared memories, plus a DMA-style
    background flow.  Returns (task graph, task assignment, folded core
    graph) with 4 initiators and 4 targets.
    """
    tg = TaskGraph("multimedia")
    # Producer -> buffer -> consumer chains, rates in words/kcycle.
    tg.add_flow("t1_capture", "buf_in", 120.0)
    tg.add_flow("buf_in", "t2_dct", 120.0)
    tg.add_flow("t2_dct", "buf_mid", 90.0)
    tg.add_flow("buf_mid", "t3_quant", 90.0)
    tg.add_flow("t3_quant", "buf_out", 60.0)
    tg.add_flow("buf_out", "t4_vlc", 60.0)
    tg.add_flow("t4_vlc", "frame_store", 30.0)
    tg.add_flow("t5_dma", "frame_store", 45.0)
    tg.add_flow("t5_dma", "buf_in", 25.0)

    cores = [
        CoreSpec("cpu0", True),   # capture
        CoreSpec("cpu1", True),   # dct
        CoreSpec("cpu2", True),   # quant + vlc
        CoreSpec("dma", True),
        CoreSpec("sram0", False),  # buf_in
        CoreSpec("sram1", False),  # buf_mid
        CoreSpec("sram2", False),  # buf_out
        CoreSpec("dram", False),   # frame store
    ]
    assignment = {
        "t1_capture": "cpu0",
        "t2_dct": "cpu1",
        "t3_quant": "cpu2",
        "t4_vlc": "cpu2",
        "t5_dma": "dma",
        "buf_in": "sram0",
        "buf_mid": "sram1",
        "buf_out": "sram2",
        "frame_store": "dram",
    }
    core_graph = tg.fold(assignment, cores)
    return tg, assignment, core_graph


def demo_telecom_soc() -> Tuple[TaskGraph, Dict[str, str], CoreGraph]:
    """A second reference application: a baseband/packet-processing SoC.

    Two parallel receive chains converging on a shared packet buffer,
    a control processor touching everything lightly, and a DMA moving
    payloads to external memory -- a wider, flatter communication
    pattern than :func:`demo_multimedia_soc`'s pipeline, so the two
    demos stress mapping and selection differently.
    """
    tg = TaskGraph("telecom")
    for chain in ("a", "b"):
        tg.add_flow(f"rx_{chain}", f"fifo_{chain}", 140.0)
        tg.add_flow(f"fifo_{chain}", f"demod_{chain}", 140.0)
        tg.add_flow(f"demod_{chain}", "pkt_buf", 70.0)
    tg.add_flow("mac", "pkt_buf", 40.0)
    tg.add_flow("pkt_buf", "mac", 60.0)
    tg.add_flow("dma_eng", "ext_mem", 110.0)
    tg.add_flow("pkt_buf", "dma_eng", 55.0)
    tg.add_flow("ctl", "cfg_regs", 5.0)
    tg.add_flow("cfg_regs", "ctl", 5.0)

    cores = [
        CoreSpec("dsp0", True),   # rx/demod chain a
        CoreSpec("dsp1", True),   # rx/demod chain b
        CoreSpec("mac_cpu", True),
        CoreSpec("ctl_cpu", True),
        CoreSpec("dma", True),
        CoreSpec("buf_a", False),
        CoreSpec("buf_b", False),
        CoreSpec("pkt_sram", False),
        CoreSpec("dram", False),
        CoreSpec("regs", False),
    ]
    assignment = {
        "rx_a": "dsp0", "demod_a": "dsp0", "fifo_a": "buf_a",
        "rx_b": "dsp1", "demod_b": "dsp1", "fifo_b": "buf_b",
        "mac": "mac_cpu", "ctl": "ctl_cpu", "dma_eng": "dma",
        "pkt_buf": "pkt_sram", "ext_mem": "dram", "cfg_regs": "regs",
    }
    core_graph = tg.fold(assignment, cores)
    return tg, assignment, core_graph
