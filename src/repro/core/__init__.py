"""The xpipes Lite component library.

This package is the paper's primary contribution: a parameterizable,
synthesis-oriented library of NoC building blocks --

* flits and packets (:mod:`~repro.core.flit`, :mod:`~repro.core.packet`),
* the OCP transaction layer (:mod:`~repro.core.ocp`),
* transaction-centric packetization (:mod:`~repro.core.packetizer`),
* initiator/target network interfaces (:mod:`~repro.core.ni`),
* the 2-stage output-queued wormhole switch (:mod:`~repro.core.switch`),
* pipelined unreliable links (:mod:`~repro.core.link`) and the go-back-N
  ACK/NACK flow & error control that rides them
  (:mod:`~repro.core.flow_control`),
* source routing (:mod:`~repro.core.routing`).

Every block is parameterized through the dataclasses in
:mod:`~repro.core.config`, mirroring the C++ class-template parameters
the xpipesCompiler specializes.
"""

from repro.core.credit import CreditReceiver, CreditSender, CreditToken
from repro.core.credit_switch import InputBufferedSwitch
from repro.core.config import (
    ArbitrationPolicy,
    LinkConfig,
    NiConfig,
    NocParameters,
    SwitchConfig,
)
from repro.core.flit import Flit, FlitType
from repro.core.ocp import (
    BurstTransaction,
    OcpCmd,
    OcpMasterPort,
    OcpResponse,
    OcpSlavePort,
    SResp,
)
from repro.core.packet import Packet, PacketHeader, PacketKind
from repro.core.packetizer import Depacketizer, Packetizer
from repro.core.routing import Route, RoutingTable, compute_routes

__all__ = [
    "ArbitrationPolicy",
    "CreditReceiver",
    "CreditSender",
    "CreditToken",
    "InputBufferedSwitch",
    "BurstTransaction",
    "Depacketizer",
    "Flit",
    "FlitType",
    "LinkConfig",
    "NiConfig",
    "NocParameters",
    "OcpCmd",
    "OcpMasterPort",
    "OcpResponse",
    "OcpSlavePort",
    "Packet",
    "PacketHeader",
    "PacketKind",
    "Packetizer",
    "Route",
    "RoutingTable",
    "SResp",
    "SwitchConfig",
    "compute_routes",
]
