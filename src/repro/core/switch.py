"""The xpipes Lite switch.

The paper's switch is:

* **output queued** -- the only buffering is a FIFO per output port;
* **2-stage pipelined** -- one input/allocation stage, one crossbar/
  output stage (the original xpipes switch took 7 stages; that depth is
  still instantiable via ``SwitchConfig.pipeline_stages`` for the F8
  latency comparison);
* **wormhole switched** -- a head flit that wins an output port locks it
  for its packet until the tail flit passes;
* **source routed** -- the output port is read from the head flit's
  route field and the field is shifted (here: ``route_offset`` advances);
* protected by **ACK/NACK flow & error control** -- a flit that loses
  allocation, finds the output queue full, or arrives corrupted is
  NACKed and will be retransmitted by the upstream sender's go-back-N
  buffer.  There are no credits anywhere.

Timing: a flit visible on an input wire in cycle *t* that wins
allocation is pushed into its output queue in *t*, moves into the output
port's retransmission buffer and onto the output wire in *t + 1*, and is
visible downstream in *t + 2* -- the 2-stage pipeline.  Extra configured
stages insert a shift register between crossbar and output queue.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.core.arbiter import make_arbiter
from repro.core.buffers import BoundedFifo
from repro.core.config import SwitchConfig
from repro.core.crc import CrcCodec
from repro.core.flit import Flit
from repro.core.flow_control import GoBackNReceiver, GoBackNSender, window_for_link
from repro.sim.channel import FlitChannel
from repro.sim.component import Component


class SwitchProtocolError(RuntimeError):
    """A flit stream violated wormhole framing (e.g. body without head)."""


class _OutputPort:
    """One output: delay pipe (extra stages) + queue + go-back-N sender."""

    def __init__(self, index: int, config: SwitchConfig, sender: GoBackNSender, name: str) -> None:
        self.index = index
        self.sender = sender
        self.queue: BoundedFifo[Flit] = BoundedFifo(config.buffer_depth, f"{name}.q{index}")
        extra = config.pipeline_stages - 2
        self.delay: Deque[Optional[Flit]] = deque([None] * max(extra, 0))
        self.locked_input: Optional[int] = None
        self.flits_out = 0

    @property
    def in_delay(self) -> int:
        return sum(1 for f in self.delay if f is not None)

    def has_space(self) -> bool:
        """Can one more flit be committed to this output this cycle?"""
        return self.queue.free > self.in_delay

    def reset(self) -> None:
        self.queue.clear()
        self.delay = deque([None] * len(self.delay))
        self.locked_input = None
        self.sender.reset()
        self.flits_out = 0


class Switch(Component):
    """A single xpipes Lite switch instance.

    Parameters
    ----------
    name:
        Component name.
    config:
        Port counts, queue depth, pipeline depth, arbitration policy.
    in_channels:
        One :class:`FlitChannel` per input; this switch is the receiver.
    out_channels:
        One :class:`FlitChannel` per output; this switch is the sender.
    out_windows:
        Go-back-N window per output channel; must cover the round trip
        of the attached link (see
        :func:`repro.core.flow_control.window_for_link`).  A single int
        applies to all outputs.
    """

    def __init__(
        self,
        name: str,
        config: SwitchConfig,
        in_channels: Sequence[FlitChannel],
        out_channels: Sequence[FlitChannel],
        out_windows: "int | Sequence[int]" = None,  # type: ignore[assignment]
        codec: "CrcCodec | None" = None,
    ) -> None:
        super().__init__(name)
        if len(in_channels) != config.n_inputs:
            raise ValueError(
                f"{name}: {config.n_inputs} inputs configured, "
                f"{len(in_channels)} channels given"
            )
        if len(out_channels) != config.n_outputs:
            raise ValueError(
                f"{name}: {config.n_outputs} outputs configured, "
                f"{len(out_channels)} channels given"
            )
        self.config = config
        if out_windows is None:
            out_windows = window_for_link(1)
        if isinstance(out_windows, int):
            out_windows = [out_windows] * config.n_outputs
        self.receivers = [
            GoBackNReceiver(ch, name=f"{name}.in{i}", codec=codec)
            for i, ch in enumerate(in_channels)
        ]
        self.outputs = [
            _OutputPort(
                i,
                config,
                GoBackNSender(ch, window=w, name=f"{name}.out{i}", codec=codec),
                name,
            )
            for i, (ch, w) in enumerate(zip(out_channels, out_windows))
        ]
        self._arbiters = [
            make_arbiter(config.arbitration, config.n_inputs) for _ in range(config.n_outputs)
        ]
        # Wormhole state per input: output this input's current packet
        # is locked onto, or None between packets.
        self._input_dest: List[Optional[int]] = [None] * config.n_inputs
        self.flits_routed = 0
        self.allocation_conflicts = 0
        #: Lifecycle telemetry (see :mod:`repro.telemetry.lifecycle`):
        #: when enabled, head-flit arrival cycles are tracked per input
        #: so each packet hop emits a ``hop`` trace event carrying its
        #: arbitration wait.  Off by default -- the only disabled-mode
        #: cost is one boolean test per stage.
        self.lifecycle = False
        # Per input: (packet_id, first cycle its head was seen here).
        self._head_arrival: "List[Optional[tuple]]" = [None] * config.n_inputs

    def reset(self) -> None:
        for r in self.receivers:
            r.reset()
        for o in self.outputs:
            o.reset()
        for a in self._arbiters:
            a.reset()
        # In place: compiled programs bind this list at elaboration.
        self._input_dest[:] = [None] * self.config.n_inputs
        self.flits_routed = 0
        self.allocation_conflicts = 0
        self._head_arrival = [None] * self.config.n_inputs

    # -- fast-path quiescence contract ------------------------------------
    def wake_inputs(self):
        wires = [r.channel.forward for r in self.receivers]
        wires.extend(o.sender.channel.backward for o in self.outputs)
        return wires

    def is_quiescent(self) -> bool:
        # With every input wire idle, a tick moves nothing: all queues
        # and delay pipes empty, every sender out of work.  (The sender
        # property also keeps resync-armed senders awake so their
        # timeout counters tick; this runs once per awake cycle.)
        for o in self.outputs:
            if not o.queue.is_empty or not o.sender.quiescent:
                return False
            for f in o.delay:
                if f is not None:
                    return False
        return True

    # -- per-cycle behaviour ----------------------------------------------
    def tick(self, cycle: int) -> None:
        self._output_stage(cycle)
        self._input_stage(cycle)

    def _output_stage(self, cycle: int) -> None:
        """Queue head -> retransmission buffer -> wire; shift delay pipes."""
        for port in self.outputs:
            sender = port.sender
            if (
                port.queue.is_empty
                and not port.delay
                and sender.quiescent
                and sender.channel.backward.value is None
            ):
                # Nothing queued, nothing to (re)transmit, no ACK to
                # consume: the whole port is a no-op this cycle.
                continue
            # Queue head moves to the wire first, then one delay-pipe
            # slot matures into the queue -- so each extra stage really
            # costs one cycle.
            if not port.queue.is_empty and port.sender.can_accept():
                flit = port.queue.pop()
                port.sender.enqueue(flit)
                port.flits_out += 1
            if port.delay:
                ready = port.delay.popleft()
                if ready is not None:
                    port.queue.push(ready)
            port.sender.on_cycle()

    def _requested_output(self, input_index: int, flit: Flit) -> int:
        if flit.is_head:
            hop = flit.next_hop
            if hop >= self.config.n_outputs:
                raise SwitchProtocolError(
                    f"{self.name}: route asks for output {hop} of "
                    f"{self.config.n_outputs} ({flit!r})"
                )
            return hop
        dest = self._input_dest[input_index]
        if dest is None:
            raise SwitchProtocolError(
                f"{self.name}: body/tail flit on idle input {input_index}: {flit!r}"
            )
        return dest

    def _input_stage(self, cycle: int) -> None:
        """Route, allocate, and move winning flits into output queues."""
        # Every input wire idle (the common case on a lightly loaded
        # switch that is only awake to shepherd ACKs): nothing to
        # route, allocate, poll or NACK -- just keep delay pipes full.
        for r in self.receivers:
            if r.channel.forward.value is not None:
                break
        else:
            if self.config.pipeline_stages > 2:
                for port in self.outputs:
                    port.delay.append(None)
            return
        # Phase 1: candidate flit per input (clean + in sequence only).
        candidates: List[Optional[Flit]] = [r.peek() for r in self.receivers]
        requested: List[Optional[int]] = [None] * self.config.n_inputs
        for i, flit in enumerate(candidates):
            if flit is not None:
                requested[i] = self._requested_output(i, flit)
        if self.lifecycle:
            # First sighting of each head flit: the anchor for the hop's
            # arbitration-wait measurement.  Retransmissions of the same
            # head (same packet id) keep the original arrival cycle.
            for i, flit in enumerate(candidates):
                if flit is not None and flit.is_head:
                    seen = self._head_arrival[i]
                    if seen is None or seen[0] != flit.packet_id:
                        self._head_arrival[i] = (flit.packet_id, cycle)

        # Phase 2: one winner per output.
        winner_of: List[Optional[int]] = [None] * self.config.n_outputs
        for out_idx, port in enumerate(self.outputs):
            contenders = [
                i
                for i in range(self.config.n_inputs)
                if requested[i] == out_idx
            ]
            if not contenders:
                continue
            if port.locked_input is not None:
                # Wormhole: the owning packet has exclusive use.
                winner = port.locked_input if port.locked_input in contenders else None
                losers = [i for i in contenders if i != winner]
            else:
                reqs = [i in contenders for i in range(self.config.n_inputs)]
                winner = self._arbiters[out_idx].grant(reqs)
                losers = [i for i in contenders if i != winner]
            self.allocation_conflicts += len(losers)
            if winner is not None and port.has_space():
                winner_of[out_idx] = winner

        # Phase 3: poll every receiver; winners are accepted (ACK), the
        # rest are NACKed and retried by the upstream go-back-N sender.
        committed = [False] * self.config.n_outputs
        for i, receiver in enumerate(self.receivers):
            out_idx = requested[i]
            granted = out_idx is not None and winner_of[out_idx] == i
            accepted = receiver.poll(lambda _flit, ok=granted: ok)
            if accepted is None:
                continue
            assert out_idx is not None
            self._commit(i, out_idx, accepted, cycle)
            committed[out_idx] = True

        # Keep each delay pipe at its fixed length: outputs that did not
        # receive a flit this cycle shift in a bubble.
        for out_idx, port in enumerate(self.outputs):
            if self.config.pipeline_stages > 2 and not committed[out_idx]:
                port.delay.append(None)

    def _commit(self, input_index: int, out_idx: int, flit: Flit, cycle: int) -> None:
        """A flit won allocation: update wormhole state, enter the output."""
        port = self.outputs[out_idx]
        if self.lifecycle and flit.is_head:
            seen = self._head_arrival[input_index]
            arrival = (
                seen[1] if seen is not None and seen[0] == flit.packet_id else cycle
            )
            self._head_arrival[input_index] = None
            self.trace(
                cycle,
                "hop",
                pkt=flit.packet_id,
                inp=input_index,
                out=out_idx,
                arrival=arrival,
                wait=cycle - arrival,
            )
        if flit.is_head:
            flit = flit.advance_route()
            if not flit.is_tail:
                port.locked_input = input_index
                self._input_dest[input_index] = out_idx
        if flit.is_tail and not flit.is_head:
            port.locked_input = None
            self._input_dest[input_index] = None
        if self.config.pipeline_stages > 2:
            # Extra pipeline stages (deep-pipeline/original-xpipes mode).
            port.delay.append(flit)
        else:
            port.queue.push(flit)
        self.flits_routed += 1
        self.trace(cycle, "route", flit=repr(flit), inp=input_index, out=out_idx)
