"""Flits: the unit of link-level transfer.

A packet is decomposed into flits of ``flit_width`` bits (the paper's
"flit decomposition").  The head flit carries enough of the header for
switches to route; the tail flit releases the wormhole path.  Single-flit
packets are both head and tail.

Flit payloads are plain integers (bit-accurate), so packetization and
reassembly are real bit-shuffling operations that property tests can
round-trip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


class FlitType(enum.Enum):
    HEAD = "head"
    BODY = "body"
    TAIL = "tail"
    HEAD_TAIL = "head_tail"  # single-flit packet

    @property
    def is_head(self) -> bool:
        return self in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        return self in (FlitType.TAIL, FlitType.HEAD_TAIL)


class IdSource:
    """A resettable ``itertools.count``: checkpoint/restore must be able
    to read and rewind the allocator, because allocated ids live inside
    in-flight flit and transaction state (see repro.sim.snapshot)."""

    __slots__ = ("next_value",)

    def __init__(self, start: int = 1) -> None:
        self.next_value = start

    def __next__(self) -> int:
        value = self.next_value
        self.next_value = value + 1
        return value

    def __iter__(self) -> "IdSource":
        return self


_packet_ids = IdSource(1)


def next_packet_id() -> int:
    """Globally unique packet id (simulation bookkeeping only).

    Allocated from a resettable counter so simulator checkpoints can
    capture and rewind it (ids are embedded in in-flight flits).
    """
    return next(_packet_ids)


@dataclass(frozen=True, slots=True)
class Flit:
    """One flit on a link.

    Attributes
    ----------
    ftype:
        Position within the packet (head/body/tail).
    payload:
        ``width`` bits of packet content, as a non-negative int.
    width:
        Flit width in bits.
    packet_id:
        Simulation-level identity of the owning packet (not transmitted
        on real wires; used for tracing and latency accounting).
    index:
        Flit position within the packet, 0-based.
    route:
        On head flits, the full source route as a tuple of output-port
        indices.  In hardware these are the leading bits of the header
        (and therefore of this flit's ``payload``); they are duplicated
        here as parsed metadata so switches need not re-slice bits every
        hop.  The packetizer guarantees payload/route consistency.
    route_offset:
        How many route hops have been consumed so far.  In hardware the
        head flit's route field is shifted in place; modelling it as an
        offset keeps flits immutable and testing simple.
    seqno:
        Link-level go-back-N sequence number; stamped by the sender FSM,
        meaningless end to end.
    corrupted:
        Set by the link error model in abstract mode; stands for "the
        receiver's CRC check will fail".
    crc:
        In bit-accurate mode, the CRC the sender computed over the
        payload; the receiver recomputes and compares.  -1 when the
        link runs in abstract (flag-based) mode.
    birth_cycle:
        Cycle the flit was first injected (for network latency stats).
    """

    ftype: FlitType
    payload: int
    width: int
    packet_id: int = 0
    index: int = 0
    route: Optional[Tuple[int, ...]] = None
    route_offset: int = 0
    seqno: int = -1
    corrupted: bool = False
    crc: int = -1  # link-level CRC (bit-accurate mode); -1 = not carried
    birth_cycle: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.payload < 0:
            raise ValueError("flit payload must be non-negative")
        if self.payload >= (1 << self.width):
            raise ValueError(
                f"payload {self.payload:#x} does not fit in {self.width} bits"
            )

    @property
    def is_head(self) -> bool:
        return self.ftype.is_head

    @property
    def is_tail(self) -> bool:
        return self.ftype.is_tail

    @property
    def next_hop(self) -> int:
        """Output port to take at the current switch (head flits only)."""
        if self.route is None:
            raise ValueError(f"{self!r} carries no route")
        if self.route_offset >= len(self.route):
            raise ValueError(f"{self!r} has exhausted its route")
        return self.route[self.route_offset]

    def advance_route(self) -> "Flit":
        """Consume one route hop (what the switch does in hardware)."""
        c = _clone(self)
        _set(c, "route_offset", self.route_offset + 1)
        return c

    def with_seqno(self, seqno: int) -> "Flit":
        c = _clone(self)
        _set(c, "seqno", seqno)
        return c

    def with_route_offset(self, offset: int) -> "Flit":
        c = _clone(self)
        _set(c, "route_offset", offset)
        return c

    def corrupt(self) -> "Flit":
        c = _clone(self)
        _set(c, "corrupted", True)
        return c

    def with_crc(self, crc: int) -> "Flit":
        c = _clone(self)
        _set(c, "crc", crc)
        return c

    def flip_bits(self, positions) -> "Flit":
        """Invert payload bits (the bit-accurate link error model)."""
        payload = self.payload
        for b in positions:
            if not 0 <= b < self.width:
                raise ValueError(f"bit {b} outside a {self.width}-bit flit")
            payload ^= 1 << b
        return replace(self, payload=payload)

    def stamped(self, cycle: int) -> "Flit":
        c = _clone(self)
        _set(c, "birth_cycle", cycle)
        return c

    def __repr__(self) -> str:
        tag = {"head": "H", "body": "B", "tail": "T", "head_tail": "HT"}[self.ftype.value]
        corrupt = "!" if self.corrupted else ""
        return f"Flit<{tag}{corrupt} pkt={self.packet_id}#{self.index} seq={self.seqno}>"


_new = object.__new__
_set = object.__setattr__


def _clone(f: Flit) -> Flit:
    """Field-for-field copy of a frozen flit, bypassing ``__init__``.

    The single-field mutators above are the per-hop hot path of the whole
    simulator (every link traversal stamps a seqno, every switch consumes
    a route hop).  ``dataclasses.replace`` rebuilds a field dict and
    re-runs ``__post_init__`` on every call; none of those mutators can
    invalidate the payload/width check, so a raw slot copy is
    behaviourally identical and severalfold cheaper.  ``flip_bits`` keeps
    ``replace`` -- it does change the payload.
    """
    c = _new(Flit)
    _set(c, "ftype", f.ftype)
    _set(c, "payload", f.payload)
    _set(c, "width", f.width)
    _set(c, "packet_id", f.packet_id)
    _set(c, "index", f.index)
    _set(c, "route", f.route)
    _set(c, "route_offset", f.route_offset)
    _set(c, "seqno", f.seqno)
    _set(c, "corrupted", f.corrupted)
    _set(c, "crc", f.crc)
    _set(c, "birth_cycle", f.birth_cycle)
    return c


def flit_type_for(index: int, total: int) -> FlitType:
    """Flit type of flit ``index`` in an ``total``-flit packet."""
    if total <= 0:
        raise ValueError("a packet has at least one flit")
    if total == 1:
        return FlitType.HEAD_TAIL
    if index == 0:
        return FlitType.HEAD
    if index == total - 1:
        return FlitType.TAIL
    return FlitType.BODY
