"""Network interfaces: the OCP <-> packet boundary.

The NI is split front end / back end exactly as in the paper:

* the **front end** speaks OCP to the attached core -- transaction
  centric, independent request and response flows, bursts, sideband
  interrupts and thread IDs;
* the **back end** speaks the network protocol -- it packetizes each
  transaction into one header register plus one payload register per
  burst beat, decomposes them into flits, and drives a go-back-N
  ACK/NACK sender toward the local switch (and the mirror image on the
  receive side).

Two flavours exist: :class:`InitiatorNI` (master core side: CPUs, DMAs)
and :class:`TargetNI` (slave core side: memories, peripherals).  Their
LUTs come from the xpipesCompiler as :class:`~repro.core.routing.RoutingTable`
objects: the initiator LUT maps MAddr upper bits to (destination,
route); the target LUT maps an initiator id to the response route.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.core.config import NiConfig
from repro.core.crc import CrcCodec
from repro.core.credit import CreditReceiver, CreditSender
from repro.core.flit import Flit
from repro.core.flow_control import GoBackNReceiver, GoBackNSender, window_for_link
from repro.core.ocp import (
    BurstTransaction,
    OcpCmd,
    OcpMasterPort,
    OcpResponse,
    OcpSlavePort,
    SidebandEvent,
    SResp,
)
from repro.core.packet import Packet, PacketHeader, PacketKind
from repro.core.packetizer import Depacketizer, Packetizer
from repro.core.routing import RoutingTable
from repro.sim.channel import FlitChannel
from repro.sim.component import Component
from repro.sim.stats import LatencySampler


class NiProtocolError(RuntimeError):
    """The NI observed traffic that violates its end-to-end protocol."""


class _BackEndTx:
    """Shared transmit back end: packet queue -> flit stream -> go-back-N."""

    def __init__(self, packetizer: Packetizer, sender: GoBackNSender, capacity: int) -> None:
        self.packetizer = packetizer
        self.sender = sender
        self.capacity = capacity
        self._flits: Deque[Flit] = deque()
        self._queued_packets = 0
        self.packets_sent = 0

    def reset(self) -> None:
        self._flits.clear()
        self._queued_packets = 0
        self.packets_sent = 0
        self.sender.reset()

    def can_accept_packet(self) -> bool:
        return self._queued_packets < self.capacity

    def submit(self, packet: Packet, cycle: int) -> None:
        if not self.can_accept_packet():
            raise NiProtocolError("back end packet queue overflow")
        flits = self.packetizer.decompose(packet, birth_cycle=cycle)
        self._flits.extend(flits)
        self._queued_packets += 1
        self.packets_sent += 1

    def on_cycle(self) -> None:
        if self._flits and self.sender.can_accept():
            flit = self._flits.popleft()
            if flit.is_tail:
                self._queued_packets -= 1
            self.sender.enqueue(flit)
        self.sender.on_cycle()

    @property
    def idle(self) -> bool:
        return not self._flits and self.sender.idle

    @property
    def quiescent(self) -> bool:
        """No flit left to move absent reverse-channel traffic."""
        return not self._flits and self.sender.quiescent


class _OutstandingTxn:
    """Book-keeping for one non-posted transaction awaiting a response.

    Carries the request packet so an armed transaction timeout can
    retransmit it, the absolute deadline cycle, the remaining retry
    budget, and how many times the request went onto the network
    (``submissions`` -- used to budget stale late responses).
    """

    __slots__ = ("txn", "packet", "deadline", "retries_left", "submissions")

    def __init__(self, txn, packet, deadline, retries_left):
        self.txn = txn
        self.packet = packet
        self.deadline = deadline
        self.retries_left = retries_left
        self.submissions = 1


class InitiatorNI(Component):
    """NI attached to an OCP master core (CPU, DSP, DMA...).

    Request path: OCP transaction -> LUT lookup -> header + payload
    registers -> flit decomposition -> ACK/NACK sender.  Response path:
    ACK/NACK receiver -> reassembly -> OCP response, matched to the
    oldest outstanding transaction for the same (target, thread) pair
    (the network delivers in order per path and per thread).

    With ``config.txn_timeout`` set, each non-posted transaction is also
    watched end to end: no response within the timeout retransmits the
    request packet up to ``config.txn_retries`` times, after which the
    master receives ``SResp.ERR`` instead of hanging forever.  Because
    response matching is positional (no transaction id on the wire,
    as in the reference design), a late response for a retried or
    failed transaction is absorbed against a per-key stale budget
    rather than raising a protocol error.
    """

    def __init__(
        self,
        name: str,
        node_id: int,
        config: NiConfig,
        ocp: OcpMasterPort,
        req_channel: FlitChannel,
        resp_channel: FlitChannel,
        routing: RoutingTable,
        link_window: Optional[int] = None,
        codec: Optional[CrcCodec] = None,
        credit_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self.node_id = node_id
        self.config = config
        self.ocp = ocp
        self.routing = routing
        window = link_window if link_window is not None else window_for_link(1)
        if credit_capacity is not None:
            # Credit mode: the downstream input buffer has
            # ``credit_capacity`` slots; receive side grants our own
            # buffer_depth back to the switch.
            sender = CreditSender(req_channel, credit_capacity, name=f"{name}.tx")
            self.rx = CreditReceiver(resp_channel, name=f"{name}.rx")
        else:
            sender = GoBackNSender(req_channel, window, name=f"{name}.tx", codec=codec)
            self.rx = GoBackNReceiver(resp_channel, name=f"{name}.rx", codec=codec)
        self.tx = _BackEndTx(
            Packetizer(config.params),
            sender,
            capacity=config.max_outstanding,
        )
        self._credit_mode = credit_capacity is not None
        self.depacketizer = Depacketizer(config.params)
        self._last_txn_id: Optional[int] = None
        # txn_id queues keyed by (target node id, thread id); response
        # packets identify their origin via header.src_id.
        self._outstanding: Dict[Tuple[int, int], Deque[_OutstandingTxn]] = {}
        self._outstanding_count = 0
        # Late responses tolerated per key after retries/failures (the
        # network has no txn id, so staleness is budgeted, not proven).
        self._stale_budget: Dict[Tuple[int, int], int] = {}
        self._resp_queue: Deque[OcpResponse] = deque()
        self._sideband_queue: Deque[SidebandEvent] = deque()
        # OCP threading: per-thread issue order + resequencing buffer
        # (used when config.enforce_thread_order is set).
        self._thread_order: Dict[int, Deque[int]] = {}
        self._reorder: Dict[int, OcpResponse] = {}
        # instrumentation
        self.transactions_issued = 0
        self.responses_delivered = 0
        self.interrupts_delivered = 0
        self.transactions_retried = 0
        self.transactions_failed = 0
        self.stale_responses = 0
        #: Pure network latency: packet injection -> full reassembly,
        #: excluding OCP handshakes and memory service time.
        self.packet_latency = LatencySampler(f"{name}.pkt_latency")
        #: Lifecycle telemetry (see :mod:`repro.telemetry.lifecycle`):
        #: when enabled, packet injection and ejection emit span-anchor
        #: trace events.  Off by default.
        self.lifecycle = False

    def reset(self) -> None:
        self.tx.reset()
        self.rx.reset()
        self.depacketizer.reset()
        self.packet_latency.reset()
        self._last_txn_id = None
        self._outstanding.clear()
        self._outstanding_count = 0
        self._stale_budget.clear()
        self._resp_queue.clear()
        self._sideband_queue.clear()
        self._thread_order.clear()
        self._reorder.clear()
        self.transactions_issued = 0
        self.responses_delivered = 0
        self.interrupts_delivered = 0
        self.transactions_retried = 0
        self.transactions_failed = 0
        self.stale_responses = 0

    @property
    def idle(self) -> bool:
        """No transaction in flight anywhere in this NI."""
        return (
            self.tx.idle
            and self._outstanding_count == 0
            and not self._resp_queue
            and not self._reorder
            and not self.depacketizer.busy
        )

    # -- fast-path quiescence contract ------------------------------------
    def wake_inputs(self):
        if self._credit_mode:
            # Credit senders must transmit without reverse traffic (the
            # initial credit allowance), so credit NIs stay always-on.
            return None
        return (
            self.ocp.request,
            self.ocp.response_accept,
            self.rx.channel.forward,
            self.tx.sender.channel.backward,
        )

    def is_quiescent(self) -> bool:
        # Outstanding transactions and half-reassembled packets wait on
        # the response wire; only locally-pending work forces a tick.
        # An armed transaction timeout makes waiting itself stateful:
        # the NI must tick to advance its deadlines.
        if self.config.txn_timeout is not None and self._outstanding_count > 0:
            return False
        return (
            self.tx.quiescent
            and not self._resp_queue
            and not self._sideband_queue
            and not self._reorder
        )

    # -- request path ------------------------------------------------------
    def _try_accept_request(self, cycle: int) -> None:
        txn = self.ocp.peek_request()
        if txn is None or txn.txn_id == self._last_txn_id:
            return
        if not self.tx.can_accept_packet():
            return
        if self._outstanding_count >= self.config.max_outstanding:
            return
        target, dest_id, offset, route = self.routing.lookup_addr(txn.addr)
        if txn.is_read:
            kind = PacketKind.READ_REQ
        elif self.config.posted_writes:
            kind = PacketKind.WRITE_POSTED
        else:
            kind = PacketKind.WRITE_REQ
        header = PacketHeader(
            route=tuple(route),
            kind=kind,
            src_id=self.node_id,
            burst_len=txn.burst_len,
            addr=offset,
            thread_id=txn.thread_id,
        )
        packet = Packet(header=header, payload=tuple(txn.data))
        self.tx.submit(packet, cycle)
        if self.lifecycle:
            self.trace(
                cycle,
                "pkt_inject",
                pkt=packet.packet_id,
                kind=kind.name,
                dst=dest_id,
            )
        local_ack = kind is PacketKind.WRITE_POSTED
        if not local_ack:
            deadline = (
                cycle + self.config.txn_timeout
                if self.config.txn_timeout is not None
                else None
            )
            record = _OutstandingTxn(txn, packet, deadline, self.config.txn_retries)
            self._outstanding.setdefault((dest_id, txn.thread_id), deque()).append(
                record
            )
            self._outstanding_count += 1
        self._last_txn_id = txn.txn_id
        self.ocp.accept_request(txn.txn_id)
        self.transactions_issued += 1
        resp = (
            OcpResponse(txn_id=txn.txn_id, sresp=SResp.DVA, thread_id=txn.thread_id)
            if local_ack
            else None
        )
        if self.config.enforce_thread_order:
            self._thread_order.setdefault(txn.thread_id, deque()).append(txn.txn_id)
            if resp is not None:
                self._reorder[txn.txn_id] = resp
        elif resp is not None:
            self._resp_queue.append(resp)
        self.trace(cycle, "issue", txn=txn.txn_id, target=target, kind=kind.name)

    # -- response path -----------------------------------------------------
    def _accept_resp_flit(self, _flit: Flit) -> bool:
        return len(self._resp_queue) < self.config.max_outstanding

    def _handle_response_packet(self, packet: Packet, cycle: int) -> None:
        header = packet.header
        if header.kind is PacketKind.INTERRUPT:
            self._sideband_queue.append(
                SidebandEvent(source_id=header.src_id, vector=header.addr)
            )
            return
        if not header.kind.is_response:
            raise NiProtocolError(f"{self.name}: unexpected {header.kind.name} packet")
        key = (header.src_id, header.thread_id)
        pending = self._outstanding.get(key)
        if not pending:
            if self._stale_budget.get(key, 0) > 0:
                # Late response for a transaction we already retried or
                # failed: absorb it instead of crying protocol error.
                self._stale_budget[key] -= 1
                self.stale_responses += 1
                self.trace(cycle, "stale-response", src=header.src_id)
                return
            raise NiProtocolError(
                f"{self.name}: response from node {header.src_id} "
                f"thread {header.thread_id} with nothing outstanding"
            )
        head = pending[0]
        kind_mismatch = (
            header.kind is PacketKind.READ_RESP and not head.txn.is_read
        ) or (header.kind is PacketKind.WRITE_ACK and not head.txn.is_write)
        if kind_mismatch and self._stale_budget.get(key, 0) > 0:
            self._stale_budget[key] -= 1
            self.stale_responses += 1
            self.trace(cycle, "stale-response", src=header.src_id)
            return
        record = pending.popleft()
        txn = record.txn
        self._outstanding_count -= 1
        if record.submissions > 1:
            # The request went out several times; the extra responses
            # (if the network ever delivers them) are stale.
            self._stale_budget[key] = (
                self._stale_budget.get(key, 0) + record.submissions - 1
            )
        if header.kind is PacketKind.READ_RESP and not txn.is_read:
            raise NiProtocolError(f"{self.name}: READ_RESP for a write (txn {txn.txn_id})")
        if header.kind is PacketKind.WRITE_ACK and not txn.is_write:
            raise NiProtocolError(f"{self.name}: WRITE_ACK for a read (txn {txn.txn_id})")
        resp = OcpResponse(
            txn_id=txn.txn_id,
            sresp=SResp.DVA,
            data=tuple(packet.payload),
            thread_id=header.thread_id,
        )
        if self.config.enforce_thread_order:
            # Resequencing buffer: hold until this is the oldest
            # incomplete transaction of its thread.
            self._reorder[txn.txn_id] = resp
        else:
            self._resp_queue.append(resp)
        self.trace(cycle, "response", txn=txn.txn_id, kind=header.kind.name)

    def _drain_reorder(self) -> None:
        """Release resequenced responses in per-thread issue order."""
        for order in self._thread_order.values():
            while order and order[0] in self._reorder:
                self._resp_queue.append(self._reorder.pop(order.popleft()))

    def _deliver_error(self, txn: BurstTransaction) -> None:
        """Complete a given-up transaction toward the master as ERR."""
        resp = OcpResponse(
            txn_id=txn.txn_id, sresp=SResp.ERR, thread_id=txn.thread_id
        )
        if self.config.enforce_thread_order:
            self._reorder[txn.txn_id] = resp
        else:
            self._resp_queue.append(resp)

    def _check_timeouts(self, cycle: int) -> None:
        """Retry or fail transactions whose response deadline passed.

        Only the *head* of each (target, thread) queue is eligible: the
        network delivers responses in order per key, so younger entries
        cannot have been answered before the head and popping them out
        of order would corrupt the positional matching.
        """
        for key, pending in self._outstanding.items():
            if not pending:
                continue
            record = pending[0]
            if record.deadline is None or cycle < record.deadline:
                continue
            if record.retries_left > 0:
                if not self.tx.can_accept_packet():
                    continue  # back end full: retry next cycle
                record.retries_left -= 1
                record.deadline = cycle + self.config.txn_timeout
                record.submissions += 1
                self.tx.submit(record.packet, cycle)
                self.transactions_retried += 1
                if self.lifecycle:
                    self.trace(
                        cycle, "pkt_inject", pkt=record.packet.packet_id,
                        kind=record.packet.header.kind.name, dst=key[0],
                        retry=True,
                    )
                self.trace(cycle, "txn-retry", txn=record.txn.txn_id, dst=key[0])
            else:
                pending.popleft()
                self._outstanding_count -= 1
                # Every submission may still produce a late response.
                self._stale_budget[key] = (
                    self._stale_budget.get(key, 0) + record.submissions
                )
                self.transactions_failed += 1
                self._deliver_error(record.txn)
                self.trace(
                    cycle, "txn-timeout", txn=record.txn.txn_id, dst=key[0]
                )

    def tick(self, cycle: int) -> None:
        # Front end: new OCP request?
        self._try_accept_request(cycle)
        # Back end transmit.
        self.tx.on_cycle()
        # Back end receive: at most one flit per cycle.
        if self._credit_mode:
            flit = self.rx.poll()
            if flit is not None:
                self.rx.grant()
            self.rx.on_cycle()
        else:
            flit = self.rx.poll(self._accept_resp_flit)
        if flit is not None:
            packet = self.depacketizer.feed(flit)
            if packet is not None:
                if packet.birth_cycle >= 0:
                    self.packet_latency.samples.append(cycle - packet.birth_cycle)
                if self.lifecycle:
                    self.trace(
                        cycle,
                        "pkt_eject",
                        pkt=packet.packet_id,
                        kind=packet.header.kind.name,
                        latency=(
                            cycle - packet.birth_cycle
                            if packet.birth_cycle >= 0
                            else -1
                        ),
                    )
                self._handle_response_packet(packet, cycle)
        if self.config.txn_timeout is not None:
            self._check_timeouts(cycle)
        if self.config.enforce_thread_order:
            self._drain_reorder()
        # Front end: present the oldest completed response until accepted.
        if self._resp_queue:
            accepted_id = self.ocp.accepted_response_id()
            if accepted_id is not None and accepted_id == self._resp_queue[0].txn_id:
                self._resp_queue.popleft()
                self.responses_delivered += 1
            if self._resp_queue:
                self.ocp.drive_response(self._resp_queue[0])
        # Sideband interrupts are single-cycle pulses toward the core.
        if self._sideband_queue:
            self.ocp.raise_sideband(self._sideband_queue.popleft())
            self.interrupts_delivered += 1


class TargetNI(Component):
    """NI attached to an OCP slave core (memory, peripheral...).

    Receive path: flits -> reassembled request packet -> OCP request to
    the slave (addresses are the in-region offsets carried by the
    header).  Transmit path: slave response -> response packet routed
    back via the reverse LUT -> flits.  Sideband events raised by the
    slave become INTERRUPT packets to a configurable initiator.
    """

    def __init__(
        self,
        name: str,
        node_id: int,
        config: NiConfig,
        ocp: OcpSlavePort,
        req_channel: FlitChannel,
        resp_channel: FlitChannel,
        routing: RoutingTable,
        link_window: Optional[int] = None,
        interrupt_target: Optional[int] = None,
        codec: Optional[CrcCodec] = None,
        credit_capacity: Optional[int] = None,
    ) -> None:
        super().__init__(name)
        self.node_id = node_id
        self.config = config
        self.ocp = ocp
        self.routing = routing
        self.interrupt_target = interrupt_target
        window = link_window if link_window is not None else window_for_link(1)
        if credit_capacity is not None:
            sender = CreditSender(resp_channel, credit_capacity, name=f"{name}.tx")
            self.rx = CreditReceiver(req_channel, name=f"{name}.rx")
        else:
            sender = GoBackNSender(resp_channel, window, name=f"{name}.tx", codec=codec)
            self.rx = GoBackNReceiver(req_channel, name=f"{name}.rx", codec=codec)
        self.tx = _BackEndTx(
            Packetizer(config.params),
            sender,
            capacity=config.max_outstanding,
        )
        self._credit_mode = credit_capacity is not None
        self.depacketizer = Depacketizer(config.params)
        self._req_queue: Deque[Tuple[BurstTransaction, PacketHeader]] = deque()
        self._issued: Dict[int, PacketHeader] = {}  # local txn_id -> request header
        self._current: Optional[BurstTransaction] = None
        self._last_resp_txn: Optional[int] = None
        # instrumentation
        self.requests_served = 0
        #: Pure network latency of incoming request packets.
        self.packet_latency = LatencySampler(f"{name}.pkt_latency")
        #: Lifecycle telemetry (see :mod:`repro.telemetry.lifecycle`).
        self.lifecycle = False

    def reset(self) -> None:
        self.tx.reset()
        self.rx.reset()
        self.depacketizer.reset()
        self.packet_latency.reset()
        self._req_queue.clear()
        self._issued.clear()
        self._current = None
        self._last_resp_txn = None
        self.requests_served = 0

    @property
    def idle(self) -> bool:
        return (
            self.tx.idle
            and not self._req_queue
            and not self._issued
            and self._current is None
            and not self.depacketizer.busy
        )

    # -- fast-path quiescence contract ------------------------------------
    def wake_inputs(self):
        if self._credit_mode:
            return None
        return (
            self.rx.channel.forward,
            self.tx.sender.channel.backward,
            self.ocp.request_accept,
            self.ocp.response,
            self.ocp.sideband,
        )

    def is_quiescent(self) -> bool:
        # ``_issued`` entries wait on the slave's response wire; a
        # request being driven (``_current``) must re-drive every cycle.
        return self.tx.quiescent and self._current is None and not self._req_queue

    def _accept_req_flit(self, _flit: Flit) -> bool:
        return len(self._req_queue) < self.config.max_outstanding

    def _handle_request_packet(self, packet: Packet, cycle: int) -> None:
        header = packet.header
        if not header.kind.is_request:
            raise NiProtocolError(f"{self.name}: unexpected {header.kind.name} packet")
        cmd = OcpCmd.READ if header.kind is PacketKind.READ_REQ else OcpCmd.WRITE
        txn = BurstTransaction(
            cmd=cmd,
            addr=header.addr,
            burst_len=header.burst_len,
            data=tuple(packet.payload),
            thread_id=header.thread_id,
            issue_cycle=cycle,
        )
        self._req_queue.append((txn, header))
        self.trace(cycle, "request", src=header.src_id, kind=header.kind.name)

    def _respond(self, resp: OcpResponse, cycle: int) -> None:
        header = self._issued.pop(resp.txn_id)
        if header.kind is PacketKind.WRITE_POSTED:
            # Fire-and-forget: the initiator already acknowledged
            # locally; the slave's response is consumed and dropped.
            self.requests_served += 1
            self.trace(cycle, "posted-done", src=header.src_id)
            return
        route = self.routing.route_back(header.src_id)
        kind = PacketKind.READ_RESP if header.kind is PacketKind.READ_REQ else PacketKind.WRITE_ACK
        burst = header.burst_len
        resp_header = PacketHeader(
            route=tuple(route),
            kind=kind,
            src_id=self.node_id,
            burst_len=burst,
            addr=0,
            thread_id=header.thread_id,
        )
        payload = tuple(resp.data) if kind is PacketKind.READ_RESP else ()
        packet = Packet(header=resp_header, payload=payload)
        self.tx.submit(packet, cycle)
        if self.lifecycle:
            self.trace(
                cycle, "pkt_inject", pkt=packet.packet_id, kind=kind.name,
                dst=header.src_id,
            )
        self.requests_served += 1
        self.trace(cycle, "respond", dst=header.src_id, kind=kind.name)

    def _send_interrupt(self, event: SidebandEvent, cycle: int) -> None:
        if self.interrupt_target is None:
            return  # no interrupt consumer configured: drop silently
        route = self.routing.route_back(self.interrupt_target)
        header = PacketHeader(
            route=tuple(route),
            kind=PacketKind.INTERRUPT,
            src_id=self.node_id,
            burst_len=0,
            addr=event.vector,
            thread_id=0,
        )
        packet = Packet(header=header)
        self.tx.submit(packet, cycle)
        if self.lifecycle:
            self.trace(
                cycle, "pkt_inject", pkt=packet.packet_id,
                kind=PacketKind.INTERRUPT.name, dst=self.interrupt_target,
            )

    def tick(self, cycle: int) -> None:
        # Receive path: at most one flit per cycle.
        if self._credit_mode:
            flit = self.rx.poll()
            if flit is not None:
                self.rx.grant()
            self.rx.on_cycle()
        else:
            flit = self.rx.poll(self._accept_req_flit)
        if flit is not None:
            packet = self.depacketizer.feed(flit)
            if packet is not None:
                if packet.birth_cycle >= 0:
                    self.packet_latency.samples.append(cycle - packet.birth_cycle)
                if self.lifecycle:
                    self.trace(
                        cycle,
                        "pkt_eject",
                        pkt=packet.packet_id,
                        kind=packet.header.kind.name,
                        latency=(
                            cycle - packet.birth_cycle
                            if packet.birth_cycle >= 0
                            else -1
                        ),
                    )
                self._handle_request_packet(packet, cycle)

        # Issue the oldest reassembled request to the slave core.
        if self._current is None and self._req_queue:
            txn, header = self._req_queue.popleft()
            self._current = txn
            self._issued[txn.txn_id] = header
        if self._current is not None:
            if self.ocp.accepted_request_id() == self._current.txn_id:
                self._current = None
            else:
                self.ocp.drive_request(self._current)

        # Collect the slave's response (deduplicated by txn id).
        resp = self.ocp.peek_response()
        if resp is not None and resp.txn_id != self._last_resp_txn:
            if resp.txn_id in self._issued and self.tx.can_accept_packet():
                self._last_resp_txn = resp.txn_id
                self.ocp.accept_response(resp.txn_id)
                self._respond(resp, cycle)

        # Sideband from the slave becomes an INTERRUPT packet.
        event = self.ocp.peek_sideband()
        if event is not None and self.tx.can_accept_packet():
            self._send_interrupt(event, cycle)

        # Back end transmit.
        self.tx.on_cycle()
