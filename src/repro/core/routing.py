"""Source-based routing.

xpipes Lite switches do not hold routing tables: the whole path is
computed at design time by the xpipesCompiler and carried in each packet
header as a sequence of output-port indices ("source based routing").
The only lookup hardware is the LUT inside each NI:

* the **initiator NI** LUT maps the OCP MAddr's upper bits to a
  destination and its pre-computed route;
* the **target NI** LUT maps an initiator id (from the request header)
  to the response route back.

This module defines the :class:`Route` value, the :class:`AddressMap`
that assigns each target a region of the address space, the two LUT
flavours bundled as :class:`RoutingTable`, and
:func:`compute_routes`, which walks a topology object (duck-typed; see
:class:`repro.network.topology.Topology`) and produces the port-index
sequence for every NI pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.packet import ADDR_OFFSET_BITS


@dataclass(frozen=True)
class Route:
    """A source route: one output-port index per switch traversed."""

    ports: Tuple[int, ...]

    def __post_init__(self) -> None:
        for p in self.ports:
            if p < 0:
                raise ValueError("port indices are non-negative")

    def __len__(self) -> int:
        return len(self.ports)

    def __iter__(self):
        return iter(self.ports)

    def __getitem__(self, i: int) -> int:
        return self.ports[i]

    @property
    def hops(self) -> int:
        return len(self.ports)


class AddressMap:
    """Assigns each target NI a naturally aligned address region.

    Target ``i`` (in registration order) owns addresses
    ``[i << ADDR_OFFSET_BITS, (i + 1) << ADDR_OFFSET_BITS)``.  This is
    the "MAddr after LUT" split from the paper: the upper bits select
    the destination, the lower bits travel in the header as the offset.
    """

    def __init__(self, targets: Iterable[str]) -> None:
        self._slots: Dict[str, int] = {}
        for i, name in enumerate(targets):
            if name in self._slots:
                raise ValueError(f"duplicate target {name!r}")
            self._slots[name] = i

    @property
    def targets(self) -> List[str]:
        return sorted(self._slots, key=self._slots.get)

    def base_of(self, target: str) -> int:
        return self._slots[target] << ADDR_OFFSET_BITS

    def region_of(self, target: str) -> Tuple[int, int]:
        base = self.base_of(target)
        return base, base + (1 << ADDR_OFFSET_BITS)

    def decode(self, addr: int) -> Tuple[str, int]:
        """Split an MAddr into (target name, offset)."""
        slot = addr >> ADDR_OFFSET_BITS
        offset = addr & ((1 << ADDR_OFFSET_BITS) - 1)
        for name, s in self._slots.items():
            if s == slot:
                return name, offset
        raise KeyError(f"address {addr:#x} maps to no target (slot {slot})")

    def __contains__(self, target: str) -> bool:
        return target in self._slots

    def __len__(self) -> int:
        return len(self._slots)


class RoutingTable:
    """The LUT contents of one NI.

    For an initiator NI, ``forward`` maps a target name to
    ``(dest_node_id, Route)``.  For a target NI, ``reverse`` maps an
    initiator node id to the response :class:`Route`.
    """

    def __init__(
        self,
        address_map: Optional[AddressMap] = None,
        forward: Optional[Mapping[str, Tuple[int, Route]]] = None,
        reverse: Optional[Mapping[int, Route]] = None,
    ) -> None:
        self.address_map = address_map
        self.forward: Dict[str, Tuple[int, Route]] = dict(forward or {})
        self.reverse: Dict[int, Route] = dict(reverse or {})

    # -- initiator side ---------------------------------------------------
    def lookup_addr(self, addr: int) -> Tuple[str, int, int, Route]:
        """Decode an MAddr: (target name, dest node id, offset, route)."""
        if self.address_map is None:
            raise ValueError("this routing table has no address map")
        target, offset = self.address_map.decode(addr)
        dest_id, route = self.forward[target]
        return target, dest_id, offset, route

    # -- target side ------------------------------------------------------
    def route_back(self, initiator_id: int) -> Route:
        return self.reverse[initiator_id]


def compute_routes(topology, policy: str = "shortest") -> Dict[Tuple[str, str], Route]:
    """Port-index routes between every (initiator NI, target NI) pair.

    ``topology`` is duck-typed and must provide ``initiators``,
    ``targets``, ``switch_of(ni)``, ``switch_path(src, dst, policy)``
    and ``port_toward(switch, neighbor)`` -- see
    :class:`repro.network.topology.Topology`.  Responses reuse the same
    function with the roles swapped, so routes exist in both directions.

    The route for a pair is: for each switch on the path, the output
    port toward the next element (the next switch, or the destination NI
    at the last switch).
    """
    routes: Dict[Tuple[str, str], Route] = {}
    pairs = [(a, b) for a in topology.initiators for b in topology.targets]
    pairs += [(b, a) for a in topology.initiators for b in topology.targets]
    for src, dst in pairs:
        routes[(src, dst)] = route_between(topology, src, dst, policy)
    return routes


def route_between(topology, src_ni: str, dst_ni: str, policy: str = "shortest") -> Route:
    """The source route from one NI to another (see :func:`compute_routes`)."""
    src_sw = topology.switch_of(src_ni)
    dst_sw = topology.switch_of(dst_ni)
    path = topology.switch_path(src_sw, dst_sw, policy)
    ports = []
    for i, sw in enumerate(path):
        nxt = path[i + 1] if i + 1 < len(path) else dst_ni
        ports.append(topology.port_toward(sw, nxt))
    return Route(tuple(ports))
