"""Pipelined, unreliable links.

xpipes Lite targets long on-chip wires that must be pipelined to meet
frequency, and that may corrupt data in flight -- the whole reason the
switch carries ACK/NACK retransmission hardware.  The :class:`Link`
component models one bidirectional link between two network elements:

* the *forward* direction shifts flits through ``stages - 1`` internal
  registers and may corrupt each passing flit with probability
  ``error_rate`` (a detected-error model: CRC logic in the receiver is
  abstracted into the flit's ``corrupted`` flag);
* the *backward* direction shifts ACK/NACK tokens with the same depth
  and is modelled as reliable (ACK wires are short and heavily guarded
  in the reference design; timeout-based recovery is out of scope).

End-to-end timing: a flit driven by the sender in cycle *t* is visible
to the receiver in cycle ``t + stages + 1`` (one cycle for the sender's
output register -- the channel wire -- plus the link's internal
stages).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from repro.core.config import LinkConfig
from repro.core.flit import Flit
from repro.sim.channel import AckSignal, FlitChannel
from repro.sim.component import Component


class Link(Component):
    """One direction-pair of wires between two network elements.

    Parameters
    ----------
    name:
        Component name.
    up:
        Channel whose sender side is driven by the upstream element.
    down:
        Channel whose receiver side is read by the downstream element.
    config:
        Pipeline depth and error rate.
    seed:
        Seed for this link's private error-injection PRNG, so whole
        network simulations are reproducible link by link.
    """

    def __init__(
        self,
        name: str,
        up: FlitChannel,
        down: FlitChannel,
        config: LinkConfig,
        seed: int = 0,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.up = up
        self.down = down
        self._rng = random.Random(seed)
        self._seed = seed
        depth = config.stages - 1
        self._fwd: Deque[Optional[Flit]] = deque([None] * depth)
        self._bwd: Deque[Optional[AckSignal]] = deque([None] * depth)
        self._depth = depth
        self.flits_carried = 0
        self.errors_injected = 0
        self.flits_dropped = 0
        # Transient fault overrides (see repro.faults.FaultInjector):
        # unlike the immutable LinkConfig -- which rejects rate 1.0 --
        # these model *fault windows*: stuck-at links (rate 1.0 for a
        # spell) and dead links that drop flits outright.
        self._fault_rate: Optional[float] = None
        self._fault_drop = False
        #: Lifecycle telemetry (see :mod:`repro.telemetry.lifecycle`):
        #: when enabled, each injected error emits a ``link_error`` trace
        #: event so corrupted hops are visible in the exported timeline.
        self.lifecycle = False

    def reset(self) -> None:
        self._rng = random.Random(self._seed)
        self._fwd = deque([None] * self._depth)
        self._bwd = deque([None] * self._depth)
        self.flits_carried = 0
        self.errors_injected = 0
        self.flits_dropped = 0
        self._fault_rate = None
        self._fault_drop = False

    # -- fault overrides ---------------------------------------------------
    def set_fault(
        self, error_rate: Optional[float] = None, drop: bool = False
    ) -> None:
        """Override the forward-path fault behaviour until cleared.

        ``error_rate`` replaces the configured Bernoulli rate (1.0 ==
        stuck-at: every flit corrupted); ``drop=True`` makes the link
        swallow flits entirely -- a dead link, which the base ACK/NACK
        protocol cannot recover from without a sender resync timeout or
        an NI transaction timeout.
        """
        if error_rate is None and not drop:
            raise ValueError("set_fault needs an error_rate or drop=True; "
                             "use clear_fault() to remove an override")
        if error_rate is not None and not (0.0 <= error_rate <= 1.0):
            raise ValueError(f"fault error_rate must be in [0, 1], got {error_rate}")
        self._fault_rate = error_rate
        self._fault_drop = drop

    def clear_fault(self) -> None:
        self._fault_rate = None
        self._fault_drop = False

    @property
    def fault_active(self) -> bool:
        return self._fault_drop or self._fault_rate is not None

    def _inject(self, flit: Optional[Flit], cycle: int) -> Optional[Flit]:
        if flit is None:
            return None
        if self._fault_drop:
            self.flits_dropped += 1
            if self.lifecycle:
                self.trace(cycle, "link_error", pkt=flit.packet_id, seq=flit.seqno,
                           dropped=True)
            return None
        self.flits_carried += 1
        rate = self._fault_rate if self._fault_rate is not None else self.config.error_rate
        if rate > 0.0 and self._rng.random() < rate:
            self.errors_injected += 1
            if self.lifecycle:
                self.trace(cycle, "link_error", pkt=flit.packet_id, seq=flit.seqno)
            if self.config.bit_errors:
                # Bit-accurate mode: flip one real bit (sometimes two --
                # adjacent coupling faults); detection is the CRC's job.
                # Coupling is physical adjacency, so a fault on the MSB
                # pairs with its lower neighbour rather than wrapping to
                # the LSB on the far side of the bus.
                first = self._rng.randrange(flit.width)
                positions = [first]
                if self._rng.random() < 0.25 and flit.width > 1:
                    second = first + 1 if first + 1 < flit.width else first - 1
                    positions.append(second)
                return flit.flip_bits(positions)
            return flit.corrupt()
        return flit

    # -- fast-path quiescence contract ------------------------------------
    def wake_inputs(self):
        return (self.up.forward, self.down.backward)

    def is_quiescent(self) -> bool:
        # A link is pure shift registers: with both pipes empty and both
        # input wires idle, a tick only shifts bubbles.
        return all(f is None for f in self._fwd) and all(a is None for a in self._bwd)

    def tick(self, cycle: int) -> None:
        # Forward path: sample the upstream wire, shift the pipe.
        incoming = self._inject(self.up.peek_flit(), cycle)
        if self._depth == 0:
            outgoing = incoming
        else:
            self._fwd.append(incoming)
            outgoing = self._fwd.popleft()
        if outgoing is not None:
            self.down.send(outgoing)

        # Backward path: ACK/NACK tokens ride the same pipeline depth.
        ack_in = self.down.peek_ack()
        if self._depth == 0:
            ack_out = ack_in
        else:
            self._bwd.append(ack_in)
            ack_out = self._bwd.popleft()
        if ack_out is not None:
            self.up.send_ack(ack_out)
