"""Packets and their ~50-bit headers.

The xpipes Lite NI is *transaction centric*: each OCP transaction
becomes one packet with a single header register (about 50 bits, built
from MAddr after the LUT lookup plus command/burst fields) followed by
one payload register per burst beat.  This module defines the header
format and its bit-accurate pack/unpack; flit decomposition lives in
:mod:`repro.core.packetizer`.

Header layout, transmitted MSB-first so the source route leads:

=============  ======================  =======================================
field          width                    meaning
=============  ======================  =======================================
route          max_hops * port_bits     output-port index per hop, hop 0 first
kind           3                        packet kind (see :class:`PacketKind`)
src_id         node_id_bits             issuing NI (response routing key)
thread_id      2                        OCP threading extension
burst_len      burst_bits               beats in the transaction
addr           addr_offset_bits         address offset within the target
=============  ======================  =======================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.core.config import NocParameters
from repro.core.flit import next_packet_id

KIND_BITS = 3
THREAD_BITS = 2
ADDR_OFFSET_BITS = 12


class PacketKind(enum.Enum):
    """What a packet carries; 3 bits on the wire."""

    READ_REQ = 0
    WRITE_REQ = 1
    READ_RESP = 2
    WRITE_ACK = 3
    INTERRUPT = 4  # sideband signalling, target -> initiator
    WRITE_POSTED = 5  # fire-and-forget write: no WRITE_ACK comes back

    @property
    def is_request(self) -> bool:
        return self in (
            PacketKind.READ_REQ,
            PacketKind.WRITE_REQ,
            PacketKind.WRITE_POSTED,
        )

    @property
    def is_response(self) -> bool:
        return self in (PacketKind.READ_RESP, PacketKind.WRITE_ACK)

    def payload_beats(self, burst_len: int) -> int:
        """Number of data beats that follow this header."""
        if self in (
            PacketKind.WRITE_REQ,
            PacketKind.WRITE_POSTED,
            PacketKind.READ_RESP,
        ):
            return burst_len
        return 0


@dataclass(frozen=True)
class PacketHeader:
    """The decoded header register of one packet."""

    route: Tuple[int, ...]
    kind: PacketKind
    src_id: int
    burst_len: int
    addr: int
    thread_id: int = 0

    def validate(self, params: NocParameters) -> None:
        """Raise ``ValueError`` if any field exceeds its wire width."""
        if len(self.route) > params.max_hops:
            raise ValueError(
                f"route of {len(self.route)} hops exceeds max_hops={params.max_hops}"
            )
        for hop in self.route:
            if not 0 <= hop < params.max_radix:
                raise ValueError(f"route hop {hop} out of range for {params.port_bits} bits")
        if not 0 <= self.src_id < params.max_nodes:
            raise ValueError(f"src_id {self.src_id} exceeds {params.node_id_bits} bits")
        if not 0 <= self.burst_len <= params.max_burst:
            raise ValueError(f"burst_len {self.burst_len} exceeds {params.burst_bits} bits")
        if not 0 <= self.addr < (1 << ADDR_OFFSET_BITS):
            raise ValueError(f"addr {self.addr:#x} exceeds {ADDR_OFFSET_BITS} bits")
        if not 0 <= self.thread_id < (1 << THREAD_BITS):
            raise ValueError(f"thread_id {self.thread_id} exceeds {THREAD_BITS} bits")

    @staticmethod
    def bit_width(params: NocParameters) -> int:
        """Total header register width -- "about 50 bits" in the paper."""
        return (
            params.route_bits
            + KIND_BITS
            + params.node_id_bits
            + THREAD_BITS
            + params.burst_bits
            + ADDR_OFFSET_BITS
        )

    def pack(self, params: NocParameters) -> int:
        """Encode the header into its wire integer (MSB = route hop 0)."""
        self.validate(params)
        value = 0
        # Route field: hop 0 in the most significant hop slot, unused
        # trailing hop slots zero.
        for slot in range(params.max_hops):
            hop = self.route[slot] if slot < len(self.route) else 0
            value = (value << params.port_bits) | hop
        value = (value << KIND_BITS) | self.kind.value
        value = (value << params.node_id_bits) | self.src_id
        value = (value << THREAD_BITS) | self.thread_id
        value = (value << params.burst_bits) | self.burst_len
        value = (value << ADDR_OFFSET_BITS) | self.addr
        return value

    @staticmethod
    def unpack(value: int, params: NocParameters, route_len: int) -> "PacketHeader":
        """Decode a header integer.

        ``route_len`` must be supplied by the caller (the receiving NI
        knows it consumed the whole route; trailing zero hop slots are
        otherwise ambiguous with port 0).
        """
        addr = value & ((1 << ADDR_OFFSET_BITS) - 1)
        value >>= ADDR_OFFSET_BITS
        burst_len = value & ((1 << params.burst_bits) - 1)
        value >>= params.burst_bits
        thread_id = value & ((1 << THREAD_BITS) - 1)
        value >>= THREAD_BITS
        src_id = value & ((1 << params.node_id_bits) - 1)
        value >>= params.node_id_bits
        kind = PacketKind(value & ((1 << KIND_BITS) - 1))
        value >>= KIND_BITS
        hops = []
        for slot in range(params.max_hops):
            shift = (params.max_hops - 1 - slot) * params.port_bits
            hops.append((value >> shift) & ((1 << params.port_bits) - 1))
        return PacketHeader(
            route=tuple(hops[:route_len]),
            kind=kind,
            src_id=src_id,
            burst_len=burst_len,
            addr=addr,
            thread_id=thread_id,
        )


@dataclass(frozen=True)
class Packet:
    """A header plus zero or more payload beats (one per burst beat)."""

    header: PacketHeader
    payload: Tuple[int, ...] = ()
    packet_id: int = field(default_factory=next_packet_id)
    birth_cycle: int = field(default=-1, compare=False)

    def validate(self, params: NocParameters) -> None:
        self.header.validate(params)
        expected = self.header.kind.payload_beats(self.header.burst_len)
        if len(self.payload) != expected:
            raise ValueError(
                f"{self.header.kind.name} with burst_len={self.header.burst_len} "
                f"needs {expected} beats, got {len(self.payload)}"
            )
        for beat in self.payload:
            if not 0 <= beat < (1 << params.data_width):
                raise ValueError(f"beat {beat:#x} exceeds {params.data_width} bits")

    def total_bits(self, params: NocParameters) -> int:
        """Bits on the wire: header register + payload registers."""
        return PacketHeader.bit_width(params) + len(self.payload) * params.data_width

    def flit_count(self, params: NocParameters) -> int:
        """Flits after decomposition at the configured flit width."""
        bits = self.total_bits(params)
        return -(-bits // params.flit_width)

    def __repr__(self) -> str:
        return (
            f"Packet<{self.header.kind.name} id={self.packet_id} "
            f"src={self.header.src_id} beats={len(self.payload)} "
            f"route={self.header.route}>"
        )
