"""Component parameter spaces.

xpipes Lite components are C++ class templates specialized per instance
by the xpipesCompiler (flit width, I/O port counts, buffer sizes...).
These dataclasses are the Python equivalent: frozen, validated parameter
records shared by the simulation models in :mod:`repro.core` and the
synthesis models in :mod:`repro.synth`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ArbitrationPolicy(enum.Enum):
    """Switch output-port arbitration, as in the paper: fixed or RR."""

    FIXED_PRIORITY = "fixed"
    ROUND_ROBIN = "round_robin"


@dataclass(frozen=True)
class NocParameters:
    """Global parameters shared by all components of one NoC instance.

    Attributes
    ----------
    flit_width:
        Bits per flit (the paper sweeps 16/32/64/128).
    data_width:
        OCP data word width in bits (one burst beat).
    addr_width:
        OCP address width in bits.
    max_hops:
        Maximum source-route length supported by the header format.
    port_bits:
        Bits per hop in the source route (log2 of max switch radix).
    node_id_bits:
        Bits used to identify an NI in packet headers.
    burst_bits:
        Bits for the burst-length field (max burst = 2**burst_bits - 1).
    """

    flit_width: int = 32
    data_width: int = 32
    addr_width: int = 32
    max_hops: int = 8
    port_bits: int = 3
    node_id_bits: int = 6
    burst_bits: int = 8

    def __post_init__(self) -> None:
        if self.flit_width < 4:
            raise ValueError(f"flit_width must be >= 4, got {self.flit_width}")
        if self.data_width < 8:
            raise ValueError(f"data_width must be >= 8, got {self.data_width}")
        if self.max_hops < 1:
            raise ValueError("max_hops must be positive")
        if self.port_bits < 1 or self.node_id_bits < 1 or self.burst_bits < 1:
            raise ValueError("field widths must be positive")

    @property
    def route_bits(self) -> int:
        """Bits reserved for the source route in the packet header."""
        return self.max_hops * self.port_bits

    @property
    def max_radix(self) -> int:
        """Largest switch port count addressable by one route hop."""
        return 1 << self.port_bits

    @property
    def max_burst(self) -> int:
        return (1 << self.burst_bits) - 1

    @property
    def max_nodes(self) -> int:
        return 1 << self.node_id_bits


@dataclass(frozen=True)
class SwitchConfig:
    """Parameters of one switch instance.

    The paper's switch is output-queued, 2-stage pipelined, with
    ACK/NACK flow control; the original xpipes switch had 7 pipeline
    stages, kept available here for the latency comparison (F8).
    """

    n_inputs: int
    n_outputs: int
    buffer_depth: int = 6
    pipeline_stages: int = 2
    arbitration: ArbitrationPolicy = ArbitrationPolicy.ROUND_ROBIN

    def __post_init__(self) -> None:
        if self.n_inputs < 1 or self.n_outputs < 1:
            raise ValueError("switch needs at least one input and one output")
        if self.buffer_depth < 2:
            raise ValueError("output queue depth must be >= 2")
        if self.pipeline_stages < 1:
            raise ValueError("pipeline_stages must be >= 1")

    @property
    def radix(self) -> int:
        return max(self.n_inputs, self.n_outputs)

    def label(self) -> str:
        """Human-readable size tag, e.g. ``4x4``."""
        return f"{self.n_inputs}x{self.n_outputs}"


@dataclass(frozen=True)
class LinkConfig:
    """Parameters of one pipelined link.

    ``stages`` is the number of pipeline retiming stages in each
    direction (>= 1); ``error_rate`` is the per-flit corruption
    probability modelling the unreliable wires the ACK/NACK protocol is
    designed for.

    ``bit_errors`` selects the bit-accurate error model: instead of
    flagging the flit as corrupted (perfect detection), the link flips
    one or two real payload bits and detection is left to the CRC the
    senders attach -- undetected errors become possible, exactly as in
    silicon.
    """

    stages: int = 1
    error_rate: float = 0.0
    bit_errors: bool = False

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise ValueError("a link has at least one pipeline stage")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")


@dataclass(frozen=True)
class NiConfig:
    """Parameters of one network interface instance.

    The NI has independent request and response channels; each has a
    small output buffer feeding its ACK/NACK sender.

    ``posted_writes`` makes writes fire-and-forget: the initiator NI
    acknowledges them locally and no WRITE_ACK crosses the network
    (halves write latency, loses end-to-end write confirmation).
    ``enforce_thread_order`` adds the OCP resequencing buffer: responses
    are delivered to the master in per-thread issue order even when
    different targets answer out of order.

    ``txn_timeout`` arms end-to-end transaction timeouts in the
    initiator NI: a non-posted transaction with no response after that
    many cycles is retransmitted up to ``txn_retries`` times, then
    completed toward the master with ``SResp.ERR`` -- the master
    *reports* a lost transaction instead of hanging on it (see
    docs/RESILIENCE.md).  Disabled (``None``) by default.
    """

    params: NocParameters = field(default_factory=NocParameters)
    buffer_depth: int = 4
    max_outstanding: int = 4
    posted_writes: bool = False
    enforce_thread_order: bool = False
    txn_timeout: "int | None" = None
    txn_retries: int = 0

    def __post_init__(self) -> None:
        if self.buffer_depth < 2:
            raise ValueError("NI buffer depth must be >= 2")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.txn_timeout is not None and self.txn_timeout < 1:
            raise ValueError("txn_timeout must be >= 1 cycle (or None)")
        if self.txn_retries < 0:
            raise ValueError("txn_retries must be >= 0")
