"""Credit-based flow control: the road xpipes Lite did *not* take.

The paper's switch pairs output queueing with ACK/NACK retransmission;
the classic alternative is input buffering with credit-based
backpressure: the sender holds a counter of free slots in the
downstream input buffer, decrements per flit sent, and recovers credits
as the receiver drains.  Nothing is ever dropped, so nothing can be
retransmitted -- which is exactly the limitation: **credits assume
reliable links**.  A corrupted flit has already consumed its buffer
slot and has no recovery path short of end-to-end timeouts.

This module provides the sender/receiver FSMs with the same owner
interface as :mod:`repro.core.flow_control`'s go-back-N pair, so NIs
and switches can host either; the input-buffered switch that credits
require lives in :mod:`repro.core.credit_switch`.  The A10 ablation
compares the two disciplines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.core.flit import Flit
from repro.sim.channel import FlitChannel


@dataclass(frozen=True, slots=True)
class CreditToken:
    """A backward-channel token restoring ``count`` buffer slots."""

    count: int = 1


class CreditProtocolError(RuntimeError):
    """Credit accounting violated -- always a wiring/capacity bug."""


class CreditSender:
    """Transmit side: one flit per cycle, never beyond the credit count.

    Same owner interface as :class:`~repro.core.flow_control.GoBackNSender`:
    check :meth:`can_accept`, hand flits over with :meth:`enqueue`, call
    :meth:`on_cycle` exactly once per clock.
    """

    def __init__(self, channel: FlitChannel, capacity: int, name: str = "credit-tx") -> None:
        if capacity < 1:
            raise ValueError("downstream capacity must be >= 1")
        self.channel = channel
        self.capacity = capacity
        self.name = name
        self._credits = capacity
        self._outbox: Deque[Flit] = deque()
        self.sent_flits = 0

    def reset(self) -> None:
        self._credits = self.capacity
        self._outbox.clear()
        self.sent_flits = 0

    @property
    def credits(self) -> int:
        return self._credits

    @property
    def idle(self) -> bool:
        """All transmitted flits have landed (full credit, empty outbox)."""
        return not self._outbox and self._credits == self.capacity

    @property
    def quiescent(self) -> bool:
        """True when :meth:`on_cycle` is a no-op absent reverse traffic."""
        return not self._outbox

    @property
    def in_flight(self) -> int:
        return self.capacity - self._credits

    def can_accept(self) -> bool:
        """A credit is available and this cycle's send slot is free."""
        return self._credits > 0 and not self._outbox

    def enqueue(self, flit: Flit) -> None:
        if not self.can_accept():
            raise CreditProtocolError(f"{self.name}: enqueue without a credit")
        self._credits -= 1
        self._outbox.append(flit)

    def on_cycle(self) -> None:
        token = self.channel.peek_ack()
        if token is not None:
            if not isinstance(token, CreditToken):
                raise CreditProtocolError(
                    f"{self.name}: non-credit token on the return wire: {token!r}"
                )
            self._credits += token.count
            if self._credits > self.capacity:
                raise CreditProtocolError(
                    f"{self.name}: credit overflow ({self._credits}/{self.capacity})"
                )
        if self._outbox:
            self.channel.send(self._outbox.popleft())
            self.sent_flits += 1


class CreditReceiver:
    """Receive side: flits are always accepted (the credit the sender
    spent guarantees a slot); credits return as the owner drains.

    Corrupted flits are a hard error -- the credit discipline has no
    retransmission path, which is the point the A10 ablation makes.
    """

    def __init__(self, channel: FlitChannel, name: str = "credit-rx") -> None:
        self.channel = channel
        self.name = name
        self.accepted_flits = 0
        self._pending_grants = 0

    def reset(self) -> None:
        self.accepted_flits = 0
        self._pending_grants = 0

    def poll(self) -> Optional[Flit]:
        """This cycle's arriving flit, if any."""
        flit = self.channel.peek_flit()
        if flit is None:
            return None
        if flit.corrupted:
            raise CreditProtocolError(
                f"{self.name}: corrupted flit under credit flow control "
                "(credits require reliable links): " + repr(flit)
            )
        self.accepted_flits += 1
        return flit

    def grant(self, n: int = 1) -> None:
        """Queue ``n`` freed slots for return to the sender."""
        if n < 1:
            raise ValueError("grant at least one credit")
        self._pending_grants += n

    def on_cycle(self) -> None:
        """Drive at most one return token per clock (one wire)."""
        if self._pending_grants:
            self.channel.send_ack(CreditToken(self._pending_grants))
            self._pending_grants = 0
