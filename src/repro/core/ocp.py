"""OCP transaction layer.

The xpipes Lite NI front end speaks OCP (Open Core Protocol): an
end-to-end, transaction-centric socket with independent request and
response flows, burst support, sideband signals (interrupts) and
threading extensions.  This module models the subset the paper relies
on:

* :class:`BurstTransaction` -- one OCP request (MCmd/MAddr/MData/
  MBurstLength/MThreadID) covering single beats and bursts.
* :class:`OcpResponse` -- the matching SResp/SData response.
* :class:`OcpMasterPort` / :class:`OcpSlavePort` -- registered
  request/accept + response/accept handshakes between a core and its NI
  (and between a target NI and its slave core), plus a sideband wire for
  interrupts.

The handshake is fully registered (one-cycle accept latency), matching
the kernel's synchronous discipline.  A port carries whole transactions,
not individual phases; per-beat wire wiggling is abstracted because the
paper's evaluation depends on transaction/packet timing, not OCP phase
timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.flit import IdSource
from repro.sim.kernel import Simulator


class OcpCmd(enum.Enum):
    """OCP MCmd values used by the library."""

    IDLE = 0
    WRITE = 1
    READ = 2


class SResp(enum.Enum):
    """OCP SResp values."""

    NULL = 0
    DVA = 1  # data valid / accept
    ERR = 3


_txn_ids = IdSource(1)


def next_txn_id() -> int:
    return next(_txn_ids)


@dataclass(frozen=True)
class BurstTransaction:
    """One OCP request transaction.

    ``burst_len`` is the number of beats; ``data`` holds one word per
    beat for writes and is empty for reads.  ``addr`` is the full MAddr;
    the initiator NI's LUT splits it into destination + offset.
    """

    cmd: OcpCmd
    addr: int
    burst_len: int = 1
    data: Tuple[int, ...] = ()
    thread_id: int = 0
    txn_id: int = field(default_factory=next_txn_id)
    issue_cycle: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.cmd is OcpCmd.IDLE:
            raise ValueError("IDLE is not a transferable transaction")
        if self.burst_len < 1:
            raise ValueError("burst_len must be >= 1")
        if self.cmd is OcpCmd.WRITE and len(self.data) != self.burst_len:
            raise ValueError(
                f"write burst of {self.burst_len} beats needs "
                f"{self.burst_len} data words, got {len(self.data)}"
            )
        if self.cmd is OcpCmd.READ and self.data:
            raise ValueError("read requests carry no data")

    @property
    def is_read(self) -> bool:
        return self.cmd is OcpCmd.READ

    @property
    def is_write(self) -> bool:
        return self.cmd is OcpCmd.WRITE


@dataclass(frozen=True)
class OcpResponse:
    """One OCP response: SResp plus read data (one word per beat)."""

    txn_id: int
    sresp: SResp
    data: Tuple[int, ...] = ()
    thread_id: int = 0

    @property
    def ok(self) -> bool:
        return self.sresp is SResp.DVA


@dataclass(frozen=True)
class SidebandEvent:
    """A sideband signal (interrupt) raised by a target core."""

    source_id: int
    vector: int = 0


class OcpMasterPort:
    """The OCP socket between a master core and its initiator NI.

    The master drives ``request`` and holds it until ``request_accept``
    is observed; the NI deduplicates by ``txn_id``.  Responses flow the
    opposite way with the same discipline.  ``sideband`` delivers
    interrupt events from the network to the core.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.request = sim.wire(f"{name}.mcmd")
        self.request_accept = sim.wire(f"{name}.scmdaccept")
        self.response = sim.wire(f"{name}.sresp")
        self.response_accept = sim.wire(f"{name}.mrespaccept")
        self.sideband = sim.wire(f"{name}.sinterrupt")

    # master-side helpers
    def drive_request(self, txn: Optional[BurstTransaction]) -> None:
        if txn is not None:
            self.request.drive(txn)

    def accepted_request_id(self) -> Optional[int]:
        """txn_id acknowledged by the NI this cycle, if any."""
        return self.request_accept.value

    def peek_response(self) -> Optional[OcpResponse]:
        return self.response.value

    def accept_response(self, txn_id: int) -> None:
        self.response_accept.drive(txn_id)

    def peek_sideband(self) -> Optional[SidebandEvent]:
        return self.sideband.value

    # NI-side helpers
    def peek_request(self) -> Optional[BurstTransaction]:
        return self.request.value

    def accept_request(self, txn_id: int) -> None:
        self.request_accept.drive(txn_id)

    def drive_response(self, resp: Optional[OcpResponse]) -> None:
        if resp is not None:
            self.response.drive(resp)

    def accepted_response_id(self) -> Optional[int]:
        """txn_id whose response the master consumed this cycle, if any."""
        return self.response_accept.value

    def raise_sideband(self, event: SidebandEvent) -> None:
        self.sideband.drive(event)


class OcpSlavePort:
    """The OCP socket between a target NI and its slave core.

    Structurally identical to :class:`OcpMasterPort` with the NI on the
    master side: the NI drives reassembled requests at the slave and the
    slave answers (possibly after wait states).  The sideband wire runs
    from the slave core into the NI.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self.name = name
        self.request = sim.wire(f"{name}.mcmd")
        self.request_accept = sim.wire(f"{name}.scmdaccept")
        self.response = sim.wire(f"{name}.sresp")
        self.response_accept = sim.wire(f"{name}.mrespaccept")
        self.sideband = sim.wire(f"{name}.minterrupt")

    # NI-side helpers
    def drive_request(self, txn: Optional[BurstTransaction]) -> None:
        if txn is not None:
            self.request.drive(txn)

    def accepted_request_id(self) -> Optional[int]:
        """txn_id acknowledged by the slave this cycle, if any."""
        return self.request_accept.value

    def peek_response(self) -> Optional[OcpResponse]:
        return self.response.value

    def accept_response(self, txn_id: int) -> None:
        self.response_accept.drive(txn_id)

    def peek_sideband(self) -> Optional[SidebandEvent]:
        return self.sideband.value

    # slave-side helpers
    def peek_request(self) -> Optional[BurstTransaction]:
        return self.request.value

    def accept_request(self, txn_id: int) -> None:
        self.request_accept.drive(txn_id)

    def drive_response(self, resp: Optional[OcpResponse]) -> None:
        if resp is not None:
            self.response.drive(resp)

    def accepted_response_id(self) -> Optional[int]:
        """txn_id whose response the NI consumed this cycle, if any."""
        return self.response_accept.value

    def raise_sideband(self, event: SidebandEvent) -> None:
        self.sideband.drive(event)
