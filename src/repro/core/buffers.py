"""Bounded FIFOs modelling register-file buffers.

Output queues in the switch and the small staging buffers in the NIs are
flip-flop register files in silicon; their depth is a class-template
parameter the synthesis model charges area for.  The simulation model is
a plain bounded FIFO with explicit overflow errors (hardware has no
"grow on demand").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Iterator, Optional, TypeVar

T = TypeVar("T")


class BufferOverflowError(RuntimeError):
    """Pushed into a full FIFO -- always a protocol bug upstream."""


class BoundedFifo(Generic[T]):
    """A bounded first-in first-out queue."""

    def __init__(self, depth: int, name: str = "fifo") -> None:
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.depth = depth
        self.name = name
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def is_full(self) -> bool:
        return len(self._items) >= self.depth

    @property
    def free(self) -> int:
        return self.depth - len(self._items)

    def push(self, item: T) -> None:
        if self.is_full:
            raise BufferOverflowError(f"{self.name}: push into full FIFO (depth {self.depth})")
        self._items.append(item)

    def pop(self) -> T:
        if self.is_empty:
            raise IndexError(f"{self.name}: pop from empty FIFO")
        return self._items.popleft()

    def peek(self) -> Optional[T]:
        return self._items[0] if self._items else None

    def clear(self) -> None:
        self._items.clear()

    def __repr__(self) -> str:
        return f"BoundedFifo({self.name!r}, {len(self._items)}/{self.depth})"
