"""Switch arbitration: fixed priority and round robin.

The paper's switch offers both policies per output port.  Arbiters here
are combinational grant functions with (for round robin) one register of
state, exactly the hardware they model.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.config import ArbitrationPolicy


class Arbiter:
    """Grants one requester among ``n`` each time :meth:`grant` is called."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("arbiter needs at least one requester")
        self.n = n

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        """Return the granted index, or ``None`` if nobody requests."""
        raise NotImplementedError

    def reset(self) -> None:
        """Return arbitration state to power-on."""


class FixedPriorityArbiter(Arbiter):
    """Lowest index wins.  Cheapest hardware; can starve high indices."""

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        for i, r in enumerate(requests):
            if r:
                return i
        return None


class RoundRobinArbiter(Arbiter):
    """Rotating-priority arbiter; strongly fair.

    After granting index *g*, the highest priority moves to *g + 1*, so
    every persistent requester is served within ``n`` grants.
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._next = 0

    def grant(self, requests: Sequence[bool]) -> Optional[int]:
        if len(requests) != self.n:
            raise ValueError(f"expected {self.n} request lines, got {len(requests)}")
        for off in range(self.n):
            i = (self._next + off) % self.n
            if requests[i]:
                self._next = (i + 1) % self.n
                return i
        return None

    def reset(self) -> None:
        self._next = 0


def make_arbiter(policy: ArbitrationPolicy, n: int) -> Arbiter:
    """Factory used by the switch model and the xpipesCompiler."""
    if policy is ArbitrationPolicy.FIXED_PRIORITY:
        return FixedPriorityArbiter(n)
    if policy is ArbitrationPolicy.ROUND_ROBIN:
        return RoundRobinArbiter(n)
    raise ValueError(f"unknown arbitration policy: {policy!r}")
