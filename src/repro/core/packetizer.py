"""Packetization: flit decomposition and reassembly.

The paper's NI builds one ~50-bit header register per transaction and
one payload register per burst beat, then *decomposes* both into flits
of the configured width.  This module performs that decomposition
bit-accurately and reverses it at the receiving NI.

Wire format: the packet is a single bit stream -- header register first
(MSB-first, so the source route leads and is available in the head
flit), then each payload beat MSB-first.  The stream is cut into
``flit_width`` chunks; the final flit is zero-padded in its least
significant bits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import NocParameters
from repro.core.flit import Flit, flit_type_for
from repro.core.packet import Packet, PacketHeader


class PacketizationError(ValueError):
    """Malformed flit stream at reassembly time."""


def decompose_bits(value: int, total_bits: int, flit_width: int) -> List[int]:
    """Split ``total_bits`` of ``value`` (MSB-first) into flit payloads."""
    if value < 0 or (total_bits and value >= (1 << total_bits)):
        raise ValueError(f"value does not fit in {total_bits} bits")
    n_flits = -(-total_bits // flit_width)
    padded = value << (n_flits * flit_width - total_bits)
    chunks = []
    for i in range(n_flits):
        shift = (n_flits - 1 - i) * flit_width
        chunks.append((padded >> shift) & ((1 << flit_width) - 1))
    return chunks


def recompose_bits(chunks: List[int], total_bits: int, flit_width: int) -> int:
    """Inverse of :func:`decompose_bits`: drop padding, rebuild the int."""
    value = 0
    for c in chunks:
        value = (value << flit_width) | c
    padding = len(chunks) * flit_width - total_bits
    if padding < 0:
        raise PacketizationError(
            f"{len(chunks)} flits of {flit_width} bits cannot hold {total_bits} bits"
        )
    return value >> padding


class Packetizer:
    """Turns packets into flit lists (the NI back end's transmit path)."""

    def __init__(self, params: NocParameters) -> None:
        self.params = params
        self.header_bits = PacketHeader.bit_width(params)

    def packet_bits(self, packet: Packet) -> int:
        """The packet's full bit stream as one integer."""
        value = packet.header.pack(self.params)
        for beat in packet.payload:
            value = (value << self.params.data_width) | beat
        return value

    def decompose(self, packet: Packet, birth_cycle: int = -1) -> List[Flit]:
        """Flit decomposition of one packet.

        The head flit additionally carries the parsed route as metadata
        (in hardware it is the leading bits of the payload; switches
        read it from there).
        """
        packet.validate(self.params)
        total_bits = packet.total_bits(self.params)
        chunks = decompose_bits(self.packet_bits(packet), total_bits, self.params.flit_width)
        flits = []
        for i, chunk in enumerate(chunks):
            ftype = flit_type_for(i, len(chunks))
            flits.append(
                Flit(
                    ftype=ftype,
                    payload=chunk,
                    width=self.params.flit_width,
                    packet_id=packet.packet_id,
                    index=i,
                    route=packet.header.route if ftype.is_head else None,
                    birth_cycle=birth_cycle,
                )
            )
        return flits


class Depacketizer:
    """Reassembles flits back into packets (the NI receive path).

    Feed flits in arrival order; :meth:`feed` returns a completed
    :class:`Packet` when the tail flit lands, else ``None``.  Wormhole
    switching guarantees flits of a packet arrive contiguously on one
    channel, so a single accumulator suffices per channel.
    """

    def __init__(self, params: NocParameters) -> None:
        self.params = params
        self.header_bits = PacketHeader.bit_width(params)
        self._chunks: List[int] = []
        self._route_len: Optional[int] = None
        self._packet_id: Optional[int] = None
        self._birth_cycle: int = -1

    @property
    def busy(self) -> bool:
        """True while a packet is partially assembled."""
        return bool(self._chunks)

    def reset(self) -> None:
        self._chunks = []
        self._route_len = None
        self._packet_id = None
        self._birth_cycle = -1

    def feed(self, flit: Flit) -> Optional[Packet]:
        if flit.corrupted:
            raise PacketizationError(f"corrupted flit reached reassembly: {flit!r}")
        if flit.is_head:
            if self._chunks:
                raise PacketizationError("head flit while a packet is in flight")
            # The NI sits at the end of the route: every hop was consumed,
            # so the head's route_offset tells us the route length needed
            # to parse the header's route field.
            self._route_len = flit.route_offset
            self._packet_id = flit.packet_id
            self._birth_cycle = flit.birth_cycle
        elif not self._chunks:
            raise PacketizationError(f"stray non-head flit: {flit!r}")
        elif flit.packet_id != self._packet_id:
            raise PacketizationError(
                f"interleaved packets: expected {self._packet_id}, got {flit.packet_id}"
            )
        self._chunks.append(flit.payload)
        if not flit.is_tail:
            return None
        return self._finish()

    def _finish(self) -> Packet:
        chunks, route_len = self._chunks, self._route_len
        packet_id, birth = self._packet_id, self._birth_cycle
        self.reset()
        width = self.params.flit_width
        total_bits_max = len(chunks) * width
        if total_bits_max < self.header_bits:
            raise PacketizationError("packet shorter than its header")
        # Recover the header from the leading bits, then use its burst
        # length to locate the payload beats and the final padding.
        stream = 0
        for c in chunks:
            stream = (stream << width) | c
        header_int = stream >> (total_bits_max - self.header_bits)
        header = PacketHeader.unpack(header_int, self.params, route_len)
        beats = header.kind.payload_beats(header.burst_len)
        total_bits = self.header_bits + beats * self.params.data_width
        expected_flits = -(-total_bits // width)
        if expected_flits != len(chunks):
            raise PacketizationError(
                f"{header.kind.name} burst_len={header.burst_len} expects "
                f"{expected_flits} flits, received {len(chunks)}"
            )
        payload_stream = stream >> (total_bits_max - total_bits)
        payload = []
        for b in range(beats):
            shift = (beats - 1 - b) * self.params.data_width
            payload.append((payload_stream >> shift) & ((1 << self.params.data_width) - 1))
        return Packet(
            header=header,
            payload=tuple(payload),
            packet_id=packet_id if packet_id is not None else 0,
            birth_cycle=birth,
        )
