"""ACK/NACK flow and error control (go-back-N).

xpipes Lite is "designed for pipelined, unreliable links": instead of
credit-based backpressure, every flit transmitted over a link is held in
a retransmission buffer until the receiver acknowledges it.  The
receiver NACKs flits it cannot accept -- because they arrived corrupted,
because its output queue is full, or because they lost allocation -- and
the sender rewinds and retransmits from the oldest unacknowledged flit
(go-back-N).  The same mechanism therefore provides *both* flow control
and error control, which is what lets the switch run as a short 2-stage
pipeline.

The two FSMs here are embedded by every flit producer/consumer in the
library: NI back ends, switch inputs and switch output ports.

Sequence numbers are modelled as unbounded integers; hardware uses
``ceil(log2(window + 1))``-bit counters, which is behaviourally
identical because at most ``window`` flits are ever unacknowledged (the
synthesis model charges area for the real counter width).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.crc import CrcCodec
from repro.core.flit import Flit
from repro.sim.channel import AckSignal, FlitChannel


def window_for_link(stages: int, margin: int = 2) -> int:
    """Retransmission window that keeps an ``stages``-deep link busy.

    A link with ``stages`` pipeline stages has an effective one-way
    latency of ``stages + 1`` cycles (the sender's output register plus
    the link's internal stages; see :class:`repro.core.link.Link`), so
    the ACK round trip is ``2 * (stages + 1)`` plus one cycle for the
    receiver's decision.  The window must cover that round trip or the
    sender stalls even on a clean link.
    """
    return 2 * (stages + 1) + 1 + margin


class GoBackNSender:
    """Transmit side of one link direction.

    Owners call :meth:`can_accept`/:meth:`enqueue` to hand over new
    flits and :meth:`on_cycle` exactly once per clock to process the
    reverse channel and drive the forward wire.
    """

    def __init__(
        self,
        channel: FlitChannel,
        window: int,
        name: str = "gbn-tx",
        codec: Optional[CrcCodec] = None,
        resync_timeout: Optional[int] = None,
    ) -> None:
        if window < 3:
            raise ValueError("window must cover at least the minimal round trip (3)")
        if resync_timeout is not None and resync_timeout < 3:
            raise ValueError("resync_timeout must cover at least one round trip (3)")
        self.channel = channel
        self.window = window
        self.name = name
        self.codec = codec  # bit-accurate mode: CRC attached per flit
        #: Optional lost-flit recovery: with flits in flight and the
        #: reverse channel silent for this many cycles, rewind and
        #: retransmit everything unacknowledged.  The base protocol
        #: assumes flits always *arrive* (possibly corrupted, hence
        #: NACKed); a link that drops flits outright -- the transient
        #: dead links of :mod:`repro.faults` -- otherwise strands the
        #: sender forever.  Must exceed the ACK round trip.
        self.resync_timeout = resync_timeout
        self._buffer: List[Flit] = []  # unacked flits, oldest first
        self._send_ptr = 0  # next buffer index to (re)transmit
        self._next_seqno = 0
        # Highest seqno transmitted since the last rewind: NACKs above
        # it are echoes of stale in-flight flits, not of anything sent
        # in the current go-back round (see on_cycle).
        self._last_sent_seqno = -1
        # Highest seqno ever transmitted: re-sending at or below it is,
        # by definition, a retransmission.
        self._max_seqno_sent = -1
        self._quiet_cycles = 0
        # instrumentation
        self.sent_flits = 0
        self.retransmissions = 0
        self.acks_seen = 0
        self.nacks_seen = 0
        self.nacks_ignored = 0
        self.rewinds = 0
        self.resyncs = 0

    def reset(self) -> None:
        # In place: compiled programs bind this list at elaboration.
        del self._buffer[:]
        self._send_ptr = 0
        self._next_seqno = 0
        self._last_sent_seqno = -1
        self._max_seqno_sent = -1
        self._quiet_cycles = 0
        self.sent_flits = 0
        self.retransmissions = 0
        self.acks_seen = 0
        self.nacks_seen = 0
        self.nacks_ignored = 0
        self.rewinds = 0
        self.resyncs = 0

    # -- owner interface --------------------------------------------------
    def can_accept(self) -> bool:
        """True if a new flit may be enqueued this cycle."""
        return len(self._buffer) < self.window

    def enqueue(self, flit: Flit) -> None:
        """Hand a new flit to the sender (stamps seqno and, in
        bit-accurate mode, the payload CRC)."""
        if not self.can_accept():
            raise RuntimeError(f"{self.name}: enqueue beyond window {self.window}")
        flit = flit.with_seqno(self._next_seqno)
        if self.codec is not None:
            flit = flit.with_crc(self.codec.compute(flit.payload))
        self._buffer.append(flit)
        self._next_seqno += 1

    @property
    def idle(self) -> bool:
        """True when every transmitted flit has been acknowledged."""
        return not self._buffer

    @property
    def quiescent(self) -> bool:
        """True when :meth:`on_cycle` is a no-op absent reverse traffic.

        Weaker than :attr:`idle`: a window-full sender waiting on ACKs
        has flits in flight but nothing left to transmit, so its next
        state change can only come from the reverse wire -- which the
        owner lists in its fast-path ``wake_inputs``.  With a
        :attr:`resync_timeout` armed the sender must keep ticking while
        anything is unacknowledged: the timer itself is the state change.
        """
        if self.resync_timeout is not None and self._buffer:
            return False
        return self._send_ptr >= len(self._buffer)

    @property
    def in_flight(self) -> int:
        return len(self._buffer)

    def on_cycle(self) -> None:
        """Process one clock: consume ACK/NACK, transmit one flit."""
        ack = self.channel.peek_ack()
        if ack is not None:
            self._quiet_cycles = 0
            if ack.is_ack:
                self.acks_seen += 1
                # ACKs arrive in order, one per accepted flit: release
                # the oldest unacknowledged entry if it matches.
                if self._buffer and self._buffer[0].seqno == ack.seqno:
                    self._buffer.pop(0)
                    self._send_ptr = max(0, self._send_ptr - 1)
            else:
                self.nacks_seen += 1
                # Go-back-N: rewind to the oldest unacknowledged flit --
                # but only for flits of the *current* go-back round.  A
                # single error on a deep link draws one NACK per stale
                # in-flight flit (the receiver NACKs each out-of-order
                # flit it drops); those echoes carry seqnos above
                # anything sent since the last rewind and must not
                # trigger further rewinds.  A repeat error on a
                # retransmitted flit NACKs a seqno we *have* re-sent,
                # so it still rewinds.
                if self._send_ptr > 0 and ack.seqno <= self._last_sent_seqno:
                    self.rewinds += 1
                    self._send_ptr = 0
                    self._last_sent_seqno = self._buffer[0].seqno - 1
                else:
                    self.nacks_ignored += 1
        elif (
            self.resync_timeout is not None
            and self._buffer
            and self._send_ptr >= len(self._buffer)
        ):
            # Everything transmitted, nothing heard back: if the link is
            # dropping flits outright no NACK will ever arrive, so after
            # a full timeout rewind and retransmit the window.
            self._quiet_cycles += 1
            if self._quiet_cycles >= self.resync_timeout:
                self._quiet_cycles = 0
                self.resyncs += 1
                self._send_ptr = 0
                self._last_sent_seqno = self._buffer[0].seqno - 1
        if self._send_ptr < len(self._buffer):
            flit = self._buffer[self._send_ptr]
            self.channel.send(flit)
            self._send_ptr += 1
            self.sent_flits += 1
            self._quiet_cycles = 0
            self._last_sent_seqno = flit.seqno
            if flit.seqno <= self._max_seqno_sent:
                self.retransmissions += 1
            else:
                self._max_seqno_sent = flit.seqno


class GoBackNReceiver:
    """Receive side of one link direction.

    Each cycle the owner calls :meth:`poll` with an ``accept`` predicate
    deciding whether the in-order, uncorrupted flit visible this cycle
    can be consumed *right now* (e.g. "the crossbar grants it and the
    output queue has space").  The receiver drives the ACK or NACK and
    returns the flit only when it was accepted.  Corrupted or
    out-of-sequence flits are NACKed/dropped internally.
    """

    def __init__(
        self,
        channel: FlitChannel,
        name: str = "gbn-rx",
        codec: Optional[CrcCodec] = None,
    ) -> None:
        self.channel = channel
        self.name = name
        self.codec = codec  # bit-accurate mode: recompute + compare CRC
        self._expected = 0
        # instrumentation
        self.accepted_flits = 0
        self.rejected_flits = 0
        self.corrupted_flits = 0
        self.out_of_order_flits = 0

    def reset(self) -> None:
        self._expected = 0
        self.accepted_flits = 0
        self.rejected_flits = 0
        self.corrupted_flits = 0
        self.out_of_order_flits = 0

    def _detected_corrupt(self, flit: Flit) -> bool:
        """Would this receiver's error detection reject the flit?

        Abstract mode trusts the ``corrupted`` flag (perfect detection);
        bit-accurate mode recomputes the CRC, so bit flips that alias
        into a valid codeword slip through -- measurably.
        """
        if flit.corrupted:
            return True
        if self.codec is not None and flit.crc >= 0:
            return self.codec.compute(flit.payload) != flit.crc
        return False

    def peek(self) -> Optional[Flit]:
        """The candidate flit this cycle: in order and clean, else None.

        Does not drive any ACK; callers that peek must still call
        :meth:`poll` in the same cycle.
        """
        flit = self.channel.peek_flit()
        if flit is None or self._detected_corrupt(flit) or flit.seqno != self._expected:
            return None
        return flit

    def poll(self, accept: Callable[[Flit], bool]) -> Optional[Flit]:
        """Handle this cycle's incoming flit; return it if accepted."""
        flit = self.channel.peek_flit()
        if flit is None:
            return None
        if self._detected_corrupt(flit):
            # Detected error (CRC in hardware): demand retransmission.
            self.corrupted_flits += 1
            self.channel.send_ack(AckSignal.nack(flit.seqno))
            return None
        if flit.seqno != self._expected:
            # Stale flit from before a rewind: drop, remind the sender.
            self.out_of_order_flits += 1
            self.channel.send_ack(AckSignal.nack(flit.seqno))
            return None
        if accept(flit):
            self.accepted_flits += 1
            self.channel.send_ack(AckSignal.ack(flit.seqno))
            self._expected += 1
            return flit
        self.rejected_flits += 1
        self.channel.send_ack(AckSignal.nack(flit.seqno))
        return None
