"""The input-buffered, credit-controlled switch.

Credit flow control needs a buffer whose occupancy the *upstream*
sender can track -- an input queue.  This switch is therefore the
architectural mirror image of :class:`repro.core.switch.Switch`:

* one FIFO per **input** (depth = ``config.buffer_depth``), advertised
  to the upstream sender as its credit pool;
* a single output register per output port feeding a
  :class:`~repro.core.credit.CreditSender` whose credits mirror the
  *downstream* element's input buffer;
* the same wormhole allocation and fixed/round-robin arbitration as the
  ACK/NACK switch, so A10 compares flow control, not routing.

Timing matches the 2-stage xpipes Lite switch: a flit visible on the
input wire in cycle *t* enters its input FIFO in *t*; allocation moves
a FIFO head through the crossbar and onto the output wire in the next
cycle it wins and has a credit.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.arbiter import make_arbiter
from repro.core.buffers import BoundedFifo
from repro.core.config import SwitchConfig
from repro.core.credit import CreditProtocolError, CreditReceiver, CreditSender
from repro.core.flit import Flit
from repro.sim.channel import FlitChannel
from repro.sim.component import Component


class InputBufferedSwitch(Component):
    """A credit-controlled switch instance.

    ``out_capacities`` advertises, per output port, the input-buffer
    depth of the element behind that port (the downstream switch's FIFO
    or the NI's receive buffer).
    """

    def __init__(
        self,
        name: str,
        config: SwitchConfig,
        in_channels: Sequence[FlitChannel],
        out_channels: Sequence[FlitChannel],
        out_capacities: "int | Sequence[int]",
    ) -> None:
        super().__init__(name)
        if len(in_channels) != config.n_inputs:
            raise ValueError(f"{name}: input channel count mismatch")
        if len(out_channels) != config.n_outputs:
            raise ValueError(f"{name}: output channel count mismatch")
        if config.pipeline_stages != 2:
            raise ValueError(
                "the credit switch models only the 2-stage microarchitecture"
            )
        self.config = config
        if isinstance(out_capacities, int):
            out_capacities = [out_capacities] * config.n_outputs
        self.receivers = [
            CreditReceiver(ch, name=f"{name}.in{i}") for i, ch in enumerate(in_channels)
        ]
        self.in_queues: List[BoundedFifo[Flit]] = [
            BoundedFifo(config.buffer_depth, f"{name}.iq{i}")
            for i in range(config.n_inputs)
        ]
        self.senders = [
            CreditSender(ch, cap, name=f"{name}.out{o}")
            for o, (ch, cap) in enumerate(zip(out_channels, out_capacities))
        ]
        self._arbiters = [
            make_arbiter(config.arbitration, config.n_inputs)
            for _ in range(config.n_outputs)
        ]
        self._locked_input: List[Optional[int]] = [None] * config.n_outputs
        self._input_dest: List[Optional[int]] = [None] * config.n_inputs
        self.flits_routed = 0
        self.allocation_conflicts = 0

    def reset(self) -> None:
        for r in self.receivers:
            r.reset()
        for q in self.in_queues:
            q.clear()
        for s in self.senders:
            s.reset()
        for a in self._arbiters:
            a.reset()
        self._locked_input = [None] * self.config.n_outputs
        self._input_dest = [None] * self.config.n_inputs
        self.flits_routed = 0
        self.allocation_conflicts = 0

    # -- routing helpers ---------------------------------------------------
    def _requested_output(self, input_index: int, flit: Flit) -> int:
        if flit.is_head:
            hop = flit.next_hop
            if hop >= self.config.n_outputs:
                raise CreditProtocolError(
                    f"{self.name}: route asks for output {hop}"
                )
            return hop
        dest = self._input_dest[input_index]
        if dest is None:
            raise CreditProtocolError(
                f"{self.name}: body/tail flit on idle input {input_index}"
            )
        return dest

    def tick(self, cycle: int) -> None:
        # 1. Allocation: move winning input-FIFO heads to the outputs.
        requested: List[Optional[int]] = [None] * self.config.n_inputs
        for i, q in enumerate(self.in_queues):
            head = q.peek()
            if head is not None:
                requested[i] = self._requested_output(i, head)
        for out_idx, sender in enumerate(self.senders):
            contenders = [
                i for i in range(self.config.n_inputs) if requested[i] == out_idx
            ]
            if not contenders:
                continue
            locked = self._locked_input[out_idx]
            if locked is not None:
                winner = locked if locked in contenders else None
                self.allocation_conflicts += len(contenders) - (winner is not None)
            else:
                reqs = [i in contenders for i in range(self.config.n_inputs)]
                winner = self._arbiters[out_idx].grant(reqs)
                self.allocation_conflicts += len(contenders) - 1
            if winner is None or not sender.can_accept():
                continue
            flit = self.in_queues[winner].pop()
            self.receivers[winner].grant()  # the input slot just freed
            if flit.is_head:
                flit = flit.advance_route()
                if not flit.is_tail:
                    self._locked_input[out_idx] = winner
                    self._input_dest[winner] = out_idx
            if flit.is_tail and not flit.is_head:
                self._locked_input[out_idx] = None
                self._input_dest[winner] = None
            sender.enqueue(flit)
            self.flits_routed += 1
            self.trace(cycle, "route", flit=repr(flit), inp=winner, out=out_idx)

        # 2. Transmit (and absorb this cycle's returned credits).
        for s in self.senders:
            s.on_cycle()

        # 3. Accept arrivals into input FIFOs; push credit returns.
        for i, (r, q) in enumerate(zip(self.receivers, self.in_queues)):
            flit = r.poll()
            if flit is not None:
                q.push(flit)  # overflow = upstream violated its credits
            r.on_cycle()
