"""CRC error detection for flits.

The ACK/NACK scheme needs the receiver to *detect* corrupted flits.
The simulation normally abstracts detection into the flit's
``corrupted`` flag (set by the link's error model); this module
provides the real thing for bit-level studies: a parameterizable CRC
generator/checker matching the encoder the hardware would carry per
port.

``CRC8_ATM`` (x^8 + x^2 + x + 1) is the default -- small enough to be
credible as a per-flit code, strong enough to catch all single- and
double-bit errors at xpipes flit widths.
"""

from __future__ import annotations

from typing import Iterable

#: CRC-8-ATM (HEC) generator polynomial, implicit leading x^8.
CRC8_ATM = 0x07
#: CRC-CCITT 16-bit polynomial for wide-flit configurations.
CRC16_CCITT = 0x1021


class CrcCodec:
    """Bit-serial CRC over ``data_bits``-wide words.

    The codec processes the word MSB-first, exactly like the LFSR the
    synthesis model charges area for.  ``width`` is the CRC width in
    bits (8 or 16 in practice); ``poly`` is the generator polynomial
    without its leading term.
    """

    def __init__(self, data_bits: int, width: int = 8, poly: int = CRC8_ATM) -> None:
        if data_bits < 1:
            raise ValueError("data_bits must be positive")
        if width < 1 or width > 64:
            raise ValueError("CRC width must be in [1, 64]")
        if not 0 < poly < (1 << width):
            raise ValueError("polynomial must fit the CRC width (implicit top bit)")
        self.data_bits = data_bits
        self.width = width
        self.poly = poly
        self._top = 1 << (width - 1)
        self._mask = (1 << width) - 1

    def compute(self, value: int) -> int:
        """CRC of one data word."""
        if value < 0 or value >= (1 << self.data_bits):
            raise ValueError(f"value does not fit in {self.data_bits} bits")
        crc = 0
        for i in range(self.data_bits - 1, -1, -1):
            bit = (value >> i) & 1
            fb = ((crc >> (self.width - 1)) & 1) ^ bit
            crc = (crc << 1) & self._mask
            if fb:
                crc ^= self.poly
        return crc

    def encode(self, value: int) -> int:
        """Append the CRC to a word: returns ``value || crc``."""
        return (value << self.width) | self.compute(value)

    def check(self, codeword: int) -> bool:
        """True if a ``data_bits + width`` codeword is consistent."""
        value = codeword >> self.width
        crc = codeword & self._mask
        return self.compute(value) == crc

    def detects(self, value: int, flipped_bits: Iterable[int]) -> bool:
        """Would this codec catch the given error pattern on ``value``?

        ``flipped_bits`` are positions within the *codeword* (data plus
        CRC field).  Used by tests and by the link-error fidelity study.
        """
        codeword = self.encode(value)
        for b in flipped_bits:
            if not 0 <= b < self.data_bits + self.width:
                raise ValueError(f"bit {b} outside the codeword")
            codeword ^= 1 << b
        return not self.check(codeword)


def codec_for_flit_width(flit_width: int) -> CrcCodec:
    """The codec the reference design pairs with a flit width.

    Narrow flits carry CRC-8; 64-bit and wider flits step up to
    CRC-16-CCITT so the undetected-error probability stays negligible.
    """
    if flit_width >= 64:
        return CrcCodec(flit_width, width=16, poly=CRC16_CCITT)
    return CrcCodec(flit_width, width=8, poly=CRC8_ATM)
