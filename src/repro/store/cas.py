"""The content-addressed store behind the DSE service.

One :class:`ResultStore` is a plain directory -- shareable across
hosts over any filesystem -- holding one **record file** per cache key
plus an append-only **manifest** index:

.. code-block:: text

    store/
      STORE.json          # schema stamp ("repro.store/v1")
      manifest.jsonl      # append-only publish log, last entry per key wins
      objects/ab/abcd....rec  # MAGIC + header JSON line + pickle payload

Keys are the :class:`~repro.flow.runner.ExperimentRunner` cache keys:
sha256 hexdigests over ``CACHE_VERSION | salt | stable_repr(fn) |
stable_repr(point)``, so a record's identity *is* the work it answers
for, and two runners configured identically address the same records.

Every record is self-verifying: the header carries the sha256 and byte
size of the pickle payload, checked on every read.  A record that
fails any check (bad magic, torn header, short payload, digest
mismatch, unpicklable payload) is **quarantined** by renaming it to
``*.corrupt`` -- the same convention the runner's private cache uses --
and reported as a miss, so a recomputed result can be published
cleanly at the original path and the damaged evidence survives for
debugging.

Writes are atomic (``tempfile`` + ``os.replace`` in the objects
directory), so concurrent publishers racing on one key settle
last-write-wins with no reader ever seeing a torn record; a racing
publish that would *change* an existing record's digest is counted in
``conflicts`` (determinism violations are worth noticing).  The
manifest is an append-only JSONL ledger in the journal style of
``runs.jsonl``: torn tails are skipped, :meth:`ResultStore.compact`
rewrites it from the objects on disk, and :meth:`ResultStore.gc`
evicts the oldest records to a count/byte budget.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

import hashlib

STORE_SCHEMA = "repro.store/v1"

MAGIC = b"repro-store/v1\n"

MANIFEST_BASENAME = "manifest.jsonl"
MARKER_BASENAME = "STORE.json"
OBJECTS_DIRNAME = "objects"
RECORD_SUFFIX = ".rec"

_HEX = set("0123456789abcdef")


class StoreError(ValueError):
    """Store misuse: bad keys, foreign directories, closed handles."""


@dataclass(frozen=True)
class StoreRecord:
    """Header of one stored result (everything but the payload)."""

    key: str
    digest: str  # sha256 hexdigest of the pickle payload
    size: int  # payload bytes
    created: float  # publish wall-clock time (time.time)
    label: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "digest": self.digest,
            "size": self.size,
            "created": self.created,
            "label": self.label,
        }


def _check_key(key: str) -> str:
    """Keys are sha256 hexdigests; anything else is refused (a key is
    also a file name, so this doubles as path-traversal armour)."""
    if (
        not isinstance(key, str)
        or len(key) != 64
        or any(c not in _HEX for c in key)
    ):
        raise StoreError(
            f"store keys are 64-char sha256 hexdigests "
            f"(ExperimentRunner cache keys), got {key!r}"
        )
    return key


class ResultStore:
    """A shared, self-verifying result directory.  See the module
    docstring for the format; see docs/SERVICE.md for the service it
    backs.

    Counters (``hits`` / ``misses`` / ``puts`` / ``corrupt_records`` /
    ``conflicts``) accumulate per instance; an optional ``metrics``
    registry (:class:`repro.telemetry.registry.MetricsRegistry`)
    mirrors them as ``store.*`` counters for the ``/metrics``
    exposition.
    """

    def __init__(self, root: str, metrics: Optional[Any] = None) -> None:
        self.root = os.fspath(root)
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt_records = 0
        self.conflicts = 0
        #: Optional fault-injection hook (``repro.chaos.ChaosMonkey``):
        #: called as ``chaos.on_store_put(store, record)`` after every
        #: successful publish, so a seeded plan can corrupt the record
        #: it just wrote or tear the manifest tail.  None in production.
        self.chaos: Optional[Any] = None
        self._objects = os.path.join(self.root, OBJECTS_DIRNAME)
        os.makedirs(self._objects, exist_ok=True)
        marker = os.path.join(self.root, MARKER_BASENAME)
        if os.path.exists(marker):
            try:
                with open(marker, encoding="utf-8") as fh:
                    doc = json.load(fh)
            except ValueError:
                doc = None
            if not isinstance(doc, dict) or doc.get("schema") != STORE_SCHEMA:
                raise StoreError(
                    f"{marker}: not a {STORE_SCHEMA!r} store directory"
                )
        else:
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump({"schema": STORE_SCHEMA}, fh)
                fh.write("\n")
            os.replace(tmp, marker)

    # -- accounting -------------------------------------------------------
    def _count(self, name: str, attr: str) -> None:
        setattr(self, attr, getattr(self, attr) + 1)
        if self.metrics is not None:
            self.metrics.counter(f"store.{name}").inc()

    # -- paths ------------------------------------------------------------
    def record_path(self, key: str) -> str:
        _check_key(key)
        return os.path.join(self._objects, key[:2], key + RECORD_SUFFIX)

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_BASENAME)

    # -- write side -------------------------------------------------------
    def put(self, key: str, value: Any, label: str = "") -> StoreRecord:
        """Publish ``value`` under ``key`` atomically; returns the
        record header.  Re-publishing an identical payload is an
        idempotent no-op (the existing record is kept and no manifest
        line is appended); a *different* payload wins the race
        last-write style and bumps ``conflicts``."""
        payload = pickle.dumps(value)
        digest = hashlib.sha256(payload).hexdigest()
        existing = self.record(key)
        if existing is not None:
            if existing.digest == digest:
                return existing
            self._count("conflicts", "conflicts")
        record = StoreRecord(
            key=key,
            digest=digest,
            size=len(payload),
            created=time.time(),
            label=label,
        )
        path = self.record_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(MAGIC)
                fh.write(
                    json.dumps(record.as_dict(), sort_keys=True).encode("utf-8")
                )
                fh.write(b"\n")
                fh.write(payload)
                fh.flush()
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count("puts", "puts")
        self._manifest_append(record)
        if self.chaos is not None:
            self.chaos.on_store_put(self, record)
        return record

    def _manifest_append(self, record: StoreRecord) -> None:
        with open(self.manifest_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
            fh.flush()

    # -- read side --------------------------------------------------------
    def _read_record(
        self, key: str, with_payload: bool
    ) -> Tuple[Optional[StoreRecord], Optional[Any]]:
        """Parse (and verify) one record file; quarantine on damage."""
        path = self.record_path(key)
        try:
            with open(path, "rb") as fh:
                magic = fh.read(len(MAGIC))
                if magic != MAGIC:
                    raise StoreError(f"bad magic {magic!r}")
                header_line = fh.readline()
                header = json.loads(header_line.decode("utf-8"))
                record = StoreRecord(
                    key=str(header["key"]),
                    digest=str(header["digest"]),
                    size=int(header["size"]),
                    created=float(header["created"]),
                    label=str(header.get("label", "")),
                )
                if record.key != key:
                    raise StoreError(
                        f"header names key {record.key[:12]}..., "
                        f"file is {key[:12]}..."
                    )
                if not with_payload:
                    return record, None
                payload = fh.read()
                if len(payload) != record.size:
                    raise StoreError(
                        f"payload is {len(payload)} bytes, header says "
                        f"{record.size}"
                    )
                if hashlib.sha256(payload).hexdigest() != record.digest:
                    raise StoreError("payload sha256 does not match header")
                return record, pickle.loads(payload)
        except FileNotFoundError:
            return None, None
        except (StoreError, OSError, ValueError, KeyError, TypeError,
                pickle.PickleError, EOFError, AttributeError, ImportError,
                IndexError):
            self._count("corrupt_records", "corrupt_records")
            try:
                os.replace(path, path[: -len(RECORD_SUFFIX)] + ".corrupt")
            except OSError:
                pass
            return None, None

    def record(self, key: str) -> Optional[StoreRecord]:
        """The header under ``key``, or None.  Does not read (or
        verify) the payload and does not touch the hit/miss counters."""
        record, _ = self._read_record(key, with_payload=False)
        return record

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` when ``key`` holds a verified record,
        else ``(False, None)`` -- including when the record existed but
        failed verification and was quarantined."""
        record, value = self._read_record(key, with_payload=True)
        if record is None:
            self._count("misses", "misses")
            return False, None
        self._count("hits", "hits")
        return True, value

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.record_path(key))

    def keys(self) -> Iterator[str]:
        """Every key with a record file on disk (unverified), sorted."""
        found: List[str] = []
        if not os.path.isdir(self._objects):
            return iter(())
        for shard in sorted(os.listdir(self._objects)):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(RECORD_SUFFIX):
                    found.append(name[: -len(RECORD_SUFFIX)])
        return iter(found)

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    # -- manifest ---------------------------------------------------------
    def manifest_entries(self) -> Dict[str, Dict[str, Any]]:
        """Latest manifest entry per key; torn/corrupt lines skipped."""
        entries: Dict[str, Dict[str, Any]] = {}
        path = self.manifest_path
        if not os.path.exists(path):
            return entries
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    continue
                if isinstance(rec, dict) and isinstance(rec.get("key"), str):
                    entries[rec["key"]] = rec
        return entries

    def compact(self) -> int:
        """Rewrite the manifest from the objects actually on disk --
        one line per readable record header, dangling entries dropped,
        duplicates collapsed.  Returns the number of indexed records.
        Atomic, so concurrent readers never see a half manifest."""
        records: List[StoreRecord] = []
        for key in self.keys():
            record = self.record(key)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.created, r.key))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(record.as_dict(), sort_keys=True) + "\n")
        os.replace(tmp, self.manifest_path)
        return len(records)

    # -- garbage collection -----------------------------------------------
    def gc(
        self,
        max_records: Optional[int] = None,
        max_bytes: Optional[int] = None,
        keep: "frozenset[str] | set[str]" = frozenset(),
    ) -> List[str]:
        """Evict oldest-first until within the given budgets.

        ``max_records`` bounds the record count, ``max_bytes`` the total
        *payload* bytes; ``keep`` pins keys that must survive (the
        frontier of an active query, say).  Quarantined ``*.corrupt``
        files are always removed -- their evidence value expires once a
        clean record has been republished.  Ends with a
        :meth:`compact`, so the manifest matches the survivors.
        Returns the evicted keys, oldest first.
        """
        if max_records is not None and max_records < 0:
            raise StoreError(f"max_records must be >= 0, got {max_records}")
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        records: List[StoreRecord] = []
        for key in self.keys():
            record = self.record(key)
            if record is not None:
                records.append(record)
        records.sort(key=lambda r: (r.created, r.key))
        total = sum(r.size for r in records)
        count = len(records)
        evicted: List[str] = []
        for record in records:
            over_count = max_records is not None and count > max_records
            over_bytes = max_bytes is not None and total > max_bytes
            if not over_count and not over_bytes:
                break
            if record.key in keep:
                continue
            try:
                os.unlink(self.record_path(record.key))
            except OSError:
                continue
            evicted.append(record.key)
            count -= 1
            total -= record.size
        for shard in os.listdir(self._objects):
            shard_dir = os.path.join(self._objects, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if name.endswith(".corrupt"):
                    try:
                        os.unlink(os.path.join(shard_dir, name))
                    except OSError:
                        pass
        self.compact()
        return evicted

    # -- reporting --------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt_records": self.corrupt_records,
            "conflicts": self.conflicts,
        }

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r})"
