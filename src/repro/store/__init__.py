"""Content-addressed result store: the DSE service's shared memory.

The :class:`ExperimentRunner` cache (PR 1/5) memoizes per-point results
as bare pickles in a private directory.  That is enough for one host
re-generating its own figures, but the design-space service
(``python -m repro serve``, docs/SERVICE.md) needs a *shared* tier:
many dispatchers and one HTTP front end reading and writing the same
directory, possibly over a network filesystem, with no way to tell a
half-written file from a result and no inventory of what is in there.

:class:`ResultStore` is that tier -- see :mod:`repro.store.cas` for the
on-disk format (sha256-verified records, atomic publishes, an
append-only manifest index, garbage collection and compaction).
"""

from repro.store.cas import (
    MANIFEST_BASENAME,
    STORE_SCHEMA,
    ResultStore,
    StoreError,
    StoreRecord,
)

__all__ = [
    "MANIFEST_BASENAME",
    "STORE_SCHEMA",
    "ResultStore",
    "StoreError",
    "StoreRecord",
]
