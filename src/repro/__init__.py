"""repro: a reproduction of *xpipes Lite* (DATE 2005).

A synthesis-oriented design library for Networks-on-Chip: a
parameterizable component library (network interfaces, 2-stage
wormhole switches, pipelined unreliable links with ACK/NACK
retransmission), a cycle-accurate simulator, analytic synthesis models
calibrated to the paper's 130 nm results, the SunMap-style mapping/
selection flow, and an xpipesCompiler-style generator producing both a
runnable simulation view and SystemC-style structural source.

Quick start::

    from repro.network import mesh, Noc, UniformRandomTraffic
    from repro.network.topology import attach_round_robin

    topo = mesh(2, 2)
    cpus, mems = attach_round_robin(topo, n_initiators=2, n_targets=2)
    noc = Noc(topo)
    noc.populate(
        {c: UniformRandomTraffic(mems, rate=0.1, seed=i)
         for i, c in enumerate(cpus)},
        max_transactions=100,
    )
    noc.run_until_drained()
    print(noc.aggregate_latency().mean())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
