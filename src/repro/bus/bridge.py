"""Bridged bus hierarchies (the paper's AMBA system example).

The motivation slide's AMBA system is a high-speed bus (CPUs, memory)
plus a peripheral bus behind a bridge.  :class:`BridgedBus` builds that
platform: masters on the fast segment can reach fast slaves directly
and slow slaves through a :class:`BusBridge`, which occupies the fast
bus for the *entire* slow-segment transaction -- the serialization
pathology that makes bridged buses even less scalable than flat ones,
and that a NoC dissolves.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.bus.ahb import SharedBus, SharedBusConfig
from repro.core.ocp import BurstTransaction, OcpMasterPort, OcpResponse, OcpSlavePort
from repro.core.routing import AddressMap
from repro.network.traffic import TrafficPattern
from repro.sim.component import Component
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.stats import LatencySampler


class _BridgeState(enum.Enum):
    IDLE = "idle"
    CROSSING = "crossing"  # paying the bridge latency
    DOWNSTREAM = "downstream"  # transaction issued on the slow bus
    RETURNING = "returning"  # response travelling back upstream


class BusBridge(Component):
    """Slave on the fast bus, master on the slow bus.

    Forwards one transaction at a time (bridges hold no queues in the
    classic AMBA configuration) after ``latency`` crossing cycles each
    way.
    """

    def __init__(
        self,
        name: str,
        upstream: OcpSlavePort,
        downstream: OcpMasterPort,
        latency: int = 2,
    ) -> None:
        super().__init__(name)
        if latency < 0:
            raise ValueError("bridge latency must be >= 0")
        self.upstream = upstream
        self.downstream = downstream
        self.latency = latency
        self._state = _BridgeState.IDLE
        self._countdown = 0
        self._txn: Optional[BurstTransaction] = None
        self._resp: Optional[OcpResponse] = None
        self._last_txn: Optional[int] = None
        self.crossings = 0

    def reset(self) -> None:
        self._state = _BridgeState.IDLE
        self._countdown = 0
        self._txn = None
        self._resp = None
        self._last_txn = None
        self.crossings = 0

    def tick(self, cycle: int) -> None:
        if self._state is _BridgeState.IDLE:
            txn = self.upstream.peek_request()
            if txn is not None and txn.txn_id != self._last_txn:
                self._txn = txn
                self._last_txn = txn.txn_id
                self.upstream.accept_request(txn.txn_id)
                self._countdown = self.latency
                self._state = _BridgeState.CROSSING
                self.crossings += 1
            return

        if self._state is _BridgeState.CROSSING:
            if self._countdown > 0:
                self._countdown -= 1
                return
            self._state = _BridgeState.DOWNSTREAM
            # fall through to issue this cycle

        if self._state is _BridgeState.DOWNSTREAM:
            assert self._txn is not None
            if self.downstream.accepted_request_id() == self._txn.txn_id:
                pass  # accepted; now wait for the response
            else:
                self.downstream.drive_request(self._txn)
            resp = self.downstream.peek_response()
            if resp is not None and resp.txn_id == self._txn.txn_id:
                self.downstream.accept_response(resp.txn_id)
                self._resp = resp
                self._countdown = self.latency
                self._state = _BridgeState.RETURNING
            return

        if self._state is _BridgeState.RETURNING:
            if self._countdown > 0:
                self._countdown -= 1
                return
            assert self._resp is not None
            if self.upstream.accepted_response_id() == self._resp.txn_id:
                self._txn = None
                self._resp = None
                self._state = _BridgeState.IDLE
            else:
                self.upstream.drive_response(self._resp)
            return


class BridgedBus:
    """A two-segment AMBA-style platform behind one global address map.

    ``master_names`` live on the fast segment; ``fast_slaves`` are
    reached directly; ``slow_slaves`` sit on the peripheral segment
    behind the bridge.  The same traffic/memory models as everywhere
    else plug in, so the F9-style comparison extends to hierarchies.
    """

    BRIDGE = "__bridge__"

    def __init__(
        self,
        master_names: List[str],
        fast_slaves: List[str],
        slow_slaves: List[str],
        config: Optional[SharedBusConfig] = None,
        bridge_latency: int = 2,
    ) -> None:
        if not slow_slaves:
            raise ValueError("a bridged bus needs at least one slow slave")
        self.sim = Simulator()
        # One global address map covers both segments.
        self.address_map = AddressMap(fast_slaves + slow_slaves)
        self.fast_slaves = list(fast_slaves)
        self.slow_slaves = list(slow_slaves)
        slow_set = set(slow_slaves)

        def fast_decoder(addr: int):
            target, offset = self.address_map.decode(addr)
            if target in slow_set:
                # Forward the full address: the slow bus re-decodes it.
                return self.BRIDGE, addr
            return target, offset

        self.fast = SharedBus(
            master_names,
            fast_slaves + [self.BRIDGE],
            config=config,
            sim=self.sim,
            address_map=self.address_map,
            decoder=fast_decoder,
            name="fastbus",
        )
        self.slow = SharedBus(
            [self.BRIDGE],
            slow_slaves,
            config=config,
            sim=self.sim,
            address_map=self.address_map,
            decoder=lambda addr: self.address_map.decode(addr),
            name="slowbus",
        )
        self.bridge = BusBridge(
            "bridge",
            upstream=self.fast.slave_ports[self.BRIDGE],
            downstream=self.slow.master_ports[self.BRIDGE],
            latency=bridge_latency,
        )
        self.sim.add(self.bridge)

    # -- population ----------------------------------------------------------
    def add_traffic_master(self, name: str, pattern: TrafficPattern, **kw):
        return self.fast.add_traffic_master(name, pattern, **kw)

    def add_memory_slave(self, name: str, wait_states: int = 1):
        if name in self.fast.slave_ports and name != self.BRIDGE:
            return self.fast.add_memory_slave(name, wait_states)
        if name in self.slow.slave_ports:
            return self.slow.add_memory_slave(name, wait_states)
        raise SimulationError(f"{name!r} is not a slave of either segment")

    def populate(self, patterns, wait_states: int = 1, max_transactions=None) -> None:
        for name, pattern in patterns.items():
            self.add_traffic_master(name, pattern, max_transactions=max_transactions)
        for s in self.fast_slaves + self.slow_slaves:
            self.add_memory_slave(s, wait_states)

    # -- execution -------------------------------------------------------------
    def run(self, cycles: int) -> None:
        self.sim.run(cycles)

    def run_until_drained(self, max_cycles: int = 1_000_000, margin: int = 30) -> int:
        masters = self.fast.masters.values()
        for m in masters:
            if m.max_transactions is None:
                raise SimulationError(f"{m.name}: run_until_drained needs max_transactions")
        spent = self.sim.run_until(lambda: all(m.done for m in masters), max_cycles)
        self.sim.run(margin)
        return spent

    def aggregate_latency(self) -> LatencySampler:
        return self.fast.aggregate_latency()

    def total_completed(self) -> int:
        return self.fast.total_completed()
