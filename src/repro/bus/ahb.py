"""A cycle-accurate AHB-like shared bus.

One transaction channel shared by all masters:

* centralized arbitration (fixed priority or round robin) costing
  ``arb_cycles`` per grant, plus one address-phase cycle;
* **in-order completion** and **no multiple outstanding transactions**
  -- the bus is busy from grant until the response is delivered, which
  is precisely the serialization the paper's motivation slides blame;
* bursts occupy the data phase for one cycle per beat (charged by the
  slave model), plus slave wait states.

Masters and slaves are the same behavioural OCP cores used on the NoC
(:mod:`repro.network.cores`), so bus-vs-NoC comparisons run identical
workloads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.core.arbiter import make_arbiter
from repro.core.config import ArbitrationPolicy
from repro.core.ocp import BurstTransaction, OcpMasterPort, OcpResponse, OcpSlavePort
from repro.core.routing import AddressMap
from repro.network.cores import OcpMemorySlave, OcpTrafficMaster
from repro.network.traffic import TrafficPattern
from repro.sim.component import Component
from repro.sim.kernel import SimulationError, Simulator
from repro.sim.stats import LatencySampler


@dataclass(frozen=True)
class SharedBusConfig:
    """Bus parameters."""

    arbitration: ArbitrationPolicy = ArbitrationPolicy.ROUND_ROBIN
    arb_cycles: int = 1

    def __post_init__(self) -> None:
        if self.arb_cycles < 0:
            raise ValueError("arb_cycles must be >= 0")


class _BusState(enum.Enum):
    IDLE = "idle"
    ARBITRATING = "arbitrating"
    FORWARD = "forward"  # driving the request at the slave
    WAIT_RESP = "wait_resp"  # slave executing
    RESPOND = "respond"  # driving the response at the master


class _BusCore(Component):
    """The bus fabric itself: arbiter + single transaction channel."""

    def __init__(
        self,
        name: str,
        config: SharedBusConfig,
        master_ports: List[OcpMasterPort],
        slave_ports: Dict[str, OcpSlavePort],
        address_map: AddressMap,
        decoder=None,
    ) -> None:
        super().__init__(name)
        self.config = config
        self.master_ports = master_ports
        self.slave_ports = slave_ports
        self.address_map = address_map
        # decoder: MAddr -> (slave port name, address to forward).  The
        # default decodes through the address map and forwards the local
        # offset, matching what a target NI presents to its slave on the
        # NoC.  Bridged systems remap foreign regions onto the bridge's
        # slave port and forward the full address for re-decode.
        self.decoder = decoder or (lambda addr: address_map.decode(addr))
        self._arbiter = make_arbiter(config.arbitration, len(master_ports))
        self._state = _BusState.IDLE
        self._countdown = 0
        self._txn: Optional[BurstTransaction] = None
        self._fwd_txn: Optional[BurstTransaction] = None
        self._owner: Optional[int] = None
        self._slave: Optional[OcpSlavePort] = None
        self._resp: Optional[OcpResponse] = None
        self._last_seen: List[Optional[int]] = [None] * len(master_ports)
        self.grants = 0
        self.busy_cycles = 0

    def reset(self) -> None:
        self._arbiter.reset()
        self._state = _BusState.IDLE
        self._countdown = 0
        self._txn = None
        self._fwd_txn = None
        self._owner = None
        self._slave = None
        self._resp = None
        self._last_seen = [None] * len(self.master_ports)
        self.grants = 0
        self.busy_cycles = 0

    def _pending_requests(self) -> List[bool]:
        reqs = []
        for i, port in enumerate(self.master_ports):
            txn = port.peek_request()
            reqs.append(txn is not None and txn.txn_id != self._last_seen[i])
        return reqs

    def tick(self, cycle: int) -> None:
        if self._state is not _BusState.IDLE:
            self.busy_cycles += 1

        if self._state is _BusState.IDLE:
            reqs = self._pending_requests()
            if any(reqs):
                winner = self._arbiter.grant(reqs)
                assert winner is not None
                self._owner = winner
                self.grants += 1
                # Arbitration + address phase before the transfer starts.
                self._countdown = self.config.arb_cycles + 1
                self._state = _BusState.ARBITRATING
            return

        if self._state is _BusState.ARBITRATING:
            self._countdown -= 1
            if self._countdown > 0:
                return
            port = self.master_ports[self._owner]
            txn = port.peek_request()
            if txn is None or txn.txn_id == self._last_seen[self._owner]:
                self._state = _BusState.IDLE  # master withdrew
                return
            target, local_addr = self.decoder(txn.addr)
            self._txn = txn
            self._fwd_txn = replace(txn, addr=local_addr)
            self._slave = self.slave_ports[target]
            self._last_seen[self._owner] = txn.txn_id
            port.accept_request(txn.txn_id)
            self._state = _BusState.FORWARD
            self.trace(cycle, "grant", master=self._owner, txn=txn.txn_id, slave=target)
            return

        if self._state is _BusState.FORWARD:
            assert self._slave is not None and self._fwd_txn is not None
            if self._slave.accepted_request_id() == self._fwd_txn.txn_id:
                self._state = _BusState.WAIT_RESP
            else:
                self._slave.drive_request(self._fwd_txn)
            return

        if self._state is _BusState.WAIT_RESP:
            assert self._slave is not None and self._txn is not None
            resp = self._slave.peek_response()
            if resp is not None and resp.txn_id == self._txn.txn_id:
                self._resp = resp
                self._slave.accept_response(resp.txn_id)
                self._state = _BusState.RESPOND
            return

        if self._state is _BusState.RESPOND:
            assert self._resp is not None
            port = self.master_ports[self._owner]
            if port.accepted_response_id() == self._resp.txn_id:
                self._txn = None
                self._fwd_txn = None
                self._owner = None
                self._slave = None
                self._resp = None
                self._state = _BusState.IDLE
            else:
                port.drive_response(self._resp)
            return


class SharedBus:
    """A runnable shared-bus system mirroring :class:`repro.network.noc.Noc`.

    Construct with master and slave names, then attach the same traffic
    patterns and memory models used on the NoC.
    """

    def __init__(
        self,
        master_names: List[str],
        slave_names: List[str],
        config: Optional[SharedBusConfig] = None,
        sim: Optional[Simulator] = None,
        address_map: Optional[AddressMap] = None,
        decoder=None,
        name: str = "bus",
    ) -> None:
        if not master_names or not slave_names:
            raise ValueError("need at least one master and one slave")
        self.config = config or SharedBusConfig()
        self.sim = sim if sim is not None else Simulator()
        self.name = name
        self.address_map = address_map or AddressMap(slave_names)
        self.master_names = list(master_names)
        self.slave_names = list(slave_names)
        self.master_ports = {
            m: OcpMasterPort(self.sim, f"{name}.{m}.ocp") for m in master_names
        }
        self.slave_ports = {
            s: OcpSlavePort(self.sim, f"{name}.{s}.ocp") for s in slave_names
        }
        self.bus = _BusCore(
            name,
            self.config,
            [self.master_ports[m] for m in master_names],
            self.slave_ports,
            self.address_map,
            decoder=decoder,
        )
        self.sim.add(self.bus)
        self.masters: Dict[str, OcpTrafficMaster] = {}
        self.slaves: Dict[str, OcpMemorySlave] = {}

    def add_traffic_master(
        self,
        name: str,
        pattern: TrafficPattern,
        max_outstanding: int = 1,
        max_transactions: Optional[int] = None,
    ) -> OcpTrafficMaster:
        if name not in self.master_ports:
            raise SimulationError(f"{name!r} is not a bus master")
        master = OcpTrafficMaster(
            f"{name}.core",
            self.master_ports[name],
            pattern,
            self.address_map,
            max_outstanding=max_outstanding,
            max_transactions=max_transactions,
        )
        self.masters[name] = master
        self.sim.add(master)
        return master

    def add_memory_slave(self, name: str, wait_states: int = 1) -> OcpMemorySlave:
        if name not in self.slave_ports:
            raise SimulationError(f"{name!r} is not a bus slave")
        slave = OcpMemorySlave(f"{name}.core", self.slave_ports[name], wait_states=wait_states)
        self.slaves[name] = slave
        self.sim.add(slave)
        return slave

    def populate(
        self,
        patterns: Dict[str, TrafficPattern],
        wait_states: int = 1,
        max_transactions: Optional[int] = None,
    ) -> None:
        for name, pattern in patterns.items():
            self.add_traffic_master(name, pattern, max_transactions=max_transactions)
        for s in self.slave_names:
            self.add_memory_slave(s, wait_states=wait_states)

    def run(self, cycles: int) -> None:
        self.sim.run(cycles)

    def run_until_drained(self, max_cycles: int = 1_000_000, margin: int = 20) -> int:
        for m in self.masters.values():
            if m.max_transactions is None:
                raise SimulationError(f"{m.name}: run_until_drained needs max_transactions")
        spent = self.sim.run_until(
            lambda: all(m.done for m in self.masters.values()), max_cycles
        )
        self.sim.run(margin)
        return spent

    def aggregate_latency(self) -> LatencySampler:
        merged = LatencySampler("bus.latency")
        for m in self.masters.values():
            merged.samples.extend(m.latency.samples)
        return merged

    def total_completed(self) -> int:
        return sum(m.completed for m in self.masters.values())

    def utilization(self) -> float:
        """Fraction of simulated cycles the bus was busy."""
        if self.sim.cycle == 0:
            return 0.0
        return self.bus.busy_cycles / self.sim.cycle
