"""Shared-bus baseline (AMBA AHB-like).

The paper's motivation section argues that shared buses -- in-order
completion, no multiple outstanding transactions, arbitration overhead,
poor scalability -- cannot keep up with many-core SoCs.  This package
makes that argument measurable: a cycle-accurate single-channel shared
bus with centralized arbitration that accepts the *same* OCP masters
and slaves as the NoC, so the F9 bench can sweep load on identical
workloads.
"""

from repro.bus.ahb import SharedBus, SharedBusConfig
from repro.bus.bridge import BridgedBus, BusBridge

__all__ = ["BridgedBus", "BusBridge", "SharedBus", "SharedBusConfig"]
