"""Runtime progress monitoring: turn hangs into diagnostics.

:mod:`repro.network.deadlock` proves routing-level deadlock freedom at
*design* time, but nothing guards *run* time: a deadlock-prone policy, a
dead link with no recovery armed, or a starvation-prone arbitration can
silently stall the simulation until ``run_until`` burns its whole cycle
budget.  :class:`ProgressWatchdog` watches the network's global progress
counters and raises a structured :class:`NoProgressError` -- carrying a
per-switch/per-NI occupancy snapshot -- the moment no flit has been
accepted anywhere and no transaction has completed for ``horizon``
cycles while traffic is still outstanding.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.network.monitors import occupancy_snapshot
from repro.sim.kernel import SimulationError


class NoProgressError(SimulationError):
    """The network made no observable progress for a whole horizon.

    Attributes
    ----------
    cycle:
        Cycle at which the watchdog gave up.
    horizon:
        The configured no-progress horizon (cycles).
    snapshot:
        :func:`repro.network.monitors.occupancy_snapshot` of the NoC at
        detection time -- which queues hold flits, which senders wait on
        ACKs, which masters still have transactions in flight.
    """

    def __init__(self, cycle: int, horizon: int, snapshot: Dict[str, object]) -> None:
        self.cycle = cycle
        self.horizon = horizon
        self.snapshot = snapshot
        super().__init__(self.describe())

    def describe(self) -> str:
        lines = [
            f"no progress for {self.horizon} cycles (at cycle {self.cycle}) "
            f"with traffic outstanding -- livelock, deadlock or lost flits"
        ]
        masters = self.snapshot.get("masters", {})
        stuck = {
            n: m for n, m in masters.items() if m.get("in_flight", 0) > 0
        }
        if stuck:
            lines.append("  masters still waiting:")
            for name, m in sorted(stuck.items()):
                lines.append(
                    f"    {name}: {m['in_flight']} in flight "
                    f"({m['completed']}/{m['issued']} completed, "
                    f"{m['failed']} failed)"
                )
        for name, sw in sorted(self.snapshot.get("switches", {}).items()):
            depths = sw.get("queue_depths", [])
            flights = sw.get("sender_in_flight", [])
            if any(depths) or any(flights):
                lines.append(
                    f"  {name}: queues {depths}, unacked {flights}"
                )
        for name, ni in sorted(self.snapshot.get("nis", {}).items()):
            busy = (
                ni.get("outstanding", 0)
                or ni.get("req_backlog", 0)
                or ni.get("tx_in_flight", 0)
            )
            if busy:
                fields = ", ".join(f"{k}={v}" for k, v in ni.items())
                lines.append(f"  {name}: {fields}")
        return "\n".join(lines)


class ProgressWatchdog:
    """Raises :class:`NoProgressError` when the NoC stops moving.

    Progress is defined as any of: a flit accepted by any link-level
    receiver, a response delivered to any master-side OCP port, or a
    request served by any target.  The watchdog samples these counters
    every ``check_interval`` cycles (a fraction of the horizon, so
    detection lands within one horizon of the true stall) and trips when
    they are all frozen for ``horizon`` consecutive cycles *while*
    transactions are outstanding -- an idle network is not a stuck one.

    Registered as a kernel watcher, which runs after every cycle in both
    scheduling modes; the exception propagates out of ``sim.step()`` /
    ``run_until()`` to the caller.  Use :meth:`detach` to disarm.
    """

    def __init__(
        self,
        noc,
        horizon: int = 2000,
        check_interval: Optional[int] = None,
    ) -> None:
        if horizon < 2:
            raise ValueError("horizon must be >= 2 cycles")
        self.noc = noc
        self.horizon = horizon
        self.check_interval = check_interval or max(1, horizon // 8)
        self.checks = 0
        self.trips = 0
        self._last_check = noc.sim.cycle
        self._last_progress_cycle = noc.sim.cycle
        self._last_signature = self._signature()
        self._armed = True
        noc.sim.add_watcher(self._on_cycle)

    def detach(self) -> None:
        """Disarm and unregister from the simulator."""
        self._armed = False
        self.noc.sim.remove_watcher(self._on_cycle)

    def _signature(self) -> Tuple[int, int, int]:
        """Monotone counters that move iff the network moved."""
        noc = self.noc
        accepted = 0
        for sw in noc.switches.values():
            for r in getattr(sw, "receivers", []):
                accepted += r.accepted_flits
        for ni in noc.initiator_nis.values():
            accepted += getattr(ni.rx, "accepted_flits", 0)
        for ni in noc.target_nis.values():
            accepted += getattr(ni.rx, "accepted_flits", 0)
        delivered = sum(
            ni.responses_delivered + ni.transactions_failed
            for ni in noc.initiator_nis.values()
        )
        served = sum(ni.requests_served for ni in noc.target_nis.values())
        return (accepted, delivered, served)

    def _outstanding(self) -> bool:
        """Is anything still owed to a master?"""
        for m in self.noc.masters.values():
            if not m.quiescent:
                return True
        for ni in self.noc.initiator_nis.values():
            if not ni.idle:
                return True
        return False

    def _on_cycle(self, cycle: int) -> None:
        if not self._armed:
            return
        if cycle - self._last_check < self.check_interval:
            return
        self._last_check = cycle
        self.checks += 1
        sig = self._signature()
        if sig != self._last_signature:
            self._last_signature = sig
            self._last_progress_cycle = cycle
            return
        if not self._outstanding():
            # Idle network: nothing owed, frozen counters are fine.
            self._last_progress_cycle = cycle
            return
        if cycle - self._last_progress_cycle >= self.horizon:
            self.trips += 1
            self._armed = False
            raise NoProgressError(cycle, self.horizon, occupancy_snapshot(self.noc))
