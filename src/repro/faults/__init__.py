"""Robustness under injected faults: campaigns, watchdogs, timeouts.

The paper's pitch is a NoC "designed for pipelined, unreliable links";
this package is where that claim gets stress-tested (docs/RESILIENCE.md
is the guide):

* :class:`FaultInjector` / :class:`FaultWindow` -- scripted and
  randomized fault schedules (burst errors, stuck-at links, transient
  dead links, per-direction overrides) applied to a built NoC's links;
* :class:`ProgressWatchdog` / :class:`NoProgressError` -- runtime
  livelock/deadlock/starvation detection with an occupancy snapshot
  for diagnosis;
* :class:`CampaignSpec` / :func:`run_campaign` / :class:`FaultCampaign`
  -- the measurement harness, ExperimentRunner-cacheable and exposed
  as ``python -m repro faults``.

End-to-end transaction timeouts live with the NI itself
(``NiConfig.txn_timeout`` / ``txn_retries``) and sender resync with the
go-back-N sender (``GoBackNSender.resync_timeout``); this package is
what exercises them.
"""

from repro.faults.campaign import (
    CampaignResult,
    CampaignSpec,
    CheckpointedCampaign,
    FaultCampaign,
    ReplicatedCampaign,
    campaign_checkpoint_path,
    checkpoint_options_from_env,
    render_campaign,
    replicas_from_env,
    run_campaign,
    run_campaign_replicated,
)
from repro.faults.injector import (
    FAULT_MODES,
    FaultInjector,
    FaultWindow,
    randomized_windows,
)
from repro.faults.watchdog import NoProgressError, ProgressWatchdog

__all__ = [
    "FAULT_MODES",
    "CampaignResult",
    "CampaignSpec",
    "CheckpointedCampaign",
    "FaultCampaign",
    "FaultInjector",
    "FaultWindow",
    "NoProgressError",
    "ProgressWatchdog",
    "ReplicatedCampaign",
    "campaign_checkpoint_path",
    "checkpoint_options_from_env",
    "randomized_windows",
    "render_campaign",
    "replicas_from_env",
    "run_campaign",
    "run_campaign_replicated",
]
