"""Fault campaigns: resilience measurement as a repeatable experiment.

A campaign is "run this workload on this NoC while this fault schedule
plays out, and report what survived": accepted traffic, latency of what
completed, how many transactions were retried or reported lost, and
whether the network ever stopped making progress (caught by the
:class:`~repro.faults.watchdog.ProgressWatchdog` rather than hanging
the simulation).

Specs are frozen dataclasses and :func:`run_campaign` is a module-level
function, so campaigns plug into
:class:`repro.flow.runner.ExperimentRunner` for process-parallel,
disk-cached execution exactly like load sweeps do -- ``FaultCampaign``
is the convenience wrapper, and ``python -m repro faults`` the CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector, FaultWindow
from repro.faults.watchdog import NoProgressError, ProgressWatchdog
from repro.flow.runner import ExperimentRunner, RunManifest, stable_repr
from repro.network.experiments import TopologyNocBuilder
from repro.network.traffic import UniformRandomTraffic
from repro.sim.batch import SEED_STRIDE, BatchSimulator, mean_ci95
from repro.sim.snapshot import SimSnapshot, SnapshotError
from repro.telemetry import events as _events


@dataclass(frozen=True)
class CampaignSpec:
    """One fault-campaign run, fully described (picklable, hashable)."""

    builder: TopologyNocBuilder
    windows: Tuple[FaultWindow, ...] = ()
    rate: float = 0.05
    warmup_cycles: int = 200
    measure_cycles: int = 2000
    max_outstanding: int = 4
    seed: int = 0
    #: Arm a ProgressWatchdog with this horizon; ``None`` disables
    #: (the campaign then relies on NI timeouts alone).
    watchdog_horizon: Optional[int] = 2000
    label: str = ""

    def cache_token(self) -> str:
        """Opt into ExperimentRunner disk caching (see stable_repr)."""
        return "CampaignSpec"


@dataclass(frozen=True)
class CampaignResult:
    """What one campaign run observed."""

    label: str
    offered_rate: float
    cycles_run: int
    issued: int
    completed: int
    failed: int  # transactions reported lost (SResp.ERR)
    retried: int
    accepted_rate: float  # completed transactions per cycle, post-warmup
    mean_latency: float
    p95_latency: float
    errors_injected: int
    flits_dropped: int
    retransmissions: int
    windows_opened: int
    no_progress: bool = False
    no_progress_cycle: int = -1
    diagnosis: str = ""
    manifest: Optional[RunManifest] = field(default=None, compare=False)
    #: Replica lanes this result was reduced over (1 = a single seed,
    #: the historical behaviour; the metric fields are then raw).
    replicas: int = 1
    #: 95% confidence half-widths when ``replicas > 1``:
    #: ``{"accepted_rate": ..., "mean_latency": ..., "p95_latency": ...}``
    #: (Student-t; see docs/BATCHING.md).  Derived and dict-valued, so
    #: excluded from equality/hash like the manifest.
    ci95: Optional[Dict[str, float]] = field(default=None, compare=False)
    #: The raw per-lane values behind the means, keyed by metric name --
    #: kept so figures can plot distributions, excluded from equality.
    lane_metrics: Optional[Dict[str, Tuple[float, ...]]] = field(
        default=None, compare=False
    )


def _latency_stats(samples: Sequence[int]) -> Tuple[float, float]:
    if not samples:
        return 0.0, 0.0
    ordered = sorted(samples)
    mean = sum(ordered) / len(ordered)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))]
    return mean, float(p95)


def campaign_checkpoint_path(spec: CampaignSpec, checkpoint_dir: str) -> str:
    """Where a campaign's mid-run checkpoint lives.

    Keyed by the sha256 of ``stable_repr(spec)``, so the same spec
    always finds its own checkpoint and different specs never collide.
    """
    digest = hashlib.sha256(stable_repr(spec).encode()).hexdigest()
    return os.path.join(checkpoint_dir, f"campaign-{digest[:16]}.ckpt")


def _build_campaign_noc(spec: CampaignSpec):
    """Deterministically rebuild the campaign's NoC + injector.

    Called both for a fresh run and before restoring a checkpoint: the
    snapshot layer stores state only, so restore needs a structurally
    identical simulator (see docs/CHECKPOINT.md)."""
    noc = spec.builder()
    injector = FaultInjector(noc, spec.windows)
    targets = list(noc.topology.targets)
    patterns = {
        ni: UniformRandomTraffic(targets, spec.rate, seed=spec.seed + 17 * i)
        for i, ni in enumerate(noc.topology.initiators)
    }
    noc.populate(patterns, max_outstanding=spec.max_outstanding)
    return noc, injector


def run_campaign(
    spec: CampaignSpec,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> CampaignResult:
    """Build, fault, run and measure one campaign (module-level so
    ExperimentRunner worker processes can pickle it).

    With ``checkpoint_every`` and ``checkpoint_dir`` set, the run is
    sliced at checkpoint boundaries and a deterministic simulator
    snapshot (plus warm-up accounting in its extras) is written after
    each slice -- slicing ``run`` is cycle-identical to one long run.
    With ``resume=True`` an existing checkpoint for this spec is
    restored and only the remaining cycles are simulated; an unreadable
    or structurally stale checkpoint falls back to a fresh run.
    """
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1 cycles, got {checkpoint_every}")
    ckpt_path: Optional[str] = None
    if checkpoint_every is not None:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        ckpt_path = campaign_checkpoint_path(spec, checkpoint_dir)

    noc, injector = _build_campaign_noc(spec)
    total_cycles = spec.warmup_cycles + spec.measure_cycles

    warm_completed = 0
    warm_samples = 0
    warm_captured = False
    if resume and ckpt_path is not None and os.path.exists(ckpt_path):
        try:
            snap = SimSnapshot.load(ckpt_path)
            extras = noc.sim.restore(snap)
            warm_completed = extras.get("warm_completed", 0)
            warm_samples = extras.get("warm_samples", 0)
            warm_captured = extras.get("warm_captured", False)
        except SnapshotError:
            # Stale or torn checkpoint: a partial restore may have
            # touched state, so rebuild and start from cycle 0.
            noc, injector = _build_campaign_noc(spec)
            warm_completed = warm_samples = 0
            warm_captured = False

    # The watchdog hooks the *live* simulator, so (re-)arm it only
    # after any restore; it re-baselines on its first check.
    watchdog = (
        ProgressWatchdog(noc, horizon=spec.watchdog_horizon)
        if spec.watchdog_horizon is not None
        else None
    )

    # Run in slices so warm-up stats are captured punctually and
    # checkpoints land on exact multiples of checkpoint_every.
    boundaries = {spec.warmup_cycles, total_cycles}
    if ckpt_path is not None:
        boundaries.update(range(checkpoint_every, total_cycles, checkpoint_every))

    no_progress = False
    no_progress_cycle = -1
    diagnosis = ""
    try:
        for boundary in sorted(boundaries):
            if boundary <= noc.sim.cycle:
                continue
            noc.run(boundary - noc.sim.cycle)
            if noc.sim.cycle == spec.warmup_cycles and not warm_captured:
                warm_completed = noc.total_completed()
                warm_samples = len(noc.aggregate_latency().samples)
                warm_captured = True
            if (
                ckpt_path is not None
                and boundary % checkpoint_every == 0
                and boundary < total_cycles
            ):
                snap = noc.sim.snapshot(
                    extras={
                        "warm_completed": warm_completed,
                        "warm_samples": warm_samples,
                        "warm_captured": warm_captured,
                    }
                )
                snap.save(ckpt_path)
                _events.emit("checkpoint", cycle=boundary, lane=None)
    except NoProgressError as exc:
        no_progress = True
        no_progress_cycle = exc.cycle
        diagnosis = exc.describe()
    finally:
        if watchdog is not None:
            watchdog.detach()

    if ckpt_path is not None and not no_progress:
        # Finished cleanly: the checkpoint has served its purpose.
        try:
            os.unlink(ckpt_path)
        except OSError:
            pass

    cycles_run = noc.sim.cycle
    measured = max(cycles_run - spec.warmup_cycles, 1)
    completed = noc.total_completed()
    samples = noc.aggregate_latency().samples[warm_samples:]
    mean, p95 = _latency_stats(samples)
    return CampaignResult(
        label=spec.label or f"rate={spec.rate}",
        offered_rate=spec.rate,
        cycles_run=cycles_run,
        issued=noc.total_issued(),
        completed=completed,
        failed=noc.total_transactions_failed(),
        retried=noc.total_transactions_retried(),
        accepted_rate=(completed - warm_completed) / measured,
        mean_latency=mean,
        p95_latency=p95,
        errors_injected=noc.total_errors_injected(),
        flits_dropped=noc.total_flits_dropped(),
        retransmissions=noc.total_retransmissions(),
        windows_opened=injector.windows_opened,
        no_progress=no_progress,
        no_progress_cycle=no_progress_cycle,
        diagnosis=diagnosis,
    )


#: Numeric metrics collected from every replica lane; the reduction
#: means each column and attaches 95% CIs to the headline three.
_LANE_METRICS = (
    "cycles_run", "issued", "completed", "failed", "retried",
    "accepted_rate", "mean_latency", "p95_latency", "errors_injected",
    "flits_dropped", "retransmissions", "windows_opened", "no_progress",
)


def _imean(values: Sequence[float]) -> int:
    return int(round(sum(values) / len(values)))


def run_campaign_replicated(
    spec: CampaignSpec,
    replicas: int,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    seed_stride: int = SEED_STRIDE,
) -> CampaignResult:
    """Run one campaign spec under ``replicas`` seed-varied lanes.

    The NoC is built and compiled **once** (a
    :class:`~repro.sim.batch.BatchSimulator`); lane ``k`` reruns the
    identical fault schedule with every traffic and link seed offset by
    ``k * seed_stride``.  Lane 0 uses the spec's own seeds, so a
    1-replica call reproduces :func:`run_campaign` exactly.  The lanes
    reduce to a single :class:`CampaignResult` of means carrying
    per-metric 95% confidence half-widths in ``ci95`` and the raw
    per-lane columns in ``lane_metrics``; a lane whose watchdog trips
    still contributes its truncated measurements, and the first trip's
    cycle/diagnosis surface on the reduced result.

    Checkpoints (``checkpoint_every`` + ``checkpoint_dir``) capture the
    in-flight lane's simulator state *plus* a format-v2 batch container
    (lane index, finished lanes' rows), so ``resume=True`` re-enters
    mid-lane and skips every finished lane.  A checkpoint from a
    different replica count or stride is treated as stale (fresh run).
    """
    if replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError(
            f"checkpoint_every must be >= 1 cycles, got {checkpoint_every}"
        )
    ckpt_path: Optional[str] = None
    if checkpoint_every is not None:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        # Distinct from the scalar campaign's file: the two runs compute
        # different things, so they must never adopt each other's state.
        base = campaign_checkpoint_path(spec, checkpoint_dir)
        ckpt_path = base[: -len(".ckpt")] + f"-r{replicas}.ckpt"

    noc, injector = _build_campaign_noc(spec)
    total_cycles = spec.warmup_cycles + spec.measure_cycles
    boundaries = {spec.warmup_cycles, total_cycles}
    if ckpt_path is not None:
        boundaries.update(range(checkpoint_every, total_cycles, checkpoint_every))
    boundaries = sorted(boundaries)

    batch: Optional[BatchSimulator] = None
    rows: List[dict] = []
    start_lane = 0
    mid_lane = False
    warm = {"warm_completed": 0, "warm_samples": 0, "warm_captured": False}

    if resume and ckpt_path is not None and os.path.exists(ckpt_path):
        try:
            snap = SimSnapshot.load(ckpt_path)
            state = snap.batch
            if state is None:
                raise SnapshotError(
                    "checkpoint carries no batch container (scalar capture?)"
                )
            if (
                state["replicas"] != replicas
                or state["seed_stride"] != seed_stride
            ):
                raise SnapshotError(
                    f"batch checkpoint was taken with replicas="
                    f"{state['replicas']} stride={state['seed_stride']}; "
                    f"this run wants {replicas}/{seed_stride}"
                )
            extras = noc.sim.restore(snap)
            # Restore swaps the traffic patterns in by value, so the
            # batch must be built *after* it -- with the lane-k seeds
            # the checkpoint carries discounted back to the lane-0 base
            # (``assume_lane``).
            lane = int(state["lane"])
            batch = BatchSimulator(
                noc, replicas, seed_stride=seed_stride, assume_lane=lane
            )
            batch.lane = lane
            rows = [dict(r) for r in state["lane_results"]]
            start_lane = lane
            mid_lane = True
            warm = {
                "warm_completed": extras.get("warm_completed", 0),
                "warm_samples": extras.get("warm_samples", 0),
                "warm_captured": extras.get("warm_captured", False),
            }
        except SnapshotError:
            # Stale or torn checkpoint: a partial restore may have
            # touched state, so rebuild and start from lane 0.
            noc, injector = _build_campaign_noc(spec)
            batch = None
            rows = []
            start_lane = 0
            mid_lane = False
            warm = {"warm_completed": 0, "warm_samples": 0, "warm_captured": False}
    if batch is None:
        batch = BatchSimulator(noc, replicas, seed_stride=seed_stride)

    for k in range(start_lane, replicas):
        if not (mid_lane and k == start_lane):
            batch.begin_lane(k)
            warm = {"warm_completed": 0, "warm_samples": 0, "warm_captured": False}
        # Per lane, armed after any restore -- it re-baselines on its
        # first check, and a tripped lane must not poison the next.
        watchdog = (
            ProgressWatchdog(noc, horizon=spec.watchdog_horizon)
            if spec.watchdog_horizon is not None
            else None
        )
        no_progress = False
        no_progress_cycle = -1
        diagnosis = ""
        try:
            for boundary in boundaries:
                if boundary <= noc.sim.cycle:
                    continue
                batch.run_exact(boundary - noc.sim.cycle)
                if (
                    noc.sim.cycle == spec.warmup_cycles
                    and not warm["warm_captured"]
                ):
                    warm["warm_completed"] = noc.total_completed()
                    warm["warm_samples"] = len(noc.aggregate_latency().samples)
                    warm["warm_captured"] = True
                if (
                    ckpt_path is not None
                    and boundary % checkpoint_every == 0
                    and boundary < total_cycles
                ):
                    snap = noc.sim.snapshot(extras=dict(warm))
                    snap.batch = {
                        **batch.batch_state(),
                        "lane_results": [dict(r) for r in rows],
                    }
                    snap.save(ckpt_path)
                    _events.emit("checkpoint", cycle=boundary, lane=k)
        except NoProgressError as exc:
            no_progress = True
            no_progress_cycle = exc.cycle
            diagnosis = exc.describe()
        finally:
            if watchdog is not None:
                watchdog.detach()

        cycles_run = noc.sim.cycle
        measured = max(cycles_run - spec.warmup_cycles, 1)
        completed = noc.total_completed()
        samples = noc.aggregate_latency().samples[warm["warm_samples"]:]
        mean, p95 = _latency_stats(samples)
        rows.append(
            {
                "cycles_run": float(cycles_run),
                "issued": float(noc.total_issued()),
                "completed": float(completed),
                "failed": float(noc.total_transactions_failed()),
                "retried": float(noc.total_transactions_retried()),
                "accepted_rate": (completed - warm["warm_completed"]) / measured,
                "mean_latency": mean,
                "p95_latency": p95,
                "errors_injected": float(noc.total_errors_injected()),
                "flits_dropped": float(noc.total_flits_dropped()),
                "retransmissions": float(noc.total_retransmissions()),
                "windows_opened": float(injector.windows_opened),
                "no_progress": 1.0 if no_progress else 0.0,
                "no_progress_cycle": float(no_progress_cycle),
                "diagnosis": diagnosis,
            }
        )
        if _events.current_sink() is not None:
            # The digest is only hashed when somebody is listening: the
            # replay check (batch-smoke) compares per-lane digests of a
            # killed-and-resumed campaign against an uninterrupted one.
            _events.emit(
                "lane_batch", lane=k, replicas=replicas,
                metrics={name: rows[-1][name] for name in _LANE_METRICS},
                digest=noc.stats_digest(),
            )

    any_trip = any(r["no_progress"] for r in rows)
    if ckpt_path is not None and not any_trip:
        try:
            os.unlink(ckpt_path)
        except OSError:
            pass

    def col(name: str) -> Tuple[float, ...]:
        return tuple(float(r[name]) for r in rows)

    acc_mean, acc_half = mean_ci95(col("accepted_rate"))
    lat_mean, lat_half = mean_ci95(col("mean_latency"))
    p95_mean, p95_half = mean_ci95(col("p95_latency"))
    first_trip = next((r for r in rows if r["no_progress"]), None)
    return CampaignResult(
        label=spec.label or f"rate={spec.rate}",
        offered_rate=spec.rate,
        cycles_run=_imean(col("cycles_run")),
        issued=_imean(col("issued")),
        completed=_imean(col("completed")),
        failed=_imean(col("failed")),
        retried=_imean(col("retried")),
        accepted_rate=acc_mean,
        mean_latency=lat_mean,
        p95_latency=p95_mean,
        errors_injected=_imean(col("errors_injected")),
        flits_dropped=_imean(col("flits_dropped")),
        retransmissions=_imean(col("retransmissions")),
        windows_opened=_imean(col("windows_opened")),
        no_progress=any_trip,
        no_progress_cycle=(
            int(first_trip["no_progress_cycle"]) if first_trip else -1
        ),
        diagnosis=first_trip["diagnosis"] if first_trip else "",
        replicas=replicas,
        ci95={
            "accepted_rate": acc_half,
            "mean_latency": lat_half,
            "p95_latency": p95_half,
        },
        lane_metrics={name: col(name) for name in _LANE_METRICS},
    )


class CheckpointedCampaign:
    """A picklable ``run_campaign`` with checkpoint/resume bound in.

    Deliberately *not* a dataclass, and ``cache_token`` mirrors plain
    ``run_campaign``'s :func:`stable_repr`: checkpointing changes how a
    result is computed, never what it is, so runner cache keys must be
    identical with and without the flags -- a resumed sweep then hits
    the cache entries its killed predecessor already published.
    """

    def __init__(
        self,
        checkpoint_every: int,
        checkpoint_dir: str,
        resume: bool = False,
    ) -> None:
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    def __call__(self, spec: CampaignSpec) -> CampaignResult:
        return run_campaign(
            spec,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
        )

    def cache_token(self):
        # The token is the wrapped function itself, so stable_repr sees
        # exactly what it sees for a plain run_campaign sweep.
        return run_campaign


class ReplicatedCampaign:
    """A picklable ``run_campaign_replicated`` with its knobs bound in.

    Unlike :class:`CheckpointedCampaign`, the cache token **must**
    encode the replica count and stride: replication changes the
    *result* (means + CIs), not just how it is computed, so an
    8-replica sweep and a 32-replica sweep may never share runner cache
    entries.  Checkpoint flags stay out of the token for the same
    reason they do in the scalar wrapper.
    """

    def __init__(
        self,
        replicas: int,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        seed_stride: int = SEED_STRIDE,
    ) -> None:
        self.replicas = replicas
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.seed_stride = seed_stride

    def __call__(self, spec: CampaignSpec) -> CampaignResult:
        return run_campaign_replicated(
            spec,
            self.replicas,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
            seed_stride=self.seed_stride,
        )

    def cache_token(self) -> str:
        return (
            f"run_campaign_replicated(replicas={self.replicas}, "
            f"seed_stride={self.seed_stride})"
        )


class FaultCampaign:
    """A batch of campaign specs, optionally runner-accelerated.

    ``checkpoint_every`` / ``checkpoint_dir`` / ``resume`` thread the
    per-spec checkpointing of :func:`run_campaign` through the batch
    (and through the runner's worker processes).  ``replicas > 1``
    switches every spec to :func:`run_campaign_replicated`: each point
    becomes a seed-varied Monte-Carlo batch whose result carries 95%
    confidence intervals."""

    def __init__(
        self,
        specs: Sequence[CampaignSpec],
        runner: Optional[ExperimentRunner] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
        replicas: Optional[int] = None,
        seed_stride: int = SEED_STRIDE,
    ) -> None:
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        if replicas is not None and replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.specs = list(specs)
        self.runner = runner
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        self.replicas = replicas
        self.seed_stride = seed_stride

    def _fn(self):
        if self.replicas is not None and self.replicas > 1:
            return ReplicatedCampaign(
                self.replicas,
                checkpoint_every=self.checkpoint_every,
                checkpoint_dir=self.checkpoint_dir,
                resume=self.resume,
                seed_stride=self.seed_stride,
            )
        if self.checkpoint_every is None:
            return run_campaign
        return CheckpointedCampaign(
            self.checkpoint_every, self.checkpoint_dir, self.resume
        )

    def run(self) -> List[CampaignResult]:
        fn = self._fn()
        if self.runner is not None:
            results = self.runner.map(fn, self.specs, label="campaign")
            # Same provenance surfacing as load_sweep: one manifest per
            # point, in input order (cache key, hit/miss, wall time).
            # Failed points (on_failure="record") carry no manifest.
            if len(self.runner.last_manifests) == len(results):
                return [
                    dataclasses.replace(r, manifest=m)
                    for r, m in zip(results, self.runner.last_manifests)
                ]
            return results
        return [fn(s) for s in self.specs]


def checkpoint_options_from_env() -> dict:
    """``REPRO_CHECKPOINT_EVERY`` / ``REPRO_CHECKPOINT_DIR`` /
    ``REPRO_RESUME`` as :class:`FaultCampaign` keyword arguments.

    The environment is how ``python -m repro figures --checkpoint-every
    N --checkpoint-dir DIR --resume`` reaches campaigns inside
    pytest-collected benchmarks (same channel as REPRO_JOBS).  Invalid
    values raise :class:`ValueError` naming the variable.
    """
    from repro.flow.runner import _env_flag

    raw = os.environ.get("REPRO_CHECKPOINT_EVERY") or None
    every: Optional[int] = None
    if raw is not None:
        try:
            every = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_CHECKPOINT_EVERY must be a cycle count, got {raw!r}"
            ) from None
        if every < 1:
            raise ValueError(
                f"REPRO_CHECKPOINT_EVERY must be >= 1 cycles, got {every}"
            )
    checkpoint_dir = os.environ.get("REPRO_CHECKPOINT_DIR") or None
    if every is not None and checkpoint_dir is None:
        raise ValueError("REPRO_CHECKPOINT_EVERY needs REPRO_CHECKPOINT_DIR")
    resume = _env_flag("REPRO_RESUME", os.environ.get("REPRO_RESUME"))
    return {
        "checkpoint_every": every,
        "checkpoint_dir": checkpoint_dir,
        "resume": resume,
    }


def replicas_from_env(default: Optional[int] = None) -> Optional[int]:
    """``REPRO_REPLICAS`` as a replica count (``python -m repro figures
    --replicas N`` reaches benchmarks through it, like REPRO_JOBS)."""
    raw = os.environ.get("REPRO_REPLICAS") or None
    if raw is None:
        return default
    try:
        n = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_REPLICAS must be an integer, got {raw!r}"
        ) from None
    if n < 1:
        raise ValueError(f"REPRO_REPLICAS must be >= 1, got {n}")
    return n


def render_campaign(results: Sequence[CampaignResult]) -> str:
    """Printable table of campaign outcomes (with a +-95% CI column on
    the accepted rate when any result was replicated)."""
    with_ci = any(r.ci95 for r in results)
    header = (
        f"{'label':<22} {'acc/cyc':>8} {'mean':>7} {'p95':>6} "
        f"{'fail':>5} {'retry':>6} {'errs':>6} {'drop':>6} {'rtx':>7}"
    )
    if with_ci:
        header += f" {'+-acc95':>8} {'lanes':>6}"
    lines = [header + "  note"]
    for r in results:
        note = (
            f"NO PROGRESS @ {r.no_progress_cycle}" if r.no_progress else ""
        )
        row = (
            f"{r.label:<22} {r.accepted_rate:>8.4f} {r.mean_latency:>7.1f} "
            f"{r.p95_latency:>6.0f} {r.failed:>5} {r.retried:>6} "
            f"{r.errors_injected:>6} {r.flits_dropped:>6} "
            f"{r.retransmissions:>7}"
        )
        if with_ci:
            half = (r.ci95 or {}).get("accepted_rate", 0.0)
            row += f" {half:>8.4f} {r.replicas:>6d}"
        lines.append(row + f"  {note}")
    return "\n".join(lines)
