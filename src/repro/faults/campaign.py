"""Fault campaigns: resilience measurement as a repeatable experiment.

A campaign is "run this workload on this NoC while this fault schedule
plays out, and report what survived": accepted traffic, latency of what
completed, how many transactions were retried or reported lost, and
whether the network ever stopped making progress (caught by the
:class:`~repro.faults.watchdog.ProgressWatchdog` rather than hanging
the simulation).

Specs are frozen dataclasses and :func:`run_campaign` is a module-level
function, so campaigns plug into
:class:`repro.flow.runner.ExperimentRunner` for process-parallel,
disk-cached execution exactly like load sweeps do -- ``FaultCampaign``
is the convenience wrapper, and ``python -m repro faults`` the CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector, FaultWindow
from repro.faults.watchdog import NoProgressError, ProgressWatchdog
from repro.flow.runner import ExperimentRunner, RunManifest, stable_repr
from repro.network.experiments import TopologyNocBuilder
from repro.network.traffic import UniformRandomTraffic
from repro.sim.snapshot import SimSnapshot, SnapshotError


@dataclass(frozen=True)
class CampaignSpec:
    """One fault-campaign run, fully described (picklable, hashable)."""

    builder: TopologyNocBuilder
    windows: Tuple[FaultWindow, ...] = ()
    rate: float = 0.05
    warmup_cycles: int = 200
    measure_cycles: int = 2000
    max_outstanding: int = 4
    seed: int = 0
    #: Arm a ProgressWatchdog with this horizon; ``None`` disables
    #: (the campaign then relies on NI timeouts alone).
    watchdog_horizon: Optional[int] = 2000
    label: str = ""

    def cache_token(self) -> str:
        """Opt into ExperimentRunner disk caching (see stable_repr)."""
        return "CampaignSpec"


@dataclass(frozen=True)
class CampaignResult:
    """What one campaign run observed."""

    label: str
    offered_rate: float
    cycles_run: int
    issued: int
    completed: int
    failed: int  # transactions reported lost (SResp.ERR)
    retried: int
    accepted_rate: float  # completed transactions per cycle, post-warmup
    mean_latency: float
    p95_latency: float
    errors_injected: int
    flits_dropped: int
    retransmissions: int
    windows_opened: int
    no_progress: bool = False
    no_progress_cycle: int = -1
    diagnosis: str = ""
    manifest: Optional[RunManifest] = field(default=None, compare=False)


def _latency_stats(samples: Sequence[int]) -> Tuple[float, float]:
    if not samples:
        return 0.0, 0.0
    ordered = sorted(samples)
    mean = sum(ordered) / len(ordered)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))]
    return mean, float(p95)


def campaign_checkpoint_path(spec: CampaignSpec, checkpoint_dir: str) -> str:
    """Where a campaign's mid-run checkpoint lives.

    Keyed by the sha256 of ``stable_repr(spec)``, so the same spec
    always finds its own checkpoint and different specs never collide.
    """
    digest = hashlib.sha256(stable_repr(spec).encode()).hexdigest()
    return os.path.join(checkpoint_dir, f"campaign-{digest[:16]}.ckpt")


def _build_campaign_noc(spec: CampaignSpec):
    """Deterministically rebuild the campaign's NoC + injector.

    Called both for a fresh run and before restoring a checkpoint: the
    snapshot layer stores state only, so restore needs a structurally
    identical simulator (see docs/CHECKPOINT.md)."""
    noc = spec.builder()
    injector = FaultInjector(noc, spec.windows)
    targets = list(noc.topology.targets)
    patterns = {
        ni: UniformRandomTraffic(targets, spec.rate, seed=spec.seed + 17 * i)
        for i, ni in enumerate(noc.topology.initiators)
    }
    noc.populate(patterns, max_outstanding=spec.max_outstanding)
    return noc, injector


def run_campaign(
    spec: CampaignSpec,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
) -> CampaignResult:
    """Build, fault, run and measure one campaign (module-level so
    ExperimentRunner worker processes can pickle it).

    With ``checkpoint_every`` and ``checkpoint_dir`` set, the run is
    sliced at checkpoint boundaries and a deterministic simulator
    snapshot (plus warm-up accounting in its extras) is written after
    each slice -- slicing ``run`` is cycle-identical to one long run.
    With ``resume=True`` an existing checkpoint for this spec is
    restored and only the remaining cycles are simulated; an unreadable
    or structurally stale checkpoint falls back to a fresh run.
    """
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1 cycles, got {checkpoint_every}")
    ckpt_path: Optional[str] = None
    if checkpoint_every is not None:
        if checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        ckpt_path = campaign_checkpoint_path(spec, checkpoint_dir)

    noc, injector = _build_campaign_noc(spec)
    total_cycles = spec.warmup_cycles + spec.measure_cycles

    warm_completed = 0
    warm_samples = 0
    warm_captured = False
    if resume and ckpt_path is not None and os.path.exists(ckpt_path):
        try:
            snap = SimSnapshot.load(ckpt_path)
            extras = noc.sim.restore(snap)
            warm_completed = extras.get("warm_completed", 0)
            warm_samples = extras.get("warm_samples", 0)
            warm_captured = extras.get("warm_captured", False)
        except SnapshotError:
            # Stale or torn checkpoint: a partial restore may have
            # touched state, so rebuild and start from cycle 0.
            noc, injector = _build_campaign_noc(spec)
            warm_completed = warm_samples = 0
            warm_captured = False

    # The watchdog hooks the *live* simulator, so (re-)arm it only
    # after any restore; it re-baselines on its first check.
    watchdog = (
        ProgressWatchdog(noc, horizon=spec.watchdog_horizon)
        if spec.watchdog_horizon is not None
        else None
    )

    # Run in slices so warm-up stats are captured punctually and
    # checkpoints land on exact multiples of checkpoint_every.
    boundaries = {spec.warmup_cycles, total_cycles}
    if ckpt_path is not None:
        boundaries.update(range(checkpoint_every, total_cycles, checkpoint_every))

    no_progress = False
    no_progress_cycle = -1
    diagnosis = ""
    try:
        for boundary in sorted(boundaries):
            if boundary <= noc.sim.cycle:
                continue
            noc.run(boundary - noc.sim.cycle)
            if noc.sim.cycle == spec.warmup_cycles and not warm_captured:
                warm_completed = noc.total_completed()
                warm_samples = len(noc.aggregate_latency().samples)
                warm_captured = True
            if (
                ckpt_path is not None
                and boundary % checkpoint_every == 0
                and boundary < total_cycles
            ):
                snap = noc.sim.snapshot(
                    extras={
                        "warm_completed": warm_completed,
                        "warm_samples": warm_samples,
                        "warm_captured": warm_captured,
                    }
                )
                snap.save(ckpt_path)
    except NoProgressError as exc:
        no_progress = True
        no_progress_cycle = exc.cycle
        diagnosis = exc.describe()
    finally:
        if watchdog is not None:
            watchdog.detach()

    if ckpt_path is not None and not no_progress:
        # Finished cleanly: the checkpoint has served its purpose.
        try:
            os.unlink(ckpt_path)
        except OSError:
            pass

    cycles_run = noc.sim.cycle
    measured = max(cycles_run - spec.warmup_cycles, 1)
    completed = noc.total_completed()
    samples = noc.aggregate_latency().samples[warm_samples:]
    mean, p95 = _latency_stats(samples)
    return CampaignResult(
        label=spec.label or f"rate={spec.rate}",
        offered_rate=spec.rate,
        cycles_run=cycles_run,
        issued=noc.total_issued(),
        completed=completed,
        failed=noc.total_transactions_failed(),
        retried=noc.total_transactions_retried(),
        accepted_rate=(completed - warm_completed) / measured,
        mean_latency=mean,
        p95_latency=p95,
        errors_injected=noc.total_errors_injected(),
        flits_dropped=noc.total_flits_dropped(),
        retransmissions=noc.total_retransmissions(),
        windows_opened=injector.windows_opened,
        no_progress=no_progress,
        no_progress_cycle=no_progress_cycle,
        diagnosis=diagnosis,
    )


class CheckpointedCampaign:
    """A picklable ``run_campaign`` with checkpoint/resume bound in.

    Deliberately *not* a dataclass, and ``cache_token`` mirrors plain
    ``run_campaign``'s :func:`stable_repr`: checkpointing changes how a
    result is computed, never what it is, so runner cache keys must be
    identical with and without the flags -- a resumed sweep then hits
    the cache entries its killed predecessor already published.
    """

    def __init__(
        self,
        checkpoint_every: int,
        checkpoint_dir: str,
        resume: bool = False,
    ) -> None:
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    def __call__(self, spec: CampaignSpec) -> CampaignResult:
        return run_campaign(
            spec,
            checkpoint_every=self.checkpoint_every,
            checkpoint_dir=self.checkpoint_dir,
            resume=self.resume,
        )

    def cache_token(self):
        # The token is the wrapped function itself, so stable_repr sees
        # exactly what it sees for a plain run_campaign sweep.
        return run_campaign


class FaultCampaign:
    """A batch of campaign specs, optionally runner-accelerated.

    ``checkpoint_every`` / ``checkpoint_dir`` / ``resume`` thread the
    per-spec checkpointing of :func:`run_campaign` through the batch
    (and through the runner's worker processes)."""

    def __init__(
        self,
        specs: Sequence[CampaignSpec],
        runner: Optional[ExperimentRunner] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        if checkpoint_every is not None and checkpoint_dir is None:
            raise ValueError("checkpoint_every needs a checkpoint_dir")
        self.specs = list(specs)
        self.runner = runner
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume

    def _fn(self):
        if self.checkpoint_every is None:
            return run_campaign
        return CheckpointedCampaign(
            self.checkpoint_every, self.checkpoint_dir, self.resume
        )

    def run(self) -> List[CampaignResult]:
        fn = self._fn()
        if self.runner is not None:
            results = self.runner.map(fn, self.specs, label="campaign")
            # Same provenance surfacing as load_sweep: one manifest per
            # point, in input order (cache key, hit/miss, wall time).
            # Failed points (on_failure="record") carry no manifest.
            if len(self.runner.last_manifests) == len(results):
                return [
                    dataclasses.replace(r, manifest=m)
                    for r, m in zip(results, self.runner.last_manifests)
                ]
            return results
        return [fn(s) for s in self.specs]


def checkpoint_options_from_env() -> dict:
    """``REPRO_CHECKPOINT_EVERY`` / ``REPRO_CHECKPOINT_DIR`` /
    ``REPRO_RESUME`` as :class:`FaultCampaign` keyword arguments.

    The environment is how ``python -m repro figures --checkpoint-every
    N --checkpoint-dir DIR --resume`` reaches campaigns inside
    pytest-collected benchmarks (same channel as REPRO_JOBS).  Invalid
    values raise :class:`ValueError` naming the variable.
    """
    from repro.flow.runner import _env_flag

    raw = os.environ.get("REPRO_CHECKPOINT_EVERY") or None
    every: Optional[int] = None
    if raw is not None:
        try:
            every = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_CHECKPOINT_EVERY must be a cycle count, got {raw!r}"
            ) from None
        if every < 1:
            raise ValueError(
                f"REPRO_CHECKPOINT_EVERY must be >= 1 cycles, got {every}"
            )
    checkpoint_dir = os.environ.get("REPRO_CHECKPOINT_DIR") or None
    if every is not None and checkpoint_dir is None:
        raise ValueError("REPRO_CHECKPOINT_EVERY needs REPRO_CHECKPOINT_DIR")
    resume = _env_flag("REPRO_RESUME", os.environ.get("REPRO_RESUME"))
    return {
        "checkpoint_every": every,
        "checkpoint_dir": checkpoint_dir,
        "resume": resume,
    }


def render_campaign(results: Sequence[CampaignResult]) -> str:
    """Printable table of campaign outcomes."""
    lines = [
        f"{'label':<22} {'acc/cyc':>8} {'mean':>7} {'p95':>6} "
        f"{'fail':>5} {'retry':>6} {'errs':>6} {'drop':>6} {'rtx':>7}  note"
    ]
    for r in results:
        note = (
            f"NO PROGRESS @ {r.no_progress_cycle}" if r.no_progress else ""
        )
        lines.append(
            f"{r.label:<22} {r.accepted_rate:>8.4f} {r.mean_latency:>7.1f} "
            f"{r.p95_latency:>6.0f} {r.failed:>5} {r.retried:>6} "
            f"{r.errors_injected:>6} {r.flits_dropped:>6} "
            f"{r.retransmissions:>7}  {note}"
        )
    return "\n".join(lines)
