"""Fault campaigns: resilience measurement as a repeatable experiment.

A campaign is "run this workload on this NoC while this fault schedule
plays out, and report what survived": accepted traffic, latency of what
completed, how many transactions were retried or reported lost, and
whether the network ever stopped making progress (caught by the
:class:`~repro.faults.watchdog.ProgressWatchdog` rather than hanging
the simulation).

Specs are frozen dataclasses and :func:`run_campaign` is a module-level
function, so campaigns plug into
:class:`repro.flow.runner.ExperimentRunner` for process-parallel,
disk-cached execution exactly like load sweeps do -- ``FaultCampaign``
is the convenience wrapper, and ``python -m repro faults`` the CLI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.faults.injector import FaultInjector, FaultWindow
from repro.faults.watchdog import NoProgressError, ProgressWatchdog
from repro.flow.runner import ExperimentRunner, RunManifest
from repro.network.experiments import TopologyNocBuilder
from repro.network.traffic import UniformRandomTraffic


@dataclass(frozen=True)
class CampaignSpec:
    """One fault-campaign run, fully described (picklable, hashable)."""

    builder: TopologyNocBuilder
    windows: Tuple[FaultWindow, ...] = ()
    rate: float = 0.05
    warmup_cycles: int = 200
    measure_cycles: int = 2000
    max_outstanding: int = 4
    seed: int = 0
    #: Arm a ProgressWatchdog with this horizon; ``None`` disables
    #: (the campaign then relies on NI timeouts alone).
    watchdog_horizon: Optional[int] = 2000
    label: str = ""

    def cache_token(self) -> str:
        """Opt into ExperimentRunner disk caching (see stable_repr)."""
        return "CampaignSpec"


@dataclass(frozen=True)
class CampaignResult:
    """What one campaign run observed."""

    label: str
    offered_rate: float
    cycles_run: int
    issued: int
    completed: int
    failed: int  # transactions reported lost (SResp.ERR)
    retried: int
    accepted_rate: float  # completed transactions per cycle, post-warmup
    mean_latency: float
    p95_latency: float
    errors_injected: int
    flits_dropped: int
    retransmissions: int
    windows_opened: int
    no_progress: bool = False
    no_progress_cycle: int = -1
    diagnosis: str = ""
    manifest: Optional[RunManifest] = field(default=None, compare=False)


def _latency_stats(samples: Sequence[int]) -> Tuple[float, float]:
    if not samples:
        return 0.0, 0.0
    ordered = sorted(samples)
    mean = sum(ordered) / len(ordered)
    p95 = ordered[min(len(ordered) - 1, int(0.95 * (len(ordered) - 1)))]
    return mean, float(p95)


def run_campaign(spec: CampaignSpec) -> CampaignResult:
    """Build, fault, run and measure one campaign (module-level so
    ExperimentRunner worker processes can pickle it)."""
    noc = spec.builder()
    injector = FaultInjector(noc, spec.windows)
    targets = list(noc.topology.targets)
    patterns = {
        ni: UniformRandomTraffic(targets, spec.rate, seed=spec.seed + 17 * i)
        for i, ni in enumerate(noc.topology.initiators)
    }
    noc.populate(patterns, max_outstanding=spec.max_outstanding)
    watchdog = (
        ProgressWatchdog(noc, horizon=spec.watchdog_horizon)
        if spec.watchdog_horizon is not None
        else None
    )

    no_progress = False
    no_progress_cycle = -1
    diagnosis = ""
    warm_completed = 0
    warm_samples = 0
    try:
        noc.run(spec.warmup_cycles)
        warm_completed = noc.total_completed()
        warm_samples = len(noc.aggregate_latency().samples)
        noc.run(spec.measure_cycles)
    except NoProgressError as exc:
        no_progress = True
        no_progress_cycle = exc.cycle
        diagnosis = exc.describe()
    finally:
        if watchdog is not None:
            watchdog.detach()

    cycles_run = noc.sim.cycle
    measured = max(cycles_run - spec.warmup_cycles, 1)
    completed = noc.total_completed()
    samples = noc.aggregate_latency().samples[warm_samples:]
    mean, p95 = _latency_stats(samples)
    return CampaignResult(
        label=spec.label or f"rate={spec.rate}",
        offered_rate=spec.rate,
        cycles_run=cycles_run,
        issued=noc.total_issued(),
        completed=completed,
        failed=noc.total_transactions_failed(),
        retried=noc.total_transactions_retried(),
        accepted_rate=(completed - warm_completed) / measured,
        mean_latency=mean,
        p95_latency=p95,
        errors_injected=noc.total_errors_injected(),
        flits_dropped=noc.total_flits_dropped(),
        retransmissions=noc.total_retransmissions(),
        windows_opened=injector.windows_opened,
        no_progress=no_progress,
        no_progress_cycle=no_progress_cycle,
        diagnosis=diagnosis,
    )


class FaultCampaign:
    """A batch of campaign specs, optionally runner-accelerated."""

    def __init__(
        self,
        specs: Sequence[CampaignSpec],
        runner: Optional[ExperimentRunner] = None,
    ) -> None:
        self.specs = list(specs)
        self.runner = runner

    def run(self) -> List[CampaignResult]:
        if self.runner is not None:
            results = self.runner.map(run_campaign, self.specs, label="campaign")
            # Same provenance surfacing as load_sweep: one manifest per
            # point, in input order (cache key, hit/miss, wall time).
            return [
                dataclasses.replace(r, manifest=m)
                for r, m in zip(results, self.runner.last_manifests)
            ]
        return [run_campaign(s) for s in self.specs]


def render_campaign(results: Sequence[CampaignResult]) -> str:
    """Printable table of campaign outcomes."""
    lines = [
        f"{'label':<22} {'acc/cyc':>8} {'mean':>7} {'p95':>6} "
        f"{'fail':>5} {'retry':>6} {'errs':>6} {'drop':>6} {'rtx':>7}  note"
    ]
    for r in results:
        note = (
            f"NO PROGRESS @ {r.no_progress_cycle}" if r.no_progress else ""
        )
        lines.append(
            f"{r.label:<22} {r.accepted_rate:>8.4f} {r.mean_latency:>7.1f} "
            f"{r.p95_latency:>6.0f} {r.failed:>5} {r.retried:>6} "
            f"{r.errors_injected:>6} {r.flits_dropped:>6} "
            f"{r.retransmissions:>7}  {note}"
        )
    return "\n".join(lines)
