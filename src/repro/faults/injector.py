"""Scripted and randomized link-fault campaigns.

The library's baseline error model is a per-link Bernoulli BER fixed at
build time (:class:`repro.core.config.LinkConfig`).  Real fault
campaigns need more shapes: burst errors (an elevated BER for a cycle
window), stuck-at links (every flit corrupted for a spell), and
transient *dead* links that drop flits outright -- the one failure mode
the bare ACK/NACK protocol cannot recover from, which is exactly what
the sender resync timer and the NI transaction timeout exist for (see
docs/RESILIENCE.md).

:class:`FaultInjector` schedules :class:`FaultWindow` s onto the
``Link`` instances of a built :class:`~repro.network.noc.Noc`.  It is a
plain always-on component (no quiescence contract), so fault windows
open and close punctually in both scheduling modes even on links that
are asleep; per-link ``add_probe`` hooks additionally count the flits
each link actually moved while one of its windows was open.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.link import Link
from repro.sim.component import Component
from repro.sim.kernel import SimulationError

#: Recognised fault shapes.
FAULT_MODES = ("burst", "stuck", "dead")


@dataclass(frozen=True)
class FaultWindow:
    """One fault episode on one link direction.

    ``link`` is an exact ``Link`` name or an ``fnmatch`` pattern over
    them (links are unidirectional, so per-direction overrides fall out
    naturally: ``link.s0.p1->s1.p0`` faults only that direction, while
    ``link.s0.*`` faults everything leaving ``s0``).

    Modes: ``burst`` raises the BER to ``error_rate`` for the window;
    ``stuck`` corrupts every flit (BER 1.0, which the build-time config
    deliberately rejects); ``dead`` drops flits without a trace.
    """

    link: str
    start: int
    duration: int
    mode: str = "burst"
    error_rate: float = 0.5

    def __post_init__(self) -> None:
        if self.mode not in FAULT_MODES:
            raise ValueError(f"mode must be one of {FAULT_MODES}, got {self.mode!r}")
        if self.start < 0:
            raise ValueError("start cycle must be >= 0")
        if self.duration < 1:
            raise ValueError("duration must be >= 1 cycle")
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError("error_rate must be in (0, 1]")

    @property
    def end(self) -> int:
        """First cycle after the window."""
        return self.start + self.duration


class FaultInjector(Component):
    """Applies a schedule of :class:`FaultWindow` s to a built NoC.

    Create *after* the NoC (it needs the link instances) and it adds
    itself to the NoC's simulator; the injector then opens and closes
    fault overrides as simulation time passes.  Overlapping windows on
    the same link compose as "most recently opened wins"; when the last
    one closes the link reverts to its configured behaviour.
    """

    #: Checkpoint contract (docs/CHECKPOINT.md): the NoC back-reference
    #: and the resolved window schedule are rebuilt by re-constructing
    #: the injector in the restore workflow; only progress state
    #: (_next_event, _open, counters, probe baselines) is captured.
    SNAPSHOT_STRUCTURAL = frozenset({"noc", "_resolved", "_events"})

    def __init__(
        self,
        noc,
        windows: Sequence[FaultWindow],
        name: str = "faults",
        probe_links: Sequence[str] = (),
    ) -> None:
        super().__init__(name)
        self.noc = noc
        self.windows: Tuple[FaultWindow, ...] = ()
        self._resolved: List[Tuple[FaultWindow, Tuple[Link, ...]]] = []
        self._events: List[Tuple[int, int, int, Link, FaultWindow, bool]] = []
        self._next_event = 0
        # Per link: stack of currently open windows, newest last.
        self._open: Dict[str, List[FaultWindow]] = {}
        # instrumentation
        self.windows_opened = 0
        self.windows_closed = 0
        #: Flits each faulted link moved (carried or dropped) while one
        #: of its windows was open -- counted by per-link tick probes,
        #: which fire only on cycles the link actually executed.
        self.flits_during_fault: Dict[str, int] = {}
        self._probe_last: Dict[str, int] = {}
        #: Lifecycle telemetry: window open/close emit ``fault`` trace
        #: instants (see :mod:`repro.telemetry.lifecycle`).
        self.lifecycle = False

        self._resolve(windows)

        noc.sim.add(self)
        # Register on the NoC so enable_lifecycle / telemetry find us.
        if not hasattr(noc, "fault_injectors"):
            noc.fault_injectors = []
        noc.fault_injectors.append(self)
        # Probes are structural (registering one invalidates a compiled
        # program), so they are laid down once, here: on every link the
        # initial schedule touches plus any ``probe_links`` names given
        # up front.  ``set_windows`` may later swap in any schedule that
        # stays within this probed set -- the batch runner pre-declares
        # the union of its per-lane schedules this way.
        probed = {l for _, links in self._resolved for l in links}
        by_name = {link.name: link for link in noc.links}
        for pat in probe_links:
            names = (
                fnmatch.filter(sorted(by_name), pat)
                if any(ch in pat for ch in "*?[")
                else ([pat] if pat in by_name else [])
            )
            if not names:
                raise SimulationError(
                    f"probe_links pattern matches no link: {pat!r}"
                )
            probed.update(by_name[n] for n in names)
        for link in probed:
            self.flits_during_fault[link.name] = 0
            self._probe_last[link.name] = 0
            noc.sim.add_probe(link, self._make_probe(link))

    def _resolve(self, windows: Sequence[FaultWindow]) -> None:
        """Resolve ``windows`` onto concrete links and rebuild the
        sorted event schedule.  Typos fail here, not mid-campaign."""
        by_name = {link.name: link for link in self.noc.links}
        resolved: List[Tuple[FaultWindow, Tuple[Link, ...]]] = []
        events: List[Tuple[int, int, int, Link, FaultWindow, bool]] = []
        for wi, w in enumerate(windows):
            if any(ch in w.link for ch in "*?["):
                names = fnmatch.filter(sorted(by_name), w.link)
            else:
                names = [w.link] if w.link in by_name else []
            if not names:
                raise SimulationError(
                    f"fault window matches no link: {w.link!r} "
                    f"(links are named e.g. {next(iter(sorted(by_name)))!r})"
                )
            links = tuple(by_name[n] for n in names)
            resolved.append((w, links))
            for link in links:
                # Tie-break by (cycle, open-before-close, window index)
                # so schedules are deterministic however windows overlap.
                events.append((w.start, 0, wi, link, w, True))
                events.append((w.end, 1, wi, link, w, False))
        events.sort(key=lambda e: (e[0], e[1], e[2], e[3].name))
        self.windows = tuple(windows)
        self._resolved = resolved
        self._events = events

    def set_windows(self, windows: Sequence[FaultWindow]) -> None:
        """Replace the fault schedule on a live injector.

        Meant for replica-lane reuse (:mod:`repro.sim.batch`): the same
        built network runs many schedules without re-registering probes,
        so a compiled program stays valid.  Every link the new schedule
        resolves to must already be probed -- construct the injector
        with ``probe_links`` naming the union of all schedules' links.
        Progress state is cleared exactly as :meth:`reset` clears it;
        call at a cycle-0 boundary (after ``sim.reset()``).
        """
        old_links = {l for _, links in self._resolved for l in links}
        self._resolve(windows)
        new_links = {l for _, links in self._resolved for l in links}
        missing = sorted(
            l.name for l in new_links if l.name not in self.flits_during_fault
        )
        if missing:
            raise SimulationError(
                f"set_windows touches unprobed link(s) {missing}: pass "
                f"probe_links= at construction to pre-declare them"
            )
        self._next_event = 0
        self._open.clear()
        self.windows_opened = 0
        self.windows_closed = 0
        for name in self.flits_during_fault:
            self.flits_during_fault[name] = 0
            self._probe_last[name] = 0
        for link in old_links | new_links:
            link.clear_fault()

    def _make_probe(self, link: Link):
        def probe(_cycle: int) -> None:
            moved = link.flits_carried + link.flits_dropped
            if link.fault_active:
                self.flits_during_fault[link.name] += (
                    moved - self._probe_last[link.name]
                )
            self._probe_last[link.name] = moved
        return probe

    def reset(self) -> None:
        self._next_event = 0
        self._open.clear()
        self.windows_opened = 0
        self.windows_closed = 0
        for name in self.flits_during_fault:
            self.flits_during_fault[name] = 0
            self._probe_last[name] = 0
        for _, links in self._resolved:
            for link in links:
                link.clear_fault()

    @property
    def done(self) -> bool:
        """Every scheduled window has opened and closed."""
        return self._next_event >= len(self._events)

    def _apply(self, link: Link, cycle: int) -> None:
        stack = self._open.get(link.name)
        if not stack:
            link.clear_fault()
            return
        w = stack[-1]
        if w.mode == "dead":
            link.set_fault(drop=True)
        elif w.mode == "stuck":
            link.set_fault(error_rate=1.0)
        else:
            link.set_fault(error_rate=w.error_rate)

    def catch_up(self, cycle: int) -> None:
        """Apply every event scheduled at or before ``cycle`` at once.

        Equivalent to ticking the injector on every cycle of a span in
        which nothing else happened: ``_apply`` depends only on the open
        stack, so collapsing the per-cycle calls is exact.  The batch
        runner uses this after skipping an idle span (see
        :mod:`repro.sim.batch`).
        """
        self.tick(cycle)

    def tick(self, cycle: int) -> None:
        # Overrides set during tick(t) govern flits the link samples at
        # t+1 -- identically under both scheduling modes, because a
        # contract-less component ticks every cycle in either.
        while self._next_event < len(self._events) and self._events[self._next_event][0] <= cycle:
            _, _, _, link, w, opening = self._events[self._next_event]
            self._next_event += 1
            stack = self._open.setdefault(link.name, [])
            if opening:
                stack.append(w)
                self.windows_opened += 1
            else:
                stack.remove(w)
                self.windows_closed += 1
            self._apply(link, cycle)
            if self.lifecycle:
                self.trace(
                    cycle,
                    "fault",
                    link=link.name,
                    mode=w.mode,
                    phase="open" if opening else "close",
                    rate=(1.0 if w.mode == "stuck" else w.error_rate),
                )


def randomized_windows(
    link_names: Sequence[str],
    n_windows: int,
    horizon: int,
    seed: int = 0,
    modes: Sequence[str] = FAULT_MODES,
    min_duration: int = 10,
    max_duration: int = 100,
    error_rates: Tuple[float, float] = (0.05, 0.5),
) -> Tuple[FaultWindow, ...]:
    """A reproducible random fault schedule over the given links.

    Draws ``n_windows`` windows with starts in ``[0, horizon)``,
    durations in ``[min_duration, max_duration]`` and burst error rates
    in ``error_rates`` -- all from one seeded PRNG, so a campaign spec
    (builder + seed) regenerates the identical schedule.
    """
    if not link_names:
        raise ValueError("randomized_windows needs at least one link name")
    if min_duration < 1 or max_duration < min_duration:
        raise ValueError("need 1 <= min_duration <= max_duration")
    rng = random.Random(seed)
    windows = []
    for _ in range(n_windows):
        mode = rng.choice(list(modes))
        windows.append(
            FaultWindow(
                link=rng.choice(list(link_names)),
                start=rng.randrange(max(1, horizon)),
                duration=rng.randint(min_duration, max_duration),
                mode=mode,
                error_rate=round(rng.uniform(*error_rates), 4),
            )
        )
    return tuple(windows)
