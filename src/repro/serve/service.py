"""Design-space queries over the shared result store.

The paper's concluding claim -- xpipes Lite "allows faster & more
accurate design space exploration" -- as a *service* contract: a query
names an application (core graph), a candidate slice of the design
space and constraints/objective, and the engine answers it from the
content-addressed store when every point is already known (microseconds
-- no simulation, no synthesis models re-run), or evaluates exactly the
missing points through the work-stealing farm when not.

The key discipline is what makes this sound: a query expands to the
*same* ``(core_graph, fabric, width, depth, ...)`` combo tuples --
and therefore the same :func:`~repro.flow.runner.stable_repr` cache
keys -- that :func:`repro.flow.dse.explore_design_space` produces, so
the store populated by any past sweep, on any host, answers queries
here, and a query evaluated here accelerates everyone's next sweep.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.flow.dse import (
    DesignPoint,
    _evaluate_design_point,
    pareto_frontier,
    render_space,
)
from repro.flow.runner import ExperimentRunner
from repro.flow.taskgraph import CoreGraph, demo_multimedia_soc, demo_telecom_soc
from repro.network.topology import (
    Topology,
    fat_tree,
    fully_connected,
    hypercube,
    mesh,
    ring,
    spidergon,
    star,
    torus,
)
from repro.store import ResultStore


class QueryError(ValueError):
    """A malformed or unanswerable design-space query."""


#: Applications a query can name ("under this traffic").
CORE_GRAPHS = {
    "multimedia": lambda: demo_multimedia_soc()[2],
    "telecom": lambda: demo_telecom_soc()[2],
}

#: Objectives a query can optimize; each maps a DesignPoint to a cost.
OBJECTIVES = {
    "area": lambda p: p.area_mm2,  # "cheapest"
    "power": lambda p: p.power_mw,
    "latency": lambda p: p.latency_ns,
}

_GRID_FAMILIES = {"mesh": mesh, "torus": torus}
_COUNT_FAMILIES = {
    "ring": ring,
    "star": star,
    "spidergon": spidergon,
    "hypercube": hypercube,
    "fully_connected": fully_connected,
    "fat_tree": fat_tree,
}


def topology_from_name(name: str) -> Topology:
    """``"mesh-5x5"`` / ``"torus-3x3"`` / ``"star-4"`` /
    ``"hypercube-3"`` ... -> a fresh :class:`Topology`.

    Grid families take ``WxH``; the rest take one count.  The factory
    is what keys the cache (Topology.cache_token), so two queries
    naming the same topology hit the same records.
    """
    if not isinstance(name, str) or "-" not in name:
        raise QueryError(
            f"topology {name!r}: expected '<family>-<size>', e.g. 'mesh-5x5' "
            f"or 'star-4'"
        )
    family, _, size = name.partition("-")
    try:
        if family in _GRID_FAMILIES:
            w, _, h = size.partition("x")
            return _GRID_FAMILIES[family](int(w), int(h))
        if family in _COUNT_FAMILIES:
            return _COUNT_FAMILIES[family](int(size))
    except (ValueError, TypeError) as exc:
        raise QueryError(f"topology {name!r}: {exc}") from None
    raise QueryError(
        f"topology {name!r}: unknown family {family!r} (know "
        f"{sorted(_GRID_FAMILIES | _COUNT_FAMILIES.keys())})"
    )


def core_graph_from_name(name: str) -> CoreGraph:
    try:
        return CORE_GRAPHS[name]()
    except KeyError:
        raise QueryError(
            f"core graph {name!r}: know {sorted(CORE_GRAPHS)}"
        ) from None


@dataclass(frozen=True)
class QuerySpec:
    """One design-space question, normalized.

    The sweep slice (``topologies`` x ``flit_widths`` x
    ``buffer_depths`` under ``core_graph``/``seed``/... ) defines which
    points are consulted; the constraints (``min_freq_mhz``,
    ``max_latency_ns``, ``max_area_mm2``, ``max_power_mw``) filter
    them; ``objective`` picks the winner among survivors.  "Cheapest
    5x5 config >= 800 MHz under multimedia traffic" is
    ``QuerySpec(core_graph="multimedia", topologies=("mesh-5x5",),
    min_freq_mhz=800, objective="area")``.
    """

    core_graph: str = "multimedia"
    topologies: Tuple[str, ...] = ("mesh-2x2",)
    flit_widths: Tuple[int, ...] = (16, 32, 64)
    buffer_depths: Tuple[int, ...] = (4, 6)
    target_freq_mhz: float = 1000.0
    max_radix: int = 8
    seed: int = 0
    anneal_iterations: int = 600
    min_freq_mhz: float = 0.0
    max_latency_ns: Optional[float] = None
    max_area_mm2: Optional[float] = None
    max_power_mw: Optional[float] = None
    objective: str = "area"

    def __post_init__(self) -> None:
        if self.core_graph not in CORE_GRAPHS:
            raise QueryError(
                f"core graph {self.core_graph!r}: know {sorted(CORE_GRAPHS)}"
            )
        if not self.topologies:
            raise QueryError("query needs at least one topology")
        for name in self.topologies:
            topology_from_name(name)  # validates eagerly
        if not self.flit_widths or not self.buffer_depths:
            raise QueryError("query needs flit_widths and buffer_depths")
        if self.objective not in OBJECTIVES:
            raise QueryError(
                f"objective {self.objective!r}: know {sorted(OBJECTIVES)}"
            )

    def meets_constraints(self, p: DesignPoint) -> bool:
        if not p.feasible:
            return False
        if p.freq_mhz < self.min_freq_mhz:
            return False
        if self.max_latency_ns is not None and p.latency_ns > self.max_latency_ns:
            return False
        if self.max_area_mm2 is not None and p.area_mm2 > self.max_area_mm2:
            return False
        if self.max_power_mw is not None and p.power_mw > self.max_power_mw:
            return False
        return True


_TUPLE_FIELDS = {"topologies", "flit_widths", "buffer_depths"}


def parse_query(doc: Any) -> QuerySpec:
    """A JSON request body -> :class:`QuerySpec`, with named errors."""
    if not isinstance(doc, dict):
        raise QueryError(f"query must be a JSON object, got {type(doc).__name__}")
    known = {f.name for f in dataclasses.fields(QuerySpec)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise QueryError(f"unknown query fields {unknown}; know {sorted(known)}")
    kwargs: Dict[str, Any] = {}
    for name, value in doc.items():
        if name in _TUPLE_FIELDS:
            if isinstance(value, (str, int)):
                value = (value,)
            elif isinstance(value, list):
                value = tuple(value)
            else:
                raise QueryError(f"{name} must be a list, got {value!r}")
        kwargs[name] = value
    try:
        return QuerySpec(**kwargs)
    except TypeError as exc:
        raise QueryError(str(exc)) from None


def point_as_dict(p: DesignPoint) -> Dict[str, Any]:
    return dataclasses.asdict(p)


@dataclass
class QueryResult:
    """One answered query: the winner, the frontier, and provenance."""

    spec: QuerySpec
    points: List[DesignPoint]
    best: Optional[DesignPoint]
    frontier: List[DesignPoint]
    store_hits: int
    store_misses: int
    served_from: str  # "store" (pure hit) or "farm" (misses computed)
    seconds: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": dataclasses.asdict(self.spec),
            "best": None if self.best is None else point_as_dict(self.best),
            "frontier": [point_as_dict(p) for p in self.frontier],
            "points": [point_as_dict(p) for p in self.points],
            "feasible": sum(
                1 for p in self.points if self.spec.meets_constraints(p)
            ),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "served_from": self.served_from,
            "seconds": round(self.seconds, 6),
        }

    def render(self) -> str:
        table = render_space(
            self.points, self.frontier,
            title=f"query over {self.spec.core_graph}",
        )
        if self.best is None:
            verdict = "no feasible point meets the constraints"
        else:
            verdict = f"best ({self.spec.objective}): {self.best.row().strip()}"
        return (
            f"{table}\n{verdict}\n"
            f"served from {self.served_from}: {self.store_hits} hit(s), "
            f"{self.store_misses} miss(es), {self.seconds * 1e3:.1f} ms"
        )


class QueryEngine:
    """Answer :class:`QuerySpec` questions over one shared store.

    Pure-hit queries never touch a simulator or synthesis model: every
    point is read (and sha256-verified) straight out of the
    :class:`~repro.store.ResultStore`.  Queries with missing points go
    through an :class:`~repro.flow.runner.ExperimentRunner` bound to
    the store -- under a :class:`~repro.serve.WorkStealingDispatcher`
    when ``workers > 1`` -- so the misses are computed once, published,
    and journaled like any sweep.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        timeout: Optional[float] = None,
        retries: int = 0,
        salt: str = "",
        metrics: Optional[Any] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.salt = salt
        self.metrics = metrics
        self.queries = 0
        self.farm_queries = 0

    def _count(self, name: str, by: int = 1) -> None:
        if self.metrics is not None and by:
            self.metrics.counter(f"serve.{name}").inc(by)

    def make_runner(self, events_path: Optional[str] = None) -> ExperimentRunner:
        return ExperimentRunner(
            store=self.store,
            salt=self.salt,
            timeout=self.timeout,
            retries=self.retries,
            metrics=self.metrics,
            events_path=events_path,
        )

    # -- key discipline ---------------------------------------------------
    def combos(self, spec: QuerySpec) -> List[tuple]:
        """The exact combo tuples ``explore_design_space`` would build
        for this slice -- combo order and content must match, or the
        keys diverge and the store stops being shared."""
        core_graph = core_graph_from_name(spec.core_graph)
        fabrics = [topology_from_name(name) for name in spec.topologies]
        return [
            (core_graph, fabric, width, depth, spec.target_freq_mhz,
             spec.max_radix, spec.seed, spec.anneal_iterations)
            for fabric in fabrics
            for width in spec.flit_widths
            for depth in spec.buffer_depths
        ]

    def keys(self, spec: QuerySpec) -> List[str]:
        keyer = self.make_runner()
        return [keyer._key(_evaluate_design_point, c) for c in self.combos(spec)]

    # -- answering --------------------------------------------------------
    def lookup(
        self, spec: QuerySpec
    ) -> Tuple[List[Optional[DesignPoint]], List[int]]:
        """Probe the store only: ``(points, missing_indices)`` where
        ``points[i]`` is None exactly for the missing indices."""
        points: List[Optional[DesignPoint]] = []
        missing: List[int] = []
        for i, key in enumerate(self.keys(spec)):
            hit, value = self.store.get(key)
            points.append(value if hit else None)
            if not hit:
                missing.append(i)
        return points, missing

    def query(
        self,
        spec: QuerySpec,
        evaluate: bool = True,
        events_path: Optional[str] = None,
    ) -> QueryResult:
        """Answer ``spec``.  With ``evaluate=False`` a query with
        missing points raises :class:`QueryError` instead of computing
        (the HTTP layer uses this for its admission-control decision)."""
        t0 = time.perf_counter()
        self.queries += 1
        self._count("queries")
        points, missing = self.lookup(spec)
        self._count("query_store_hits", len(points) - len(missing))
        self._count("query_store_misses", len(missing))
        served_from = "store"
        if missing:
            if not evaluate:
                raise QueryError(
                    f"{len(missing)} of {len(points)} points are not in the "
                    f"store and evaluate=False"
                )
            served_from = "farm"
            self.farm_queries += 1
            self._count("farm_queries")
            runner = self.make_runner(events_path=events_path)
            mapper: Any = runner
            if self.workers > 1:
                from repro.serve.dispatch import WorkStealingDispatcher

                mapper = WorkStealingDispatcher(runner, workers=self.workers)
            combos = self.combos(spec)
            computed = mapper.map(
                _evaluate_design_point,
                [combos[i] for i in missing],
                label="query",
            )
            for i, p in zip(missing, computed):
                points[i] = p
            self._count("points_computed", len(missing))
        final: List[DesignPoint] = [p for p in points if p is not None]
        candidates = [p for p in final if spec.meets_constraints(p)]
        cost = OBJECTIVES[spec.objective]
        best = min(candidates, key=cost) if candidates else None
        return QueryResult(
            spec=spec,
            points=final,
            best=best,
            frontier=pareto_frontier(final),
            store_hits=len(points) - len(missing),
            store_misses=len(missing),
            served_from=served_from,
            seconds=time.perf_counter() - t0,
        )
