"""Design-space queries over the shared result store.

The paper's concluding claim -- xpipes Lite "allows faster & more
accurate design space exploration" -- as a *service* contract: a query
names an application (core graph), a candidate slice of the design
space and constraints/objective, and the engine answers it from the
content-addressed store when every point is already known (microseconds
-- no simulation, no synthesis models re-run), or evaluates exactly the
missing points through the work-stealing farm when not.

The key discipline is what makes this sound: a query expands to the
*same* ``(core_graph, fabric, width, depth, ...)`` combo tuples --
and therefore the same :func:`~repro.flow.runner.stable_repr` cache
keys -- that :func:`repro.flow.dse.explore_design_space` produces, so
the store populated by any past sweep, on any host, answers queries
here, and a query evaluated here accelerates everyone's next sweep.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.flow.dse import (
    DesignPoint,
    _evaluate_design_point,
    pareto_frontier,
    render_space,
)
from repro.flow.runner import ExperimentRunner
from repro.flow.taskgraph import CoreGraph, demo_multimedia_soc, demo_telecom_soc
from repro.network.topology import (
    Topology,
    fat_tree,
    fully_connected,
    hypercube,
    mesh,
    ring,
    spidergon,
    star,
    torus,
)
from repro.store import ResultStore


class QueryError(ValueError):
    """A malformed or unanswerable design-space query."""


class FarmUnavailable(RuntimeError):
    """The farm circuit is open and the caller declined degradation."""


class CircuitBreaker:
    """Classic three-state breaker over the farm dispatch path.

    ``closed`` (healthy): every call is allowed; ``failures``
    *consecutive* recorded failures trip it ``open``.  ``open``: calls
    are refused -- the engine answers degraded from the store instead
    of queueing more work onto a farm that is demonstrably down --
    until ``cooldown`` seconds pass.  Then the next :meth:`allow`
    admits exactly one **half-open probe**; its success closes the
    breaker (``circuit_close`` event), its failure re-opens it for
    another full cooldown.

    Transitions are emitted as ``circuit_open`` / ``circuit_close``
    events on the ``repro.telemetry.events`` plane and mirrored into a
    ``serve.circuit_open`` gauge (1 while open) when ``metrics`` is
    set.  The clock is injectable for tests.
    """

    def __init__(
        self,
        failures: int = 3,
        cooldown: float = 30.0,
        metrics: Optional[Any] = None,
        clock: Any = time.monotonic,
    ) -> None:
        if failures < 1:
            raise ValueError(f"failures must be >= 1, got {failures}")
        if cooldown <= 0:
            raise ValueError(f"cooldown must be positive seconds, got {cooldown}")
        self.failures = failures
        self.cooldown = cooldown
        self.metrics = metrics
        self.clock = clock
        self.state = "closed"  # closed | open | half-open
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self._gauge(0)

    def _gauge(self, value: int) -> None:
        if self.metrics is not None:
            self.metrics.gauge("serve.circuit_open").set(value)

    def blocking(self) -> bool:
        """True when a farm call would be refused *right now* -- open
        with the cooldown still running, or already probing half-open.
        A peek: never consumes the half-open probe slot."""
        if self.state == "half-open":
            return True
        if self.state != "open":
            return False
        return self.clock() - self.opened_at < self.cooldown

    def allow(self) -> bool:
        """May the caller dispatch to the farm?  In ``open`` state with
        the cooldown elapsed this admits (and consumes) the single
        half-open probe."""
        if self.state == "closed":
            return True
        if self.state == "open" and self.clock() - self.opened_at >= self.cooldown:
            self.state = "half-open"
            self.probes += 1
            return True
        return False

    def record_success(self) -> None:
        from repro.telemetry import events as _events

        if self.state != "closed":
            self.closes += 1
            _events.emit("circuit_close", probes=self.probes)
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = None
        self._gauge(0)

    def record_failure(self) -> None:
        from repro.telemetry import events as _events

        self.consecutive_failures += 1
        if self.state == "half-open" or (
            self.state == "closed"
            and self.consecutive_failures >= self.failures
        ):
            self.state = "open"
            self.opened_at = self.clock()
            self.opens += 1
            self._gauge(1)
            _events.emit(
                "circuit_open", failures=self.consecutive_failures,
                cooldown=self.cooldown,
            )
        elif self.state == "open":
            self.opened_at = self.clock()


#: Applications a query can name ("under this traffic").
CORE_GRAPHS = {
    "multimedia": lambda: demo_multimedia_soc()[2],
    "telecom": lambda: demo_telecom_soc()[2],
}

#: Objectives a query can optimize; each maps a DesignPoint to a cost.
OBJECTIVES = {
    "area": lambda p: p.area_mm2,  # "cheapest"
    "power": lambda p: p.power_mw,
    "latency": lambda p: p.latency_ns,
}

_GRID_FAMILIES = {"mesh": mesh, "torus": torus}
_COUNT_FAMILIES = {
    "ring": ring,
    "star": star,
    "spidergon": spidergon,
    "hypercube": hypercube,
    "fully_connected": fully_connected,
    "fat_tree": fat_tree,
}


def topology_from_name(name: str) -> Topology:
    """``"mesh-5x5"`` / ``"torus-3x3"`` / ``"star-4"`` /
    ``"hypercube-3"`` ... -> a fresh :class:`Topology`.

    Grid families take ``WxH``; the rest take one count.  The factory
    is what keys the cache (Topology.cache_token), so two queries
    naming the same topology hit the same records.
    """
    if not isinstance(name, str) or "-" not in name:
        raise QueryError(
            f"topology {name!r}: expected '<family>-<size>', e.g. 'mesh-5x5' "
            f"or 'star-4'"
        )
    family, _, size = name.partition("-")
    try:
        if family in _GRID_FAMILIES:
            w, _, h = size.partition("x")
            return _GRID_FAMILIES[family](int(w), int(h))
        if family in _COUNT_FAMILIES:
            return _COUNT_FAMILIES[family](int(size))
    except (ValueError, TypeError) as exc:
        raise QueryError(f"topology {name!r}: {exc}") from None
    raise QueryError(
        f"topology {name!r}: unknown family {family!r} (know "
        f"{sorted(_GRID_FAMILIES | _COUNT_FAMILIES.keys())})"
    )


def core_graph_from_name(name: str) -> CoreGraph:
    try:
        return CORE_GRAPHS[name]()
    except KeyError:
        raise QueryError(
            f"core graph {name!r}: know {sorted(CORE_GRAPHS)}"
        ) from None


@dataclass(frozen=True)
class QuerySpec:
    """One design-space question, normalized.

    The sweep slice (``topologies`` x ``flit_widths`` x
    ``buffer_depths`` under ``core_graph``/``seed``/... ) defines which
    points are consulted; the constraints (``min_freq_mhz``,
    ``max_latency_ns``, ``max_area_mm2``, ``max_power_mw``) filter
    them; ``objective`` picks the winner among survivors.  "Cheapest
    5x5 config >= 800 MHz under multimedia traffic" is
    ``QuerySpec(core_graph="multimedia", topologies=("mesh-5x5",),
    min_freq_mhz=800, objective="area")``.
    """

    core_graph: str = "multimedia"
    topologies: Tuple[str, ...] = ("mesh-2x2",)
    flit_widths: Tuple[int, ...] = (16, 32, 64)
    buffer_depths: Tuple[int, ...] = (4, 6)
    target_freq_mhz: float = 1000.0
    max_radix: int = 8
    seed: int = 0
    anneal_iterations: int = 600
    min_freq_mhz: float = 0.0
    max_latency_ns: Optional[float] = None
    max_area_mm2: Optional[float] = None
    max_power_mw: Optional[float] = None
    objective: str = "area"

    def __post_init__(self) -> None:
        if self.core_graph not in CORE_GRAPHS:
            raise QueryError(
                f"core graph {self.core_graph!r}: know {sorted(CORE_GRAPHS)}"
            )
        if not self.topologies:
            raise QueryError("query needs at least one topology")
        for name in self.topologies:
            topology_from_name(name)  # validates eagerly
        if not self.flit_widths or not self.buffer_depths:
            raise QueryError("query needs flit_widths and buffer_depths")
        if self.objective not in OBJECTIVES:
            raise QueryError(
                f"objective {self.objective!r}: know {sorted(OBJECTIVES)}"
            )

    def meets_constraints(self, p: DesignPoint) -> bool:
        if not p.feasible:
            return False
        if p.freq_mhz < self.min_freq_mhz:
            return False
        if self.max_latency_ns is not None and p.latency_ns > self.max_latency_ns:
            return False
        if self.max_area_mm2 is not None and p.area_mm2 > self.max_area_mm2:
            return False
        if self.max_power_mw is not None and p.power_mw > self.max_power_mw:
            return False
        return True


_TUPLE_FIELDS = {"topologies", "flit_widths", "buffer_depths"}


def parse_query(doc: Any) -> QuerySpec:
    """A JSON request body -> :class:`QuerySpec`, with named errors."""
    if not isinstance(doc, dict):
        raise QueryError(f"query must be a JSON object, got {type(doc).__name__}")
    known = {f.name for f in dataclasses.fields(QuerySpec)}
    unknown = sorted(set(doc) - known)
    if unknown:
        raise QueryError(f"unknown query fields {unknown}; know {sorted(known)}")
    kwargs: Dict[str, Any] = {}
    for name, value in doc.items():
        if name in _TUPLE_FIELDS:
            if isinstance(value, (str, int)):
                value = (value,)
            elif isinstance(value, list):
                value = tuple(value)
            else:
                raise QueryError(f"{name} must be a list, got {value!r}")
        kwargs[name] = value
    try:
        return QuerySpec(**kwargs)
    except TypeError as exc:
        raise QueryError(str(exc)) from None


def point_as_dict(p: DesignPoint) -> Dict[str, Any]:
    return dataclasses.asdict(p)


@dataclass
class QueryResult:
    """One answered query: the winner, the frontier, and provenance.

    ``degraded`` marks an answer built from store hits alone while the
    farm circuit was open: the missing points were *not* computed, and
    ``hints`` names, for each of them, the nearest cached neighbor in
    the query's own grid (same topology preferred, then closest flit
    width and buffer depth) -- an honest partial answer instead of a
    5xx (docs/SERVICE.md, "Supervision & chaos testing").
    """

    spec: QuerySpec
    points: List[DesignPoint]
    best: Optional[DesignPoint]
    frontier: List[DesignPoint]
    store_hits: int
    store_misses: int
    served_from: str  # "store" (pure hit) or "farm" (misses computed)
    seconds: float
    degraded: bool = False
    hints: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "query": dataclasses.asdict(self.spec),
            "best": None if self.best is None else point_as_dict(self.best),
            "frontier": [point_as_dict(p) for p in self.frontier],
            "points": [point_as_dict(p) for p in self.points],
            "feasible": sum(
                1 for p in self.points if self.spec.meets_constraints(p)
            ),
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "served_from": self.served_from,
            "seconds": round(self.seconds, 6),
            "degraded": self.degraded,
            "hints": self.hints,
        }

    def render(self) -> str:
        table = render_space(
            self.points, self.frontier,
            title=f"query over {self.spec.core_graph}",
        )
        if self.best is None:
            verdict = "no feasible point meets the constraints"
        else:
            verdict = f"best ({self.spec.objective}): {self.best.row().strip()}"
        suffix = ""
        if self.degraded:
            suffix = " [DEGRADED: farm circuit open, missing points hinted]"
        return (
            f"{table}\n{verdict}\n"
            f"served from {self.served_from}: {self.store_hits} hit(s), "
            f"{self.store_misses} miss(es), {self.seconds * 1e3:.1f} ms{suffix}"
        )


class QueryEngine:
    """Answer :class:`QuerySpec` questions over one shared store.

    Pure-hit queries never touch a simulator or synthesis model: every
    point is read (and sha256-verified) straight out of the
    :class:`~repro.store.ResultStore`.  Queries with missing points go
    through an :class:`~repro.flow.runner.ExperimentRunner` bound to
    the store -- under a :class:`~repro.serve.WorkStealingDispatcher`
    when ``workers > 1`` -- so the misses are computed once, published,
    and journaled like any sweep.

    The farm path is guarded by a :class:`CircuitBreaker` (one is
    constructed per engine unless injected): consecutive dispatch
    failures open it, after which misses are answered degraded from the
    store (see :meth:`query`) until a half-open probe succeeds.
    """

    def __init__(
        self,
        store: ResultStore,
        workers: int = 2,
        timeout: Optional[float] = None,
        retries: int = 0,
        salt: str = "",
        metrics: Optional[Any] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.store = store
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.salt = salt
        self.metrics = metrics
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            metrics=metrics
        )
        self.queries = 0
        self.farm_queries = 0
        self.degraded_queries = 0

    def _count(self, name: str, by: int = 1) -> None:
        if self.metrics is not None and by:
            self.metrics.counter(f"serve.{name}").inc(by)

    def make_runner(self, events_path: Optional[str] = None) -> ExperimentRunner:
        return ExperimentRunner(
            store=self.store,
            salt=self.salt,
            timeout=self.timeout,
            retries=self.retries,
            metrics=self.metrics,
            events_path=events_path,
        )

    # -- key discipline ---------------------------------------------------
    def combos(self, spec: QuerySpec) -> List[tuple]:
        """The exact combo tuples ``explore_design_space`` would build
        for this slice -- combo order and content must match, or the
        keys diverge and the store stops being shared."""
        core_graph = core_graph_from_name(spec.core_graph)
        fabrics = [topology_from_name(name) for name in spec.topologies]
        return [
            (core_graph, fabric, width, depth, spec.target_freq_mhz,
             spec.max_radix, spec.seed, spec.anneal_iterations)
            for fabric in fabrics
            for width in spec.flit_widths
            for depth in spec.buffer_depths
        ]

    def keys(self, spec: QuerySpec) -> List[str]:
        keyer = self.make_runner()
        return [keyer._key(_evaluate_design_point, c) for c in self.combos(spec)]

    # -- answering --------------------------------------------------------
    def lookup(
        self, spec: QuerySpec
    ) -> Tuple[List[Optional[DesignPoint]], List[int]]:
        """Probe the store only: ``(points, missing_indices)`` where
        ``points[i]`` is None exactly for the missing indices."""
        points: List[Optional[DesignPoint]] = []
        missing: List[int] = []
        for i, key in enumerate(self.keys(spec)):
            hit, value = self.store.get(key)
            points.append(value if hit else None)
            if not hit:
                missing.append(i)
        return points, missing

    # -- degraded answers -------------------------------------------------
    def _grid(self, spec: QuerySpec) -> List["tuple[str, int, int]"]:
        """The human-readable ``(topology, width, depth)`` triple for
        every combo index, in :meth:`combos` order."""
        return [
            (name, width, depth)
            for name in spec.topologies
            for width in spec.flit_widths
            for depth in spec.buffer_depths
        ]

    def neighbor_hints(
        self,
        spec: QuerySpec,
        points: List[Optional[DesignPoint]],
        missing: List[int],
    ) -> List[Dict[str, Any]]:
        """For each missing combo, the nearest *cached* combo in this
        query's own grid: same topology strongly preferred, then
        smallest log2 flit-width distance plus buffer-depth distance.
        Ties break on the lower combo index, so hints are
        deterministic.  With nothing cached at all, ``nearest`` is
        None."""
        grid = self._grid(spec)
        present = [j for j, p in enumerate(points) if p is not None]

        def distance(a: int, b: int) -> float:
            ta, wa, da = grid[a]
            tb, wb, db = grid[b]
            return (
                (0.0 if ta == tb else 1000.0)
                + abs(math.log2(wa) - math.log2(wb))
                + abs(da - db)
            )

        hints: List[Dict[str, Any]] = []
        for i in missing:
            name, width, depth = grid[i]
            hint: Dict[str, Any] = {
                "missing": {
                    "topology": name, "flit_width": width,
                    "buffer_depth": depth,
                },
                "nearest": None,
            }
            if present:
                j = min(present, key=lambda j: (distance(i, j), j))
                nname, nwidth, ndepth = grid[j]
                hint["nearest"] = {
                    "topology": nname, "flit_width": nwidth,
                    "buffer_depth": ndepth,
                    "point": point_as_dict(points[j]),
                }
            hints.append(hint)
        return hints

    def query(
        self,
        spec: QuerySpec,
        evaluate: bool = True,
        events_path: Optional[str] = None,
        degrade: bool = True,
    ) -> QueryResult:
        """Answer ``spec``.  With ``evaluate=False`` a query with
        missing points raises :class:`QueryError` instead of computing
        (the HTTP layer uses this for its admission-control decision).

        Missing points normally go through the farm, guarded by the
        circuit breaker: a dispatch failure is recorded, and once the
        breaker is open further queries are answered **degraded** --
        store hits only, ``degraded=True``, nearest-cached-neighbor
        ``hints`` for every missing combo -- instead of queueing work
        onto a farm that is known to be down.  ``degrade=False`` turns
        that into a :class:`FarmUnavailable` raise.
        """
        t0 = time.perf_counter()
        self.queries += 1
        self._count("queries")
        points, missing = self.lookup(spec)
        self._count("query_store_hits", len(points) - len(missing))
        self._count("query_store_misses", len(missing))
        served_from = "store"
        degraded = False
        hints: List[Dict[str, Any]] = []
        if missing:
            if not evaluate:
                raise QueryError(
                    f"{len(missing)} of {len(points)} points are not in the "
                    f"store and evaluate=False"
                )
            if self.breaker is not None and not self.breaker.allow():
                if not degrade:
                    raise FarmUnavailable(
                        f"farm circuit is open after "
                        f"{self.breaker.consecutive_failures} consecutive "
                        f"failures; retry after the "
                        f"{self.breaker.cooldown:g}s cooldown"
                    )
                degraded = True
                self.degraded_queries += 1
                self._count("degraded_queries")
                hints = self.neighbor_hints(spec, points, missing)
            else:
                served_from = "farm"
                self.farm_queries += 1
                self._count("farm_queries")
                runner = self.make_runner(events_path=events_path)
                mapper: Any = runner
                if self.workers > 1:
                    from repro.serve.dispatch import WorkStealingDispatcher

                    mapper = WorkStealingDispatcher(runner, workers=self.workers)
                combos = self.combos(spec)
                try:
                    computed = mapper.map(
                        _evaluate_design_point,
                        [combos[i] for i in missing],
                        label="query",
                    )
                except Exception:
                    if self.breaker is not None:
                        self.breaker.record_failure()
                    raise
                if self.breaker is not None:
                    self.breaker.record_success()
                for i, p in zip(missing, computed):
                    points[i] = p
                self._count("points_computed", len(missing))
        final: List[DesignPoint] = [p for p in points if p is not None]
        candidates = [p for p in final if spec.meets_constraints(p)]
        cost = OBJECTIVES[spec.objective]
        best = min(candidates, key=cost) if candidates else None
        return QueryResult(
            spec=spec,
            points=final,
            best=best,
            frontier=pareto_frontier(final),
            store_hits=len(points) - len(missing),
            store_misses=len(missing),
            served_from=served_from,
            seconds=time.perf_counter() - t0,
            degraded=degraded,
            hints=hints,
        )
